"""Extension ablation — closing the paper's §VII-H gap.

The paper's stated limitation: on GL7d19 (balanced rows plus a few much
longer ones) HYB's matrix decomposition beats every machine-designed format
because AlphaSparse's operator set cannot decompose.  This repository
implements that operator (HYB_DECOMP) as the announced future work; this
bench measures the limitation and the fix:

* prototype search (extensions off)  — mirrors the paper's configuration,
* extended search (HYB_DECOMP on)    — must do at least as well,
* the HYB baseline                   — the §VII-H yardstick.
"""

import numpy as np

from repro.analysis import render_table
from repro.baselines import get_baseline
from repro.gpu import A100
from repro.search import SearchEngine
from repro.sparse import named_matrix

from conftest import BENCH_BUDGET, bench_engine


def test_ext_hyb_decomposition(x_of, benchmark):
    m = named_matrix("GL7d19")
    x = x_of(m)
    hyb = get_baseline("HYB").measure(m, A100, x)

    prototype = bench_engine(A100, seed=77).search(m)
    extended = SearchEngine(
        A100, budget=BENCH_BUDGET, seed=77, enable_extensions=True
    ).search(m)

    print()
    print(render_table(
        "SecVII-H extension: HYB_DECOMP on the GL7d19 stand-in\n"
        "(paper: HYB beats the prototype here; the future-work operator "
        "closes the gap)",
        ["configuration", "GFLOPS"],
        [
            ["HYB baseline", hyb.gflops],
            ["AlphaSparse (prototype operators)", prototype.best_gflops],
            ["AlphaSparse + HYB_DECOMP extension", extended.best_gflops],
        ],
    ))
    if extended.best_graph is not None:
        uses = "HYB_DECOMP" in extended.best_graph.operator_names()
        print(f"extended winner uses HYB_DECOMP: {uses}")

    # Correctness of both winners.
    for res in (prototype, extended):
        out = res.best_program.run(x, A100)
        np.testing.assert_allclose(out.y, m.spmv_reference(x),
                                   rtol=1e-9, atol=1e-9)

    # The extension may only help.
    assert extended.best_gflops >= 0.98 * prototype.best_gflops

    benchmark(lambda: extended.best_program.run(x, A100))
