"""Record serving throughput and latency, with and without injected faults.

Drives the supervised resolver pool (``repro.serve.pool``) over a
journal-backend store through four scenarios —

* ``cold``         — no faults, empty store; every request is a fresh
                     search (search-tier latency)
* ``clean``        — no faults; mixed exact-hit / neighbour / search load
* ``faulted``      — the same load at a 20% worker-kill rate plus slow
                     store reads (the S-curve the reliability layer exists
                     for)
* ``degraded``     — every request capped below the store tiers, forcing
                     the explicit DEGRADED answer path
* ``frontend``     — the in-process frontend on the same load (the
                     no-pool reference point)

— and writes per-tier latency percentiles (p50/p99), throughput and the
supervision counters to ``BENCH_serve.json`` at the repo root.  Every
scenario must answer 100% of its requests; the script fails otherwise.

    PYTHONPATH=src python benchmarks/bench_serve.py

``--check`` mode (the CI chaos gate) runs only the faulted smoke: a small
request set against a 20% worker-kill rate, asserting the pool answers
every request and every answer is usable.  It never touches the committed
JSON:

    PYTHONPATH=src python benchmarks/bench_serve.py --check
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from datetime import datetime, timezone

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.gpu.arch import gpu_by_name
from repro.reliability.faults import FaultPlan
from repro.search.engine import SearchBudget
from repro.serve import Frontend, ResolverPool, TIER_EXACT
from repro.sparse import banded_matrix, power_law_matrix, random_uniform_matrix
from repro.store import open_store

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_serve.json")

GPU = gpu_by_name("A100")
#: serving budget: small enough that a fresh search answers in well under
#: a second on the simulated GPU, so percentiles measure the serving
#: machinery rather than search depth
BUDGET = SearchBudget(
    max_structures=3, coarse_evals_per_structure=2, max_total_evals=8, ml_top_k=2
)
WORKERS = 2
DEADLINE_S = 20.0
KILL_RATE = 0.2


def _request_set(n: int = 12, seed: int = 0):
    """Mixed-generator request load; deterministic for a seed."""
    mats = []
    for i in range(n):
        kind = i % 3
        if kind == 0:
            mats.append(banded_matrix(24 + 4 * i, bandwidth=2, seed=seed + i,
                                      name=f"band{i}"))
        elif kind == 1:
            mats.append(random_uniform_matrix(24 + 4 * i, avg_degree=4,
                                              seed=seed + i, name=f"rand{i}"))
        else:
            mats.append(power_law_matrix(24 + 4 * i, avg_degree=3,
                                         seed=seed + i, name=f"pow{i}"))
    return mats


def _percentile(values, q: float):
    if not values:
        return None
    ordered = sorted(values)
    idx = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[idx]


def _latency_summary(responses):
    """Per-tier request counts and p50/p99 wall times (milliseconds)."""
    by_tier = {}
    for response in responses:
        by_tier.setdefault(response.source, []).append(
            response.wall_time_s * 1e3
        )
    return {
        tier: {
            "requests": len(lat),
            "p50_ms": round(_percentile(lat, 0.50), 3),
            "p99_ms": round(_percentile(lat, 0.99), 3),
        }
        for tier, lat in sorted(by_tier.items())
    }


def _prime_store(store_path: str, matrices) -> None:
    """Persist results for ``matrices`` so they serve as exact hits (and
    as neighbour donors for the rest of the request set)."""
    store = open_store(store_path, backend="journal")
    with Frontend(GPU, store, budget=BUDGET) as frontend:
        frontend.resolve_batch(matrices)
    store.gc()  # clear the priming run's search claims


def _run_pool(store_path, matrices, faults=None, max_tier=None):
    kwargs = {} if max_tier is None else {"max_tier": max_tier}
    with ResolverPool(
        GPU,
        store_path,
        workers=WORKERS,
        backend="journal",
        budget=BUDGET,
        deadline_s=DEADLINE_S,
        faults=faults,
    ) as pool:
        start = time.perf_counter()
        responses = pool.resolve_batch(matrices, **kwargs)
        wall = time.perf_counter() - start
        stats = pool.stats()
    return responses, wall, stats


def _scenario_record(name, responses, wall, stats=None):
    answered = sum(1 for r in responses if r is not None)
    record = {
        "requests": len(responses),
        "answered": answered,
        "answered_pct": round(100.0 * answered / len(responses), 1),
        "ok": sum(1 for r in responses if r.ok),
        "wall_s": round(wall, 3),
        "throughput_rps": round(len(responses) / wall, 1),
        "tiers": _latency_summary(responses),
    }
    if stats is not None:
        record["supervision"] = {
            "redispatched": stats.redispatched,
            "restarts": stats.restarts,
            "deadline_kills": stats.deadline_kills,
            "degraded": stats.degraded,
            "parent_fallbacks": stats.parent_fallbacks,
            "claims_lost": stats.claims_lost,
        }
    print(f"{name:>9}: {answered}/{len(responses)} answered in {wall:5.2f}s "
          f"({record['throughput_rps']} req/s)  tiers="
          + ", ".join(f"{t}:{d['requests']}" for t, d in record["tiers"].items()))
    return record


def check() -> int:
    """CI chaos gate: 100% of a small request set answered, usably, at a
    20% worker-kill rate."""
    matrices = _request_set(6, seed=3)
    plan = FaultPlan(seed=17, worker_kill_rate=KILL_RATE)
    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "store")
        _prime_store(store_path, matrices[:3])
        responses, wall, stats = _run_pool(store_path, matrices, faults=plan)
    failures = []
    if len(responses) != len(matrices):
        failures.append(
            f"answered {len(responses)}/{len(matrices)} requests"
        )
    for matrix, response in zip(matrices, responses):
        if not response.ok:
            failures.append(f"{matrix.name}: un-ok answer ({response.source})")
        elif response.source != "degraded" and (
            response.graph is None or response.gflops <= 0
        ):
            failures.append(
                f"{matrix.name}: unusable {response.source} answer"
            )
        elif response.source == "degraded" and not response.note:
            failures.append(f"{matrix.name}: degraded answer without a note")
    print(f"chaos check: {len(responses)}/{len(matrices)} answered under "
          f"{KILL_RATE:.0%} worker-kill in {wall:.2f}s "
          f"(restarts={stats.restarts}, redispatched={stats.redispatched}, "
          f"degraded={stats.degraded})")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="run only the chaos smoke (no JSON output)")
    args = parser.parse_args()
    if args.check:
        return check()

    matrices = _request_set(12, seed=0)
    primed = matrices[:6]  # exact hits; the rest resolve neighbour/search
    scenarios = {}
    workdir = tempfile.mkdtemp(prefix="bench_serve_")
    try:
        base_store = os.path.join(workdir, "primed")
        _prime_store(base_store, primed)

        def fresh_copy(name):
            path = os.path.join(workdir, name)
            shutil.copytree(base_store, path)
            return path

        responses, wall, stats = _run_pool(
            os.path.join(workdir, "cold"), matrices
        )
        scenarios["cold"] = _scenario_record("cold", responses, wall, stats)

        responses, wall, stats = _run_pool(fresh_copy("clean"), matrices)
        scenarios["clean"] = _scenario_record("clean", responses, wall, stats)

        plan = FaultPlan(seed=17, worker_kill_rate=KILL_RATE,
                         slow_store_rate=0.1, slow_store_s=0.02)
        responses, wall, stats = _run_pool(
            fresh_copy("faulted"), matrices, faults=plan
        )
        scenarios["faulted"] = _scenario_record(
            "faulted", responses, wall, stats
        )

        # degraded mode: nothing above the exact tier is allowed, and only
        # half the requests have stored answers — the rest must come back
        # as explicit DEGRADED responses, 100% answered
        responses, wall, stats = _run_pool(
            fresh_copy("degraded"), matrices, max_tier=TIER_EXACT
        )
        scenarios["degraded"] = _scenario_record(
            "degraded", responses, wall, stats
        )

        frontend_store = open_store(fresh_copy("frontend"), backend="journal")
        with Frontend(GPU, frontend_store, budget=BUDGET) as frontend:
            start = time.perf_counter()
            responses = frontend.resolve_batch(matrices)
            wall = time.perf_counter() - start
        scenarios["frontend"] = _scenario_record("frontend", responses, wall)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    incomplete = [
        name for name, record in scenarios.items()
        if record["answered"] != record["requests"]
    ]
    if incomplete:
        print(f"FAIL: scenarios did not answer 100%: {', '.join(incomplete)}")
        return 1

    record = {
        "recorded_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "gpu": GPU.name,
        "workers": WORKERS,
        "deadline_s": DEADLINE_S,
        "budget_evals": BUDGET.max_total_evals,
        "requests": len(matrices),
        "primed": len(primed),
        "kill_rate": KILL_RATE,
        "scenarios": scenarios,
    }
    with open(OUT_PATH, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.normpath(OUT_PATH)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
