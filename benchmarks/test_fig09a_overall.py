"""Fig 9a — overall SpMV performance vs the five SOTA artificial formats.

Paper result (A100): AlphaSparse beats every artificial format on (nearly)
every matrix; average speedups 2.3x / 5.7x / 2.0x / 2.0x / 3.9x over ACSR /
CSR-Adaptive / CSR5 / Merge / HYB; best-per-size GFLOPS form a flat-tail
roofline trend.  The same comparison runs here on both simulated cards.
"""

import numpy as np

from repro.analysis import geomean, render_series, render_table
from repro.baselines import SOTA_FORMATS
from repro.gpu import A100


def _format_table(runs, gpu_name):
    rows = []
    per_format_speedups = {f: [] for f in SOTA_FORMATS}
    wins = 0
    for run in runs:
        by = run.pfs.by_name()
        cells = [run.entry.name, f"{run.alpha.best_gflops:.1f}"]
        best_sota = 0.0
        for fmt in SOTA_FORMATS:
            g = by[fmt].gflops
            cells.append(f"{g:.1f}")
            best_sota = max(best_sota, g)
            if g > 0:
                per_format_speedups[fmt].append(run.alpha.best_gflops / g)
        if run.alpha.best_gflops >= best_sota:
            wins += 1
        rows.append(cells)
    table = render_table(
        f"Fig 9a ({gpu_name}): AlphaSparse vs SOTA artificial formats (GFLOPS)",
        ["matrix", "AlphaSparse"] + SOTA_FORMATS,
        rows,
    )
    return table, per_format_speedups, wins


def test_fig09a_a100(runs_a100, x_of, benchmark):
    table, speedups, wins = _format_table(runs_a100, "A100")
    print()
    print(table)
    summary = [
        [fmt, geomean(sp), max(sp)] for fmt, sp in speedups.items() if sp
    ]
    print(render_table(
        "Fig 9a (A100): AlphaSparse speedup per format "
        "(paper: 2.3x/5.7x/2.0x/2.0x/3.9x avg, 22.2x max)",
        ["format", "geomean speedup", "max speedup"],
        summary,
    ))

    # Paper shape: AlphaSparse outperforms every artificial format in
    # (essentially) all matrices, and by a clear average margin.
    assert wins >= 0.9 * len(runs_a100)
    for fmt, sp in speedups.items():
        assert geomean(sp) >= 1.0, f"AlphaSparse slower than {fmt} on average"

    run = runs_a100[0]
    x = x_of(run.matrix)
    benchmark(lambda: run.alpha.best_program.run(x, A100))


def test_fig09a_rtx2080(runs_2080, x_of, benchmark):
    from repro.gpu import RTX2080

    table, speedups, wins = _format_table(runs_2080, "RTX 2080")
    print()
    print(table)
    assert wins >= 0.9 * len(runs_2080)
    for fmt, sp in speedups.items():
        assert geomean(sp) >= 1.0, f"AlphaSparse slower than {fmt} on average"

    run = runs_2080[0]
    x = x_of(run.matrix)
    benchmark(lambda: run.alpha.best_program.run(x, RTX2080))


def test_fig09a_flat_tail_trend(runs_a100, x_of, benchmark):
    """The red dashed trend: best achieved GFLOPS rises with matrix size,
    then flattens as bandwidth saturates."""
    pts = sorted(
        (run.matrix.nnz, run.alpha.best_gflops) for run in runs_a100
    )
    print()
    print(render_series(
        "Fig 9a trend: best GFLOPS vs matrix size (flat-tail roofline)",
        pts, "nnz", "GFLOPS",
    ))
    third = max(1, len(pts) // 3)
    small = np.mean([g for _, g in pts[:third]])
    large = np.mean([g for _, g in pts[-third:]])
    assert large > small, "GFLOPS should rise with matrix size"

    run = max(runs_a100, key=lambda r: r.matrix.nnz)
    x = x_of(run.matrix)
    benchmark(lambda: run.alpha.best_program.run(x, A100))
