"""Record the per-workload performance trajectory of the search stack.

Runs one standard-budget search per corpus matrix (the canonical
BENCH_search_speed 3-matrix set) for every registered workload and writes
per-workload best GFLOPS, search throughput (searches/min) and validity
accounting to ``BENCH_workloads.json`` at the repo root — so the perf
trajectory covers SpMM and transpose SpMV from the day the workload layer
landed.  The spmv row doubles as a cross-check: its histories must be
byte-identical to a workload-agnostic engine's.

Runnable directly or through pytest (slow-marked)::

    PYTHONPATH=src python benchmarks/bench_workloads.py
    PYTHONPATH=src python -m pytest benchmarks/bench_workloads.py -m slow
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
import time
from datetime import datetime, timezone

import pytest

from repro.gpu import A100
from repro.search import SearchBudget, SearchEngine
from repro.workloads import WORKLOADS, get_workload

from bench_search_speed import MATRICES  # the canonical 3-matrix workload

pytestmark = pytest.mark.slow

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_workloads.json")


def _search_all(workload_name: str):
    engine = SearchEngine(
        A100, budget=SearchBudget(), seed=0, workload=get_workload(workload_name)
    )
    t0 = time.perf_counter()
    with engine:
        results = engine.search_many(MATRICES)
    return time.perf_counter() - t0, results


def run_benchmark() -> dict:
    per_workload = {}
    spmv_results = None
    for name in sorted(WORKLOADS):
        wall, results = _search_all(name)
        if name == "spmv":
            spmv_results = results
        valid = sum(
            sum(1 for r in res.history if r.valid) for res in results
        )
        evals = sum(res.total_evaluations for res in results)
        pruned = sum(res.static_pruned for res in results)
        per_workload[name] = {
            "static_pruned": pruned,
            "best_gflops": {
                res.matrix_name: round(res.best_gflops, 3) for res in results
            },
            "geomean_best_gflops": round(
                math.exp(
                    sum(math.log(res.best_gflops) for res in results)
                    / len(results)
                ),
                3,
            ),
            "searches_per_min": round(len(MATRICES) / wall * 60.0, 1),
            "wall_s": round(wall, 3),
            "valid_eval_fraction": round(valid / max(1, evals), 3),
            "total_evaluations": evals,
        }
        print(
            f"{name:>8}: {per_workload[name]['searches_per_min']:7.1f} "
            f"searches/min, geomean best "
            f"{per_workload[name]['geomean_best_gflops']:8.1f} GFLOPS, "
            f"{valid}/{evals} valid evals, {pruned} statically pruned"
        )

    # Cross-check: the explicit spmv workload reproduces the
    # workload-agnostic engine bit for bit.
    engine = SearchEngine(A100, budget=SearchBudget(), seed=0)
    with engine:
        plain = engine.search_many(MATRICES)
    for got, want in zip(spmv_results, plain):
        assert [r.identity() for r in got.history] == [
            r.identity() for r in want.history
        ], f"spmv workload diverged on {want.matrix_name}"

    return {
        "recorded_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "budget": "SearchBudget() defaults",
        "matrices": [m.name for m in MATRICES],
        "workloads": per_workload,
    }


def test_workload_benchmark():
    record = run_benchmark()
    for name, row in record["workloads"].items():
        assert row["total_evaluations"] > 0, name
        assert all(g > 0 for g in row["best_gflops"].values()), name


def main() -> int:
    record = run_benchmark()
    with open(OUT_PATH, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"workload baseline written to {os.path.abspath(OUT_PATH)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
