"""Ablation — archetype seeding of the level-1 search.

A design choice of this reproduction (DESIGN.md): level 1 visits the
source-format archetypes before random structures, making the claim
"AlphaSparse's space covers every Table II format" operational and
guaranteeing the search never loses to an expressible artificial format.
This bench quantifies what the seeds buy under a tight budget.
"""


from repro.analysis import geomean, render_table
from repro.gpu import A100
from repro.search import AnnealingSchedule, SearchBudget, SearchEngine
from repro.sparse import named_matrix

_BUDGET = SearchBudget(max_structures=10, coarse_evals_per_structure=6,
                       max_total_evals=60, ml_top_k=3)


def _engine(seeding: bool, seed: int) -> SearchEngine:
    return SearchEngine(
        A100, budget=_BUDGET, seed=seed, enable_seeding=seeding,
        annealing=AnnealingSchedule(initial_temperature=0.25, cooling=0.82,
                                    patience=5),
    )


def test_abl_archetype_seeding(x_of, benchmark):
    rows = []
    ratios = []
    for name in ("scfxm1-2r", "consph", "Ga41As41H72", "GL7d19"):
        m = named_matrix(name)
        seeded = _engine(True, seed=31).search(m)
        unseeded = _engine(False, seed=31).search(m)
        rows.append([name, unseeded.best_gflops, seeded.best_gflops])
        ratios.append(seeded.best_gflops / max(unseeded.best_gflops, 1e-9))

    print()
    print(render_table(
        "Ablation: archetype seeding of level-1 search (60-eval budget)",
        ["matrix", "GFLOPS random-only", "GFLOPS seeded"],
        rows,
    ))
    print(f"geomean seeded/unseeded: {geomean(ratios):.2f}x")

    # Seeds must never hurt; under tight budgets they usually help.
    assert geomean(ratios) >= 0.98

    m = named_matrix("scfxm1-2r")
    result = _engine(True, seed=31).search(m)
    x = x_of(m)
    benchmark(lambda: result.best_program.run(x, A100))
