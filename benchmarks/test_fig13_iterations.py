"""Fig 13 — search iterations vs matrix irregularity (A100).

Paper: the number of level-1/2 iterations correlates positively with
row-length variance; regular matrices need ~3.5x fewer iterations because
pruning bans the irregularity machinery and annealing terminates the search
once the archetype seeds stop being improved on.
"""

import numpy as np

from repro.analysis import render_series
from repro.gpu import A100


def test_fig13_iterations_vs_variance(runs_a100, x_of, benchmark):
    pts = sorted(
        (max(r.matrix.stats.row_variance, 0.1), float(r.alpha.coarse_iterations))
        for r in runs_a100
    )
    print()
    print(render_series(
        "Fig 13 (A100): search iterations vs row variance\n"
        "(paper: positive correlation; regular matrices ~3.5x fewer iterations)",
        pts, "row variance", "iterations",
    ))

    regular = [it for var, it in pts if var <= 100]
    irregular = [it for var, it in pts if var > 100]
    assert regular and irregular
    mean_reg, mean_irr = np.mean(regular), np.mean(irregular)
    print(f"mean iterations: regular {mean_reg:.0f}, irregular {mean_irr:.0f} "
          f"(ratio {mean_irr / mean_reg:.2f}x; paper: 3.5x)")

    # Shape: irregular matrices take more search iterations.
    assert mean_irr > mean_reg

    # Regression slope on log-variance must be positive.
    log_var = np.log10([v for v, _ in pts])
    its = np.array([i for _, i in pts])
    slope = np.polyfit(log_var, its, 1)[0]
    print(f"regression slope (iterations per decade of variance): {slope:.1f}")
    assert slope > 0

    run = runs_a100[0]
    x = x_of(run.matrix)
    benchmark(lambda: run.alpha.best_program.run(x, A100))
