"""Fig 10 — frequency distribution of AlphaSparse's speedup over PFS (A100).

Paper: 99.3 % of matrices at or above 1x (the remaining 0.7 % lose to
HYB-style decomposition AlphaSparse lacks, §VII-H); the mode lands in the
1.2-1.4x bucket; average 1.5x.
"""

from repro.analysis import geomean, render_table, speedup_histogram
from repro.gpu import A100


def test_fig10_histogram(runs_a100, x_of, benchmark):
    speedups = [run.speedup_vs_pfs for run in runs_a100]
    hist = speedup_histogram(speedups)
    print()
    print(render_table(
        "Fig 10 (A100): AlphaSparse speedup over PFS — frequency distribution\n"
        "(paper: 0.7% <1.0x, mode at 1.2-1.4x, mean 1.5x)",
        ["speedup bin", "% of matrices"],
        hist,
    ))
    print(f"geomean speedup over PFS: {geomean(speedups):.3f}x "
          f"(paper mean: 1.5x)")
    print(f"fraction >= 1.0x: {sum(s >= 0.999 for s in speedups) / len(speedups):.1%} "
          f"(paper: 99.3%)")

    # Shape: AlphaSparse matches or beats the 10-format oracle almost always.
    at_least_parity = sum(s >= 0.999 for s in speedups) / len(speedups)
    assert at_least_parity >= 0.75
    assert geomean(speedups) >= 1.0

    run = runs_a100[0]
    x = x_of(run.matrix)
    benchmark(lambda: run.alpha.best_program.run(x, A100))
