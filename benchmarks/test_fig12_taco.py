"""Fig 12 — AlphaSparse vs the TACO tensor-algebra compiler (A100).

Paper: 18.1x average speedup (up to 950x); speedups are insensitive to
matrix size but peak for highly irregular matrices — TACO's generated CSR
kernel has no load balancing or GPU-feature utilisation.
"""


from repro.analysis import geomean, render_table
from repro.baselines import get_baseline
from repro.gpu import A100


def test_fig12_taco_speedups(runs_a100, x_of, benchmark):
    taco = get_baseline("TACO")
    rows = []
    reg_sp, irr_sp = [], []
    for run in runs_a100:
        meas = taco.measure(run.matrix, A100, x_of(run.matrix))
        sp = run.alpha.best_gflops / meas.gflops
        rows.append([
            run.entry.name,
            run.matrix.nnz,
            run.matrix.stats.row_variance,
            meas.gflops,
            run.alpha.best_gflops,
            sp,
        ])
        (irr_sp if run.matrix.is_irregular else reg_sp).append(sp)

    print()
    print(render_table(
        "Fig 12 (A100): AlphaSparse speedup over TACO\n"
        "(paper: mean 18.1x, max 950.8x, peak at high irregularity)",
        ["matrix", "nnz", "row var", "TACO GFLOPS", "Alpha GFLOPS", "speedup"],
        rows,
    ))
    all_sp = reg_sp + irr_sp
    print(f"geomean speedup: {geomean(all_sp):.1f}x  "
          f"regular: {geomean(reg_sp):.1f}x  irregular: {geomean(irr_sp):.1f}x")

    # Shape: large margins everywhere; biggest on irregular matrices.
    assert min(all_sp) > 1.0
    assert geomean(all_sp) > 3.0
    if reg_sp and irr_sp:
        assert geomean(irr_sp) > geomean(reg_sp)

    run = runs_a100[0]
    prog = taco.program(run.matrix)
    x = x_of(run.matrix)
    benchmark(lambda: prog.run(x, A100))
