"""Record the leaf-analysis-cache speedup over the staged-runtime baseline.

Runs the standard-budget corpus searches (the BENCH_search_speed workload)
with the plan-analysis subsystem on and off, asserts the histories are
byte-identical in every configuration, and writes the wall clock, the
speedup against PR 1/2's *recorded* ``serial_cached`` baseline
(``wall_s = 0.584`` in BENCH_search_speed.json before this subsystem
landed — the acceptance reference) and the cache/stage accounting to
``BENCH_plan_analysis.json`` at the repo root.

Runnable directly or through pytest (slow-marked)::

    PYTHONPATH=src python benchmarks/bench_plan_analysis.py
    PYTHONPATH=src python -m pytest benchmarks/bench_plan_analysis.py -m slow
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from datetime import datetime, timezone

import pytest

from repro.gpu import A100
from repro.search import SearchBudget, SearchEngine

from bench_search_speed import MATRICES  # the canonical 3-matrix workload

pytestmark = pytest.mark.slow

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_plan_analysis.json")

#: serial_cached wall recorded in BENCH_search_speed.json before the
#: plan-analysis subsystem existed — the ISSUE 3 acceptance reference.
RECORDED_BASELINE_S = 0.584

def _calibration_wall(repeats: int = 3) -> float:
    """Best-of wall for a fixed interpreter-bound loop.

    The search workload is Python-call-heavy, so this probe tracks the
    machine conditions that matter for it (shared-vCPU contention shows up
    here long before it shows up in large vectorised kernels).  Recorded
    alongside the walls so cross-run comparisons on shared boxes can be
    judged against the conditions of each recording.
    """
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        acc = 0
        for i in range(1_000_000):
            acc += i
        best = min(best, time.perf_counter() - t0)
    return best

#: best-of count — high enough to ride out co-scheduled load spikes on
#: small machines (the workload itself is ~0.2 s per repeat).
REPEATS = 5


def _history_tuple(result):
    return [r.identity() for r in result.history]


def _run(jobs: int, analysis: bool):
    """Best-of-REPEATS wall clock for one configuration (fresh engine per
    repeat so every repeat pays the full cache build).  Matrices are built
    outside the timed window, matching the bench_search_speed protocol the
    recorded baseline was measured with."""
    best_wall = float("inf")
    results = None
    for _ in range(REPEATS):
        engine = SearchEngine(
            A100,
            budget=SearchBudget(jobs=jobs),
            seed=0,
            enable_analysis_cache=analysis,
        )
        t0 = time.perf_counter()
        with engine:
            out = engine.search_many(MATRICES)
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall, results = wall, out
    return best_wall, results


def run_benchmark() -> dict:
    configs = {
        "serial_analysis": dict(jobs=1, analysis=True),
        "serial_no_analysis": dict(jobs=1, analysis=False),
        "jobs4_analysis": dict(jobs=4, analysis=True),
    }
    walls = {}
    outcomes = {}
    for name, cfg in configs.items():
        walls[name], outcomes[name] = _run(**cfg)
        print(f"{name:>20}: {walls[name]:6.3f}s")

    reference = outcomes["serial_no_analysis"]
    for name, results in outcomes.items():
        for got, want in zip(results, reference):
            assert got.best_gflops == want.best_gflops, (
                f"{name} diverged on {want.matrix_name}"
            )
            assert _history_tuple(got) == _history_tuple(want), (
                f"{name} history diverged on {want.matrix_name}"
            )

    analysed = outcomes["serial_analysis"]
    stage_totals: dict = {}
    for result in analysed:
        for stage, seconds in result.stage_times.items():
            stage_totals[stage] = stage_totals.get(stage, 0.0) + seconds
    record = {
        "recorded_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "budget": "SearchBudget() defaults",
        "matrices": [m.name for m in MATRICES],
        "repeats_best_of": REPEATS,
        "calibration_wall_s": round(_calibration_wall(), 4),
        "baseline_serial_cached_wall_s": RECORDED_BASELINE_S,
        "wall_s": {k: round(v, 3) for k, v in walls.items()},
        "speedup_vs_recorded_baseline": {
            k: round(RECORDED_BASELINE_S / v, 2) for k, v in walls.items()
        },
        "serial_speedup_vs_recorded_baseline": round(
            RECORDED_BASELINE_S / walls["serial_analysis"], 2
        ),
        "histories_byte_identical": True,
        "analysis_cache": {
            "hits": sum(r.analysis_cache_hits for r in analysed),
            "misses": sum(r.analysis_cache_misses for r in analysed),
        },
        "total_evaluations": sum(r.total_evaluations for r in analysed),
        "verifications_run": "once per design (see analysis_cache.misses)",
        "stage_seconds_serial": {k: round(v, 4) for k, v in sorted(stage_totals.items())},
    }
    return record


def test_plan_analysis_speedup():
    """Slow-marked check: the analysis cache speeds up the serial search
    against its own same-machine ablation, with byte-identical histories.

    The >=3x acceptance figure against the recorded 0.584 s baseline is
    machine-dependent, so it is recorded in BENCH_plan_analysis.json
    rather than asserted; here we assert the in-process relative ratio,
    which compares two runs under identical load.
    """
    record = run_benchmark()
    wall = record["wall_s"]
    assert wall["serial_no_analysis"] / wall["serial_analysis"] >= 1.25
    assert record["histories_byte_identical"]


def main() -> int:
    record = run_benchmark()
    with open(OUT_PATH, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"plan-analysis baseline written to {os.path.abspath(OUT_PATH)}")
    print(f"serial speedup vs recorded 0.584s baseline: "
          f"{record['serial_speedup_vs_recorded_baseline']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
