"""Fig 14 — the scfxm1-2r case study.

(a) the winning Operator Graph mixes strategies across source formats,
(b) it beats every artificial format and PFS (paper: 2.7x over PFS),
(c) ablations: Model-Driven Format Compression contributes +32 % and
    pruning a further +78 % in the paper's measurement.
"""


from repro.analysis import classify_creativity, render_table
from repro.baselines import PerfectFormatSelector, SOTA_FORMATS
from repro.core.kernel.builder import KernelBuilder
from repro.gpu import A100
from repro.sparse import named_matrix

from conftest import bench_engine


def test_fig14_case_study(x_of, benchmark):
    m = named_matrix("scfxm1-2r")
    x = x_of(m)
    pfs = PerfectFormatSelector().select(m, A100, x)
    result = bench_engine(A100, seed=41).search(m)

    # ---- (a) the winning graph --------------------------------------
    print()
    print("Fig 14a: winning Operator Graph for scfxm1-2r")
    print(result.best_graph.describe())
    creativity = classify_creativity(result.best_graph)
    print(f"machine-designed: {creativity['machine_designed']} "
          f"(matches: {creativity['matches']})")

    # ---- (b) comparison ----------------------------------------------
    by = pfs.by_name()
    rows = [[fmt, by[fmt].gflops] for fmt in SOTA_FORMATS]
    rows.append(["PFS (best of 10)", pfs.gflops])
    rows.append(["AlphaSparse", result.best_gflops])
    print(render_table(
        "Fig 14b: scfxm1-2r performance (paper: AlphaSparse 2.7x over PFS)",
        ["system", "GFLOPS"],
        rows,
    ))
    assert result.best_gflops >= 0.98 * pfs.gflops
    for fmt in SOTA_FORMATS:
        if by[fmt].gflops > 0:
            assert result.best_gflops >= by[fmt].gflops

    # ---- (c) optimization ablations ----------------------------------
    # Rebuild the winning design without Model-Driven Format Compression.
    plain_builder = KernelBuilder(compressor=None)
    plain = plain_builder.build(m, result.best_graph).run(x, A100)
    compression_gain = result.best_gflops / plain.gflops - 1.0

    # Re-search without pruning under the same budget.
    unpruned = bench_engine(A100, seed=41, enable_pruning=False).search(m)
    pruning_gain = result.best_gflops / max(unpruned.best_gflops, 1e-9) - 1.0

    print(render_table(
        "Fig 14c: optimization ablation on scfxm1-2r\n"
        "(paper: +32% from format compression, +78% more from pruning)",
        ["configuration", "GFLOPS", "gain vs ablated"],
        [
            ["no format compression", plain.gflops, "-"],
            ["with compression", result.best_gflops,
             f"+{100 * compression_gain:.0f}%"],
            ["search without pruning", unpruned.best_gflops, "-"],
            ["search with pruning", result.best_gflops,
             f"+{100 * pruning_gain:.0f}%"],
        ],
    ))
    assert compression_gain >= 0.0
    assert result.best_gflops >= 0.97 * unpruned.best_gflops

    benchmark(lambda: result.best_program.run(x, A100))
