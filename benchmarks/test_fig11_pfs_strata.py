"""Fig 11 — speedup over PFS stratified by (a) matrix size, (b) row variance.

Paper (A100): speedups peak for matrices fitting the 40 MB L2 and for
*moderate* irregularity (2.7x max); irregular matrices average 1.6x vs 1.4x
for regular ones.

Note: the reproduction corpus is ~100x smaller than the paper's test set, so
every matrix fits L2 and the size axis (a) is compressed — reported but not
asserted (see EXPERIMENTS.md).  The irregularity stratification (b) carries
over directly.
"""

import numpy as np

from repro.analysis import geomean, render_table
from repro.gpu import A100
from repro.sparse.matrix import IRREGULARITY_THRESHOLD


def test_fig11a_by_size(runs_a100, x_of, benchmark):
    runs = sorted(runs_a100, key=lambda r: r.matrix.nnz)
    third = max(1, len(runs) // 3)
    rows = []
    for label, group in [
        ("small", runs[:third]),
        ("medium", runs[third:-third] or runs[third : third + 1]),
        ("large", runs[-third:]),
    ]:
        rows.append([
            label,
            np.mean([r.matrix.nnz for r in group]),
            geomean([r.speedup_vs_pfs for r in group]),
        ])
    print()
    print(render_table(
        "Fig 11a (A100): speedup over PFS by matrix size\n"
        "(paper: peak inside L2, lower for >=1e7 nnz; all bench matrices fit L2)",
        ["size band", "mean nnz", "geomean speedup"],
        rows,
    ))
    assert all(r[2] > 0 for r in rows)

    run = runs[-1]
    x = x_of(run.matrix)
    benchmark(lambda: run.alpha.best_program.run(x, A100))


def test_fig11b_by_irregularity(runs_a100, x_of, benchmark):
    regular = [r for r in runs_a100 if not r.matrix.is_irregular]
    irregular = [r for r in runs_a100 if r.matrix.is_irregular]
    assert regular and irregular, "corpus must mix regular and irregular"

    reg_sp = geomean([r.speedup_vs_pfs for r in regular])
    irr_sp = geomean([r.speedup_vs_pfs for r in irregular])
    peak = max(r.speedup_vs_pfs for r in runs_a100)
    peak_var = max(
        runs_a100, key=lambda r: r.speedup_vs_pfs
    ).matrix.stats.row_variance

    print()
    print(render_table(
        "Fig 11b (A100): speedup over PFS by row-length variance\n"
        "(paper: regular avg 1.4x, irregular avg 1.6x, peak 2.7x at moderate variance)",
        ["stratum", "matrices", "geomean speedup"],
        [
            [f"regular (var<= {IRREGULARITY_THRESHOLD:.0f})", len(regular), reg_sp],
            ["irregular", len(irregular), irr_sp],
        ],
    ))
    print(f"peak speedup {peak:.2f}x at row variance {peak_var:.0f}")

    # Shape: irregular matrices benefit at least as much as regular ones.
    assert irr_sp >= 0.95 * reg_sp

    run = irregular[0]
    x = x_of(run.matrix)
    benchmark(lambda: run.alpha.best_program.run(x, A100))
