"""Corpus pipeline throughput — records `BENCH_corpus.json`.

Runs the full §VII pipeline (every baseline + design search per matrix)
over the bench corpus through the resumable :class:`CorpusRunner`,
asserts the resume and determinism contracts at corpus scale, and writes
the throughput record to ``BENCH_corpus.json`` at the repo root so later
PRs can compare corpus-level speed.

Slow-marked like every module in this directory; run with
``pytest benchmarks -m slow``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from datetime import datetime, timezone

from conftest import BENCH_BUDGET, CORPUS_SIZE, bench_engine
from repro.bench import CorpusRunner, ResultStore, render_corpus_report
from repro.gpu import A100

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_corpus.json")


def _runner(store, engine):
    return CorpusRunner(A100, seed=11, store=store, engine=engine)


def test_corpus_pipeline_throughput(bench_corpus, tmp_path):
    entries = bench_corpus[: max(4, CORPUS_SIZE // 2)]
    store_path = tmp_path / "corpus_store.json"

    with bench_engine(A100) as engine:
        t0 = time.perf_counter()
        cold = _runner(ResultStore(store_path), engine).run(entries)
        cold_wall = time.perf_counter() - t0

        # Resume from the persisted store: nothing re-measured, same table.
        t0 = time.perf_counter()
        warm = _runner(ResultStore(store_path), engine).run(entries)
        warm_wall = time.perf_counter() - t0

    assert cold.stats.measured == len(entries)
    assert warm.stats.measured == 0
    assert warm.stats.resumed == len(entries)
    report = render_corpus_report(cold.records, title="Bench corpus")
    assert report == render_corpus_report(warm.records, title="Bench corpus")
    assert "inf" not in report and "nan" not in report
    print()
    print(report)

    total_evals = sum(r["search"]["total_evaluations"] for r in cold.records)
    record = {
        "recorded_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "gpu": "A100",
        "matrices": len(entries),
        "budget_evals_per_matrix": BENCH_BUDGET.max_total_evals,
        "jobs": BENCH_BUDGET.jobs,
        "cold_wall_s": round(cold_wall, 3),
        "resume_wall_s": round(warm_wall, 3),
        "matrices_per_minute": round(60.0 * len(entries) / cold_wall, 2),
        "total_search_evaluations": total_evals,
        "store_bytes": store_path.stat().st_size,
    }
    with open(OUT_PATH, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"corpus throughput baseline written to {os.path.abspath(OUT_PATH)}")

    # Resume must be orders of magnitude cheaper than measuring.
    assert warm_wall < cold_wall
