"""Table III — search cost and result quality with and without pruning.

Paper (A100, 13 popular matrices): pruning cuts search time 2.5x on average
(8.0h cap -> 0.9-5.1h) *and* improves the found performance 1.2x, because
the pruned search spends its budget in regions likely to contain winners.

Here both searches get the same evaluation cap; "search cost" is reported
as wall time and as evaluations-until-best (the iteration count that
matters under a budget).
"""

import os


from repro.analysis import geomean, render_table
from repro.gpu import A100
from repro.search import AnnealingSchedule, SearchBudget, SearchEngine
from repro.sparse.collection import TABLE3_MATRICES, named_matrix

#: Keep Table III affordable by default; REPRO_BENCH_TAB3=13 for the full set.
N_MATRICES = int(os.environ.get("REPRO_BENCH_TAB3", "6"))

#: The paper caps searches by wall clock (8 hours); Table III's comparison
#: only makes sense under a *time* budget — pruning buys quality-per-second,
#: not quality-per-evaluation.  Scaled-down equivalent:
TIME_LIMIT_S = float(os.environ.get("REPRO_BENCH_TAB3_TIME", "2.0"))

_TAB3_BUDGET = SearchBudget(
    max_structures=200,
    coarse_evals_per_structure=8,
    max_total_evals=100_000,
    ml_top_k=4,
    time_limit_s=TIME_LIMIT_S,
)


def tab3_engine(enable_pruning: bool) -> SearchEngine:
    return SearchEngine(
        A100,
        budget=_TAB3_BUDGET,
        seed=23,
        enable_pruning=enable_pruning,
        annealing=AnnealingSchedule(
            initial_temperature=0.25, cooling=0.82, patience=6
        ),
    )


def _evals_to_best(result):
    best, at = 0.0, 0
    for i, rec in enumerate(result.history, start=1):
        if rec.gflops > best:
            best, at = rec.gflops, i
    return at


def test_tab3_pruning_effect(x_of, benchmark):
    rows = []
    perf_ratio, time_ratio = [], []
    for name in TABLE3_MATRICES[:N_MATRICES]:
        m = named_matrix(name)
        pruned = tab3_engine(enable_pruning=True).search(m)
        unpruned = tab3_engine(enable_pruning=False).search(m)
        # "Search time": the pruned search may stop early (annealing), the
        # unpruned one always burns the full time budget (paper footnote 10).
        rows.append([
            name,
            unpruned.wall_time_s,
            pruned.wall_time_s,
            _evals_to_best(unpruned),
            _evals_to_best(pruned),
            unpruned.best_gflops,
            pruned.best_gflops,
        ])
        perf_ratio.append(pruned.best_gflops / max(unpruned.best_gflops, 1e-9))
        time_ratio.append(unpruned.wall_time_s / max(pruned.wall_time_s, 1e-9))

    print()
    print(render_table(
        "Table III (A100): time-capped search with and without pruning\n"
        "(paper: pruning 2.5x faster search, 1.2x better performance)",
        ["matrix", "time no-prune (s)", "time prune (s)",
         "evals-to-best no-prune", "evals-to-best prune",
         "GFLOPS no-prune", "GFLOPS prune"],
        rows,
    ))
    print(f"performance ratio pruned/unpruned: {geomean(perf_ratio):.3f}x "
          f"(paper: 1.2x)")
    print(f"search-time ratio unpruned/pruned: {geomean(time_ratio):.2f}x "
          f"(paper: 2.5x)")

    # Shape: under the same time cap, pruning never hurts the result and
    # never takes longer.
    assert geomean(perf_ratio) >= 0.97
    assert geomean(time_ratio) >= 0.95

    m = named_matrix(TABLE3_MATRICES[0])
    result = tab3_engine(enable_pruning=True).search(m)
    x = x_of(m)
    benchmark(lambda: result.best_program.run(x, A100))
