"""Fig 9b — what separates fast matrices from slow ones at equal size.

Paper (RTX 2080, mid-size slice): the upper-performance half has ~1.9x
higher average row length and ~20x lower row-length variance than the
lower half.
"""

import numpy as np

from repro.analysis import render_table
from repro.gpu import RTX2080


def test_fig09b_upper_lower_split(runs_2080, x_of, benchmark):
    runs = sorted(runs_2080, key=lambda r: r.alpha.best_gflops)
    half = len(runs) // 2
    lower, upper = runs[:half], runs[-half:]

    def feature_means(group):
        avg_len = np.mean([r.matrix.stats.avg_row_length for r in group])
        variance = np.mean([max(r.matrix.stats.row_variance, 1e-3) for r in group])
        gflops = np.mean([r.alpha.best_gflops for r in group])
        return avg_len, variance, gflops

    lo_len, lo_var, lo_g = feature_means(lower)
    hi_len, hi_var, hi_g = feature_means(upper)
    print()
    print(render_table(
        "Fig 9b (RTX 2080): feature contrast of upper vs lower performance half\n"
        "(paper: upper half has 1.9x the avg row length, 1/20 the row variance)",
        ["half", "mean GFLOPS", "avg row length", "row variance"],
        [
            ["upper", hi_g, hi_len, hi_var],
            ["lower", lo_g, lo_len, lo_var],
            ["ratio (upper/lower)", hi_g / lo_g, hi_len / lo_len, hi_var / lo_var],
        ],
    ))

    # Shape: faster matrices have longer rows (more compute per byte).
    # Variance direction matches the paper when sizes are comparable but can
    # be noisy at bench scale — assert the dominant effect only.
    assert hi_len > lo_len, "upper half should have higher average row length"
    assert hi_g > lo_g

    run = upper[-1]
    x = x_of(run.matrix)
    benchmark(lambda: run.alpha.best_program.run(x, RTX2080))
