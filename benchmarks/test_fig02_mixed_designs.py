"""Fig 2 (motivation) — mixed designs beat their source formats.

Paper, matrix 2D_27628_bjtcai: CSR-Adaptive 39, row-grouped CSR 58, SELL 61
GFLOPS; mixing row-grouped blocking with CSR-Adaptive reduction reaches 75;
mixing all three reaches 95 GFLOPS.  Here the two hand-written mixes from
the figure are built through the Operator Graph machinery and compared with
their source formats on the stand-in matrix.
"""

import numpy as np

from repro.analysis import render_table
from repro.baselines import get_baseline
from repro.core import OperatorGraph, build_program
from repro.gpu import A100
from repro.sparse import named_matrix

SOURCES = ["CSR-Adaptive", "row-grouped CSR", "SELL"]

#: Mix 1: row-grouped CSR's thread-block blocking + CSR-Adaptive's
#: shared-memory reduction (replacing the global-memory atomics).
MIX_RG_ADAPTIVE = [
    "COMPRESS",
    ("BMTB_ROW_BLOCK", {"rows_per_block": 64}),
    ("SET_RESOURCES", {"threads_per_block": 128}),
    "SHMEM_OFFSET_RED",
    "GMEM_DIRECT_STORE",
]

#: Mix 2: SELL's sorted/interleaved blocking + row-grouped thread blocks +
#: CSR-Adaptive reduction — the full three-way mix of the figure.
MIX_THREE_WAY = [
    "SORT",
    "COMPRESS",
    ("BMTB_ROW_BLOCK", {"rows_per_block": 64}),
    ("BMT_ROW_BLOCK", {"rows_per_block": 1}),
    ("BMT_PAD", {"mode": "max"}),
    "INTERLEAVED_STORAGE",
    ("SET_RESOURCES", {"threads_per_block": 128}),
    "THREAD_TOTAL_RED",
    "SHMEM_OFFSET_RED",
    "GMEM_DIRECT_STORE",
]


def test_fig02_mixed_designs(x_of, benchmark):
    m = named_matrix("2D_27628_bjtcai")
    x = x_of(m)
    reference = m.spmv_reference(x)

    rows = []
    source_gflops = {}
    for name in SOURCES:
        meas = get_baseline(name).measure(m, A100, x)
        source_gflops[name] = meas.gflops
        rows.append([name + " (source)", meas.gflops])

    mixes = {}
    for label, ops in [
        ("mix: rg-CSR blocking + Adaptive reduction", MIX_RG_ADAPTIVE),
        ("mix: SELL + rg-CSR + Adaptive (three-way)", MIX_THREE_WAY),
    ]:
        prog = build_program(m, OperatorGraph.from_names(ops))
        res = prog.run(x, A100)
        np.testing.assert_allclose(res.y, reference, rtol=1e-9, atol=1e-9)
        mixes[label] = res.gflops
        rows.append([label, res.gflops])

    print()
    print(render_table(
        "Fig 2: mixed designs on 2D_27628_bjtcai\n"
        "(paper: sources 39/58/61 GFLOPS, two-way mix 75, three-way mix 95)",
        ["design", "GFLOPS"],
        rows,
    ))

    # Shape: at least one mixed design beats every source format.
    best_source = max(source_gflops.values())
    best_mix = max(mixes.values())
    assert best_mix > best_source, (
        f"mixes {mixes} should beat sources {source_gflops}"
    )

    prog = build_program(m, OperatorGraph.from_names(MIX_THREE_WAY))
    benchmark(lambda: prog.run(x, A100))
