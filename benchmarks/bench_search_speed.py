"""Record (or regression-check) the staged-runtime search-speed baseline.

Runs one standard-budget search per corpus matrix in five configurations —
serial/uncached (the pre-refactor behaviour), serial/cached with the
batched group evaluator ablated, serial/cached, and cached with 2 and 4
workers — asserts their search histories agree bit-for-bit, and writes
best-of-N wall-clock numbers plus cache counters to
``BENCH_search_speed.json`` at the repo root.  Not a pytest module: run
it directly.

    PYTHONPATH=src python benchmarks/bench_search_speed.py

``--check`` mode (the CI perf gate) re-measures only the serial
configurations, best-of-N, and fails — without touching the committed
JSON — when serial search runs slower than ``--max-regression`` times the
recorded baseline:

    PYTHONPATH=src python benchmarks/bench_search_speed.py --check
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone

from repro.gpu import A100
from repro.search import SearchBudget, SearchEngine
from repro.sparse import banded_matrix, lp_like_matrix, power_law_matrix

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_search_speed.json")

MATRICES = [
    banded_matrix(768, bandwidth=4, seed=0, name="banded-768"),
    power_law_matrix(1024, avg_degree=10, seed=4, name="powerlaw-1024"),
    lp_like_matrix(400, seed=3, name="lp-400"),
]


def _run(jobs: int, cache: bool, seed: int = 0, batch: bool = True):
    engine = SearchEngine(
        A100,
        budget=SearchBudget(jobs=jobs),
        seed=seed,
        enable_design_cache=cache,
        enable_batch_eval=batch,
    )
    t0 = time.perf_counter()
    with engine:
        results = engine.search_many(MATRICES)
    wall = time.perf_counter() - t0
    return wall, results


def _identities(results):
    return [[r.identity() for r in result.history] for result in results]


def check(max_regression: float, repeats: int) -> int:
    """CI perf gate: fail when serial search regresses vs the committed
    baseline.  Best-of-``repeats`` damps scheduler noise; the factor
    absorbs machine-to-machine variance (the gate catches algorithmic
    regressions, not hardware differences)."""
    try:
        with open(OUT_PATH) as fh:
            recorded = json.load(fh)["wall_s"]
    except (OSError, KeyError, json.JSONDecodeError) as exc:
        print(f"cannot load committed baseline {OUT_PATH}: {exc}")
        return 2
    failures = []
    for name, cfg in (
        ("serial_cached", dict(jobs=1, cache=True)),
        ("serial_uncached", dict(jobs=1, cache=False)),
    ):
        baseline = recorded.get(name)
        if baseline is None:
            print(f"baseline has no {name!r} entry; re-record it")
            return 2
        wall = min(_run(**cfg)[0] for _ in range(repeats))
        ratio = wall / baseline
        verdict = "ok" if ratio <= max_regression else "REGRESSION"
        print(f"{name:>16}: {wall:6.3f}s vs recorded {baseline:6.3f}s "
              f"({ratio:4.2f}x, limit {max_regression:.1f}x) {verdict}")
        if ratio > max_regression:
            failures.append(name)
    if failures:
        print(f"serial search regressed >{max_regression:.1f}x on: "
              f"{', '.join(failures)}")
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline "
                             "instead of re-recording it")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail --check when serial wall clock exceeds "
                             "this multiple of the recorded number")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N runs per configuration in --check")
    parser.add_argument("--record-repeats", type=int, default=5,
                        help="best-of-N runs per configuration when "
                             "recording the baseline")
    args = parser.parse_args()
    if args.check:
        return check(args.max_regression, args.repeats)
    configs = {
        "serial_uncached": dict(jobs=1, cache=False),
        "serial_nobatch": dict(jobs=1, cache=True, batch=False),
        "serial_cached": dict(jobs=1, cache=True),
        "jobs2_cached": dict(jobs=2, cache=True),
        "jobs4_cached": dict(jobs=4, cache=True),
    }
    walls = {}
    outcomes = {}
    for name, cfg in configs.items():
        wall = float("inf")
        for _ in range(max(1, args.record_repeats)):
            one_wall, results = _run(**cfg)
            wall = min(wall, one_wall)
        walls[name] = wall
        outcomes[name] = results
        print(f"{name:>16}: {wall:6.2f}s  "
              f"designs={sum(r.designer_runs for r in results)}  "
              f"evals={sum(r.total_evaluations for r in results)}")

    # Bit-for-bit agreement: every configuration must reproduce the exact
    # candidate-by-candidate search history of the uncached serial loop
    # (batched vs per-candidate, cached vs not, any worker count).
    reference = outcomes["serial_uncached"]
    reference_ids = _identities(reference)
    for name, results in outcomes.items():
        assert _identities(results) == reference_ids, (
            f"{name} search history diverged from serial_uncached"
        )
        for got, want in zip(results, reference):
            assert got.best_gflops == want.best_gflops, (
                f"{name} diverged on {want.matrix_name}"
            )

    cached = outcomes["serial_cached"]
    record = {
        "recorded_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "budget": "SearchBudget() defaults",
        "matrices": [m.name for m in MATRICES],
        "wall_s": {k: round(v, 3) for k, v in walls.items()},
        "speedup_vs_uncached": {
            k: round(walls["serial_uncached"] / v, 2)
            for k, v in walls.items()
        },
        "batch_eval_speedup": round(
            walls["serial_nobatch"] / walls["serial_cached"], 2
        ),
        "searches_per_min": {
            k: round(len(MATRICES) * 60.0 / v, 1) for k, v in walls.items()
        },
        "total_evaluations": sum(r.total_evaluations for r in cached),
        "designer_runs": {
            "uncached": sum(r.designer_runs for r in reference),
            "cached": sum(r.designer_runs for r in cached),
        },
        "designer_run_reduction": round(
            sum(r.designer_runs for r in reference)
            / max(1, sum(r.designer_runs for r in cached)),
            2,
        ),
        "design_cache": {
            "hits": sum(r.design_cache_hits for r in cached),
            "misses": sum(r.design_cache_misses for r in cached),
        },
    }
    with open(OUT_PATH, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"baseline written to {os.path.abspath(OUT_PATH)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
