"""Shared state for the benchmark harness.

Every paper figure/table has a `test_*` module here; expensive artefacts
(searches, PFS sweeps) are computed once per session and shared.  Scale is
controlled by ``REPRO_BENCH_CORPUS`` (number of corpus matrices, default 12)
and ``REPRO_BENCH_EVALS`` (per-matrix search evaluations, default 110), so a
thorough run is one environment variable away.

Each bench test (a) regenerates the paper artifact as a printed table or
series, (b) asserts the paper's qualitative *shape* (who wins, direction of
trends), and (c) times a representative kernel of the experiment through the
``benchmark`` fixture.

Everything in this directory is marked ``slow`` at collection time; the
default test run deselects it (see ``pytest.ini``), so figure reproduction
is opt-in: ``pytest benchmarks -m slow``.  ``REPRO_BENCH_JOBS`` sets the
evaluation worker count (results are identical for any value).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List

import numpy as np
import pytest

from repro.baselines import PerfectFormatSelector, PfsSelection
from repro.search import (
    AnnealingSchedule,
    EvaluationRuntime,
    SearchBudget,
    SearchEngine,
    SearchResult,
)
from repro.sparse import corpus
from repro.sparse.collection import CorpusEntry
from repro.gpu import A100, RTX2080

CORPUS_SIZE = int(os.environ.get("REPRO_BENCH_CORPUS", "12"))
MAX_EVALS = int(os.environ.get("REPRO_BENCH_EVALS", "110"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

BENCH_BUDGET = SearchBudget(
    max_structures=14,
    coarse_evals_per_structure=8,
    max_total_evals=MAX_EVALS,
    ml_top_k=4,
    jobs=BENCH_JOBS,
)


#: One worker pool for the whole benchmark session — every engine that
#: ``bench_engine`` hands out shares it (closed by ``pytest_sessionfinish``),
#: so per-test throwaway engines never leak executors.
SHARED_RUNTIME = EvaluationRuntime(jobs=BENCH_JOBS)


def pytest_collection_modifyitems(items):
    """Every figure/table reproduction is a slow test."""
    this_dir = os.path.dirname(__file__)
    for item in items:
        if str(item.fspath).startswith(this_dir):
            item.add_marker(pytest.mark.slow)


def pytest_sessionfinish(session, exitstatus):
    SHARED_RUNTIME.close()


def bench_engine(gpu, seed: int = 11, enable_pruning: bool = True) -> SearchEngine:
    return SearchEngine(
        gpu,
        budget=BENCH_BUDGET,
        seed=seed,
        enable_pruning=enable_pruning,
        annealing=AnnealingSchedule(
            initial_temperature=0.25, cooling=0.82, patience=5
        ),
        runtime=SHARED_RUNTIME,
    )


@dataclass
class MatrixRun:
    """Everything the figure benches need for one corpus matrix."""

    entry: CorpusEntry
    alpha: SearchResult
    pfs: PfsSelection

    @property
    def matrix(self):
        return self.entry.matrix

    @property
    def speedup_vs_pfs(self) -> float:
        return self.alpha.best_gflops / self.pfs.gflops


@pytest.fixture(scope="session")
def bench_corpus() -> List[CorpusEntry]:
    return list(corpus(CORPUS_SIZE))


def _run_all(entries, gpu) -> List[MatrixRun]:
    """One shared engine per figure sweep: every matrix's search reuses the
    same design cache and worker pool (the collection-level driver)."""
    selector = PerfectFormatSelector()
    entries = list(entries)
    with bench_engine(gpu) as engine:
        alphas = engine.search_many(
            [entry.matrix for entry in entries],
            seeds=[100 + entry.index for entry in entries],
        )
    runs = []
    for entry, alpha in zip(entries, alphas):
        m = entry.matrix
        x = np.random.default_rng(0x5EED).random(m.n_cols)
        pfs = selector.select(m, gpu, x)
        runs.append(MatrixRun(entry=entry, alpha=alpha, pfs=pfs))
    return runs


@pytest.fixture(scope="session")
def runs_a100(bench_corpus) -> List[MatrixRun]:
    """AlphaSparse + PFS on the whole bench corpus, A100."""
    return _run_all(bench_corpus, A100)


@pytest.fixture(scope="session")
def runs_2080(bench_corpus) -> List[MatrixRun]:
    """Same on RTX 2080 (used by Figs 9a/9b); a half-size slice keeps the
    session bounded."""
    return _run_all(bench_corpus[: max(4, len(bench_corpus) // 2)], RTX2080)


@pytest.fixture(scope="session")
def x_of():
    def make(matrix):
        return np.random.default_rng(0x5EED).random(matrix.n_cols)

    return make
