"""Record (or CI-check) the sampler sample-efficiency baseline.

Runs one standard-budget search per corpus matrix per sampler (annealer,
qmc, tpe, dts) for the spmv and spmvt workloads, and writes per-sampler
best GFLOPS + evals-to-best to ``BENCH_samplers.json`` at the repo root.
Not a pytest module: run it directly.

    PYTHONPATH=src python benchmarks/bench_sampler_eff.py

Sample efficiency is counted in *full measurements* (history entries):
successive-halving projections are the cheap rung and deliberately free.
``evals_to_best`` is the first history iteration reaching the search's own
final best; ``evals_to_match`` is the first iteration reaching 99% of the
*annealer's* best on the same matrix (the ±1% equivalence band).

``--check`` mode (the CI sampler-efficiency gate) re-runs the annealer and
the gated sampler (tpe) and fails — without touching the committed JSON —
unless on every workload the gated sampler (a) matches the annealer's best
GFLOPS within 1% on every matrix and (b) needs at most ``--max-ratio``
(default 0.5) of the annealer's evaluations to get there, summed over the
corpus:

    PYTHONPATH=src python benchmarks/bench_sampler_eff.py --check

Both modes also measure store-seeded cross-matrix *warm starts*: the
corpus is searched sequentially twice — cold, and with each search's
winner written to a design store that seeds the next matrix's candidate
stream — and the warm pass must need no more total evals-to-best than
the cold pass (``--check`` fails otherwise).

Every search is seeded and count-budgeted, so both modes are deterministic.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
from datetime import datetime, timezone

from repro.gpu import A100
from repro.search import SearchBudget, SearchEngine
from repro.search.evaluation import matrix_token
from repro.sparse import banded_matrix, lp_like_matrix, power_law_matrix
from repro.store import DesignStore, search_result_record

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_samplers.json")

MATRICES = [
    banded_matrix(768, bandwidth=4, seed=0, name="banded-768"),
    power_law_matrix(1024, avg_degree=10, seed=4, name="powerlaw-1024"),
    lp_like_matrix(400, seed=3, name="lp-400"),
]

#: the warm-start corpus: family *pairs* in sequence, because that is
#: what cross-matrix transfer is for — the first member of each family
#: searches cold and donates, the second should then reach its best in
#: far fewer evaluations (often 1: the donor IS its best design).
WARM_MATRICES = MATRICES + [
    banded_matrix(1024, bandwidth=4, seed=1, name="banded-1024"),
    power_law_matrix(1408, avg_degree=10, seed=5, name="powerlaw-1408"),
    lp_like_matrix(560, seed=6, name="lp-560"),
]

WORKLOADS = ["spmv", "spmvt"]
SAMPLERS = ["annealer", "qmc", "tpe", "dts"]

#: the sampler the CI gate holds to the efficiency target.
GATED_SAMPLER = "tpe"
#: equivalence band: "matches the annealer" means within 1% of its best.
MATCH_FRACTION = 0.99


def _search_all(workload: str, sampler: str):
    engine = SearchEngine(
        A100,
        budget=SearchBudget(),
        seed=0,
        workload=workload,
        sampler=sampler,
    )
    with engine:
        return engine.search_many(MATRICES)


def _evals_to_reach(history, target: float):
    """First history iteration with a valid measurement >= target."""
    for rec in history:
        if rec.valid and rec.gflops >= target:
            return rec.iteration
    return None


def _sampler_rows(results, annealer_results):
    """Per-matrix efficiency rows for one sampler on one workload."""
    rows = []
    for res, ann in zip(results, annealer_results):
        target = MATCH_FRACTION * ann.best_gflops
        rows.append({
            "matrix": res.matrix_name,
            "best_gflops": round(res.best_gflops, 3),
            "evals_to_best": _evals_to_reach(res.history, res.best_gflops),
            "evals_to_match": _evals_to_reach(res.history, target),
            "total_evaluations": res.total_evaluations,
            "sampler_pruned": res.sampler_pruned,
            "matched_annealer": res.best_gflops >= target,
        })
    return rows


def _gate(rows, annealer_rows, max_ratio: float):
    """The CI acceptance: every matrix matched, and total evals-to-match
    within ``max_ratio`` of the annealer's total evals-to-best."""
    matched = all(r["matched_annealer"] for r in rows)
    if not all(r["evals_to_match"] is not None for r in rows):
        return {"matched": matched, "evals_ratio": None, "ok": False}
    sampler_evals = sum(r["evals_to_match"] for r in rows)
    annealer_evals = sum(r["evals_to_best"] for r in annealer_rows)
    ratio = sampler_evals / annealer_evals if annealer_evals else None
    return {
        "matched": matched,
        "sampler_evals_to_match": sampler_evals,
        "annealer_evals_to_best": annealer_evals,
        "evals_ratio": round(ratio, 3) if ratio is not None else None,
        "ok": bool(matched and ratio is not None and ratio <= max_ratio),
    }


def _print_rows(workload: str, sampler: str, rows) -> None:
    for r in rows:
        print(f"  {workload:5s} {sampler:9s} {r['matrix']:>14s}: "
              f"best {r['best_gflops']:8.2f}  "
              f"to-best {str(r['evals_to_best']):>4s}  "
              f"to-match {str(r['evals_to_match']):>4s}  "
              f"evals {r['total_evaluations']:3d}  "
              f"pruned {r['sampler_pruned']:3d}")


def _sequential_search(workload: str, warm: bool):
    """Search the corpus one matrix at a time; with ``warm`` each winner
    is recorded to a design store that seeds the next matrix's search
    (the corpus-runner ``--warm-start`` behaviour, measured directly)."""
    results = []
    with tempfile.TemporaryDirectory() as tmp:
        store = DesignStore(os.path.join(tmp, "store")) if warm else None
        engine = SearchEngine(
            A100,
            budget=SearchBudget(),
            seed=0,
            workload=workload,
            warm_start_store=store,
        )
        with engine:
            for matrix in WARM_MATRICES:
                result = engine.search(matrix)
                results.append(result)
                if store is not None and result.best_graph is not None:
                    store.put_result(
                        engine.workload.scope_token(matrix_token(matrix)),
                        A100.name,
                        search_result_record(
                            matrix, A100.name, result, seed=0
                        ),
                    )
    return results


def _warm_start_block(workload: str = "spmv"):
    """Cold vs store-seeded sequential corpus pass: per-matrix
    evals-to-best, plus the gate the CI check enforces (the warm pass
    reaches its bests in no more total evaluations than the cold one)."""
    cold = _sequential_search(workload, warm=False)
    warm = _sequential_search(workload, warm=True)
    rows = []
    for c, w in zip(cold, warm):
        rows.append({
            "matrix": c.matrix_name,
            "cold_best_gflops": round(c.best_gflops, 3),
            "warm_best_gflops": round(w.best_gflops, 3),
            "cold_evals_to_best": _evals_to_reach(c.history, c.best_gflops),
            "warm_evals_to_best": _evals_to_reach(w.history, w.best_gflops),
            "warm_start_hits": w.warm_start_hits,
        })
    cold_total = sum(r["cold_evals_to_best"] or 0 for r in rows)
    warm_total = sum(r["warm_evals_to_best"] or 0 for r in rows)
    return {
        "workload": workload,
        "per_matrix": rows,
        "cold_evals_to_best": cold_total,
        "warm_evals_to_best": warm_total,
        "ok": warm_total < cold_total,
    }


def _print_warm_start(block) -> None:
    for r in block["per_matrix"]:
        print(f"  warm-start {r['matrix']:>14s}: "
              f"cold to-best {str(r['cold_evals_to_best']):>4s} "
              f"({r['cold_best_gflops']:8.2f})  "
              f"warm to-best {str(r['warm_evals_to_best']):>4s} "
              f"({r['warm_best_gflops']:8.2f})  "
              f"hits {r['warm_start_hits']}")
    print(f"warm-start ({block['workload']}): "
          f"{block['warm_evals_to_best']} warm vs "
          f"{block['cold_evals_to_best']} cold total evals-to-best "
          f"{'ok' if block['ok'] else 'FAIL'}")


def check(max_ratio: float) -> int:
    """CI gate: the gated sampler must reach the annealer's best (within
    1%) in at most ``max_ratio`` of its evaluations, per workload."""
    failures = []
    for workload in WORKLOADS:
        annealer = _search_all(workload, "annealer")
        annealer_rows = _sampler_rows(annealer, annealer)
        gated = _sampler_rows(_search_all(workload, GATED_SAMPLER), annealer)
        _print_rows(workload, "annealer", annealer_rows)
        _print_rows(workload, GATED_SAMPLER, gated)
        gate = _gate(gated, annealer_rows, max_ratio)
        verdict = "ok" if gate["ok"] else "FAIL"
        print(f"{workload}: {GATED_SAMPLER} matched={gate['matched']} "
              f"evals-ratio={gate['evals_ratio']} "
              f"(limit {max_ratio}) {verdict}")
        if not gate["ok"]:
            failures.append(workload)
    warm_block = _warm_start_block()
    _print_warm_start(warm_block)
    if not warm_block["ok"]:
        failures.append("warm-start")
    if failures:
        print(f"sampler-efficiency gate failed on: {', '.join(failures)}")
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="enforce the efficiency gate against a fresh "
                             "run instead of re-recording the baseline")
    parser.add_argument("--max-ratio", type=float, default=0.5,
                        help="fail --check when the gated sampler needs "
                             "more than this fraction of the annealer's "
                             "evaluations to match its best")
    args = parser.parse_args()
    if args.check:
        return check(args.max_ratio)

    record = {
        "recorded_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "budget": "SearchBudget() defaults",
        "matrices": [m.name for m in MATRICES],
        "match_fraction": MATCH_FRACTION,
        "gated_sampler": GATED_SAMPLER,
        "workloads": {},
    }
    for workload in WORKLOADS:
        annealer_results = _search_all(workload, "annealer")
        annealer_rows = _sampler_rows(annealer_results, annealer_results)
        per_sampler = {"annealer": {"per_matrix": annealer_rows}}
        for sampler in SAMPLERS[1:]:
            rows = _sampler_rows(
                _search_all(workload, sampler), annealer_results
            )
            per_sampler[sampler] = {
                "per_matrix": rows,
                "gate": _gate(rows, annealer_rows, max_ratio=0.5),
            }
        record["workloads"][workload] = per_sampler
        for sampler, block in per_sampler.items():
            _print_rows(workload, sampler, block["per_matrix"])

    record["warm_start"] = _warm_start_block()
    _print_warm_start(record["warm_start"])

    with open(OUT_PATH, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"baseline written to {os.path.abspath(OUT_PATH)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
