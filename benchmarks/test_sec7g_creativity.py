"""§VII-G — creative capability of AlphaSparse.

Paper: in 73.1 % of test cases the winner is a machine-designed format not
covered by the source formats; 16.5 % of the new-format winners branch the
Operator Graph (different formats for different parts of the matrix).

The design space has three dimensions (format, kernel, parameters — paper
Fig 1b), so novelty is graded at two levels here: *structure-novel* winners
compose operators in a sequence no source format uses, while
*parameter-novel* winners reuse a source structure with a layout geometry
no published implementation ships (the literature treats those as distinct
formats too — SELL-C-sigma vs SELL, sigma variants of CSR5, ...).
"""

from repro.analysis import classify_creativity, render_table
from repro.gpu import A100


def test_sec7g_creative_capability(runs_a100, x_of, benchmark):
    classified = [
        classify_creativity(r.alpha.best_graph, r.matrix) for r in runs_a100
    ]
    n = len(classified)
    machine = sum(c["machine_designed"] for c in classified)
    structure_novel = sum(c["structure_novel"] for c in classified)
    branching = sum(c["branching"] for c in classified)
    exact = [c["matches"] for c in classified if c["matches"]]

    print()
    print(render_table(
        "SecVII-G (A100): creativity of winning designs\n"
        "(paper: 73.1% machine-designed, 16.5% of those with branches)",
        ["category", "count", "% of cases"],
        [
            ["machine-designed (not an exact source format)", machine,
             100.0 * machine / n],
            ["  of which structure-novel compositions", structure_novel,
             100.0 * structure_novel / n],
            ["  of which parameter-novel variants", machine - structure_novel,
             100.0 * (machine - structure_novel) / n],
            ["branching graphs", branching, 100.0 * branching / n],
            ["exact source formats", n - machine, 100.0 * (n - machine) / n],
        ],
    ))
    if exact:
        print("exact source-format winners:", sorted(set(exact)))

    # Shape: most winners are machine-designed at some level of novelty.
    assert machine / n >= 0.5

    run = runs_a100[0]
    x = x_of(run.matrix)
    benchmark(lambda: run.alpha.best_program.run(x, A100))
