"""The format zoo: why no single sparse format wins everywhere.

Reproduces the paper's Problem 1 observation (§I): across sparsity
patterns, the max/min performance gap between mainstream formats is about an
order of magnitude, and the winner changes with the pattern.  Every classic
format is expressed here as an Operator Graph — the paper's Observation 2
that formats decompose into shared conversion steps.

Run:  python examples/format_zoo.py
"""

import numpy as np

from repro.analysis import render_table
from repro.baselines import PFS_MEMBERS, get_baseline
from repro.gpu import A100
from repro.sparse import (
    banded_matrix,
    diagonal_band_matrix,
    lp_like_matrix,
    power_law_matrix,
    rows_with_outliers_matrix,
)


MATRICES = [
    ("banded (stencil)", banded_matrix(6000, bandwidth=8, seed=1)),
    ("diagonal (quasi-DIA)", diagonal_band_matrix(6000, n_diagonals=7, seed=2)),
    ("power-law (web graph)", power_law_matrix(6000, avg_degree=10, seed=3)),
    ("LP (short+long rows)", lp_like_matrix(6000, seed=4)),
    ("outlier rows (HYB-friendly)", rows_with_outliers_matrix(6000, base_len=10, seed=5)),
]


def main() -> None:
    headers = ["format"] + [name for name, _ in MATRICES]
    rows = []
    winners = {}
    for fmt in PFS_MEMBERS:
        baseline = get_baseline(fmt)
        cells = [fmt]
        for name, matrix in MATRICES:
            x = np.random.default_rng(0).random(matrix.n_cols)
            meas = baseline.measure(matrix, A100, x)
            cells.append(meas.gflops if meas.applicable else "n/a")
            if meas.applicable:
                best = winners.get(name, ("", 0.0))
                if meas.gflops > best[1]:
                    winners[name] = (fmt, meas.gflops)
        rows.append(cells)

    print(render_table(
        "Artificial formats across sparsity patterns (GFLOPS, A100 model)",
        headers,
        rows,
    ))
    print("\nwinner per pattern:")
    for name, (fmt, gflops) in winners.items():
        print(f"  {name:<30} {fmt}  ({gflops:.1f} GFLOPS)")

    gaps = []
    for j, (name, _) in enumerate(MATRICES, start=1):
        vals = [r[j] for r in rows if isinstance(r[j], float) and r[j] > 0]
        gaps.append(max(vals) / min(vals))
    print(f"\nmax/min gap across formats per matrix: "
          f"{', '.join(f'{g:.1f}x' for g in gaps)}")
    print("(paper reports ~10x gaps between mainstream formats — "
          "the reason a per-matrix design search pays off)")


if __name__ == "__main__":
    main()
