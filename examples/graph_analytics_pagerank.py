"""Domain scenario: PageRank on a scale-free web graph.

SpMV is the inner loop of graph analytics (one of the application domains
the paper's introduction motivates).  This example searches a
machine-designed kernel for a power-law adjacency matrix — the irregular
pattern where AlphaSparse's gains are largest — then runs power iteration
with it, accounting the simulated GPU time per iteration against cuSPARSE
HYB, the classic choice for such graphs.

Run:  python examples/graph_analytics_pagerank.py
"""

import numpy as np

from repro import A100, SearchBudget, SearchEngine
from repro.baselines import get_baseline
from repro.sparse import power_law_matrix
from repro.sparse.matrix import SparseMatrix


def column_stochastic(adj: SparseMatrix) -> SparseMatrix:
    """Normalise columns so the matrix propagates rank mass."""
    out_degree = np.bincount(adj.cols, minlength=adj.n_cols).astype(float)
    out_degree[out_degree == 0] = 1.0
    vals = adj.vals / out_degree[adj.cols]
    return SparseMatrix(adj.n_rows, adj.n_cols, adj.rows, adj.cols, vals,
                        name=adj.name + ":stochastic")


def pagerank(matrix: SparseMatrix, program, gpu, damping=0.85, iters=30):
    n = matrix.n_rows
    rank = np.full(n, 1.0 / n)
    total_time = 0.0
    for _ in range(iters):
        result = program.run(rank, gpu)
        rank = (1.0 - damping) / n + damping * result.y
        total_time += result.total_time_s
    return rank, total_time


def main() -> None:
    graph = power_law_matrix(8000, avg_degree=9, seed=13, name="webgraph")
    matrix = column_stochastic(graph)
    print(f"web graph: {matrix.n_rows} pages, {matrix.nnz} links, "
          f"row variance {matrix.stats.row_variance:.0f} (irregular)")

    result = SearchEngine(A100, budget=SearchBudget(max_total_evals=140),
                          seed=2).search(matrix)
    print(f"\nmachine-designed kernel: {result.best_gflops:.1f} GFLOPS")
    print(result.best_graph.describe())

    rank_alpha, t_alpha = pagerank(matrix, result.best_program, A100)
    hyb_program = get_baseline("HYB").program(matrix)
    rank_hyb, t_hyb = pagerank(matrix, hyb_program, A100)

    assert np.allclose(rank_alpha, rank_hyb, atol=1e-12)
    top = np.argsort(-rank_alpha)[:5]
    print("\ntop pages:", ", ".join(f"#{i} ({rank_alpha[i]:.2e})" for i in top))
    print(f"\n30 power iterations, simulated A100 kernel time:")
    print(f"  HYB (classic graph choice): {t_hyb * 1e6:9.1f} us")
    print(f"  machine-designed:           {t_alpha * 1e6:9.1f} us")
    print(f"  speedup: {t_hyb / t_alpha:.2f}x")


if __name__ == "__main__":
    main()
