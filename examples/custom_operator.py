"""Extending AlphaSparse with a user-defined operator.

The paper (§IV-A): "AlphaSparse allows users to implement operators by
themselves", and §V-D's compression model set is user-extensible the same
way.  This example adds a converting-stage operator that reverses the row
order (a toy locality transform), registers it, uses it inside an Operator
Graph, and verifies the generated program stays correct.

Run:  python examples/custom_operator.py
"""

import numpy as np

from repro import A100, OperatorGraph, build_program
from repro.core.metadata import MatrixMetadataSet
from repro.core.operators import Operator, Stage, register_operator
from repro.core.operators.converting import _renumber_rows
from repro.sparse import lp_like_matrix


@register_operator
class ReverseRows(Operator):
    """Toy user operator: store rows bottom-to-top."""

    name = "USER_REVERSE_ROWS"
    stage = Stage.CONVERTING
    source = "(user-defined)"
    description = "Reverse the row order of the matrix"

    def check(self, meta: MatrixMetadataSet, params) -> None:
        pass  # applicable anywhere in the converting stage

    def apply(self, meta: MatrixMetadataSet, params) -> None:
        new_of_old = np.arange(meta.n_rows - 1, -1, -1, dtype=np.int64)
        _renumber_rows(meta, new_of_old)


def main() -> None:
    matrix = lp_like_matrix(3000, seed=9, name="user_demo")
    graph = OperatorGraph.from_names([
        "USER_REVERSE_ROWS",
        "COMPRESS",
        ("BMT_ROW_BLOCK", {"rows_per_block": 1}),
        ("SET_RESOURCES", {"threads_per_block": 256}),
        "THREAD_TOTAL_RED",
        "GMEM_DIRECT_STORE",
    ])
    program = build_program(matrix, graph)
    x = np.random.default_rng(0).random(matrix.n_cols)
    out = program.run(x, A100)
    assert np.allclose(out.y, matrix.spmv_reference(x))
    print("graph with user operator:")
    print(graph.describe())
    print(f"\ncorrect SpMV at {out.gflops:.1f} GFLOPS (A100 model)")
    # The reversed row order shows up as a non-identity origin_rows table:
    fmt = program.kernels[0].format
    origin = fmt.array("origin_rows").data
    print(f"origin_rows head: {origin[:5]} (reversed as designed)")


if __name__ == "__main__":
    main()
