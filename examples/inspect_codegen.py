"""Inspect the Format & Kernel Generator's output.

Builds the paper's Fig 5/Fig 7 pipeline by hand on a tiny matrix — the
SELL-P-flavoured Operator Graph — and prints every artifact: the metadata
evolution, the constructed format (with Model-Driven Compression's fitted
models), and the spliced CUDA-like kernel.

Run:  python examples/inspect_codegen.py
"""

import numpy as np

from repro import A100, OperatorGraph, build_program
from repro.core.designer import Designer
from repro.sparse.matrix import SparseMatrix


def fig5_matrix() -> SparseMatrix:
    """The 4x4 example matrix of the paper's Fig 5."""
    return SparseMatrix(
        4, 4,
        rows=[0, 0, 1, 2, 3],
        cols=[0, 2, 1, 3, 0],
        vals=[1.0, 2.0, 3.0, 4.0, 5.0],
        name="fig5",
    )


FIG5_GRAPH = [
    "SORT",
    "COMPRESS",
    ("BMTB_ROW_BLOCK", {"rows_per_block": 2}),
    ("BMT_ROW_BLOCK", {"rows_per_block": 1}),
    ("BMT_PAD", {"mode": "max"}),
    ("SET_RESOURCES", {"threads_per_block": 32}),
    "THREAD_TOTAL_RED",
    "GMEM_ATOM_RED",
]


def main() -> None:
    matrix = fig5_matrix()
    graph = OperatorGraph.from_names(FIG5_GRAPH)
    print("Operator Graph (paper Fig 5):")
    print(graph.describe())

    # Walk the Designer to show the metadata after the full pipeline.
    leaf = Designer().design(matrix, graph)[0]
    meta = leaf.meta
    print("\nMatrix Metadata Set after the pipeline:")
    print(f"  elem_row  = {meta.elem_row.tolist()}")
    print(f"  elem_col  = {meta.elem_col.tolist()}")
    print(f"  elem_val  = {meta.elem_val.tolist()}")
    print(f"  elem_pad  = {meta.elem_pad.astype(int).tolist()}")
    print(f"  origin_rows = {meta.origin_rows.tolist()}  (row 0 had 2 nnz)")
    print(f"  bmtb_of_elem = {meta.blocks_of('bmtb').tolist()}")
    print(f"  bmt_of_elem  = {meta.blocks_of('bmt').tolist()}")

    program = build_program(matrix, graph)
    unit = program.kernels[0]
    print("\nmachine-designed format:")
    print(unit.format.describe())

    print("\ngenerated kernel (paper Fig 7 analogue):")
    print(unit.source)

    x = np.array([1.0, 2.0, 3.0, 4.0])
    out = program.run(x, A100)
    print(f"\ny = {out.y.tolist()}  (reference {matrix.spmv_reference(x).tolist()})")
    assert np.allclose(out.y, matrix.spmv_reference(x))


if __name__ == "__main__":
    main()
