"""Quickstart: AlphaSparse end to end.

Feed a sparse matrix in, get a machine-designed format and SpMV kernel out
(paper §III: "Users only need to input a Matrix Market file ... AlphaSparse
will output a matrix stored in a specific format and a kernel
implementation").

Run:  python examples/quickstart.py [path/to/matrix.mtx]
Without an argument a SuiteSparse-like LP matrix is generated.
"""

import sys
import tempfile

import numpy as np

from repro import (
    A100,
    PerfectFormatSelector,
    SearchBudget,
    SearchEngine,
    get_workload,
    named_matrix,
    read_matrix_market,
)
from repro.store import DesignStore


def main() -> None:
    if len(sys.argv) > 1:
        matrix = read_matrix_market(sys.argv[1])
    else:
        matrix = named_matrix("scfxm1-2r")
    stats = matrix.stats
    print(f"matrix: {matrix.name}  {matrix.n_rows}x{matrix.n_cols}  "
          f"nnz={matrix.nnz}  row variance={stats.row_variance:.1f} "
          f"({'irregular' if stats.is_irregular else 'regular'})")

    # --- search for a machine-designed format + kernel -----------------
    engine = SearchEngine(A100, budget=SearchBudget(max_total_evals=160))
    result = engine.search(matrix)
    print(f"\nsearch: {result.total_evaluations} program evaluations, "
          f"{result.structures_tried} graph structures, "
          f"{result.wall_time_s:.1f}s")
    print(f"best machine-designed SpMV: {result.best_gflops:.1f} GFLOPS")
    print("\nwinning Operator Graph:")
    print(result.best_graph.describe())

    # --- compare against the traditional auto-tuner --------------------
    pfs = PerfectFormatSelector().select(matrix, A100)
    print(f"\nPerfect Format Selector picks {pfs.selected_format}: "
          f"{pfs.gflops:.1f} GFLOPS")
    print(f"AlphaSparse speedup over PFS: "
          f"{result.best_gflops / pfs.gflops:.2f}x")

    # --- verify and show the artifact -----------------------------------
    x = np.random.default_rng(0).random(matrix.n_cols)
    out = result.best_program.run(x, A100)
    assert np.allclose(out.y, matrix.spmv_reference(x))
    print("\nresult verified against A @ x")

    unit = result.best_program.kernels[0]
    print("\nmachine-designed format:")
    print(unit.format.describe())
    print("\ngenerated kernel (CUDA-like rendering):")
    print(unit.source)

    # --- the same search, for a different workload ----------------------
    # The operation being tuned is pluggable: SpMM (dense multi-vector
    # RHS) and transpose SpMV ship alongside SpMV.  One engine = one
    # workload; caches and stores are keyed so they never cross.
    spmm = get_workload("spmm16")
    with SearchEngine(A100, budget=SearchBudget(max_total_evals=160),
                      workload=spmm) as spmm_engine:
        spmm_result = spmm_engine.search(matrix)
    X = spmm.make_operand(matrix)
    spmm_out = spmm_result.best_program.run(X, A100, workload=spmm)
    assert spmm.allclose(spmm_out.y, spmm.reference(matrix, X))
    print(f"\nbest machine-designed {spmm.display}: "
          f"{spmm_result.best_gflops:.1f} GFLOPS (verified against A @ X)")

    # --- store-backed re-search: the one-time search is reusable --------
    # Persisting designs to a DesignStore means a *new* engine — think a
    # new process, hours later — warm-starts from disk: zero Designer
    # runs, byte-identical result.  (`python -m repro serve` answers
    # requests straight from such a store.)
    with tempfile.TemporaryDirectory() as store_dir:
        budget = SearchBudget(max_total_evals=160)
        with SearchEngine(A100, budget=budget,
                          store=DesignStore(store_dir)) as warmup:
            warmup.search(matrix)
        with SearchEngine(A100, budget=budget,
                          store=DesignStore(store_dir)) as warmed:
            again = warmed.search(matrix)
        print(f"\nstore-backed re-search: {again.designer_runs} Designer "
              f"runs ({again.store_hits} designs loaded from the store), "
              f"best {again.best_gflops:.1f} GFLOPS "
              f"({'identical' if again.best_gflops == result.best_gflops else 'DIFFERENT'})")


if __name__ == "__main__":
    main()
