"""Quickstart: AlphaSparse end to end.

Feed a sparse matrix in, get a machine-designed format and SpMV kernel out
(paper §III: "Users only need to input a Matrix Market file ... AlphaSparse
will output a matrix stored in a specific format and a kernel
implementation").

Run:  python examples/quickstart.py [path/to/matrix.mtx]
Without an argument a SuiteSparse-like LP matrix is generated.
"""

import sys

import numpy as np

from repro import (
    A100,
    PerfectFormatSelector,
    SearchBudget,
    SearchEngine,
    named_matrix,
    read_matrix_market,
)


def main() -> None:
    if len(sys.argv) > 1:
        matrix = read_matrix_market(sys.argv[1])
    else:
        matrix = named_matrix("scfxm1-2r")
    stats = matrix.stats
    print(f"matrix: {matrix.name}  {matrix.n_rows}x{matrix.n_cols}  "
          f"nnz={matrix.nnz}  row variance={stats.row_variance:.1f} "
          f"({'irregular' if stats.is_irregular else 'regular'})")

    # --- search for a machine-designed format + kernel -----------------
    engine = SearchEngine(A100, budget=SearchBudget(max_total_evals=160))
    result = engine.search(matrix)
    print(f"\nsearch: {result.total_evaluations} program evaluations, "
          f"{result.structures_tried} graph structures, "
          f"{result.wall_time_s:.1f}s")
    print(f"best machine-designed SpMV: {result.best_gflops:.1f} GFLOPS")
    print("\nwinning Operator Graph:")
    print(result.best_graph.describe())

    # --- compare against the traditional auto-tuner --------------------
    pfs = PerfectFormatSelector().select(matrix, A100)
    print(f"\nPerfect Format Selector picks {pfs.selected_format}: "
          f"{pfs.gflops:.1f} GFLOPS")
    print(f"AlphaSparse speedup over PFS: "
          f"{result.best_gflops / pfs.gflops:.2f}x")

    # --- verify and show the artifact -----------------------------------
    x = np.random.default_rng(0).random(matrix.n_cols)
    out = result.best_program.run(x, A100)
    assert np.allclose(out.y, matrix.spmv_reference(x))
    print("\nresult verified against A @ x")

    unit = result.best_program.kernels[0]
    print("\nmachine-designed format:")
    print(unit.format.describe())
    print("\ngenerated kernel (CUDA-like rendering):")
    print(unit.source)


if __name__ == "__main__":
    main()
