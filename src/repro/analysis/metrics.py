"""Evaluation metrics used by the benchmark harness.

Includes the paper's Fig 10 speedup binning and the §VII-G *creativity*
classification: a winning Operator Graph counts as *machine-designed* when
its operator sequence is not one of the human source-format archetypes the
operators were distilled from.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.graph import GraphValidationError, OperatorGraph

__all__ = [
    "geomean",
    "speedup",
    "speedup_histogram",
    "SPEEDUP_BINS",
    "classify_creativity",
    "ARCHETYPE_SIGNATURES",
]

#: Fig 10's histogram bin edges (speedup over PFS).
SPEEDUP_BINS: Tuple[float, ...] = (0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0)


def geomean(values: Iterable[float]) -> float:
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geomean of empty sequence")
    if not np.isfinite(arr).all():
        raise ValueError(
            "geomean requires finite values; an inf/nan speedup means an "
            "inapplicable or incorrect baseline leaked into the aggregate — "
            "filter on BaselineMeasurement.ok before aggregating"
        )
    if (arr <= 0).any():
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def speedup(candidate_gflops: float, baseline_gflops: float) -> float:
    """Candidate-over-baseline throughput ratio.

    A baseline that is inapplicable or computed a wrong answer reports
    0 GFLOPS (:class:`~repro.baselines.base.BaselineMeasurement`); there is
    no meaningful speedup over it, so asking for one is an error — the
    caller must filter those measurements out (``BaselineMeasurement.ok``)
    instead of letting ``inf`` corrupt geomeans and histograms downstream.
    """
    if not (np.isfinite(candidate_gflops) and np.isfinite(baseline_gflops)):
        raise ValueError(
            f"speedup of non-finite GFLOPS ({candidate_gflops!r} over "
            f"{baseline_gflops!r})"
        )
    if baseline_gflops <= 0:
        raise ValueError(
            "speedup over a non-positive baseline (inapplicable or "
            "incorrect format); filter it out rather than aggregating it"
        )
    return candidate_gflops / baseline_gflops


def speedup_histogram(
    speedups: Sequence[float], bins: Sequence[float] = SPEEDUP_BINS
) -> List[Tuple[str, float]]:
    """Fig 10-style frequency distribution: (bin label, percentage).

    The first bucket collects everything below ``bins[0]`` and the last
    everything at or above ``bins[-1]``.
    """
    arr = np.asarray(speedups, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no speedups to bin")
    if not np.isfinite(arr).all():
        raise ValueError(
            "non-finite speedup in histogram input; filter inapplicable/"
            "incorrect baselines (BaselineMeasurement.ok) before binning"
        )
    edges = list(bins)
    labels = [f"<{edges[0]:.1f}"]
    counts = [float((arr < edges[0]).sum())]
    for lo, hi in zip(edges[:-1], edges[1:]):
        labels.append(f"{lo:.1f}-{hi:.1f}")
        counts.append(float(((arr >= lo) & (arr < hi)).sum()))
    labels.append(f">={edges[-1]:.1f}")
    counts.append(float((arr >= edges[-1]).sum()))
    total = arr.size
    return [(label, 100.0 * c / total) for label, c in zip(labels, counts)]


# ---------------------------------------------------------------------------
# Creativity classification (§VII-G)
# ---------------------------------------------------------------------------

#: Operator sequences of the human source formats (parameters ignored).
#: A winning graph matching none of these is a *machine-designed* format.
ARCHETYPE_SIGNATURES: Dict[str, Tuple[str, ...]] = {
    "CSR-Scalar": ("COMPRESS", "BMT_ROW_BLOCK", "SET_RESOURCES",
                   "THREAD_TOTAL_RED", "GMEM_DIRECT_STORE"),
    "CSR-Vector": ("COMPRESS", "BMW_ROW_BLOCK", "SET_RESOURCES",
                   "WARP_TOTAL_RED", "GMEM_DIRECT_STORE"),
    "ELL": ("COMPRESS", "BMT_ROW_BLOCK", "BMT_PAD", "INTERLEAVED_STORAGE",
            "SET_RESOURCES", "THREAD_TOTAL_RED", "GMEM_DIRECT_STORE"),
    "SELL": ("SORT", "COMPRESS", "BMTB_ROW_BLOCK", "BMT_ROW_BLOCK",
             "BMT_PAD", "INTERLEAVED_STORAGE", "SET_RESOURCES",
             "THREAD_TOTAL_RED", "GMEM_DIRECT_STORE"),
    "CSR5": ("COMPRESS", "BMW_NNZ_BLOCK", "BMT_NNZ_BLOCK",
             "INTERLEAVED_STORAGE", "SET_RESOURCES", "THREAD_BITMAP_RED",
             "WARP_SEG_RED", "GMEM_ATOM_RED"),
    "Merge": ("COMPRESS", "BMTB_NNZ_BLOCK", "BMT_NNZ_BLOCK",
              "SET_RESOURCES", "THREAD_BITMAP_RED", "SHMEM_OFFSET_RED",
              "GMEM_ATOM_RED"),
    "CSR-Adaptive": ("COMPRESS", "BMTB_ROW_BLOCK", "SET_RESOURCES",
                     "SHMEM_OFFSET_RED", "GMEM_DIRECT_STORE"),
    "row-grouped CSR": ("COMPRESS", "BMTB_ROW_BLOCK", "SET_RESOURCES",
                        "GMEM_ATOM_RED"),
    "COO": ("COMPRESS", "SET_RESOURCES", "GMEM_ATOM_RED"),
}


def classify_creativity(graph: OperatorGraph, matrix=None) -> Dict[str, object]:
    """Classify a winning graph (paper §VII-G).

    The paper's design space has three dimensions — format *structure*,
    kernel, and *parameters* (Fig 1b: "every position of the design space
    represents an SpMV program").  A winner is therefore graded at two
    levels:

    * ``structure_matches`` — the operator sequence equals a source-format
      archetype (parameters ignored);
    * ``matches`` — the winner *is* the source format: same structure AND
      the parameter values the published implementation uses.  Requires
      ``matrix`` (several baselines auto-size parameters per matrix); when
      ``matrix`` is None this degrades to the structural comparison.

    ``machine_designed`` is True when the winner matches no source format at
    the finest available level — a SELL-like layout with a new slice height
    is a new machine-designed format (the literature names such variants
    separately, e.g. SELL-C-sigma), while an exact CSR-Vector is not.
    """
    ops = tuple(graph.operator_names())
    structure_matches: Optional[str] = None
    for name, signature in ARCHETYPE_SIGNATURES.items():
        if ops == signature:
            structure_matches = name
            break

    matches: Optional[str] = None
    if matrix is not None:
        from repro.baselines.base import BASELINE_REGISTRY, GraphBaseline

        for name, baseline in BASELINE_REGISTRY.items():
            if not isinstance(baseline, GraphBaseline):
                continue
            if not baseline.applicable(matrix):
                continue
            # Only inapplicability surfaces as an exception here (a baseline
            # whose auto-configuration cannot produce a valid graph for this
            # sparsity pattern); anything else is a builder bug and must
            # propagate instead of being silently treated as "no match".
            try:
                if baseline.graph(matrix).signature() == graph.signature():
                    matches = name
                    break
            except GraphValidationError:
                continue
    else:
        matches = structure_matches

    return {
        "machine_designed": matches is None,
        "structure_novel": structure_matches is None,
        "matches": matches,
        "structure_matches": structure_matches,
        "branching": graph.has_branches,
    }
