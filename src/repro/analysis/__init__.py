"""Analysis utilities: metrics, creativity classification, report rendering."""

from repro.analysis.metrics import (
    geomean,
    speedup,
    speedup_histogram,
    classify_creativity,
    SPEEDUP_BINS,
)
from repro.analysis.reporting import (
    render_table,
    render_series,
    render_search_summary,
)

__all__ = [
    "geomean",
    "speedup",
    "speedup_histogram",
    "classify_creativity",
    "SPEEDUP_BINS",
    "render_table",
    "render_series",
    "render_search_summary",
]
