"""Plain-text rendering of benchmark tables and series.

The benchmark harness regenerates the paper's tables/figures as text — the
same rows/series the paper plots, printable in CI logs and diffable across
runs.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

__all__ = ["render_table", "render_series", "render_search_summary"]


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Fixed-width table with a title rule."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    header_line = sep.join(h.ljust(w) for h, w in zip(headers, widths))
    rule = "-" * len(header_line)
    lines = [title, rule, header_line, rule]
    for row in rows:
        lines.append(sep.join(c.ljust(w) for c, w in zip(row, widths)))
    lines.append(rule)
    return "\n".join(lines)


def render_series(
    title: str,
    points: Sequence[Tuple[float, float]],
    x_label: str = "x",
    y_label: str = "y",
    width: int = 48,
) -> str:
    """A small ASCII scatter/line rendering of an (x, y) series."""
    if not points:
        raise ValueError("no points to render")
    ys = [p[1] for p in points]
    y_max = max(ys) or 1.0
    lines = [f"{title}   ({x_label} vs {y_label})"]
    for x, y in points:
        bar = "#" * max(1, int(width * y / y_max))
        lines.append(f"{_fmt(x):>12} | {bar} {_fmt(y)}")
    return "\n".join(lines)


def render_search_summary(results: Sequence[object], title: str = "") -> str:
    """Table over :class:`~repro.search.engine.SearchResult` objects.

    Duck-typed (no import of the search layer): anything exposing the
    result fields renders.  Shows the staged-runtime accounting — Designer
    executions and design-cache hit rate — next to the search outcome, the
    collection-level view the CLI's multi-matrix mode prints.
    """
    rows = []
    for res in results:
        rows.append([
            res.matrix_name or "<unnamed>",
            res.best_gflops,
            res.total_evaluations,
            res.structures_tried,
            res.designer_runs,
            f"{res.design_cache_hit_rate * 100.0:.0f}%",
            res.wall_time_s,
        ])
    return render_table(
        title or "Search summary (shared engine, design cache and pool)",
        ["matrix", "GFLOPS", "evals", "structs", "designs", "cache hit", "wall s"],
        rows,
    )


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)
