"""Static design verifier: prove (in)validity without running anything.

Three passes over a design, none of which executes the Designer, the
builder or the simulated GPU:

1. :func:`analyze_design` — abstract interpretation of the reduction
   chain against :func:`matrix_facts`, yielding a sound three-valued
   :class:`Verdict` with ``REDUCE-CHAIN-*`` diagnostics (the codes the
   dynamic validators raise under, see :mod:`repro.errors`).  The search
   engine uses the ``INVALID`` direction as pre-eval pruning.
2. :func:`lint_kernel` — a lint over generated CUDA-style kernel source:
   undeclared identifiers, scatter stores that need atomics, suspicious
   index arithmetic, dead declarations, accumulator dtype mismatches.
3. :func:`audit_store` — replay of both passes over persisted
   :class:`~repro.store.design.DesignStore` entries, catching stale or
   corrupt artifacts (``python -m repro check --store``).
"""

from repro.staticcheck.audit import audit_store
from repro.staticcheck.diagnostics import ChainReport, Diagnostic, Severity, Verdict
from repro.staticcheck.facts import MatrixFacts, matrix_facts
from repro.staticcheck.lint import lint_kernel
from repro.staticcheck.reduction import analyze_design

__all__ = [
    "ChainReport",
    "Diagnostic",
    "Severity",
    "Verdict",
    "MatrixFacts",
    "matrix_facts",
    "analyze_design",
    "lint_kernel",
    "audit_store",
]
