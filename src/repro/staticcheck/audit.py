"""Static audit of a persisted :class:`~repro.store.design.DesignStore`.

The store outlives the code that wrote it, so this pass replays the other
two static passes over everything it persisted: entry integrity (the
store's own ``verify``), decoded result graphs re-judged by the chain
analysis, persisted design signatures checked against the live operator
registry, and every kernel source embedded in a result artifact run
through the lint.  ``python -m repro check --store`` exits non-zero on
any error-severity finding.
"""

from __future__ import annotations

from typing import List

from repro.core.graph import GraphValidationError, OperatorGraph
from repro.core.operators.base import OPERATOR_REGISTRY
from repro.errors import (
    STORE_BAD_GRAPH,
    STORE_BAD_WORKLOAD,
    STORE_CORRUPT_ENTRY,
    STORE_UNKNOWN_OPERATOR,
    code_of,
)
from repro.staticcheck.diagnostics import Diagnostic, Severity
from repro.staticcheck.lint import lint_kernel
from repro.staticcheck.reduction import analyze_design
from repro.workloads import WORKLOADS

__all__ = ["audit_store"]

import re

#: Operator-name-shaped tokens inside a persisted design signature repr.
_SIGNATURE_OPS = re.compile(r"'([A-Z][A-Z0-9_]+)'")


def _record_label(record: dict) -> str:
    return f"result:{record.get('name') or '<unnamed>'}@{record.get('arch')}"


def audit_store(store) -> List[Diagnostic]:
    """Audit one open :class:`~repro.store.design.DesignStore`.

    Returns every finding; callers treat :attr:`Severity.ERROR` entries as
    fatal (the CLI exits 1) and the rest as advisory.
    """
    diagnostics: List[Diagnostic] = []

    # 1. Entry integrity — unreadable, truncated or non-hydrating files.
    for status in store.verify():
        if status.ok:
            continue
        diagnostics.append(
            Diagnostic(
                STORE_CORRUPT_ENTRY,
                Severity.ERROR,
                f"{status.kind} entry failed verification: {status.detail}",
                node=f"{status.kind}:{status.filename}",
            )
        )

    # 2. Result records: the winning graph must decode against the live
    #    registry, re-validate, and pass the chain-shape analysis; its
    #    persisted kernel sources must lint clean of errors.
    for record in store.results():
        label = _record_label(record)
        workload_name = record.get("workload", "spmv")
        if workload_name not in WORKLOADS:
            diagnostics.append(
                Diagnostic(
                    STORE_BAD_WORKLOAD,
                    Severity.ERROR,
                    f"record names unknown workload {workload_name!r}",
                    node=label,
                )
            )
        graph_dict = record.get("graph")
        report = None
        if graph_dict is not None:
            try:
                graph = OperatorGraph.from_dict(graph_dict)
            except KeyError as exc:
                diagnostics.append(
                    Diagnostic(
                        STORE_UNKNOWN_OPERATOR,
                        Severity.ERROR,
                        f"stored graph will not decode: {exc}",
                        node=label,
                    )
                )
                graph = None
            except (GraphValidationError, TypeError, ValueError) as exc:
                diagnostics.append(
                    Diagnostic(
                        code_of(exc)
                        if isinstance(exc, GraphValidationError)
                        else STORE_BAD_GRAPH,
                        Severity.ERROR,
                        f"stored graph no longer validates: {exc}",
                        node=label,
                    )
                )
                graph = None
            if graph is not None:
                report = analyze_design(graph)
                for diag in report.errors:
                    diagnostics.append(
                        Diagnostic(
                            diag.code, diag.severity, diag.message, node=label
                        )
                    )
        artifact = record.get("artifact")
        if isinstance(artifact, dict):
            for kernel in artifact.get("kernels", []):
                source = kernel.get("source_text")
                if not isinstance(source, str):
                    continue
                for diag in lint_kernel(source, report=report):
                    diagnostics.append(
                        Diagnostic(
                            diag.code,
                            diag.severity,
                            diag.message,
                            node=f"{label}/kernel:{kernel.get('label')}"
                            + (f"/{diag.node}" if diag.node else ""),
                        )
                    )

    # 3. Design entries: signatures must only name registered operators —
    #    a renamed operator strands the entry (it can never be keyed
    #    again), which is advisory, not fatal.
    for filename, signature, _payload in store.design_payloads():
        for token in sorted(set(_SIGNATURE_OPS.findall(signature))):
            if token in OPERATOR_REGISTRY:
                continue
            diagnostics.append(
                Diagnostic(
                    STORE_UNKNOWN_OPERATOR,
                    Severity.WARNING,
                    f"design signature names unregistered operator {token!r} "
                    "(stranded entry; gc will not reclaim it until its "
                    "result is pruned)",
                    node=f"design:{filename}",
                )
            )
    return diagnostics
