"""Symbolic matrix facts the chain analysis interprets designs against.

:class:`SparseMatrix` stores duplicate-free, row-major triplets that may
still contain explicit zeros; ``COMPRESS`` later drops the zero-valued
ones.  Every claim the analyzer makes therefore needs two views:

* **nonzero facts** — over triplets with a nonzero value.  These are a
  *lower bound* on what any kernel sees (nonzero triplets survive with or
  without COMPRESS), so they back ``INVALID`` claims: a conflict witnessed
  among nonzero triplets exists in the built plan either way.
* **stored facts** — over all triplets.  These are an *upper bound* on
  what a kernel without COMPRESS sees, so they back ``VALID`` claims on
  graphs that skip compression (with COMPRESS the nonzero facts are exact
  and serve both roles).

Padding never enters either view: the builder marks padding with
``out_row = -1`` and dynamic validation masks it from partial flow, so
facts over real triplets are exactly the facts over validated partials.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.matrix import SparseMatrix

__all__ = ["MatrixFacts", "matrix_facts"]


@dataclass(frozen=True)
class MatrixFacts:
    """Aggregate facts of one matrix, computed once and reused across the
    whole search (see ``StagedEvaluator.matrix_facts``)."""

    n_rows: int
    n_cols: int
    #: stored triplet count (explicit zeros included) / nonzero count.
    nnz_stored: int
    nnz_nonzero: int
    #: facts over nonzero triplets (lower bounds for INVALID claims).
    max_cols_per_row_nz: int
    max_rows_per_col_nz: int
    n_nonempty_rows_nz: int
    n_distinct_cols_nz: int
    has_empty_row_nz: bool
    #: facts over all stored triplets (upper bounds for VALID claims on
    #: graphs without COMPRESS).
    max_cols_per_row_stored: int
    max_rows_per_col_stored: int
    n_nonempty_rows_stored: int
    n_distinct_cols_stored: int

    # -- compress-aware selectors ---------------------------------------
    # "upper" facts bound what the built plan can contain, "lower" facts
    # bound what it must contain; ``compressed`` says whether the graph
    # runs COMPRESS before mapping.
    def upper_max_elems_per_row(self, compressed: bool) -> int:
        return self.max_cols_per_row_nz if compressed else self.max_cols_per_row_stored

    def upper_max_elems_per_col(self, compressed: bool) -> int:
        return self.max_rows_per_col_nz if compressed else self.max_rows_per_col_stored

    def upper_n_nonempty_rows(self, compressed: bool) -> int:
        return self.n_nonempty_rows_nz if compressed else self.n_nonempty_rows_stored

    def upper_n_distinct_cols(self, compressed: bool) -> int:
        return self.n_distinct_cols_nz if compressed else self.n_distinct_cols_stored

    def upper_nnz(self, compressed: bool) -> int:
        return self.nnz_nonzero if compressed else self.nnz_stored


def _axis_facts(idx: np.ndarray, n: int):
    """(max entries per index, number of indices with entries)."""
    if idx.size == 0:
        return 0, 0
    counts = np.bincount(idx, minlength=n)
    return int(counts.max()), int(np.count_nonzero(counts))


def matrix_facts(matrix: SparseMatrix) -> MatrixFacts:
    """Compute the fact set of one matrix (O(nnz))."""
    rows, cols, vals = matrix.rows, matrix.cols, matrix.vals
    nz = vals != 0.0
    rows_nz, cols_nz = rows[nz], cols[nz]

    max_row_nz, nonempty_rows_nz = _axis_facts(rows_nz, matrix.n_rows)
    max_col_nz, distinct_cols_nz = _axis_facts(cols_nz, matrix.n_cols)
    max_row_st, nonempty_rows_st = _axis_facts(rows, matrix.n_rows)
    max_col_st, distinct_cols_st = _axis_facts(cols, matrix.n_cols)

    return MatrixFacts(
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
        nnz_stored=matrix.nnz,
        nnz_nonzero=int(np.count_nonzero(nz)),
        max_cols_per_row_nz=max_row_nz,
        max_rows_per_col_nz=max_col_nz,
        n_nonempty_rows_nz=nonempty_rows_nz,
        n_distinct_cols_nz=distinct_cols_nz,
        has_empty_row_nz=nonempty_rows_nz < matrix.n_rows,
        max_cols_per_row_stored=max_row_st,
        max_rows_per_col_stored=max_col_st,
        n_nonempty_rows_stored=nonempty_rows_st,
        n_distinct_cols_stored=distinct_cols_st,
    )
