"""Abstract interpretation of reduction chains against matrix facts.

The analyzer walks an :class:`~repro.core.graph.OperatorGraph` and tracks,
per GPU scope (thread / warp / thread block), a symbolic *coverage*
descriptor: how many distinct rows a scope instance can touch, whether it
covers those rows completely, and how many stored elements it can hold.
Each reduction step is then judged against the matrix facts on the
workload's scatter axis (rows for SpMV/SpMM, columns for transpose SpMV),
reproducing the rules :func:`repro.gpu.executor.validate_plan` enforces
dynamically — but from the graph alone, before any plan is built.

Soundness discipline (checked by the differential suite):

* ``INVALID`` claims only cite *lower-bound* facts (over nonzero
  triplets, which survive COMPRESS or its absence alike) and only under
  coverage descriptors whose witness instance provably exists —
  whole-row scopes, or top-level chunk partitions.
* ``VALID`` claims only cite *upper-bound* facts (nonzero facts when the
  graph compresses, stored facts when it does not).
* Branching downgrades: ROW_DIV / BIN keep rows whole, so per-row
  witnesses survive into some child kernel; COL_DIV / HYB_DECOMP split
  within rows, so every scope claim degrades to ``UNKNOWN``.  Column
  conflicts across sibling kernels are *not* checked dynamically (the
  builder's cross-kernel conflict check covers rows only), so transpose
  direct-store refutations also degrade under row branching.
* Padding downgrades: ``*_PAD`` operators add stored elements beyond
  every nonzero-fact bound (a 1-nnz row can pad to a full block of
  same-row partials), so in padded graphs both the upper-bound VALID
  claims and the chunk-placement INVALID claims (which reason about
  which elements land in which chunk from nnz counts) degrade to
  ``UNKNOWN``.  Pure scope-coverage claims survive — a mapping chunk
  bounds *stored* elements, padded or not, and padding only ever adds
  partials, so whole-row conflict witnesses keep existing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.graph import GraphNode, OperatorGraph
from repro.errors import (
    REDUCE_CHAIN_BLOCK_TOTAL,
    REDUCE_CHAIN_DIRECT_STORE,
    REDUCE_CHAIN_NO_GLOBAL,
    REDUCE_CHAIN_ORDER,
    REDUCE_CHAIN_THREAD_TOTAL,
    REDUCE_CHAIN_WARP_TOTAL,
)
from repro.staticcheck.diagnostics import ChainReport, Diagnostic, Severity, Verdict
from repro.staticcheck.facts import MatrixFacts
from repro.workloads import DEFAULT_WORKLOAD, Workload

__all__ = ["analyze_design"]

#: branching operators that keep every row in one child kernel.
_ROW_BRANCHES = {"ROW_DIV", "BIN"}
#: branching operators that split within rows (or across columns).
_OTHER_BRANCHES = {"COL_DIV", "HYB_DECOMP"}

_TOTAL_STEPS = {
    "THREAD_TOTAL_RED": ("thread", REDUCE_CHAIN_THREAD_TOTAL),
    "WARP_TOTAL_RED": ("warp", REDUCE_CHAIN_WARP_TOTAL),
    "SHMEM_TOTAL_RED": ("block", REDUCE_CHAIN_BLOCK_TOTAL),
}
_MERGE_STEPS = {
    "THREAD_BITMAP_RED": "thread",
    "WARP_SEG_RED": "warp",
    "WARP_BITMAP_RED": "warp",
    "SHMEM_OFFSET_RED": "block",
}
_LEVEL_RANK = {"thread": 0, "warp": 1, "block": 2, "global": 3}


@dataclass(frozen=True)
class _Cov:
    """Symbolic coverage of one scope instance.

    ``rows``/``elems`` are upper bounds (None = unbounded).  ``whole``
    asserts the instance covers only complete rows *and* that instances
    partition consecutive rows exactly — so the first instance provably
    holds ``min(rows, n_rows)`` rows.  ``top`` asserts the instance is one
    chunk of the global consecutive element partition of size ``elems``.
    """

    rows: Optional[int] = None
    whole: bool = False
    elems: Optional[int] = None
    top: bool = False


def _subset(cov: _Cov) -> _Cov:
    """A scope holding an arbitrary subset of ``cov`` (bounds survive,
    exactness does not)."""
    return replace(cov, whole=False, top=False)


def _scale(cov: _Cov, k: int) -> _Cov:
    """Union of ``k`` consecutive sibling instances."""
    return _Cov(
        rows=None if cov.rows is None else cov.rows * k,
        whole=cov.whole,
        elems=None if cov.elems is None else cov.elems * k,
        top=cov.top,
    )


def _cap_rows(cov: _Cov, bound: Optional[int]) -> _Cov:
    if bound is None or (cov.rows is not None and cov.rows <= bound):
        return cov
    return replace(cov, rows=bound)


def _int_param(node: GraphNode, name: str) -> Optional[int]:
    value = node.params.get(name)
    try:
        return int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


# ---------------------------------------------------------------------------
# Segment decomposition
# ---------------------------------------------------------------------------

@dataclass
class _Segment:
    """One linear kernel pipeline: mapping levels + reduction steps."""

    compressed: bool = False
    #: a ``*_PAD`` operator ran: stored-element counts exceed every
    #: nonzero/stored fact bound, and padded elements scatter too.
    padded: bool = False
    #: level name -> (kind suffix, node) in node order.
    levels: Dict[str, Tuple[str, GraphNode]] = None  # type: ignore[assignment]
    level_order: List[str] = None  # type: ignore[assignment]
    steps: List[Tuple[str, str]] = None  # (level, op_name) type: ignore[assignment]
    tpb: Optional[int] = None

    def __post_init__(self) -> None:
        self.levels = {}
        self.level_order = []
        self.steps = []


def _read_segment(nodes: Sequence[GraphNode]) -> _Segment:
    seg = _Segment()
    for node in nodes:
        name = node.op_name
        if name == "COMPRESS":
            seg.compressed = True
        elif "PAD" in name:
            seg.padded = True
        elif name.startswith(("BMTB_", "BMW_", "BMT_")) and name.endswith(
            ("_ROW_BLOCK", "_NNZ_BLOCK", "_COL_BLOCK")
        ):
            level = name.split("_", 1)[0].lower()  # bmtb / bmw / bmt
            seg.levels[level] = (name.rsplit("_", 2)[-2], node)  # ROW/NNZ/COL
            seg.level_order.append(level)
        elif name == "SET_RESOURCES":
            seg.tpb = _int_param(node, "threads_per_block")
        elif name in _TOTAL_STEPS:
            seg.steps.append((_TOTAL_STEPS[name][0], name))
        elif name in _MERGE_STEPS:
            seg.steps.append((_MERGE_STEPS[name], name))
        elif name in ("GMEM_ATOM_RED", "GMEM_DIRECT_STORE"):
            seg.steps.append(("global", name))
    return seg


def _level_coverage(seg: _Segment) -> Dict[str, _Cov]:
    """Per-mapping-level coverage, nesting outer-to-inner."""
    covs: Dict[str, _Cov] = {}
    # The mapping stage applies coarse-to-fine; any other order would be a
    # structure the builder does not lay out — stay agnostic about it.
    expected = [lv for lv in ("bmtb", "bmw", "bmt") if lv in seg.levels]
    if seg.level_order != expected:
        return {lv: _Cov() for lv in seg.levels}
    parent: Optional[_Cov] = None
    for level in seg.level_order:
        kind, node = seg.levels[level]
        if kind == "ROW":
            r = _int_param(node, "rows_per_block")
            if r is None or r < 1:
                cov = _Cov(rows=None, whole=False)
            elif parent is None:
                cov = _Cov(rows=r, whole=True)
            elif parent.rows is not None and parent.whole:
                cov = _Cov(rows=min(r, parent.rows), whole=True)
            else:
                rows = r if parent.rows is None else min(r, parent.rows)
                cov = _Cov(rows=rows, whole=False, elems=parent.elems)
        elif kind == "NNZ":
            c = _int_param(node, "nnz_per_block")
            if c is None or c < 1:
                cov = _Cov()
            else:
                elems = (
                    c
                    if parent is None or parent.elems is None
                    else min(c, parent.elems)
                )
                cov = _Cov(
                    rows=None if parent is None else parent.rows,
                    elems=elems,
                    top=parent is None,
                )
        else:  # COL: a column slice of the parent scope
            cov = _Cov(
                rows=None if parent is None else parent.rows,
                elems=None if parent is None else parent.elems,
            )
        covs[level] = cov
        parent = cov
    return covs


def _scope_coverage(seg: _Segment) -> Dict[str, _Cov]:
    """Coverage of the thread / warp / block scopes under the builder's
    thread-layout rules (see ``repro.core.kernel.builder._distribute``)."""
    lv = _level_coverage(seg)
    bmtb, bmw, bmt = lv.get("bmtb"), lv.get("bmw"), lv.get("bmt")

    if bmt is not None:
        thread = bmt
    elif bmw is not None:
        thread = _subset(bmw)
    elif bmtb is not None:
        thread = _subset(bmtb)
    else:
        thread = _Cov()  # grid-stride over everything

    if bmw is not None:
        warp = bmw
    elif bmt is not None:
        warp = _scale(bmt, 32)
        if bmtb is not None:
            # a warp never crosses its BMTB
            warp = _cap_rows(warp, bmtb.rows)
            if bmtb.elems is not None:
                warp = replace(
                    warp,
                    elems=bmtb.elems
                    if warp.elems is None
                    else min(warp.elems, bmtb.elems),
                )
    elif bmtb is not None:
        warp = _subset(bmtb)
    else:
        warp = _Cov()

    if bmtb is not None:
        block = bmtb
    elif seg.tpb is not None and seg.tpb >= 32 and bmw is not None:
        block = _scale(bmw, max(1, seg.tpb // 32))
    elif seg.tpb is not None and seg.tpb >= 1 and bmt is not None:
        block = _scale(bmt, seg.tpb)
    else:
        block = _Cov()

    return {"thread": thread, "warp": warp, "block": block}


# ---------------------------------------------------------------------------
# Per-step rules
# ---------------------------------------------------------------------------

def _total_verdict(
    cov: _Cov,
    workload: Workload,
    facts: MatrixFacts,
    compressed: bool,
    padded: bool,
    branch: str,
) -> Tuple[Verdict, str]:
    """A TOTAL reduction at a scope with coverage ``cov``: dynamically
    valid iff every scope instance touches at most one scatter index.

    ``padded`` graphs void every fact-derived element count (padding adds
    same-row / column-zero partials past any nonzero bound), so only
    scope-coverage claims and add-only conflict witnesses survive it.
    """
    if workload.transpose:
        # scatter axis: columns
        if not padded and facts.upper_n_distinct_cols(compressed) <= 1:
            return Verdict.VALID, "at most one distinct column in the matrix"
        if cov.elems is not None and cov.elems <= 1:
            return Verdict.VALID, "scope holds at most one element"
        if (
            not padded
            and cov.rows == 1
            and facts.upper_max_elems_per_row(compressed) <= 1
        ):
            return Verdict.VALID, "one row per scope, rows hold <= 1 element"
        if branch != "other" and cov.whole and facts.max_cols_per_row_nz >= 2:
            return (
                Verdict.INVALID,
                "a whole-row scope covers a row with "
                f"{facts.max_cols_per_row_nz} distinct columns",
            )
        if (
            not padded
            and branch == "none"
            and cov.top
            and cov.elems is not None
        ):
            if facts.n_distinct_cols_nz >= 2 and facts.upper_nnz(compressed) <= cov.elems:
                return (
                    Verdict.INVALID,
                    "a single chunk covers the whole matrix "
                    f"({facts.n_distinct_cols_nz} distinct columns)",
                )
            if (
                compressed
                and cov.elems >= 2
                and facts.max_cols_per_row_nz >= cov.elems + 1
            ):
                return (
                    Verdict.INVALID,
                    "a row-major run longer than the chunk size forces >= 2 "
                    "distinct columns into one chunk",
                )
        return Verdict.UNKNOWN, ""

    # scatter axis: rows (SpMV / SpMM)
    if not padded and facts.upper_n_nonempty_rows(compressed) <= 1:
        return Verdict.VALID, "at most one non-empty row in the matrix"
    if cov.rows == 1:
        return Verdict.VALID, "scope covers at most one row"
    if cov.elems is not None and cov.elems <= 1:
        return Verdict.VALID, "scope holds at most one element"
    if (
        branch == "none"
        and cov.whole
        and cov.rows is not None
        and cov.rows >= 2
        and not facts.has_empty_row_nz
        and facts.n_rows >= 2
    ):
        return (
            Verdict.INVALID,
            f"a scope of {cov.rows} consecutive rows with no empty rows "
            "yields >= 2 row partials",
        )
    if (
        not padded
        and branch == "none"
        and cov.top
        and cov.elems is not None
    ):
        if facts.n_nonempty_rows_nz >= 2 and (
            facts.upper_nnz(compressed) <= cov.elems
            or cov.elems > facts.upper_max_elems_per_row(compressed)
        ):
            return (
                Verdict.INVALID,
                "an element chunk provably spans >= 2 non-empty rows",
            )
    return Verdict.UNKNOWN, ""


def _direct_store_verdict(
    merge_cov: Optional[_Cov],
    workload: Workload,
    facts: MatrixFacts,
    compressed: bool,
    padded: bool,
    branch: str,
) -> Tuple[Verdict, str]:
    """GMEM_DIRECT_STORE: dynamically valid iff, after the coarsest merge
    step (or per element when none ran), each output index receives at
    most one partial within its kernel.

    Under ``padded`` the fact-derived per-output element bounds are void
    (a padded row/column holds extra same-index partials), so the VALID
    claims built on them degrade; the INVALID ones survive, as padding
    only ever adds partials.
    """
    transpose = workload.transpose
    upper_per_out = (
        facts.upper_max_elems_per_col(compressed)
        if transpose
        else facts.upper_max_elems_per_row(compressed)
    )
    lower_per_out = facts.max_rows_per_col_nz if transpose else facts.max_cols_per_row_nz

    if merge_cov is None:
        # one partial per stored element
        if transpose:
            if branch == "none" and lower_per_out >= 2:
                return (
                    Verdict.INVALID,
                    f"a column receives {lower_per_out} unmerged partials",
                )
            if branch == "none" and not padded and upper_per_out <= 1:
                return Verdict.VALID, "every column holds at most one element"
        else:
            if branch in ("none", "row") and lower_per_out >= 2:
                return (
                    Verdict.INVALID,
                    f"a row receives {lower_per_out} unmerged partials",
                )
            if branch in ("none", "row") and not padded and upper_per_out <= 1:
                return Verdict.VALID, "every row holds at most one element"
        return Verdict.UNKNOWN, ""

    if (
        not padded
        and upper_per_out <= 1
        and branch in (("none",) if transpose else ("none", "row"))
    ):
        return Verdict.VALID, "every output index holds at most one element"

    if merge_cov.whole and merge_cov.rows is not None:
        if not transpose:
            if branch in ("none", "row"):
                return (
                    Verdict.VALID,
                    "rows merge entirely within one row-aligned scope",
                )
        elif branch == "none" and facts.max_rows_per_col_nz > merge_cov.rows:
            return (
                Verdict.INVALID,
                f"a column spans more than {merge_cov.rows} rows, so it "
                "crosses row-aligned merge scopes",
            )
        return Verdict.UNKNOWN, ""

    if merge_cov.elems is not None:
        if lower_per_out > merge_cov.elems and (
            branch == "none" if transpose else branch in ("none", "row")
        ):
            return (
                Verdict.INVALID,
                f"an output index with {lower_per_out} elements cannot fit "
                f"one merge scope of {merge_cov.elems} elements",
            )
        if (
            branch == "none"
            and not padded
            and merge_cov.top
            and facts.upper_nnz(compressed) <= merge_cov.elems
        ):
            return Verdict.VALID, "a single merge scope covers the whole matrix"
    return Verdict.UNKNOWN, ""


# ---------------------------------------------------------------------------
# Chain analysis
# ---------------------------------------------------------------------------

def _analyze_segment(
    nodes: Sequence[GraphNode],
    workload: Workload,
    facts: Optional[MatrixFacts],
    branch: str,
) -> ChainReport:
    seg = _read_segment(nodes)
    diags: List[Diagnostic] = []
    steps: List[Tuple[str, Verdict]] = []
    verdicts: List[Verdict] = []

    # Step-order sanity (unreachable through OperatorGraph construction,
    # but the audit pass replays raw persisted designs through here).
    last_rank = -1
    reached_global = False
    for level, name in seg.steps:
        rank = _LEVEL_RANK[level]
        if rank <= last_rank or reached_global:
            diags.append(
                Diagnostic(
                    REDUCE_CHAIN_ORDER,
                    Severity.ERROR,
                    f"{name} out of scope order in the reduction chain",
                    node=name,
                )
            )
            verdicts.append(Verdict.INVALID)
        last_rank = rank
        reached_global = reached_global or level == "global"
    if not reached_global:
        diags.append(
            Diagnostic(
                REDUCE_CHAIN_NO_GLOBAL,
                Severity.ERROR,
                "reduction chain never reaches global memory",
            )
        )
        verdicts.append(Verdict.INVALID)

    scopes = _scope_coverage(seg)
    merge_cov: Optional[_Cov] = None  # coarsest reduction scope before global
    if facts is not None:
        for level, name in seg.steps:
            if name in _TOTAL_STEPS:
                verdict, why = _total_verdict(
                    scopes[level], workload, facts, seg.compressed,
                    seg.padded, branch,
                )
                steps.append((name, verdict))
                verdicts.append(verdict)
                if verdict is Verdict.INVALID:
                    diags.append(
                        Diagnostic(
                            _TOTAL_STEPS[name][1],
                            Severity.ERROR,
                            f"{name} cannot validate for {workload.name}: {why}",
                            node=name,
                        )
                    )
                merge_cov = scopes[level]
            elif name in _MERGE_STEPS:
                steps.append((name, Verdict.VALID))
                verdicts.append(Verdict.VALID)
                merge_cov = scopes[level]
            elif name == "GMEM_DIRECT_STORE":
                verdict, why = _direct_store_verdict(
                    merge_cov, workload, facts, seg.compressed,
                    seg.padded, branch,
                )
                steps.append((name, verdict))
                verdicts.append(verdict)
                if verdict is Verdict.INVALID:
                    diags.append(
                        Diagnostic(
                            REDUCE_CHAIN_DIRECT_STORE,
                            Severity.ERROR,
                            "GMEM_DIRECT_STORE cannot validate for "
                            f"{workload.name}: {why}",
                            node=name,
                        )
                    )
            elif name == "GMEM_ATOM_RED":
                steps.append((name, Verdict.VALID))
                verdicts.append(Verdict.VALID)

    if Verdict.INVALID in verdicts:
        overall = Verdict.INVALID
    elif verdicts and all(v is Verdict.VALID for v in verdicts):
        overall = Verdict.VALID
    else:
        overall = Verdict.UNKNOWN
    return ChainReport(verdict=overall, diagnostics=diags, steps=tuple(steps))


def _analyze_sequence(
    nodes: Sequence[GraphNode],
    workload: Workload,
    facts: Optional[MatrixFacts],
    branch: str,
) -> ChainReport:
    for i, node in enumerate(nodes):
        name = node.op_name
        if name in _ROW_BRANCHES or name in _OTHER_BRANCHES:
            child_branch = (
                branch if branch == "other" else
                ("row" if name in _ROW_BRANCHES else "other")
            )
            # The prefix (COMPRESS, SORT, ...) applies to every child kernel.
            prefix = list(nodes[:i])
            children = node.children or [list(nodes[i + 1 :])]
            report: Optional[ChainReport] = None
            for child in children:
                sub = _analyze_sequence(
                    prefix + list(child), workload, facts, child_branch
                )
                report = sub if report is None else report.merge(sub)
            return report if report is not None else ChainReport(Verdict.UNKNOWN)
    return _analyze_segment(nodes, workload, facts, branch)


def analyze_design(
    graph: OperatorGraph,
    workload: Optional[Workload] = None,
    facts: Optional[MatrixFacts] = None,
) -> ChainReport:
    """Statically judge one design's reduction chain.

    ``facts=None`` restricts the analysis to matrix-independent checks
    (step order, global-step presence); with facts, every TOTAL reduction
    and direct store is proved valid/invalid/unknown per the soundness
    contract documented on :class:`~repro.staticcheck.diagnostics.ChainReport`.
    """
    workload = workload or DEFAULT_WORKLOAD
    return _analyze_sequence(list(graph.nodes), workload, facts, branch="none")
