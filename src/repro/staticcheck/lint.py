"""Lint over generated CUDA-like kernel source.

:mod:`repro.core.kernel.codegen` renders documentation-grade kernel text;
this pass reads it back the way a reviewer would.  Because the renderer
splices pre-defined fragments into a skeleton, the interesting bugs are
*seams*: a fragment consuming an identifier no upstream fragment bound
(``thread_result`` with no thread-level producer), a plain ``y[out_row] =``
store on a chain the reduction analysis proved conflicting, a declaration
no fragment ever reads.

The lint is purely textual — it never builds or executes anything — and it
understands the renderer's conventions: pseudo-helper calls
(``flush_partial``, ``segmented_warp_scan``, ...) and runtime-context
symbols (``n_bmt``, ``first_row_of_block``, ...) are documented vocabulary,
not undeclared identifiers.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.errors import (
    KERNEL_ACCUM_DTYPE,
    KERNEL_DEAD_FRAGMENT,
    KERNEL_OOB_INDEX,
    KERNEL_SCATTER_NEEDS_ATOMIC,
    KERNEL_UNDECLARED_IDENT,
    REDUCE_CHAIN_DIRECT_STORE,
)
from repro.staticcheck.diagnostics import ChainReport, Diagnostic, Severity, Verdict

__all__ = ["lint_kernel"]

#: C / CUDA vocabulary that is never an identifier to resolve.
_KEYWORDS = frozenset(
    {
        "if", "else", "for", "while", "break", "continue", "return",
        "int", "float", "double", "unsigned", "void", "const", "extern",
        "__global__", "__shared__", "__restrict__",
    }
)

#: Real CUDA builtins available to every kernel.
_CUDA_BUILTINS = frozenset(
    {
        "threadIdx", "blockIdx", "blockDim", "gridDim", "warpSize",
        "atomicAdd", "__syncthreads", "__shfl_down_sync", "__ballot_sync",
        "min", "max",
    }
)

#: Pseudo-helpers the fragments call (paper Fig 6's named sub-operations).
_HELPERS = frozenset(
    {
        "flush_partial", "row_of", "col_of", "row_bitmap_bit", "segmented_warp_scan",
        "bitmap_warp_reduce", "global_thread", "total_threads", "warp_id",
        "total_warps",
    }
)

#: Runtime-context symbols the renderer leaves symbolic on purpose: launch
#: extents, per-block row windows, the shared row-offset table, and the
#: implicit SpMM dense-column index ``j`` (documented in the loop body).
_CONTEXT = frozenset(
    {
        "n_bmtb", "n_bmw", "n_bmt", "n_stored",
        "first_row_of_block", "last_row_of_block",
        "shmem_row_offset", "block_result",
        "row_boundary_mask", "lane_is_segment_tail", "segment_row",
        "is_row_head", "is_row_tail", "my_row",
        "current_row", "origin_rows",
        "j",
    }
)

_IDENT = re.compile(r"\b[A-Za-z_]\w*\b")
_DECL = re.compile(r"\b(?:int|float|double|unsigned)\s+([A-Za-z_]\w*)")
_SIGNATURE = re.compile(r"__global__\s+void\s+([A-Za-z_]\w*)\s*\(([^)]*)\)")
_PLUS_ONE_INDEX = re.compile(r"([A-Za-z_]\w*)\[\s*[A-Za-z_]\w*\s*\+\s*1\s*\]")
_DIRECT_STORE = re.compile(r"\by\[[^\]]*\]\s*=\s*[^=]")


def _strip_comments(line: str) -> str:
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


def _signature_names(source: str) -> tuple:
    """(kernel name or None, argument names) from the signature line."""
    match = _SIGNATURE.search(source)
    if match is None:
        return None, []
    names = []
    for piece in match.group(2).split(","):
        idents = _IDENT.findall(piece)
        if idents:
            names.append(idents[-1])  # the name trails its qualifiers
    return match.group(1), names


def lint_kernel(
    source: str,
    value_bytes: int = 4,
    report: Optional[ChainReport] = None,
) -> List[Diagnostic]:
    """Lint one rendered kernel; returns diagnostics (empty = clean).

    ``value_bytes`` is the plan's value width, so the lint can flag a
    ``float`` pipeline rendered for a double-precision plan.  ``report``
    is the design's :func:`~repro.staticcheck.reduction.analyze_design`
    outcome, letting the lint escalate a plain direct store into
    ``KERNEL-SCATTER-NEEDS-ATOMIC`` when the chain analysis proved the
    store conflicting.
    """
    diagnostics: List[Diagnostic] = []
    lines = source.splitlines()
    code_lines = [_strip_comments(line) for line in lines]
    code = "\n".join(code_lines)

    kernel_name, argument_list = _signature_names(code)
    declared = set(argument_list)
    first_decl_line: Dict[str, int] = {}
    for lineno, line in enumerate(code_lines, start=1):
        for name in _DECL.findall(line):
            declared.add(name)
            first_decl_line.setdefault(name, lineno)

    known = declared | _KEYWORDS | _CUDA_BUILTINS | _HELPERS | _CONTEXT
    if kernel_name is not None:
        known.add(kernel_name)
    flagged = set()
    for lineno, line in enumerate(code_lines, start=1):
        for name in _IDENT.findall(line):
            if name in known or name in flagged:
                continue
            flagged.add(name)
            diagnostics.append(
                Diagnostic(
                    KERNEL_UNDECLARED_IDENT,
                    Severity.ERROR,
                    f"identifier {name!r} is used but never declared "
                    "(unbound fragment seam)",
                    node=f"line {lineno}",
                )
            )

    # Dead declarations: bound once, never read.  Arguments are exempt
    # (the signature documents the ABI even when a fragment skips an arg).
    argument_names = set(argument_list)
    for name, lineno in sorted(first_decl_line.items(), key=lambda kv: kv[1]):
        if name in argument_names:
            continue
        if name.endswith("_v"):
            # "get meta of BMX" loads document the level's format arrays
            # whether or not a fragment consumes them.
            continue
        uses = len(re.findall(rf"\b{re.escape(name)}\b", code))
        if uses <= 1:
            diagnostics.append(
                Diagnostic(
                    KERNEL_DEAD_FRAGMENT,
                    Severity.WARNING,
                    f"{name!r} is declared but never used",
                    node=f"line {lineno}",
                )
            )

    # arr[i + 1] reads past the chunk unless arr is an offsets table
    # (offset arrays carry n+1 entries by construction).
    for lineno, line in enumerate(code_lines, start=1):
        for array in _PLUS_ONE_INDEX.findall(line):
            if "offset" in array:
                continue
            diagnostics.append(
                Diagnostic(
                    KERNEL_OOB_INDEX,
                    Severity.WARNING,
                    f"{array}[... + 1] indexes one past the loop bound and "
                    f"{array} is not an offsets table",
                    node=f"line {lineno}",
                )
            )

    if report is not None and report.verdict is Verdict.INVALID:
        store_conflict = any(
            d.code == REDUCE_CHAIN_DIRECT_STORE for d in report.diagnostics
        )
        if store_conflict:
            for lineno, line in enumerate(code_lines, start=1):
                if "atomicAdd" in line:
                    continue
                if _DIRECT_STORE.search(line):
                    diagnostics.append(
                        Diagnostic(
                            KERNEL_SCATTER_NEEDS_ATOMIC,
                            Severity.ERROR,
                            "plain store into y on a chain whose direct "
                            "store was proved conflicting — needs atomicAdd",
                            node=f"line {lineno}",
                        )
                    )

    if value_bytes == 8 and re.search(r"\bfloat\b", code):
        lineno = next(
            i
            for i, line in enumerate(code_lines, start=1)
            if re.search(r"\bfloat\b", line)
        )
        diagnostics.append(
            Diagnostic(
                KERNEL_ACCUM_DTYPE,
                Severity.WARNING,
                "float arithmetic in a kernel rendered for an 8-byte "
                "value type (accumulator narrows the result)",
                node=f"line {lineno}",
            )
        )
    return diagnostics
