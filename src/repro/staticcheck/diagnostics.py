"""Typed diagnostics shared by every static-analysis pass.

A :class:`Diagnostic` is one finding: a stable code (the same ``REDUCE-CHAIN-*``
/ ``GRAPH-*`` codes the dynamic validators attach to their exceptions, see
:mod:`repro.errors`, plus ``KERNEL-*`` lint codes and ``STORE-*`` audit codes
that only exist statically), a severity, a human message, and the node or
location it anchors to.

A :class:`ChainReport` is the result of the reduction-chain abstract
interpretation: a three-valued :class:`Verdict` plus the per-step diagnostics
that prove it.  The verdict is *sound* in both directions by contract:

* ``INVALID`` — the design is guaranteed to fail dynamic validation
  (``validate_plan`` raises, or the Designer/builder rejects it) on the
  analyzed matrix.  This is the direction pre-eval pruning relies on.
* ``VALID`` — every kernel that builds passes ``validate_plan``.
* ``UNKNOWN`` — the analysis cannot prove either; the candidate must be
  evaluated dynamically.

The differential suite in ``tests/test_staticcheck.py`` enforces the
contract against the real validators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

__all__ = ["Severity", "Verdict", "Diagnostic", "ChainReport"]


class Severity(str, Enum):
    """How actionable a diagnostic is (CI fails on ``ERROR`` only)."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


class Verdict(str, Enum):
    """Three-valued result of the reduction-chain analysis."""

    VALID = "valid"
    INVALID = "invalid"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class Diagnostic:
    """One static finding.

    ``node`` names what the finding anchors to: an operator name for chain
    diagnostics, a source line (``"line 12"``) for lint, a store key for
    audits; ``None`` when the finding is design-global.
    """

    code: str
    severity: Severity
    message: str
    node: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" [{self.node}]" if self.node else ""
        return f"{self.severity.value}: {self.code}{where}: {self.message}"


@dataclass
class ChainReport:
    """Outcome of analyzing one design's reduction chain.

    ``sound=True`` is the class invariant, recorded explicitly so callers
    (and persisted reports) state which contract the verdict was produced
    under.
    """

    verdict: Verdict
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: (operator-name, per-step verdict) for every reduction step analyzed.
    steps: Tuple[Tuple[str, Verdict], ...] = ()
    sound: bool = True

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def merge(self, other: "ChainReport") -> "ChainReport":
        """Combine with a sibling branch: a design is invalid when *any*
        kernel is, valid only when *all* are."""
        if Verdict.INVALID in (self.verdict, other.verdict):
            verdict = Verdict.INVALID
        elif self.verdict is Verdict.VALID and other.verdict is Verdict.VALID:
            verdict = Verdict.VALID
        else:
            verdict = Verdict.UNKNOWN
        return ChainReport(
            verdict=verdict,
            diagnostics=self.diagnostics + other.diagnostics,
            steps=self.steps + other.steps,
            sound=self.sound and other.sound,
        )
