"""AlphaSparse core: Operator Graph IR, Designer, Format & Kernel Generator.

The pipeline (paper Fig 4):

``OperatorGraph`` → :class:`~repro.core.designer.Designer` executes the
operators against a :class:`~repro.core.metadata.MatrixMetadataSet` →
:class:`~repro.core.kernel.builder.KernelBuilder` and
:class:`~repro.core.format.FormatConstructor` project the metadata into a
machine-designed format plus an executable kernel
(:class:`~repro.core.kernel.program.GeneratedProgram`), optimised by
Model-Driven Format Compression (:mod:`repro.core.optimizer`).
"""

from repro.core.metadata import MatrixMetadataSet
from repro.core.graph import GraphNode, OperatorGraph, GraphValidationError
from repro.core.designer import Designer, DesignError
from repro.core.format import FormatArray, MachineDesignedFormat
from repro.core.kernel.program import GeneratedProgram, ProgramResult
from repro.core.kernel.builder import KernelBuilder, build_program
from repro.core.optimizer import ModelDrivenCompressor, CompressionModel
from repro.core.operators import OPERATOR_REGISTRY, get_operator

__all__ = [
    "MatrixMetadataSet",
    "GraphNode",
    "OperatorGraph",
    "GraphValidationError",
    "Designer",
    "DesignError",
    "FormatArray",
    "MachineDesignedFormat",
    "GeneratedProgram",
    "ProgramResult",
    "KernelBuilder",
    "build_program",
    "ModelDrivenCompressor",
    "CompressionModel",
    "OPERATOR_REGISTRY",
    "get_operator",
]
