"""Format construction (paper §V-B).

"All arrays of a format are extracted from the Matrix Metadata Set by
choosing the metadata needed by the kernel."  The constructor collects the
element arrays (values / column indices), the auxiliary arrays the mapping
operators recorded (offsets, sizes, column bases), and ``origin_rows`` when
row reordering made it non-trivial — then runs Model-Driven Format
Compression over every auxiliary integer array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.metadata import MatrixMetadataSet
from repro.core.optimizer import CompressionModel, ModelDrivenCompressor
from repro.gpu.memory import INDEX_BYTES, VALUE_BYTES

__all__ = ["FormatArray", "MachineDesignedFormat", "build_format"]


@dataclass
class FormatArray:
    """One named array of a machine-designed format.

    ``model`` is set when Model-Driven Compression replaced the array by a
    closed form; the array then costs only its exception table.
    """

    name: str
    data: np.ndarray
    element_bytes: int
    model: Optional[CompressionModel] = None

    @property
    def raw_bytes(self) -> int:
        return int(self.data.size * self.element_bytes)

    @property
    def stored_bytes(self) -> int:
        if self.model is not None:
            return self.model.stored_bytes
        return self.raw_bytes

    @property
    def compressed(self) -> bool:
        return self.model is not None


@dataclass
class MachineDesignedFormat:
    """The data layout a generated kernel consumes."""

    name: str
    arrays: List[FormatArray]

    def array(self, name: str) -> FormatArray:
        for arr in self.arrays:
            if arr.name == name:
                return arr
        raise KeyError(f"format has no array {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(arr.name == name for arr in self.arrays)

    @property
    def total_bytes(self) -> int:
        return sum(arr.stored_bytes for arr in self.arrays)

    @property
    def raw_bytes(self) -> int:
        """Footprint before Model-Driven Compression."""
        return sum(arr.raw_bytes for arr in self.arrays)

    @property
    def aux_bytes(self) -> int:
        """Bytes of everything except the value/column streams — what the
        execution plan charges as ``extra_format_bytes``."""
        return sum(
            arr.stored_bytes
            for arr in self.arrays
            if arr.name not in ("values", "col_indices")
        )

    @property
    def compression_ratio(self) -> float:
        raw = self.raw_bytes
        return self.total_bytes / raw if raw else 1.0

    def describe(self) -> str:
        lines = [f"format {self.name}: {self.total_bytes} bytes"]
        for arr in self.arrays:
            tag = (
                f"model[{arr.model.kind}]" if arr.model is not None else "array"
            )
            lines.append(
                f"  {arr.name:<24} {tag:<22} {arr.stored_bytes:>10} B"
                f" (raw {arr.raw_bytes} B)"
            )
        return "\n".join(lines)


def build_format(
    meta: MatrixMetadataSet,
    compressor: Optional[ModelDrivenCompressor] = None,
    name: str = "machine-designed",
) -> MachineDesignedFormat:
    """Extract the format from final metadata and compress its index arrays.

    ``compressor=None`` disables Model-Driven Compression (used by the
    Fig 14c ablation benchmark).
    """
    arrays: List[FormatArray] = [
        FormatArray("values", meta.elem_val, VALUE_BYTES),
        FormatArray("col_indices", meta.elem_col.astype(np.int64), INDEX_BYTES),
    ]
    origin = meta.origin_rows
    if not np.array_equal(origin, np.arange(origin.size)):
        arrays.append(FormatArray("origin_rows", origin, INDEX_BYTES))
    for key in sorted(meta.format_arrays):
        arrays.append(
            FormatArray(key, np.asarray(meta.format_arrays[key]), INDEX_BYTES)
        )
    if compressor is not None:
        for arr in arrays:
            if arr.name in ("values", "col_indices"):
                continue
            arr.model = compressor.fit(arr.data)
    return MachineDesignedFormat(name=name, arrays=arrays)
