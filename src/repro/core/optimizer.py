"""Model-Driven Format Compression (paper §V-D, derived from [57]).

Replaces format index arrays by closed-form models — ``row_offset = 64*bid``
instead of ``row_offset = reduce_row_offsets[bid]`` — eliminating their
global-memory traffic.  Three hypothesis classes are fitted, in order of
preference:

* **linear**       ``a[i] = c0 + c1 * i``
* **step**         ``a[i] = c0 + c1 * (i // period)``
* **periodic linear** ``a[i] = c0 + c1 * (i % period) + c2 * (i // period)``

Unlike ordinary regression, *any* model error would corrupt the SpMV
result, so fits are exact by construction; a small number of mismatching
positions is tolerated by emitting explicit ``if`` exceptions (paper: "a
small number of errors can be tolerated by adding if statements").  Users
can extend the hypothesis space via :meth:`ModelDrivenCompressor.register`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

__all__ = ["CompressionModel", "ModelDrivenCompressor"]

#: Bytes to store one exception (index + value) in the generated kernel.
_EXCEPTION_BYTES = 8


@dataclass(frozen=True)
class CompressionModel:
    """A fitted closed-form replacement for a format array."""

    kind: str
    coeffs: Tuple[float, ...]
    period: int
    exceptions: Tuple[Tuple[int, int], ...]
    length: int

    def predict(self, idx: np.ndarray) -> np.ndarray:
        """Evaluate the model (exceptions applied) at integer indices."""
        idx = np.asarray(idx, dtype=np.int64)
        if self.kind == "linear":
            c0, c1 = self.coeffs
            out = c0 + c1 * idx
        elif self.kind == "step":
            c0, c1 = self.coeffs
            out = c0 + c1 * (idx // self.period)
        elif self.kind == "periodic_linear":
            c0, c1, c2 = self.coeffs
            out = c0 + c1 * (idx % self.period) + c2 * (idx // self.period)
        else:  # pragma: no cover - registry guards kinds
            raise ValueError(f"unknown model kind {self.kind!r}")
        out = np.rint(out).astype(np.int64)
        for pos, val in self.exceptions:
            mask = idx == pos
            if mask.any():
                out[mask] = val
        return out

    @property
    def stored_bytes(self) -> int:
        """Residual memory footprint: only the exception table remains."""
        return len(self.exceptions) * _EXCEPTION_BYTES

    def expression(self, var: str = "i") -> str:
        """C-like expression used by the code generator."""
        if self.kind == "linear":
            c0, c1 = self.coeffs
            return f"{_fmt(c0)} + {_fmt(c1)} * {var}"
        if self.kind == "step":
            c0, c1 = self.coeffs
            return f"{_fmt(c0)} + {_fmt(c1)} * ({var} / {self.period})"
        c0, c1, c2 = self.coeffs
        return (
            f"{_fmt(c0)} + {_fmt(c1)} * ({var} % {self.period})"
            f" + {_fmt(c2)} * ({var} / {self.period})"
        )


def _fmt(coeff: float) -> str:
    return str(int(coeff)) if float(coeff).is_integer() else f"{coeff:g}"


def _exceptions_from(
    arr: np.ndarray, pred: np.ndarray, budget: int
) -> Optional[Tuple[Tuple[int, int], ...]]:
    bad = np.flatnonzero(arr != pred)
    if bad.size > budget:
        return None
    return tuple((int(i), int(arr[i])) for i in bad)


FitFunc = Callable[[np.ndarray, int], Optional[CompressionModel]]


def _fit_linear(arr: np.ndarray, budget: int) -> Optional[CompressionModel]:
    n = arr.size
    if n < 2:
        return CompressionModel("linear", (float(arr[0]) if n else 0.0, 0.0), 1, (), n)
    diffs = np.diff(arr)
    c1 = float(np.median(diffs))
    c0 = float(arr[0])
    pred = np.rint(c0 + c1 * np.arange(n)).astype(np.int64)
    exc = _exceptions_from(arr, pred, budget)
    if exc is None:
        return None
    return CompressionModel("linear", (c0, c1), 1, exc, n)


def _candidate_periods(arr: np.ndarray) -> List[int]:
    """Plausible periods from the first change point of the diff sequence."""
    diffs = np.diff(arr)
    if diffs.size == 0:
        return []
    changes = np.flatnonzero(diffs != diffs[0])
    cands: List[int] = []
    if changes.size:
        p = int(changes[0]) + 1
        if 1 < p <= arr.size // 2:
            cands.append(p)
    # Also try the gap between the first two change points (robust when the
    # head of the array is irregular).
    if changes.size >= 2:
        gap = int(changes[1] - changes[0])
        if 1 < gap <= arr.size // 2 and gap not in cands:
            cands.append(gap)
    return cands


def _fit_step(arr: np.ndarray, budget: int) -> Optional[CompressionModel]:
    n = arr.size
    for period in _candidate_periods(arr):
        groups = np.arange(n) // period
        c0 = float(arr[0])
        # Slope from the first full step.
        if groups.max() < 1:
            continue
        c1 = float(arr[period] - arr[0])
        pred = np.rint(c0 + c1 * groups).astype(np.int64)
        exc = _exceptions_from(arr, pred, budget)
        if exc is not None:
            return CompressionModel("step", (c0, c1), period, exc, n)
    return None


def _fit_periodic_linear(arr: np.ndarray, budget: int) -> Optional[CompressionModel]:
    n = arr.size
    for period in _candidate_periods(arr):
        if n < 2 * period:
            continue
        c0 = float(arr[0])
        c1 = float(arr[1] - arr[0]) if period > 1 else 0.0
        c2 = float(arr[period] - arr[0])
        idx = np.arange(n)
        pred = np.rint(c0 + c1 * (idx % period) + c2 * (idx // period)).astype(np.int64)
        exc = _exceptions_from(arr, pred, budget)
        if exc is not None:
            return CompressionModel("periodic_linear", (c0, c1, c2), period, exc, n)
    return None


class ModelDrivenCompressor:
    """Tries each hypothesis class in order; returns the first exact fit.

    ``max_exception_fraction`` bounds the tolerated ``if`` statements; the
    default allows max(2, 1 %) mismatches — beyond that the array stays in
    memory.

    Fits are memoised by array content (thread-safe LRU of
    ``memo_entries`` results, 0 disables).  The staged evaluation runtime
    reuses design leaves across a structure's whole parameter grid, so the
    same format arrays reach the compressor hundreds of times per search;
    one content hash replaces the multi-pass hypothesis fits on repeats.
    :class:`CompressionModel` is frozen, so a memoised model is safe to
    share between concurrent builds.
    """

    def __init__(
        self, max_exception_fraction: float = 0.01, memo_entries: int = 2048
    ) -> None:
        self.max_exception_fraction = max_exception_fraction
        self._fitters: List[Tuple[str, FitFunc]] = [
            ("linear", _fit_linear),
            ("step", _fit_step),
            ("periodic_linear", _fit_periodic_linear),
        ]
        self.memo_entries = memo_entries
        self._memo: "OrderedDict[Tuple, Optional[CompressionModel]]" = OrderedDict()
        self._memo_lock = threading.Lock()

    def register(self, name: str, fitter: FitFunc) -> None:
        """Add a user hypothesis function (paper: extensible model set)."""
        self._fitters.append((name, fitter))
        with self._memo_lock:
            self._memo.clear()  # cached misses may now fit

    def budget(self, n: int) -> int:
        return max(2, int(self.max_exception_fraction * n))

    def fit(self, arr: np.ndarray) -> Optional[CompressionModel]:
        """Fit an integer array; None when no hypothesis matches."""
        arr = np.asarray(arr)
        if arr.size == 0:
            return CompressionModel("linear", (0.0, 0.0), 1, (), 0)
        if not np.issubdtype(arr.dtype, np.integer):
            return None
        key = None
        if self.memo_entries > 0:
            digest = hashlib.blake2b(
                np.ascontiguousarray(arr).tobytes(), digest_size=16
            ).digest()
            key = (arr.dtype.str, arr.size, digest)
            with self._memo_lock:
                if key in self._memo:
                    self._memo.move_to_end(key)
                    return self._memo[key]
        model = self._fit_uncached(arr)
        if key is not None:
            with self._memo_lock:
                self._memo[key] = model
                while len(self._memo) > self.memo_entries:
                    self._memo.popitem(last=False)
        return model

    def _fit_uncached(self, arr: np.ndarray) -> Optional[CompressionModel]:
        budget = self.budget(arr.size)
        for _, fitter in self._fitters:
            model = fitter(arr.astype(np.int64), budget)
            if model is not None:
                # Exactness guarantee: verify round-trip before accepting.
                if np.array_equal(model.predict(np.arange(arr.size)), arr):
                    return model
        return None
