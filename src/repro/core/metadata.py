"""Matrix Metadata Set — the mutable matrix state operators transform.

The paper (§V-A) describes this as "a huge key-value memory database whose
contents are used to generate formats and kernels".  We implement exactly
that: a dictionary of named arrays/scalars with typed helpers for the hot
entries.  Operators mutate the set in order; after the whole Operator Graph
has run, the set contains the cumulative effect of every design decision and
is projected into format arrays and an execution plan.

Canonical entries
-----------------
``elem_row`` / ``elem_col`` / ``elem_val`` / ``elem_pad``
    Element arrays in *storage order* (padding included; ``elem_pad`` marks
    padded zeros).  ``elem_row`` holds **current** row ids — converting
    operators that reorder rows remap it.
``origin_rows``
    Maps current row id → original matrix row, composed across SORT/BIN.
``bmtb_of_elem`` / ``bmw_of_elem`` / ``bmt_of_elem``
    Global block id per element for each mapping level (absent until the
    corresponding *_BLOCK operator runs).  Blocks are contiguous in storage
    order and nest inside coarser levels.
``format_arrays``
    dict of auxiliary index arrays the eventual kernel must load (offsets,
    sizes, origin-row tables) — the machine-designed format minus
    values/columns.
``reduction_steps`` / ``threads_per_block`` / ``interleaved``
    Implementing-stage state consumed by the kernel builder.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sparse.matrix import SparseMatrix

__all__ = ["MatrixMetadataSet", "MetadataError"]


class MetadataError(RuntimeError):
    """An operator found the metadata in a state it cannot transform."""


#: Mapping levels in coarse-to-fine order.
MAP_LEVELS = ("bmtb", "bmw", "bmt")


class MatrixMetadataSet:
    """Key-value store describing the evolving matrix state.

    Use :meth:`from_matrix` to initialise from an input matrix; operators
    then call the typed accessors below (or :meth:`get`/:meth:`put` for
    user-defined entries, mirroring the paper's extensibility claim).
    """

    def __init__(self, store: Optional[Dict[str, object]] = None) -> None:
        self._store: Dict[str, object] = store if store is not None else {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(cls, matrix: SparseMatrix) -> "MatrixMetadataSet":
        """Initial metadata: raw triplets, identity row mapping, no blocks."""
        meta = cls()
        meta._store.update(
            {
                "n_rows": matrix.n_rows,
                "orig_n_rows": matrix.n_rows,
                "n_cols": matrix.n_cols,
                "useful_nnz": matrix.nnz,
                "matrix_name": matrix.name,
                "elem_row": matrix.rows.copy(),
                "elem_col": matrix.cols.copy(),
                "elem_val": matrix.vals.copy(),
                "elem_pad": np.zeros(matrix.nnz, dtype=bool),
                "origin_rows": np.arange(matrix.n_rows, dtype=np.int64),
                "compressed": False,
                "format_arrays": {},
                "reduction_steps": [],
                "threads_per_block": 128,
                "grid_threads": None,
                "interleaved": False,
                "applied_operators": [],
            }
        )
        return meta

    def copy(self) -> "MatrixMetadataSet":
        """Deep-enough copy: arrays copied, scalars shared."""
        new_store: Dict[str, object] = {}
        for key, value in self._store.items():
            if isinstance(value, np.ndarray):
                new_store[key] = value.copy()
            elif isinstance(value, dict):
                new_store[key] = {
                    k: (v.copy() if isinstance(v, np.ndarray) else v)
                    for k, v in value.items()
                }
            elif isinstance(value, list):
                new_store[key] = list(value)
            else:
                new_store[key] = value
        return MatrixMetadataSet(new_store)

    def runtime_copy(self) -> "MatrixMetadataSet":
        """Shallow store copy for the plan-assembly phase.

        Arrays, lists and nested dicts are **shared** with the original —
        the copy exists so runtime-scalar entries (``threads_per_block``,
        ``grid_threads``) can be overwritten without mutating a design leaf
        that a cache may hand to other evaluations concurrently.  Callers
        must treat every non-scalar entry as read-only.
        """
        return MatrixMetadataSet(dict(self._store))

    # ------------------------------------------------------------------
    # Generic key-value interface (paper: user-extensible database)
    # ------------------------------------------------------------------
    def get(self, key: str, default: object = None) -> object:
        return self._store.get(key, default)

    def put(self, key: str, value: object) -> None:
        self._store[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def keys(self):
        return self._store.keys()

    # ------------------------------------------------------------------
    # Typed accessors for canonical entries
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return int(self._store["n_rows"])  # current (possibly sub-matrix) rows

    @property
    def n_cols(self) -> int:
        return int(self._store["n_cols"])

    @property
    def useful_nnz(self) -> int:
        return int(self._store["useful_nnz"])

    @property
    def elem_row(self) -> np.ndarray:
        return self._store["elem_row"]  # type: ignore[return-value]

    @elem_row.setter
    def elem_row(self, value: np.ndarray) -> None:
        self._store["elem_row"] = value

    @property
    def elem_col(self) -> np.ndarray:
        return self._store["elem_col"]  # type: ignore[return-value]

    @elem_col.setter
    def elem_col(self, value: np.ndarray) -> None:
        self._store["elem_col"] = value

    @property
    def elem_val(self) -> np.ndarray:
        return self._store["elem_val"]  # type: ignore[return-value]

    @elem_val.setter
    def elem_val(self, value: np.ndarray) -> None:
        self._store["elem_val"] = value

    @property
    def elem_pad(self) -> np.ndarray:
        return self._store["elem_pad"]  # type: ignore[return-value]

    @elem_pad.setter
    def elem_pad(self, value: np.ndarray) -> None:
        self._store["elem_pad"] = value

    @property
    def origin_rows(self) -> np.ndarray:
        return self._store["origin_rows"]  # type: ignore[return-value]

    @origin_rows.setter
    def origin_rows(self, value: np.ndarray) -> None:
        self._store["origin_rows"] = value

    @property
    def compressed(self) -> bool:
        return bool(self._store["compressed"])

    @compressed.setter
    def compressed(self, value: bool) -> None:
        self._store["compressed"] = value

    @property
    def stored_elements(self) -> int:
        return int(self.elem_row.shape[0])

    @property
    def format_arrays(self) -> Dict[str, np.ndarray]:
        return self._store["format_arrays"]  # type: ignore[return-value]

    @property
    def reduction_steps(self) -> List[Tuple[str, str]]:
        return self._store["reduction_steps"]  # type: ignore[return-value]

    @property
    def threads_per_block(self) -> int:
        return int(self._store["threads_per_block"])

    @threads_per_block.setter
    def threads_per_block(self, value: int) -> None:
        self._store["threads_per_block"] = int(value)

    @property
    def grid_threads(self) -> Optional[int]:
        value = self._store.get("grid_threads")
        return None if value is None else int(value)

    @grid_threads.setter
    def grid_threads(self, value: Optional[int]) -> None:
        self._store["grid_threads"] = value

    @property
    def interleaved(self) -> bool:
        return bool(self._store["interleaved"])

    @interleaved.setter
    def interleaved(self, value: bool) -> None:
        self._store["interleaved"] = bool(value)

    @property
    def applied_operators(self) -> List[str]:
        return self._store["applied_operators"]  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Block helpers
    # ------------------------------------------------------------------
    def blocks_of(self, level: str) -> Optional[np.ndarray]:
        """Per-element global block id for ``level`` or None if absent."""
        if level not in MAP_LEVELS:
            raise ValueError(f"unknown mapping level {level!r}")
        return self._store.get(f"{level}_of_elem")  # type: ignore[return-value]

    def set_blocks(self, level: str, block_of_elem: np.ndarray, n_blocks: int) -> None:
        if level not in MAP_LEVELS:
            raise ValueError(f"unknown mapping level {level!r}")
        self._store[f"{level}_of_elem"] = block_of_elem
        self._store[f"n_{level}"] = int(n_blocks)

    def n_blocks(self, level: str) -> Optional[int]:
        value = self._store.get(f"n_{level}")
        return None if value is None else int(value)

    def finest_level(self) -> Optional[str]:
        """The finest mapping level defined so far (None = unmapped)."""
        for level in reversed(MAP_LEVELS):
            if self.blocks_of(level) is not None:
                return level
        return None

    def coarsest_level(self) -> Optional[str]:
        for level in MAP_LEVELS:
            if self.blocks_of(level) is not None:
                return level
        return None

    # ------------------------------------------------------------------
    # Invariants (cheap; called by the designer after every operator)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        n = self.stored_elements
        for key in ("elem_col", "elem_val", "elem_pad"):
            arr = self._store[key]
            if arr.shape != (n,):  # type: ignore[union-attr]
                raise MetadataError(f"{key} length {arr.shape} != elem_row {n}")
        pad = self.elem_pad
        if n and not np.all(self.elem_val[pad] == 0.0):
            raise MetadataError("padding elements must carry value 0")
        real = ~pad
        if int(real.sum()) != self.useful_nnz:
            raise MetadataError(
                f"real element count {int(real.sum())} != useful_nnz {self.useful_nnz}"
            )
        rows = self.elem_row
        if n and (rows.min() < 0 or rows.max() >= self.n_rows):
            raise MetadataError("elem_row out of range")
        if self.origin_rows.shape != (self.n_rows,):
            raise MetadataError("origin_rows length must equal n_rows")
        # Blocks must be contiguous in storage order and nested.
        prev: Optional[np.ndarray] = None
        for level in MAP_LEVELS:
            blocks = self.blocks_of(level)
            if blocks is None:
                continue
            if blocks.shape != (n,):
                raise MetadataError(f"{level}_of_elem length mismatch")
            if n and np.any(np.diff(blocks) < 0):
                raise MetadataError(f"{level} blocks not contiguous in storage order")
            if prev is not None and n:
                # each fine block lies inside one coarse block
                change_fine = np.flatnonzero(np.diff(blocks) != 0)
                coarse_change = np.flatnonzero(np.diff(prev) != 0)
                if not np.isin(coarse_change, change_fine).all():
                    raise MetadataError(
                        f"{level} blocks do not nest inside coarser level"
                    )
            prev = blocks
