"""Designer — executes an Operator Graph against the Matrix Metadata Set.

"The Designer executes these operators in order to modify the Matrix
Metadata Set, which includes all details of the matrix state" (paper §III).
Branching operators split the metadata into sub-matrices; every leaf of the
recursion yields a fully-transformed metadata set from which the Format &
Kernel Generator produces one kernel of the final program.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.graph import GraphNode, OperatorGraph
from repro.core.metadata import MatrixMetadataSet
from repro.core.operators import OperatorError
from repro.sparse.matrix import SparseMatrix

__all__ = ["Designer", "DesignError", "DesignLeaf", "default_invariant_checks"]


class DesignError(RuntimeError):
    """An operator could not be applied to the current matrix state.

    Wraps :class:`OperatorError`; the search engine treats it as a dead
    candidate rather than a crash.
    """


@dataclass
class DesignLeaf:
    """One leaf of the (possibly branching) design: final metadata plus the
    branch path that produced it."""

    meta: MatrixMetadataSet
    branch_path: tuple

    @property
    def label(self) -> str:
        if not self.branch_path:
            return "root"
        return "/".join(str(i) for i in self.branch_path)


def default_invariant_checks() -> bool:
    """Whether metadata invariants are re-validated after every operator.

    The checks are a debugging net, not a correctness requirement — on the
    search/bench hot path they cost ~100+ full-array scans per search.  The
    resolution order: the ``REPRO_CHECK_INVARIANTS`` environment variable
    (``0``/``false`` off, anything else on) wins; otherwise checks are on
    under pytest and off everywhere else.
    """
    env = os.environ.get("REPRO_CHECK_INVARIANTS")
    if env is not None:
        return env.strip().lower() not in ("", "0", "false", "no", "off")
    return "PYTEST_CURRENT_TEST" in os.environ


class Designer:
    """Runs Operator Graphs; safe to share across threads.

    The only mutable state is :attr:`executions`, a monotonic counter of
    :meth:`design` calls used by the staged evaluation runtime to verify
    design-cache effectiveness; it is updated under a lock.

    ``check_invariants=None`` (the default) resolves via
    :func:`default_invariant_checks`: enabled under pytest or when forced
    by ``REPRO_CHECK_INVARIANTS``, disabled on search/bench hot paths.
    """

    def __init__(self, check_invariants: Optional[bool] = None) -> None:
        self.check_invariants = (
            default_invariant_checks()
            if check_invariants is None
            else check_invariants
        )
        self._exec_lock = threading.Lock()
        self._executions = 0

    @property
    def executions(self) -> int:
        """How many times :meth:`design` has run (cache-efficacy metric)."""
        return self._executions

    # ------------------------------------------------------------------
    def design(
        self, matrix: SparseMatrix, graph: OperatorGraph
    ) -> List[DesignLeaf]:
        """Execute ``graph`` on ``matrix``; returns one leaf per sub-matrix."""
        with self._exec_lock:
            self._executions += 1
        meta = MatrixMetadataSet.from_matrix(matrix)
        leaves: List[DesignLeaf] = []
        self._run_sequence(meta, graph.nodes, (), leaves)
        if not leaves:
            raise DesignError("graph produced no design leaves")
        return leaves

    # ------------------------------------------------------------------
    def _run_sequence(
        self,
        meta: MatrixMetadataSet,
        nodes: Sequence[GraphNode],
        path: tuple,
        leaves: List[DesignLeaf],
    ) -> None:
        for i, node in enumerate(nodes):
            op = node.operator
            if op.branching:
                try:
                    op.check(meta, node.params)
                    children_meta = op.partition(meta, node.params)  # type: ignore[attr-defined]
                except OperatorError as exc:
                    raise DesignError(f"{op.name}: {exc}") from exc
                rest = list(nodes[i + 1 :])
                for j, child_meta in enumerate(children_meta):
                    child_meta.applied_operators.append(op.name)
                    if node.children:
                        child_nodes = node.children[min(j, len(node.children) - 1)]
                    else:
                        child_nodes = rest
                    self._run_sequence(child_meta, child_nodes, path + (j,), leaves)
                return
            try:
                op.check(meta, node.params)
                op.apply(meta, node.params)
            except OperatorError as exc:
                raise DesignError(f"{op.name}: {exc}") from exc
            meta.applied_operators.append(op.name)
            if self.check_invariants:
                meta.check_invariants()
        leaves.append(DesignLeaf(meta=meta, branch_path=path))
