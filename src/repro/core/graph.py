"""Operator Graph — the paper's key data structure (§IV-B).

An Operator Graph is an ordered composition of operators, optionally
branching at ROW_DIV / COL_DIV / BIN nodes: every branch child carries its
own sub-sequence, so different parts of the matrix can receive different
machine-designed formats and kernels (§VII-G reports 16.5 % of winning
graphs branch).

The graph is *structural*: nodes carry operator names and parameter values;
executing it is the Designer's job.  Validation here covers the static
dependency rules (stage ordering, single global reduction, branch shape);
data-dependent rules (e.g. a TOTAL reduction meeting a multi-row scope) are
enforced during design/execution, and the search engine treats those
failures as dead candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.core.operators import Stage, get_operator
from repro.errors import (
    GRAPH_AFTER_GLOBAL,
    GRAPH_BRANCH_CHILDREN,
    GRAPH_BRANCH_CONTINUATION,
    GRAPH_BRANCH_TAIL,
    GRAPH_EMPTY,
    GRAPH_NESTING_DEPTH,
    GRAPH_NO_GLOBAL,
    GRAPH_STAGE_ORDER,
    DiagnosableError,
)

__all__ = ["GraphNode", "OperatorGraph", "GraphValidationError"]


class GraphValidationError(DiagnosableError):
    """Static dependency rule violated (paper §IV-B).

    Carries a stable ``GRAPH-*`` diagnostic code (``exc.code``);
    ``str(exc)`` is the bare message, unchanged from before the taxonomy.
    """

    default_code = "GRAPH-INVALID"


@dataclass
class GraphNode:
    """One operator application: name, parameter values, branch children.

    ``children`` is only meaningful for branching operators; each child is
    the operator sequence applied to one sub-matrix.  An empty ``children``
    on a branching node means every sub-matrix continues with the *rest* of
    the parent sequence (the common shared-template case).
    """

    op_name: str
    params: Dict[str, object] = field(default_factory=dict)
    children: List[List["GraphNode"]] = field(default_factory=list)

    def __post_init__(self) -> None:
        op = get_operator(self.op_name)  # raises for unknown names
        self.params = op.resolve_params(self.params)
        if self.children and not op.branching:
            raise GraphValidationError(
                f"{self.op_name} is not a branching operator but has children",
                code=GRAPH_BRANCH_CHILDREN,
            )

    @property
    def operator(self):
        return get_operator(self.op_name)

    def copy(self) -> "GraphNode":
        """Structural clone without re-resolving params (the source node
        already holds resolved values) — the search hot path copies a
        graph per candidate."""
        new = GraphNode.__new__(GraphNode)
        new.op_name = self.op_name
        new.params = dict(self.params)
        new.children = [
            [node.copy() for node in child] for child in self.children
        ]
        return new

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"op": self.op_name, "params": dict(self.params)}
        if self.children:
            data["children"] = [
                [node.to_dict() for node in child] for child in self.children
            ]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "GraphNode":
        children = [
            [cls.from_dict(nd) for nd in child]  # type: ignore[union-attr]
            for child in data.get("children", [])  # type: ignore[union-attr]
        ]
        return cls(
            op_name=str(data["op"]),
            params=dict(data.get("params", {})),  # type: ignore[arg-type]
            children=children,
        )


class OperatorGraph:
    """An ordered, possibly branching sequence of operator applications."""

    def __init__(self, nodes: Sequence[GraphNode]) -> None:
        self.nodes: List[GraphNode] = list(nodes)
        self.validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_names(
        cls, ops: Sequence[object]
    ) -> "OperatorGraph":
        """Build a linear graph from names or (name, params) tuples."""
        nodes: List[GraphNode] = []
        for item in ops:
            if isinstance(item, str):
                nodes.append(GraphNode(item))
            elif isinstance(item, GraphNode):
                nodes.append(item)
            else:
                name, params = item  # type: ignore[misc]
                nodes.append(GraphNode(name, dict(params)))
        return cls(nodes)

    def to_dict(self) -> Dict[str, object]:
        return {"nodes": [n.to_dict() for n in self.nodes]}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "OperatorGraph":
        return cls([GraphNode.from_dict(nd) for nd in data["nodes"]])  # type: ignore[union-attr]

    def copy(self) -> "OperatorGraph":
        """Deep structural clone; skips re-validation (the source graph was
        validated at construction and stays immutable during search)."""
        new = OperatorGraph.__new__(OperatorGraph)
        new.nodes = [node.copy() for node in self.nodes]
        return new

    # ------------------------------------------------------------------
    # Validation (static rules)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        self._validate_sequence(self.nodes, depth=0)

    def _validate_sequence(self, nodes: Sequence[GraphNode], depth: int) -> None:
        if depth > 4:
            raise GraphValidationError(
                "branch nesting too deep", code=GRAPH_NESTING_DEPTH
            )
        if not nodes:
            raise GraphValidationError(
                "empty operator sequence", code=GRAPH_EMPTY
            )
        last_stage = Stage.CONVERTING
        saw_global = False
        for i, node in enumerate(nodes):
            op = node.operator
            if op.stage < last_stage:
                raise GraphValidationError(
                    f"{op.name} ({op.stage.name.lower()}) cannot follow a "
                    f"{last_stage.name.lower()} operator",
                    code=GRAPH_STAGE_ORDER,
                )
            last_stage = op.stage
            if saw_global:
                raise GraphValidationError(
                    f"{op.name} appears after the global reduction",
                    code=GRAPH_AFTER_GLOBAL,
                )
            if op.branching:
                rest = list(nodes[i + 1 :])
                if node.children:
                    if rest:
                        raise GraphValidationError(
                            f"{op.name} with explicit children must be the "
                            "last node of its sequence",
                            code=GRAPH_BRANCH_TAIL,
                        )
                    for child in node.children:
                        self._validate_sequence(child, depth + 1)
                    return
                if not rest:
                    raise GraphValidationError(
                        f"{op.name} without children needs a continuation "
                        "sequence for the sub-matrices",
                        code=GRAPH_BRANCH_CONTINUATION,
                    )
                self._validate_sequence(rest, depth + 1)
                return
            if op.stage is Stage.IMPLEMENTING and getattr(op, "level", "") == "global":
                saw_global = True
        if not saw_global:
            raise GraphValidationError(
                "operator sequence must end with a global reduction "
                "(GMEM_ATOM_RED or GMEM_DIRECT_STORE)",
                code=GRAPH_NO_GLOBAL,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def walk(self) -> Iterator[GraphNode]:
        """Every node, branches included, in depth-first order."""
        stack: List[GraphNode] = list(reversed(self.nodes))
        while stack:
            node = stack.pop()
            yield node
            for child in reversed(node.children):
                stack.extend(reversed(child))

    def operator_names(self) -> List[str]:
        return [node.op_name for node in self.walk()]

    @property
    def has_branches(self) -> bool:
        return any(node.children for node in self.walk()) or any(
            node.operator.branching for node in self.walk()
        )

    def depth(self) -> int:
        return sum(1 for _ in self.walk())

    def signature(self) -> Tuple:
        """Hashable identity of structure + parameters (search memoisation)."""

        def node_sig(node: GraphNode) -> Tuple:
            return (
                node.op_name,
                tuple(sorted(node.params.items())),
                tuple(
                    tuple(node_sig(nd) for nd in child) for child in node.children
                ),
            )

        return tuple(node_sig(n) for n in self.nodes)

    def structure_signature(self) -> Tuple:
        """Identity of the structure only (parameters ignored)."""

        def node_sig(node: GraphNode) -> Tuple:
            return (
                node.op_name,
                tuple(
                    tuple(node_sig(nd) for nd in child) for child in node.children
                ),
            )

        return tuple(node_sig(n) for n in self.nodes)

    def describe(self) -> str:
        """Multi-line human-readable rendering (paper Fig 14a style)."""
        lines: List[str] = []

        def emit(nodes: Sequence[GraphNode], indent: int) -> None:
            pad = "  " * indent
            for node in nodes:
                params = ", ".join(f"{k}={v}" for k, v in node.params.items())
                lines.append(f"{pad}{node.op_name}({params})")
                for j, child in enumerate(node.children):
                    lines.append(f"{pad}  branch {j}:")
                    emit(child, indent + 2)

        emit(self.nodes, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<OperatorGraph {' -> '.join(n.op_name for n in self.nodes)}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OperatorGraph):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())
