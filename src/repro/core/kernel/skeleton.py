"""Kernel skeleton (paper Fig 6, left).

The skeleton is the root symbol of kernel generation: a nest of loops over
the parallelism levels that are mapped (thread block / warp / thread), each
loop carrying slots for "get meta of BMX" fragments, the multiply-add body,
and "reduction in ..." fragments.  :mod:`repro.core.kernel.codegen` fills
the slots with fragments and adapters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["LoopLevel", "KernelSkeleton"]

_INDENT = "    "


@dataclass
class LoopLevel:
    """One loop of the nest: its header, meta slots and reduction slot."""

    name: str                       # "BMTB" / "BMW" / "BMT" / "NZ"
    header: str                     # the C for-statement
    get_meta: List[str] = field(default_factory=list)
    body: List[str] = field(default_factory=list)
    reduction: List[str] = field(default_factory=list)


@dataclass
class KernelSkeleton:
    """Loop nest plus prologue/epilogue, rendered to CUDA-like text."""

    kernel_name: str
    args: List[str]
    prologue: List[str] = field(default_factory=list)
    loops: List[LoopLevel] = field(default_factory=list)
    epilogue: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines: List[str] = []
        arg_list = ", ".join(self.args)
        lines.append(f"__global__ void {self.kernel_name}({arg_list}) {{")
        for stmt in self.prologue:
            lines.append(_INDENT + stmt)
        depth = 1

        def emit(loop_idx: int) -> None:
            nonlocal depth
            if loop_idx >= len(self.loops):
                return
            loop = self.loops[loop_idx]
            pad = _INDENT * depth
            lines.append(f"{pad}// loop over {loop.name}s")
            lines.append(pad + loop.header + " {")
            depth += 1
            inner_pad = _INDENT * depth
            for stmt in loop.get_meta:
                lines.append(inner_pad + stmt)
            for stmt in loop.body:
                lines.append(inner_pad + stmt)
            emit(loop_idx + 1)
            for stmt in loop.reduction:
                lines.append(inner_pad + stmt)
            depth -= 1
            lines.append(_INDENT * depth + "}")

        emit(0)
        for stmt in self.epilogue:
            lines.append(_INDENT + stmt)
        lines.append("}")
        return "\n".join(lines)
