"""Kernel Builder (paper §V-C): metadata → execution plan.

The builder performs the *Distribution* half of kernel construction — it
derives, from the mapping-stage block structure, which CUDA thread touches
which stored element and what the launch geometry is.  The *Reduction* half
is carried by the metadata's reduction chain, which the executor interprets
(and :mod:`repro.core.kernel.codegen` renders as spliced fragments).

Distribution rules per finest mapped level:

========  ==========================================================
``bmt``   each BMT is one thread; chunk-contiguous access
``bmw``   BMW elements round-robin over the warp's 32 lanes
``bmtb``  BMTB elements round-robin over the block's threads
(none)    grid-stride loop over ``grid_threads`` (COO style)
========  ==========================================================

Round-robin distributions are naturally coalesced (consecutive lanes read
consecutive addresses); chunked BMT access is strided unless
INTERLEAVED_STORAGE transposed the layout.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.designer import DesignError, Designer, DesignLeaf
from repro.core.format import MachineDesignedFormat, build_format
from repro.core.graph import GraphNode, OperatorGraph
from repro.core.kernel.codegen import generate_source
from repro.core.kernel.program import GeneratedProgram, KernelUnit
from repro.core.metadata import MatrixMetadataSet
from repro.core.operators import OperatorError
from repro.core.optimizer import ModelDrivenCompressor
from repro.gpu.analysis import DesignAnalysis, LeafAnalysis
from repro.gpu.executor import ExecutionPlan, ReductionStep
from repro.sparse.matrix import SparseMatrix
from repro.workloads import DEFAULT_WORKLOAD, Workload

__all__ = [
    "BuildError",
    "KernelBuilder",
    "build_program",
    "RUNTIME_PARAM_OPS",
    "design_signature",
    "design_graph",
    "runtime_nodes_for_leaf",
]

#: CUDA hard limit the builder refuses to exceed.
MAX_THREADS_PER_BLOCK = 1024
WARP = 32

#: Operators whose parameters only set scalar runtime metadata
#: (``threads_per_block`` / ``grid_threads``) and never reshape element or
#: block arrays.  The staged build runs the Designer with these parameters
#: at their defaults and re-applies the requested values cheaply during
#: plan assembly, so one set of design leaves serves the operator's whole
#: parameter grid.  Nothing executed during the design phase reads the
#: scalars these operators write.
RUNTIME_PARAM_OPS = frozenset({"SET_RESOURCES"})


def design_signature(graph: OperatorGraph) -> Tuple:
    """Graph identity with runtime-only parameters masked out.

    Two parameterised graphs share a signature exactly when their design
    phases produce identical leaves — the content-address of the design
    cache (together with the matrix token).
    """

    def node_sig(node: GraphNode) -> Tuple:
        params = (
            ()
            if node.op_name in RUNTIME_PARAM_OPS
            else tuple(sorted(node.params.items()))
        )
        return (
            node.op_name,
            params,
            tuple(tuple(node_sig(nd) for nd in child) for child in node.children),
        )

    return tuple(node_sig(n) for n in graph.nodes)


def design_graph(graph: OperatorGraph) -> OperatorGraph:
    """Copy of ``graph`` with runtime-only parameters reset to defaults, so
    the design phase is canonical for every runtime assignment."""
    new = graph.copy()
    for node in new.walk():
        if node.op_name in RUNTIME_PARAM_OPS:
            node.params = node.operator.default_params()
    return new


def runtime_nodes_for_leaf(
    graph: OperatorGraph, branch_path: Tuple[int, ...]
) -> List[GraphNode]:
    """The runtime-parameter nodes on one design leaf's branch path.

    Mirrors :meth:`Designer._run_sequence`: a branching node consumes one
    path component and the walk continues in the matching child sequence
    (or the shared continuation when the node has no explicit children).
    """
    collected: List[GraphNode] = []

    def follow(nodes: Sequence[GraphNode], path: Tuple[int, ...]) -> None:
        for i, node in enumerate(nodes):
            op = node.operator
            if op.branching:
                j = path[0] if path else 0
                if node.children:
                    child = node.children[min(j, len(node.children) - 1)]
                else:
                    child = list(nodes[i + 1 :])
                follow(child, path[1:])
                return
            if node.op_name in RUNTIME_PARAM_OPS:
                collected.append(node)

    follow(graph.nodes, tuple(branch_path))
    return collected


class BuildError(RuntimeError):
    """The design cannot be realised as a CUDA kernel (e.g. >1024 threads
    per block, or a warp mapped to more than 32 BMTs)."""


def _block_starts(blocks: np.ndarray) -> np.ndarray:
    """Start position of each dense-id block in storage order."""
    if blocks.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.flatnonzero(np.r_[True, blocks[1:] != blocks[:-1]])


def _parent_of_block(child: np.ndarray, parent: np.ndarray) -> np.ndarray:
    """Parent block id of each child block (nesting is validated upstream)."""
    starts = _block_starts(child)
    return parent[starts]


def _first_child_of_parent(parent_of_child: np.ndarray) -> np.ndarray:
    """First child id per parent (children are globally numbered in order)."""
    n_parents = int(parent_of_child.max()) + 1 if parent_of_child.size else 0
    first = np.zeros(n_parents, dtype=np.int64)
    # children are sorted by parent; first occurrence index == child id
    starts = np.flatnonzero(
        np.r_[True, parent_of_child[1:] != parent_of_child[:-1]]
    )
    first[parent_of_child[starts]] = starts
    return first


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple


class KernelBuilder:
    """Builds executable plans (and programs) from design leaves."""

    def __init__(
        self,
        compressor: Optional[ModelDrivenCompressor] = None,
        designer: Optional[Designer] = None,
        precision: str = "fp32",
        workload: Optional[Workload] = None,
    ) -> None:
        if precision not in ("fp32", "fp64"):
            raise ValueError("precision must be 'fp32' or 'fp64'")
        self.compressor = compressor
        self.designer = designer or Designer()
        self.precision = precision
        #: the operation generated sources render for (the *design* phase
        #: is workload-independent — structure derives from the matrix
        #: alone — but the rendered inner loop and kernel name are not).
        self.workload = workload or DEFAULT_WORKLOAD

    # ------------------------------------------------------------------
    def build_plan(
        self,
        meta: MatrixMetadataSet,
        fmt: MachineDesignedFormat,
        label: str = "root",
        analysis: Optional[LeafAnalysis] = None,
    ) -> ExecutionPlan:
        """Project metadata into an executable plan.

        With ``analysis`` set, the thread distribution is cached per
        runtime-scalar pair and the original-row projection per leaf; the
        plan itself is then cached per distribution key — everything else
        in it (element arrays, reduction steps, format bytes) is
        leaf-invariant, so one :class:`ExecutionPlan` (construction plus
        its O(n) invariant checks) serves every runtime assignment that
        lands on the same distribution, and the executor shares cost
        projections across the whole runtime grid.
        """
        if analysis is None:
            thread_of_nz, n_threads, tpb, run_length, _deps = self._distribute(meta)
            steps = self._reduction_steps(meta)
            return ExecutionPlan(
                n_rows=int(meta.get("orig_n_rows", meta.n_rows)),
                n_cols=meta.n_cols,
                useful_nnz=meta.useful_nnz,
                values=meta.elem_val,
                col_indices=meta.elem_col,
                out_rows=meta.origin_rows[meta.elem_row],
                thread_of_nz=thread_of_nz,
                n_threads=n_threads,
                threads_per_block=tpb,
                reduction_steps=steps,
                interleaved=meta.interleaved,
                extra_format_bytes=float(fmt.aux_bytes),
                storage_run_length=run_length,
                value_bytes=8 if self.precision == "fp64" else 4,
                label=label,
                analysis=None,
                cost_key=None,
            )
        dist = analysis.distribution(
            {"tpb": meta.threads_per_block, "grid": meta.grid_threads},
            lambda: self._distribute(meta),
        )
        cost_key = (dist.key, dist.n_threads, dist.threads_per_block)

        def construct() -> ExecutionPlan:
            steps = self._reduction_steps(meta)
            return ExecutionPlan(
                n_rows=int(meta.get("orig_n_rows", meta.n_rows)),
                n_cols=meta.n_cols,
                useful_nnz=meta.useful_nnz,
                values=meta.elem_val,
                col_indices=meta.elem_col,
                out_rows=analysis.cached_array(
                    "out_rows", lambda: meta.origin_rows[meta.elem_row]
                ),
                thread_of_nz=dist.thread_of_nz,
                n_threads=dist.n_threads,
                threads_per_block=dist.threads_per_block,
                reduction_steps=steps,
                interleaved=meta.interleaved,
                extra_format_bytes=float(fmt.aux_bytes),
                storage_run_length=dist.run_length,
                value_bytes=8 if self.precision == "fp64" else 4,
                label=label,
                analysis=analysis,
                cost_key=cost_key,
            )

        return analysis.cached_scalar(("plan",) + cost_key, construct)

    @staticmethod
    def _reduction_steps(meta: MatrixMetadataSet) -> Tuple[ReductionStep, ...]:
        steps = tuple(
            ReductionStep(level, strategy) for level, strategy in meta.reduction_steps
        )
        if not steps or steps[-1].level != "global":
            raise BuildError("design has no global reduction step")
        return steps

    # ------------------------------------------------------------------
    def _distribute(
        self, meta: MatrixMetadataSet
    ) -> Tuple[np.ndarray, int, int, float, Tuple[str, ...]]:
        """Returns (thread_of_nz, n_threads, threads_per_block, run_length,
        runtime_deps).

        ``runtime_deps`` names the runtime scalars the chosen distribution
        path actually read (``"tpb"`` / ``"grid"``, in that order) — the
        analysis cache keys distributions by exactly those values, so
        structurally-determined distributions are computed once per leaf
        instead of once per runtime assignment.
        """
        n = meta.stored_elements
        bmt = meta.blocks_of("bmt")
        bmw = meta.blocks_of("bmw")
        bmtb = meta.blocks_of("bmtb")
        tpb_cfg = meta.threads_per_block

        if bmt is not None:
            n_bmt = int(meta.n_blocks("bmt") or 0)
            counts = np.bincount(bmt, minlength=n_bmt)
            run = float(counts[counts > 0].mean()) if n_bmt else 1.0
            deps: Tuple[str, ...] = ()
            if bmw is not None:
                parent_w = _parent_of_block(bmt, bmw)
                first_bmt = _first_child_of_parent(parent_w)
                lane_of_bmt = np.arange(n_bmt) - first_bmt[parent_w]
                if lane_of_bmt.max(initial=0) >= WARP:
                    raise BuildError("a warp was mapped to more than 32 BMTs")
                if bmtb is not None:
                    parent_b = _parent_of_block(bmw, bmtb)
                    first_bmw = _first_child_of_parent(parent_b)
                    warp_in_block = np.arange(parent_b.size) - first_bmw[parent_b]
                    warps_per_block = int(warp_in_block.max(initial=0)) + 1
                    tpb = warps_per_block * WARP
                    self._check_tpb(tpb)
                    n_bmtb = int(meta.n_blocks("bmtb") or 0)
                    thread_of_bmt = (
                        parent_b[parent_w] * tpb
                        + warp_in_block[parent_w] * WARP
                        + lane_of_bmt
                    )
                    n_threads = n_bmtb * tpb
                else:
                    tpb = tpb_cfg
                    deps = ("tpb",)
                    thread_of_bmt = parent_w * WARP + lane_of_bmt
                    n_threads = (int(meta.n_blocks("bmw") or 0)) * WARP
            elif bmtb is not None:
                parent_b = _parent_of_block(bmt, bmtb)
                first_bmt = _first_child_of_parent(parent_b)
                bmt_in_block = np.arange(n_bmt) - first_bmt[parent_b]
                tpb = _round_up(int(bmt_in_block.max(initial=0)) + 1, WARP)
                self._check_tpb(tpb)
                n_bmtb = int(meta.n_blocks("bmtb") or 0)
                thread_of_bmt = parent_b * tpb + bmt_in_block
                n_threads = n_bmtb * tpb
            else:
                tpb = tpb_cfg
                deps = ("tpb",)
                thread_of_bmt = np.arange(n_bmt, dtype=np.int64)
                n_threads = max(n_bmt, 1)
            thread_of_nz = thread_of_bmt[bmt]
            return (
                thread_of_nz.astype(np.int64),
                int(max(n_threads, 1)),
                tpb,
                run,
                deps,
            )

        if bmw is not None:
            starts = _block_starts(bmw)
            offset = np.zeros(int(bmw.max()) + 1, dtype=np.int64)
            offset[bmw[starts]] = starts
            pos = np.arange(n, dtype=np.int64) - offset[bmw]
            lane = pos % WARP
            if bmtb is not None:
                parent_b = _parent_of_block(bmw, bmtb)
                first_bmw = _first_child_of_parent(parent_b)
                warp_in_block = np.arange(parent_b.size) - first_bmw[parent_b]
                warps_per_block = int(warp_in_block.max(initial=0)) + 1
                tpb = warps_per_block * WARP
                self._check_tpb(tpb)
                n_bmtb = int(meta.n_blocks("bmtb") or 0)
                thread_of_nz = (
                    parent_b[bmw] * tpb + warp_in_block[bmw] * WARP + lane
                )
                n_threads = n_bmtb * tpb
                deps = ()
            else:
                tpb = tpb_cfg
                thread_of_nz = bmw * WARP + lane
                n_threads = (int(meta.n_blocks("bmw") or 0)) * WARP
                deps = ("tpb",)
            return (
                thread_of_nz.astype(np.int64),
                int(max(n_threads, 1)),
                tpb,
                1.0,
                deps,
            )

        if bmtb is not None:
            tpb = tpb_cfg
            starts = _block_starts(bmtb)
            offset = np.zeros(int(bmtb.max()) + 1, dtype=np.int64)
            offset[bmtb[starts]] = starts
            pos = np.arange(n, dtype=np.int64) - offset[bmtb]
            thread_of_nz = bmtb * tpb + pos % tpb
            n_bmtb = int(meta.n_blocks("bmtb") or 0)
            return (
                thread_of_nz.astype(np.int64),
                max(n_bmtb * tpb, 1),
                tpb,
                1.0,
                ("tpb",),
            )

        # Unmapped: COO-style grid-stride loop.
        tpb = tpb_cfg
        grid = meta.grid_threads or min(max(n, 1), 4096 * WARP)
        grid = _round_up(int(grid), WARP)
        thread_of_nz = np.arange(n, dtype=np.int64) % grid
        return thread_of_nz, grid, tpb, 1.0, ("tpb", "grid")

    @staticmethod
    def _check_tpb(tpb: int) -> None:
        if tpb > MAX_THREADS_PER_BLOCK:
            raise BuildError(
                f"design requires {tpb} threads per block "
                f"(CUDA limit {MAX_THREADS_PER_BLOCK})"
            )

    # ------------------------------------------------------------------
    def build_unit(
        self, leaf: DesignLeaf, analysis: Optional[LeafAnalysis] = None
    ) -> KernelUnit:
        if analysis is None:
            fmt = build_format(leaf.meta, self.compressor, name=f"fmt_{leaf.label}")
        else:
            # Format arrays are projected from leaf-invariant metadata, so
            # one machine-designed format serves the whole runtime grid.
            fmt = analysis.cached_scalar(
                "format",
                lambda: build_format(
                    leaf.meta, self.compressor, name=f"fmt_{leaf.label}"
                ),
            )
        plan = self.build_plan(leaf.meta, fmt, label=leaf.label, analysis=analysis)
        if analysis is None:
            source = generate_source(leaf.meta, fmt, plan, workload=self.workload)
        else:
            # The rendered text depends on the plan only through the launch
            # geometry (and the workload) — share it across runtime
            # assignments that agree.
            source = analysis.cached_scalar(
                self.workload.scope_key(
                    ("source", plan.n_blocks, plan.threads_per_block,
                     plan.interleaved)
                ),
                lambda: generate_source(
                    leaf.meta, fmt, plan, workload=self.workload
                ),
            )
        return KernelUnit(
            label=leaf.label,
            plan=plan,
            format=fmt,
            source=source,
            applied_operators=list(leaf.meta.applied_operators),
        )

    def design_phase(
        self, matrix: SparseMatrix, graph: OperatorGraph
    ) -> List[DesignLeaf]:
        """Structure-level half of :meth:`build`.

        Runs the Designer with runtime-only parameters at their defaults;
        the returned leaves are valid for *every* runtime assignment of the
        same design-signature graph, so callers may cache and share them
        (they must then be treated as immutable).
        """
        return self.designer.design(matrix, design_graph(graph))

    def assembly_phase(
        self,
        matrix: SparseMatrix,
        graph: OperatorGraph,
        leaves: Sequence[DesignLeaf],
        analysis: Optional[DesignAnalysis] = None,
    ) -> GeneratedProgram:
        """Parameter-level half of :meth:`build`.

        Grafts ``graph``'s runtime parameters onto (possibly cached) design
        leaves, then builds formats, plans and sources.  Leaves are never
        mutated: runtime scalars are re-applied on a shallow store copy.

        ``analysis`` (one :class:`~repro.gpu.analysis.DesignAnalysis` per
        design-cache key) memoises assembled kernel units per
        runtime-parameter assignment and the cross-kernel write check per
        design, and is carried on the returned program for verdict reuse.
        """
        kernels = []
        for i, leaf in enumerate(leaves):
            la = None if analysis is None else analysis.leaf(i)
            kernels.append(self._assemble_unit(leaf, graph, la))
        if analysis is None:
            conflict = self._cross_kernel_conflict(kernels)
        else:
            conflict = analysis.cross_check(
                lambda: self._cross_kernel_conflict(kernels)
            )
        if conflict is not None:
            raise BuildError(conflict)
        return GeneratedProgram(
            matrix_name=matrix.name,
            n_rows=matrix.n_rows,
            n_cols=matrix.n_cols,
            useful_nnz=matrix.nnz,
            kernels=kernels,
            analysis=analysis,
        )

    def _assemble_unit(
        self,
        leaf: DesignLeaf,
        graph: OperatorGraph,
        analysis: Optional[LeafAnalysis],
    ) -> KernelUnit:
        """One leaf's kernel unit, memoised per runtime-parameter values.

        The unit (format, plan, source) is a pure function of the leaf plus
        the runtime-operator parameters on its branch path, so candidates
        sharing both get the same (immutable) unit object back — including
        deterministic replay of assembly failures.
        """
        nodes = runtime_nodes_for_leaf(graph, leaf.branch_path)
        if analysis is None:
            return self.build_unit(self._runtime_leaf(leaf, nodes), analysis=None)
        entry = analysis.unit(
            self.runtime_unit_key(nodes),
            lambda: self.compute_unit_entry(leaf, nodes, analysis),
        )
        if entry[0] == "error":
            raise entry[1](entry[2])
        return entry[1]

    @staticmethod
    def runtime_unit_key(nodes: Sequence[GraphNode]) -> Tuple:
        """Unit-cache key of one leaf: the runtime-operator parameters on
        its branch path (the only candidate-varying input of a unit)."""
        return tuple(
            (node.op_name, tuple(sorted(node.params.items()))) for node in nodes
        )

    def compute_unit_entry(
        self,
        leaf: DesignLeaf,
        nodes: Sequence[GraphNode],
        analysis: LeafAnalysis,
    ) -> Tuple:
        """Entry-form unit assembly for prepared branch-path nodes:
        ``("ok", unit)`` or ``("error", exc_class, message)`` — the shape
        :meth:`LeafAnalysis.unit`/``unit_batch`` cache, shared by the
        per-candidate and batched evaluation paths."""
        try:
            unit = self.build_unit(
                self._runtime_leaf(leaf, nodes), analysis=analysis
            )
        except DesignError as exc:
            return ("error", DesignError, str(exc))
        except BuildError as exc:
            return ("error", BuildError, str(exc))
        return ("ok", unit)

    def _runtime_leaf(
        self, leaf: DesignLeaf, nodes: Sequence[GraphNode]
    ) -> DesignLeaf:
        """Leaf with the runtime-parameter operators re-applied with the
        requested values (the design ran with defaults)."""
        if not nodes:
            return leaf
        meta = leaf.meta.runtime_copy()
        for node in nodes:
            op = node.operator
            try:
                op.apply(meta, node.params)
            except OperatorError as exc:
                raise DesignError(f"{op.name}: {exc}") from exc
        return DesignLeaf(meta=meta, branch_path=leaf.branch_path)

    def build(self, matrix: SparseMatrix, graph: OperatorGraph) -> GeneratedProgram:
        """Design + assemble in one step (uncached staged build)."""
        return self.assembly_phase(matrix, graph, self.design_phase(matrix, graph))

    @staticmethod
    def _cross_kernel_conflict(kernels) -> Optional[str]:
        """Multi-kernel programs (COL_DIV / HYB_DECOMP branches) accumulate
        into the same rows; a kernel that plain-stores a row another kernel
        also writes would lose updates on real hardware.  Returns the error
        message (design-invariant, so callers may cache it) or None."""
        if len(kernels) < 2:
            return None
        rows_written = []
        for unit in kernels:
            la = unit.plan.analysis
            if la is not None:
                rows = la.cached_array(
                    "unique_out_rows",
                    lambda u=unit: np.unique(
                        u.plan.out_rows[u.plan.out_rows >= 0]
                    ),
                )
            else:
                rows = np.unique(unit.plan.out_rows[unit.plan.out_rows >= 0])
            rows_written.append(rows)
        for i, unit in enumerate(kernels):
            if unit.plan.reduction_steps[-1].strategy != "GMEM_DIRECT_STORE":
                continue
            for j, other_rows in enumerate(rows_written):
                if i == j:
                    continue
                if np.intersect1d(
                    rows_written[i], other_rows, assume_unique=True
                ).size:
                    return (
                        "GMEM_DIRECT_STORE in one kernel conflicts with rows "
                        "written by another kernel; use GMEM_ATOM_RED"
                    )
        return None


def build_program(
    matrix: SparseMatrix,
    graph: OperatorGraph,
    compress: bool = True,
    precision: str = "fp32",
    workload: Optional[Workload] = None,
) -> GeneratedProgram:
    """Convenience one-shot: design, generate, optimise.

    ``compress=False`` disables Model-Driven Format Compression (ablation);
    ``precision="fp64"`` builds a double-precision kernel (the paper
    evaluates fp32; fp64 is a library extension); ``workload`` renders the
    source for a non-default operation (run the program with the same
    workload).
    """
    compressor = ModelDrivenCompressor() if compress else None
    return KernelBuilder(
        compressor=compressor, precision=precision, workload=workload
    ).build(matrix, graph)
