"""Kernel generation: skeleton + fragments spliced into executable programs.

The :class:`~repro.core.kernel.builder.KernelBuilder` projects final design
metadata into an :class:`~repro.gpu.executor.ExecutionPlan` (the executable
side) while :mod:`repro.core.kernel.codegen` renders the equivalent CUDA-like
source (the readable side, paper Figs 6-7).
"""

from repro.core.kernel.program import GeneratedProgram, KernelUnit, ProgramResult
from repro.core.kernel.builder import BuildError, KernelBuilder, build_program
from repro.core.kernel.codegen import generate_source

__all__ = [
    "GeneratedProgram",
    "KernelUnit",
    "ProgramResult",
    "BuildError",
    "KernelBuilder",
    "build_program",
    "generate_source",
]
