"""CUDA-like source rendering of a generated kernel (paper Fig 7).

The rendered text is documentation-grade output: it shows a downstream user
exactly what kernel the Operator Graph designed — the loop nest over mapped
levels, the format arrays each level loads (with Model-Driven-Compressed
arrays replaced by their closed-form expressions, underlined in the paper's
figure), the reduction fragments and the adapters between them.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.core.format import MachineDesignedFormat
from repro.core.kernel.fragments import (
    REDUCTION_OUTPUT_SPACE,
    adapter_between,
    reduction_fragment,
)
from repro.core.kernel.skeleton import KernelSkeleton, LoopLevel
from repro.core.metadata import MatrixMetadataSet
from repro.gpu.executor import ExecutionPlan
from repro.workloads import DEFAULT_WORKLOAD, Workload

__all__ = ["generate_source"]

_LEVEL_LOOPS = {
    "bmtb": (
        "BMTB",
        "for (int bmtb_id = blockIdx.x; bmtb_id < n_bmtb; bmtb_id += gridDim.x)",
    ),
    "bmw": (
        "BMW",
        "for (int bmw_id = warp_id(); bmw_id < n_bmw; bmw_id += total_warps())",
    ),
    "bmt": (
        "BMT",
        "for (int bmt_id = global_thread(); bmt_id < n_bmt; bmt_id += total_threads())",
    ),
}


def _meta_loads(fmt: MachineDesignedFormat, level: str) -> List[str]:
    """Loads (or inlined model expressions) of the level's format arrays."""
    lines: List[str] = [f"// get meta of {level.upper()}"]
    idx = f"{level}_id"
    for arr in fmt.arrays:
        if not arr.name.startswith(f"{level}_"):
            continue
        if arr.model is not None:
            expr = arr.model.expression(idx)
            lines.append(
                f"int {arr.name}_v = {expr};  "
                f"// Model-Driven Compression eliminated {arr.name}[]"
            )
            for pos, val in arr.model.exceptions:
                lines.append(f"if ({idx} == {pos}) {arr.name}_v = {val};")
        else:
            lines.append(f"int {arr.name}_v = {arr.name}[{idx}];")
    return lines


def _fragment_substitutions(workload: Workload) -> dict:
    """Textual rewrites that reorient the shared reduction fragments.

    The fragments keep two conventions regardless of workload:
    ``partial_result`` is the value being reduced and ``out_row`` the
    output index of ``y``.  Transpose workloads redirect the gather to
    the row side (``out_row`` then holds a column id — annotated in the
    loop body); SpMM rewrites gather and flush to their per-column forms
    (``j`` is the dense-column index, stated in the prologue).
    """
    if workload.is_default:
        return {}
    if workload.transpose:
        # ``row_of``-style helpers answer "which output index does this
        # element flush to" — on the transpose that is the column side.
        return {
            "x[col_indices[nz]]": "x[row_indices[nz]]",
            "row_of(": "col_of(",
        }
    k = workload.k
    return {
        "x[col_indices[nz]]": f"x[col_indices[nz] * {k} + j]",
        "y[out_row]": f"y[out_row * {k} + j]",
    }


def _subst(lines: List[str], substitutions: dict) -> List[str]:
    for old, new in substitutions.items():
        lines = [line.replace(old, new) for line in lines]
    return lines


def _nz_window(fmt: MachineDesignedFormat, level: str) -> List[str]:
    """Bind the innermost mapped level's stored-element window — the
    ``bmt_nz_begin``/``bmt_nz_end`` range every thread-stage fragment
    iterates (Model-Driven-Compressed offset arrays are inlined, like
    the meta loads above)."""
    name = f"{level}_nz_offsets"
    arr = next((a for a in fmt.arrays if a.name == name), None)
    lines = [f"// stored-element window of this {level.upper()}"]
    if arr is not None and arr.model is not None:
        lines.append(f"int bmt_nz_begin = {name}_v;")
        end = arr.model.expression(f"({level}_id + 1)")
        lines.append(f"int bmt_nz_end = {end};")
    else:
        lines.append(f"int bmt_nz_begin = {name}[{level}_id];")
        lines.append(f"int bmt_nz_end = {name}[{level}_id + 1];")
    return lines


def _gmem_seam(producer: str) -> List[str]:
    """Bind ``partial_result``/``out_row`` for the global step from
    wherever the last reduction stage left its result."""
    if producer == "WARP_SEG_RED":
        return [
            "// Adapter: the segment tail's carry is the surviving partial",
            "float partial_result = carry;",
            "int out_row = segment_row;",
        ]
    if producer == "WARP_BITMAP_RED":
        return [
            "// Adapter: the row tail's carry is the surviving partial",
            "float partial_result = carry;",
            "int out_row = my_row;",
        ]
    if producer == "SHMEM_TOTAL_RED":
        return [
            "// Adapter: the block's single surviving partial",
            "float partial_result = shmem_partials[0];",
            "int out_row = first_row_of_block;",
        ]
    if producer == "SHMEM_OFFSET_RED":
        return [
            "// Adapter: flush each merged row result (one per thread)",
            "int out_row = first_row_of_block + threadIdx.x;",
            "float partial_result = block_result[out_row];",
        ]
    if producer == "THREAD_BITMAP_RED":
        return [
            "// Adapter: the tail row's leftover accumulation",
            "float partial_result = thread_result;",
            "int out_row = row_of(bmt_nz_end - 1);",
        ]
    # TOTAL reductions leave one scope-wide result in thread_result.
    return [
        "// Adapter: expose the reduced result to the global step",
        "float partial_result = thread_result;",
        "int out_row = row_of(bmt_nz_begin);",
    ]


def _inner_loop_body(workload: Workload, index: str) -> List[str]:
    """The workload's multiply-accumulate statements for one stored
    element addressed by ``index`` (the slot every loop nest fills).

    Every workload keeps the fragment conventions: ``partial_result``
    carries the product and ``out_row`` the index ``y`` is flushed at, so
    the reduction fragments spliced below stay consistent.
    """
    if workload.is_default:
        return [
            f"float partial_result = val_arr[{index}] * x[col_indices[{index}]];",
            f"int out_row = row_indices[{index}];",
        ]
    if workload.transpose:
        return [
            f"float partial_result = val_arr[{index}] * x[row_indices[{index}]];"
            "  // transpose: gather x along rows",
            f"int out_row = col_indices[{index}];"
            "  // transpose: y is indexed by the column",
        ]
    k = workload.k
    return [
        f"// per dense column j in [0, {k}): the statements below (and the",
        "// reduction fragments) repeat element-wise for each j",
        f"float partial_result = val_arr[{index}] * "
        f"x[col_indices[{index}] * {k} + j];",
        f"int out_row = row_indices[{index}];"
        f"  // flushed into y[out_row * {k} + j]",
    ]


def _workload_note(workload: Workload, level: str) -> List[str]:
    """Comment-only body for mapped loop nests (the multiply-accumulate
    is implicit in the innermost level's reduction fragments; only the
    orientation/width needs spelling out for non-default workloads)."""
    if workload.transpose:
        return [
            f"// {workload.display}: each element of this {level.upper()} "
            "gathers x[row] and",
            "// scatters into y[col] — out_row in the fragments below is "
            "a column id",
        ]
    return [
        f"// {workload.display}: each element of this {level.upper()} "
        f"multiplies into {workload.k}",
        f"// partials, gathered from x[col * {workload.k} + j] and flushed "
        f"into y[row * {workload.k} + j]",
    ]


def generate_source(
    meta: MatrixMetadataSet,
    fmt: MachineDesignedFormat,
    plan: ExecutionPlan,
    workload: Optional[Workload] = None,
) -> str:
    """Render one kernel's CUDA-like source.

    ``workload`` parameterises the kernel name, the operand declaration
    and the inner multiply-accumulate body (None = the default SpMV,
    rendering the historical text unchanged).
    """
    workload = workload or DEFAULT_WORKLOAD
    args = ["const float* __restrict__ val_arr",
            "const int* __restrict__ row_indices",
            "const int* __restrict__ col_indices",
            "const float* __restrict__ x",
            "float* y"]
    for arr in fmt.arrays:
        if arr.name in ("values", "row_indices", "col_indices") or arr.model is not None:
            continue
        args.append(f"const int* __restrict__ {arr.name}")

    prologue = [
        f"// machine-designed by operator graph: "
        + " -> ".join(meta.applied_operators),
        f"// launch: {plan.n_blocks} blocks x {plan.threads_per_block} threads"
        + (", interleaved storage" if plan.interleaved else ""),
    ]
    if not workload.is_default:
        prologue.insert(0, f"// workload: {workload.display}")
    skeleton = KernelSkeleton(
        kernel_name=(
            f"{workload.name}_{(meta.get('matrix_name') or 'generated')}"
        ).replace("-", "_").replace(".", "_"),
        args=args,
        prologue=prologue,
    )

    mapped_levels = [
        level for level in ("bmtb", "bmw", "bmt") if meta.blocks_of(level) is not None
    ]
    if not mapped_levels:
        skeleton.loops.append(
            LoopLevel(
                name="NZ",
                header=(
                    "for (int nz = global_thread(); nz < n_stored; "
                    "nz += total_threads())"
                ),
                body=_inner_loop_body(workload, "nz"),
            )
        )
    else:
        for level in mapped_levels:
            name, header = _LEVEL_LOOPS[level]
            loop = LoopLevel(name=name, header=header)
            loop.get_meta = _meta_loads(fmt, level)
            skeleton.loops.append(loop)
        if not workload.is_default:
            # Mapped loop nests carry the multiply-accumulate implicitly
            # in the innermost level's reduction fragments; document the
            # workload's orientation there (no new identifiers).
            skeleton.loops[-1].body = _workload_note(
                workload, mapped_levels[-1]
            )

    # Reduction fragments, innermost-out, with adapters between stages;
    # access expressions are reoriented per workload so the rendered
    # gather/flush sides match the loop body's conventions.  Seam bindings
    # declare every identifier a fragment consumes from its upstream
    # context (the lint in ``repro.staticcheck.lint`` reads them back).
    substitutions = _fragment_substitutions(workload)
    steps = [s.strategy for s in plan.reduction_steps]
    innermost = skeleton.loops[-1]
    if mapped_levels and steps and steps[0].startswith("GMEM_"):
        # No pre-global reduction: every stored element of the scope's
        # window flushes individually through the global step.
        frag = _subst(_nz_window(fmt, mapped_levels[-1]), substitutions)
        frag.append("// per-element flush over the scope's window")
        frag.append("for (int nz = bmt_nz_begin; nz < bmt_nz_end; ++nz) {")
        body = _inner_loop_body(workload, "nz") + reduction_fragment(
            steps[0], substitutions
        )
        frag.extend("    " + line for line in _subst(body, substitutions))
        frag.append("}")
        innermost.reduction.extend(frag)
    else:
        prev_strategy = None
        for strategy in steps:
            frag: List[str] = []
            if prev_strategy is None:
                if mapped_levels:
                    frag.extend(
                        _subst(_nz_window(fmt, mapped_levels[-1]), substitutions)
                    )
                    if not strategy.startswith("THREAD_"):
                        # A warp/block-level first step consumes per-thread
                        # partials; bind them with the serial accumulation
                        # the implicit thread stage performs.
                        frag.extend(
                            _subst(
                                [
                                    "float thread_result = 0.0f;",
                                    "for (int nz = bmt_nz_begin; nz < bmt_nz_end; ++nz)",
                                    "    thread_result += val_arr[nz] * x[col_indices[nz]];",
                                ],
                                substitutions,
                            )
                        )
                elif strategy.startswith("THREAD_"):
                    frag.append("// grid-stride: one stored element per iteration")
                    frag.append("int bmt_nz_begin = nz;")
                    frag.append("int bmt_nz_end = nz + 1;")
                elif not strategy.startswith("GMEM_"):
                    frag.append(
                        "float thread_result = partial_result;"
                        "  // one stored element per iteration"
                    )
                # A shared-space first consumer still needs its partials
                # staged out of registers.
                frag.extend(adapter_between("THREAD_TOTAL_RED", strategy))
            if prev_strategy is not None:
                frag.extend(adapter_between(prev_strategy, strategy))
                if strategy.startswith("GMEM_") and mapped_levels:
                    frag.extend(
                        _subst(_gmem_seam(prev_strategy), substitutions)
                    )
            frag.extend(reduction_fragment(strategy, substitutions))
            innermost.reduction.extend(frag)
            prev_strategy = strategy

    if "origin_rows" in fmt:
        innermost.reduction.append(
            "// SORT provenance: out_row = origin_rows[current_row]"
        )

    # Shared memory is part of the launch contract only when some fragment
    # actually stages partials there.
    if any(
        "shmem_partials" in line
        for loop in skeleton.loops
        for line in loop.get_meta + loop.body + loop.reduction
    ):
        skeleton.prologue.append("extern __shared__ float shmem_partials[];")

    text = skeleton.render()
    if plan.value_bytes == 8:
        # Double-precision plans render a double pipeline end to end.
        text = re.sub(r"\bfloat\b", "double", text).replace("0.0f", "0.0")
    return text
