"""CUDA-like source rendering of a generated kernel (paper Fig 7).

The rendered text is documentation-grade output: it shows a downstream user
exactly what kernel the Operator Graph designed — the loop nest over mapped
levels, the format arrays each level loads (with Model-Driven-Compressed
arrays replaced by their closed-form expressions, underlined in the paper's
figure), the reduction fragments and the adapters between them.
"""

from __future__ import annotations

from typing import List

from repro.core.format import MachineDesignedFormat
from repro.core.kernel.fragments import adapter_between, reduction_fragment
from repro.core.kernel.skeleton import KernelSkeleton, LoopLevel
from repro.core.metadata import MatrixMetadataSet
from repro.gpu.executor import ExecutionPlan

__all__ = ["generate_source"]

_LEVEL_LOOPS = {
    "bmtb": (
        "BMTB",
        "for (int bmtb_id = blockIdx.x; bmtb_id < n_bmtb; bmtb_id += gridDim.x)",
    ),
    "bmw": (
        "BMW",
        "for (int bmw_id = warp_id(); bmw_id < n_bmw; bmw_id += total_warps())",
    ),
    "bmt": (
        "BMT",
        "for (int bmt_id = global_thread(); bmt_id < n_bmt; bmt_id += total_threads())",
    ),
}


def _meta_loads(fmt: MachineDesignedFormat, level: str) -> List[str]:
    """Loads (or inlined model expressions) of the level's format arrays."""
    lines: List[str] = [f"// get meta of {level.upper()}"]
    idx = f"{level}_id"
    for arr in fmt.arrays:
        if not arr.name.startswith(f"{level}_"):
            continue
        if arr.model is not None:
            expr = arr.model.expression(idx)
            lines.append(
                f"int {arr.name}_v = {expr};  "
                f"// Model-Driven Compression eliminated {arr.name}[]"
            )
            for pos, val in arr.model.exceptions:
                lines.append(f"if ({idx} == {pos}) {arr.name}_v = {val};")
        else:
            lines.append(f"int {arr.name}_v = {arr.name}[{idx}];")
    return lines


def generate_source(
    meta: MatrixMetadataSet,
    fmt: MachineDesignedFormat,
    plan: ExecutionPlan,
) -> str:
    """Render one kernel's CUDA-like source."""
    args = ["const float* __restrict__ val_arr",
            "const int* __restrict__ col_indices",
            "const float* __restrict__ x",
            "float* y"]
    for arr in fmt.arrays:
        if arr.name in ("values", "col_indices") or arr.model is not None:
            continue
        args.append(f"const int* __restrict__ {arr.name}")

    skeleton = KernelSkeleton(
        kernel_name=f"spmv_{(meta.get('matrix_name') or 'generated')}".replace(
            "-", "_"
        ).replace(".", "_"),
        args=args,
        prologue=[
            f"// machine-designed by operator graph: "
            + " -> ".join(meta.applied_operators),
            f"// launch: {plan.n_blocks} blocks x {plan.threads_per_block} threads"
            + (", interleaved storage" if plan.interleaved else ""),
            "extern __shared__ float shmem_partials[];",
        ],
    )

    mapped_levels = [
        level for level in ("bmtb", "bmw", "bmt") if meta.blocks_of(level) is not None
    ]
    if not mapped_levels:
        skeleton.loops.append(
            LoopLevel(
                name="NZ",
                header=(
                    "for (int nz = global_thread(); nz < n_stored; "
                    "nz += total_threads())"
                ),
                body=[
                    "float partial_result = val_arr[nz] * x[col_indices[nz]];",
                    "int out_row = row_indices[nz];",
                ],
            )
        )
    else:
        for level in mapped_levels:
            name, header = _LEVEL_LOOPS[level]
            loop = LoopLevel(name=name, header=header)
            loop.get_meta = _meta_loads(fmt, level)
            skeleton.loops.append(loop)

    # Reduction fragments, innermost-out, with adapters between stages.
    steps = [s.strategy for s in plan.reduction_steps]
    innermost = skeleton.loops[-1]
    prev_strategy = None
    for strategy in steps:
        frag: List[str] = []
        if prev_strategy is not None:
            frag.extend(adapter_between(prev_strategy, strategy))
        frag.extend(reduction_fragment(strategy))
        innermost.reduction.extend(frag)
        prev_strategy = strategy

    if "origin_rows" in fmt:
        innermost.reduction.append(
            "// SORT provenance: out_row = origin_rows[current_row]"
        )

    return skeleton.render()
