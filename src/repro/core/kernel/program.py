"""Generated sparse-kernel programs.

A :class:`GeneratedProgram` is AlphaSparse's output artifact: one kernel per
design leaf (branching graphs produce several, launched back-to-back just
like HYB's two-kernel schedule), each carrying its machine-designed format,
its execution plan and its generated source.  Programs run under any
registered :class:`~repro.workloads.Workload`; the default (None) is SpMV,
bit-identical to the historical single-operation behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.format import MachineDesignedFormat
from repro.gpu.arch import GPUSpec
from repro.gpu.cost import CostBreakdown
from repro.gpu.executor import ExecutionPlan, ExecutionResult, execute
from repro.workloads import DEFAULT_WORKLOAD, Workload

__all__ = ["KernelUnit", "GeneratedProgram", "ProgramResult"]


@dataclass
class KernelUnit:
    """One kernel of the program: plan + format + source + provenance."""

    label: str
    plan: ExecutionPlan
    format: MachineDesignedFormat
    source: str
    applied_operators: List[str] = field(default_factory=list)


@dataclass
class ProgramResult:
    """Aggregated result of running every kernel of a program."""

    y: np.ndarray
    total_time_s: float
    gflops: float
    kernel_results: List[ExecutionResult]

    @property
    def cost_breakdowns(self) -> List[CostBreakdown]:
        return [r.cost for r in self.kernel_results]


@dataclass
class GeneratedProgram:
    """The machine-designed sparse-kernel program for one input matrix."""

    matrix_name: str
    n_rows: int
    n_cols: int
    useful_nnz: int
    kernels: List[KernelUnit]
    #: design-level analysis (:class:`repro.gpu.analysis.DesignAnalysis`)
    #: shared by every candidate of the same design; carries the cached
    #: numeric-verification verdict.  None for standalone builds.
    analysis: Optional[object] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    def run(
        self,
        x: np.ndarray,
        gpu: GPUSpec,
        workload: Optional[Workload] = None,
    ) -> ProgramResult:
        """Execute every kernel; kernels launch back-to-back so the program
        time is the sum of kernel times (the HYB-style schedule).

        ``workload`` selects the operation (None = the default SpMV); the
        result shape and the GFLOPS numerator follow the workload.
        """
        wl = workload or DEFAULT_WORKLOAD
        y = np.zeros(wl.result_shape(self.n_rows, self.n_cols), dtype=np.float64)
        results: List[ExecutionResult] = []
        total = 0.0
        for unit in self.kernels:
            res = execute(unit.plan, x, gpu, workload=workload)
            y += res.y
            total += res.time_s
            results.append(res)
        gflops = wl.flops(self.useful_nnz) / total / 1e9 if total > 0 else 0.0
        return ProgramResult(
            y=y, total_time_s=total, gflops=gflops, kernel_results=results
        )

    def validate(
        self,
        x: np.ndarray,
        reference: np.ndarray,
        gpu: GPUSpec,
        workload: Optional[Workload] = None,
    ) -> bool:
        """Check the program reproduces the workload's reference result."""
        result = self.run(x, gpu, workload=workload)
        return bool(np.allclose(result.y, reference, rtol=1e-10, atol=1e-12))

    # ------------------------------------------------------------------
    def conversion_cost_s(self, gpu: GPUSpec) -> float:
        """Estimated one-off cost of building the machine-designed format
        from raw triplets (paper §IX names efficient conversion routines as
        future work).  Modelled as streaming the source triplets in and the
        format arrays out at DRAM bandwidth, plus a sort term for reordered
        layouts."""
        triplet_bytes = self.useful_nnz * 12.0  # row + col + value
        out_bytes = float(self.format_bytes)
        bw = gpu.dram_bandwidth_gbps * 1e9
        stream_s = (triplet_bytes + out_bytes) / bw
        sort_passes = sum(
            1
            for unit in self.kernels
            for op in unit.applied_operators
            if op in ("SORT", "SORT_SUB", "SORT_BMTB")
        )
        # radix-style sort: ~4 passes over keys per sort operator
        sort_s = sort_passes * 4.0 * (self.useful_nnz * 8.0) / bw
        return stream_s + sort_s

    def iterations_to_amortize(
        self, gpu: GPUSpec, baseline_time_s: float, own_time_s: float
    ) -> float:
        """SpMV iterations needed before the conversion cost pays for
        itself against a baseline kernel (inf when not faster)."""
        gain = baseline_time_s - own_time_s
        if gain <= 0:
            return float("inf")
        return self.conversion_cost_s(gpu) / gain

    @property
    def format_bytes(self) -> int:
        return sum(unit.format.total_bytes for unit in self.kernels)

    @property
    def n_kernels(self) -> int:
        return len(self.kernels)

    def source(self) -> str:
        """Concatenated CUDA-like source of every kernel."""
        return "\n\n".join(unit.source for unit in self.kernels)

    def describe(self) -> str:
        lines = [
            f"GeneratedProgram for {self.matrix_name or '<unnamed>'}: "
            f"{self.n_kernels} kernel(s), {self.format_bytes} format bytes"
        ]
        for unit in self.kernels:
            ops = " -> ".join(unit.applied_operators)
            lines.append(f"  [{unit.label}] {ops}")
        return "\n".join(lines)
