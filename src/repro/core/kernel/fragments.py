"""Kernel fragments and adapters (paper Fig 6, right).

Fragments are the pre-defined code pieces spliced into the skeleton's
slots: "get meta of BMX" loads of format arrays, "reduction in ..." blocks
per strategy, and *Adapters* — the assignment-only fragments that bridge
non-orthogonal reduction pairs (e.g. a thread-level result living in a
register must be copied into shared memory before a block-level reduction
can consume it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "reduction_fragment",
    "adapter_between",
    "get_meta_fragment",
    "REDUCTION_OUTPUT_SPACE",
]

#: Where each strategy leaves its partial results.
REDUCTION_OUTPUT_SPACE: Dict[str, str] = {
    "THREAD_TOTAL_RED": "register",
    "THREAD_BITMAP_RED": "register",
    "WARP_TOTAL_RED": "register",
    "WARP_BITMAP_RED": "register",
    "WARP_SEG_RED": "register",
    "SHMEM_OFFSET_RED": "shared",
    "SHMEM_TOTAL_RED": "shared",
}

#: Where each strategy expects its inputs.
_REDUCTION_INPUT_SPACE: Dict[str, str] = {
    "THREAD_TOTAL_RED": "register",
    "THREAD_BITMAP_RED": "register",
    "WARP_TOTAL_RED": "register",
    "WARP_BITMAP_RED": "register",
    "WARP_SEG_RED": "register",
    "SHMEM_OFFSET_RED": "shared",
    "SHMEM_TOTAL_RED": "shared",
    "GMEM_ATOM_RED": "any",
    "GMEM_DIRECT_STORE": "any",
}

_FRAGMENTS: Dict[str, List[str]] = {
    "THREAD_TOTAL_RED": [
        "// THREAD_TOTAL_RED: serial register reduction, one row per thread",
        "float thread_result = 0.0f;",
        "for (int nz = bmt_nz_begin; nz < bmt_nz_end; ++nz)",
        "    thread_result += val_arr[nz] * x[col_indices[nz]];",
    ],
    "THREAD_BITMAP_RED": [
        "// THREAD_BITMAP_RED: serial reduction across bitmap row boundaries",
        "float thread_result = 0.0f;",
        "for (int nz = bmt_nz_begin; nz < bmt_nz_end; ++nz) {",
        "    thread_result += val_arr[nz] * x[col_indices[nz]];",
        "    if (row_bitmap_bit(nz)) { flush_partial(thread_result, row_of(nz)); thread_result = 0.0f; }",
        "}",
    ],
    "WARP_TOTAL_RED": [
        "// WARP_TOTAL_RED: shuffle-reduce the warp to one row result",
        "for (int off = 16; off > 0; off >>= 1)",
        "    thread_result += __shfl_down_sync(0xffffffff, thread_result, off);",
    ],
    "WARP_SEG_RED": [
        "// WARP_SEG_RED: segmented warp scan keyed by row boundaries",
        "float carry = segmented_warp_scan(thread_result, row_boundary_mask);",
        "if (lane_is_segment_tail) flush_partial(carry, segment_row);",
    ],
    "WARP_BITMAP_RED": [
        "// WARP_BITMAP_RED: bitmap-guided warp reduction",
        "unsigned mask = __ballot_sync(0xffffffff, is_row_head);",
        "float carry = bitmap_warp_reduce(thread_result, mask);",
        "if (is_row_tail) flush_partial(carry, my_row);",
    ],
    "SHMEM_OFFSET_RED": [
        "// SHMEM_OFFSET_RED: row-offset-guided block reduction",
        "__syncthreads();",
        "for (int r = first_row_of_block + threadIdx.x; r < last_row_of_block; r += blockDim.x) {",
        "    float acc = 0.0f;",
        "    for (int s = shmem_row_offset[r]; s < shmem_row_offset[r + 1]; ++s)",
        "        acc += shmem_partials[s];",
        "    block_result[r] = acc;",
        "}",
        "__syncthreads();",
    ],
    "SHMEM_TOTAL_RED": [
        "// SHMEM_TOTAL_RED: tree-reduce the whole block into one row",
        "for (int stride = blockDim.x / 2; stride > 0; stride >>= 1) {",
        "    __syncthreads();",
        "    if (threadIdx.x < stride)",
        "        shmem_partials[threadIdx.x] += shmem_partials[threadIdx.x + stride];",
        "}",
    ],
    "GMEM_ATOM_RED": [
        "// GMEM_ATOM_RED: atomic flush of surviving partials",
        "atomicAdd(&y[out_row], partial_result);",
    ],
    "GMEM_DIRECT_STORE": [
        "// GMEM_DIRECT_STORE: single producer per row, plain store",
        "y[out_row] = partial_result;",
    ],
}

_ADAPTERS: Dict[Tuple[str, str], List[str]] = {
    ("register", "shared"): [
        "// Adapter: copy register partials into shared memory layout",
        "shmem_partials[threadIdx.x] = thread_result;",
        "__syncthreads();",
    ],
    ("shared", "register"): [
        "// Adapter: load shared partial back to a register",
        "float partial_result = shmem_partials[threadIdx.x];",
    ],
}


def reduction_fragment(
    strategy: str, substitutions: Optional[Dict[str, str]] = None
) -> List[str]:
    """Code lines of a reduction strategy's fragment.

    ``substitutions`` textually rewrites access expressions so one
    fragment source serves every workload orientation — e.g. the
    transpose-SpMV renderer maps the ``x[col_indices[nz]]`` gather to
    ``x[row_indices[nz]]`` and SpMM maps gather/flush to their per-column
    forms (see :func:`repro.core.kernel.codegen.generate_source`).
    """
    try:
        lines = list(_FRAGMENTS[strategy])
    except KeyError:
        raise KeyError(f"no fragment for strategy {strategy!r}") from None
    if substitutions:
        for old, new in substitutions.items():
            lines = [line.replace(old, new) for line in lines]
    return lines


def adapter_between(producer: str, consumer: str) -> List[str]:
    """Adapter fragment between two reduction strategies (paper Fig 6).

    Returns an empty list when the producer's output space already matches
    the consumer's input space.
    """
    out_space = REDUCTION_OUTPUT_SPACE.get(producer, "register")
    in_space = _REDUCTION_INPUT_SPACE.get(consumer, "register")
    if in_space in ("any", out_space):
        return []
    return list(_ADAPTERS.get((out_space, in_space), []))


def get_meta_fragment(level: str, array_names: List[str]) -> List[str]:
    """'get meta of BMX' fragment: loads of the format arrays a loop level
    needs, discovered by data-dependency analysis (here: name prefixes)."""
    lines = [f"// get meta of {level.upper()}"]
    idx = f"{level}_id"
    for name in array_names:
        lines.append(f"int {name}_v = {name}[{idx}];")
    return lines
