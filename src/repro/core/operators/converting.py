"""Converting-stage operators: define the compressed memory layout.

Table II (converting): ROW_DIV, COL_DIV, SORT, SORT_SUB, BIN, COMPRESS.
Branching operators (ROW_DIV, COL_DIV, BIN) do not transform metadata
directly — they *partition* it; the Designer executes them by splitting the
metadata set and recursing into the graph's children (paper Fig 4, upper
right).  Their ``partition`` method returns the element partition.
"""

from __future__ import annotations

from typing import List, Mapping

import numpy as np

from repro.core.metadata import MatrixMetadataSet
from repro.core.operators.base import (
    Operator,
    OperatorError,
    ParamSpec,
    Stage,
    register_operator,
)

__all__ = ["Compress", "Sort", "SortSub", "Bin", "RowDiv", "ColDiv"]


def _renumber_rows(meta: MatrixMetadataSet, new_of_old: np.ndarray) -> None:
    """Apply a row permutation: remap element rows, compose origin mapping,
    and restore row-major storage order (stable, preserves column order)."""
    meta.elem_row = new_of_old[meta.elem_row]
    old_of_new = np.empty_like(new_of_old)
    old_of_new[new_of_old] = np.arange(new_of_old.size)
    meta.origin_rows = meta.origin_rows[old_of_new]
    order = np.argsort(meta.elem_row, kind="stable")
    meta.elem_row = meta.elem_row[order]
    meta.elem_col = meta.elem_col[order]
    meta.elem_val = meta.elem_val[order]
    meta.elem_pad = meta.elem_pad[order]


def _row_lengths(meta: MatrixMetadataSet) -> np.ndarray:
    return np.bincount(meta.elem_row, minlength=meta.n_rows)


@register_operator
class Compress(Operator):
    """Ignore all zeros of the sparse matrix (source: cuSPARSE [45]).

    Input triplets may still contain explicit zeros (Matrix Market files
    often store them); COMPRESS drops them and marks the matrix ready for
    the mapping stage.
    """

    name = "COMPRESS"
    stage = Stage.CONVERTING
    source = "cuSPARSE"
    description = "Ignore all zeros of the sparse matrix"

    def check(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        if meta.compressed:
            raise OperatorError("COMPRESS: matrix already compressed")

    def apply(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        keep = meta.elem_val != 0.0
        if not keep.all():
            meta.elem_row = meta.elem_row[keep]
            meta.elem_col = meta.elem_col[keep]
            meta.elem_val = meta.elem_val[keep]
            meta.elem_pad = meta.elem_pad[keep]
            meta.put("useful_nnz", int(meta.elem_row.size))
        # Canonical row-major order for the mapping stage.  An O(n)
        # monotonicity probe skips the lexsort for the common case of
        # already row-major triplets (most readers/generators emit them).
        key = meta.elem_row.astype(np.int64) * (int(meta.n_cols) + 1) + meta.elem_col
        if key.size > 1 and np.any(key[1:] < key[:-1]):
            order = np.lexsort((meta.elem_col, meta.elem_row))
            meta.elem_row = meta.elem_row[order]
            meta.elem_col = meta.elem_col[order]
            meta.elem_val = meta.elem_val[order]
            meta.elem_pad = meta.elem_pad[order]
        meta.compressed = True


@register_operator
class Sort(Operator):
    """Sort rows in decreasing order of row length (source: SELL [36], [42]).

    Renumbers rows; ``origin_rows`` keeps the way back, and becomes part of
    the machine-designed format unless Model-Driven Compression can fit it.
    """

    name = "SORT"
    stage = Stage.CONVERTING
    source = "SELL, JAD"
    description = "Sort rows in decreasing order of #non-zeros per row"

    def check(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        pass  # valid before or after COMPRESS

    def apply(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        lengths = _row_lengths(meta)
        order = np.argsort(-lengths, kind="stable")  # old row ids by rank
        new_of_old = np.empty(meta.n_rows, dtype=np.int64)
        new_of_old[order] = np.arange(meta.n_rows)
        _renumber_rows(meta, new_of_old)


@register_operator
class SortSub(Operator):
    """Sort rows within fixed-size chunks (source: SELL-C-sigma [36], [43]).

    The sigma-sorting compromise: local sorts keep rows near their original
    position (better x locality) while still grouping similar lengths for
    low padding.  ``chunk_rows`` is the sorting granularity parameter the
    paper mentions as part of the operator's parameter space.
    """

    name = "SORT_SUB"
    stage = Stage.CONVERTING
    source = "SELL-C-sigma"
    description = "Sort rows by length within chunks of chunk_rows"
    params = (
        ParamSpec(
            "chunk_rows",
            coarse=(128, 512, 2048),
            fine=(32, 64, 128, 256, 512, 1024, 2048, 4096),
            description="rows per independent sorting window",
        ),
    )

    def check(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        pass

    def apply(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        chunk = int(params["chunk_rows"])  # type: ignore[index]
        if chunk <= 0:
            raise OperatorError("SORT_SUB: chunk_rows must be positive")
        lengths = _row_lengths(meta)
        n = meta.n_rows
        new_of_old = np.empty(n, dtype=np.int64)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            local = np.argsort(-lengths[start:stop], kind="stable") + start
            new_of_old[local] = np.arange(start, stop)
        _renumber_rows(meta, new_of_old)


class _BranchingOperator(Operator):
    """Base for operators that split the matrix into sub-matrices."""

    branching = True

    def apply(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        raise OperatorError(
            f"{self.name} is a branching operator; the Designer must call "
            "partition() and recurse"
        )

    def partition(
        self, meta: MatrixMetadataSet, params: Mapping[str, object]
    ) -> List[MatrixMetadataSet]:
        raise NotImplementedError


def _slice_rows(meta: MatrixMetadataSet, row_ids: np.ndarray) -> MatrixMetadataSet:
    """Sub-metadata containing exactly ``row_ids`` (renumbered 0..k-1)."""
    mask = np.isin(meta.elem_row, row_ids)
    remap = -np.ones(meta.n_rows, dtype=np.int64)
    remap[row_ids] = np.arange(row_ids.size)
    child = meta.copy()
    child.put("n_rows", int(row_ids.size))
    child.elem_row = remap[meta.elem_row[mask]]
    child.elem_col = meta.elem_col[mask]
    child.elem_val = meta.elem_val[mask]
    child.elem_pad = meta.elem_pad[mask]
    child.origin_rows = meta.origin_rows[row_ids]
    child.put("useful_nnz", int((~child.elem_pad).sum()))
    order = np.argsort(child.elem_row, kind="stable")
    child.elem_row = child.elem_row[order]
    child.elem_col = child.elem_col[order]
    child.elem_val = child.elem_val[order]
    child.elem_pad = child.elem_pad[order]
    return child


@register_operator
class RowDiv(_BranchingOperator):
    """Divide the matrix into striped sub-matrices by rows ([40], [41]).

    Two parameter-discretisation strategies (paper §VI-B's answer to the
    ``10^5!`` array-type parameter): ``equal`` stripes, or
    ``len_mutation`` — split where the (sorted) row length jumps by more
    than ``mutation_factor``.
    """

    name = "ROW_DIV"
    stage = Stage.CONVERTING
    source = "ESB, scale-free SpMV"
    description = "Divide a matrix into row stripes, branching the graph"
    params = (
        ParamSpec(
            "strategy",
            coarse=("equal", "len_mutation"),
            description="how stripe boundaries are chosen",
        ),
        ParamSpec(
            "parts",
            coarse=(2, 4),
            fine=(2, 3, 4, 6, 8),
            description="stripe count for the 'equal' strategy",
        ),
        ParamSpec(
            "mutation_factor",
            coarse=(4.0, 16.0),
            fine=(2.0, 4.0, 8.0, 16.0, 32.0),
            description="row-length jump ratio that opens a new stripe",
        ),
    )

    def check(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        if meta.n_rows < 2:
            raise OperatorError("ROW_DIV: nothing to divide")

    def partition(
        self, meta: MatrixMetadataSet, params: Mapping[str, object]
    ) -> List[MatrixMetadataSet]:
        n = meta.n_rows
        strategy = params["strategy"]
        if strategy == "equal":
            parts = min(int(params["parts"]), n)
            bounds = np.linspace(0, n, parts + 1).astype(np.int64)
        elif strategy == "len_mutation":
            factor = float(params["mutation_factor"])
            lengths = _row_lengths(meta).astype(np.float64)
            prev = np.maximum(lengths[:-1], 1.0)
            nxt = np.maximum(lengths[1:], 1.0)
            ratio = np.maximum(nxt / prev, prev / nxt)
            cuts = np.flatnonzero(ratio > factor) + 1
            # Cap stripe count: merge nearby cuts (min stripe = 1/64 rows).
            min_gap = max(1, n // 64)
            kept: List[int] = []
            for c in cuts:
                if not kept or c - kept[-1] >= min_gap:
                    kept.append(int(c))
            bounds = np.array([0] + kept + [n], dtype=np.int64)
        else:  # pragma: no cover - resolve_params guards values
            raise OperatorError(f"ROW_DIV: unknown strategy {strategy!r}")
        bounds = np.unique(bounds)
        if bounds.size <= 2:
            return [meta.copy()]
        return [
            _slice_rows(meta, np.arange(bounds[i], bounds[i + 1]))
            for i in range(bounds.size - 1)
        ]


@register_operator
class ColDiv(_BranchingOperator):
    """Divide the matrix into striped sub-matrices by columns ([40], [41]).

    Children keep the full row range; their partial results are summed into
    ``y``, so every child's global reduction must tolerate concurrent
    writers (the kernel builder accounts the extra traffic).
    """

    name = "COL_DIV"
    stage = Stage.CONVERTING
    source = "cache-blocked SpMV"
    description = "Divide a matrix into column stripes, branching the graph"
    params = (
        ParamSpec(
            "parts",
            coarse=(2, 4),
            fine=(2, 3, 4, 6, 8),
            description="number of column stripes",
        ),
    )

    def check(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        if meta.n_cols < 2:
            raise OperatorError("COL_DIV: nothing to divide")

    def partition(
        self, meta: MatrixMetadataSet, params: Mapping[str, object]
    ) -> List[MatrixMetadataSet]:
        parts = min(int(params["parts"]), meta.n_cols)
        bounds = np.linspace(0, meta.n_cols, parts + 1).astype(np.int64)
        children: List[MatrixMetadataSet] = []
        for i in range(parts):
            mask = (meta.elem_col >= bounds[i]) & (meta.elem_col < bounds[i + 1])
            if not mask.any():
                continue
            child = meta.copy()
            child.elem_row = meta.elem_row[mask]
            child.elem_col = meta.elem_col[mask]
            child.elem_val = meta.elem_val[mask]
            child.elem_pad = meta.elem_pad[mask]
            child.put("useful_nnz", int((~child.elem_pad).sum()))
            children.append(child)
        return children if children else [meta.copy()]


@register_operator
class HybDecomp(_BranchingOperator):
    """HYB-style row-width decomposition — the operator §VII-H names as
    missing from the prototype (implemented here as the paper's announced
    future work; the default search keeps it off to mirror the paper's
    measurements, see :class:`repro.search.engine.SearchEngine`'s
    ``enable_extensions``).

    Splits element-wise: the first ``width`` non-zeros of every row form the
    regular child (an ELL-friendly sub-matrix), the overflow forms the
    irregular child.  Both children cover the same rows, so their kernels
    must accumulate (GMEM_ATOM_RED); the kernel builder rejects conflicting
    direct stores.
    """

    name = "HYB_DECOMP"
    stage = Stage.CONVERTING
    source = "HYB (paper §VII-H future work)"
    description = "Split rows at a width: regular head part + overflow part"
    params = (
        ParamSpec(
            "width_scale",
            coarse=(1.0, 2.0),
            fine=(0.5, 1.0, 1.5, 2.0, 3.0),
            description="split width as a multiple of the average row length",
        ),
    )

    def check(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        if meta.stored_elements == 0:
            raise OperatorError("HYB_DECOMP: empty matrix")

    def partition(
        self, meta: MatrixMetadataSet, params: Mapping[str, object]
    ) -> List[MatrixMetadataSet]:
        lengths = _row_lengths(meta).astype(np.float64)
        avg = max(lengths[lengths > 0].mean() if (lengths > 0).any() else 1.0, 1.0)
        width = max(1, int(np.ceil(avg * float(params["width_scale"]))))
        # Position of each element within its row (storage is row-major
        # before the mapping stage).
        order = np.argsort(meta.elem_row, kind="stable")
        pos = np.empty(meta.stored_elements, dtype=np.int64)
        # Vectorised position-in-row: cumulative count per row.
        sorted_rows = meta.elem_row[order]
        starts = np.r_[0, np.cumsum(np.bincount(sorted_rows, minlength=meta.n_rows))[:-1]]
        pos[order] = np.arange(meta.stored_elements) - starts[sorted_rows]
        head = pos < width
        if head.all() or not head.any():
            return [meta.copy()]
        children: List[MatrixMetadataSet] = []
        for mask in (head, ~head):
            child = meta.copy()
            child.elem_row = meta.elem_row[mask]
            child.elem_col = meta.elem_col[mask]
            child.elem_val = meta.elem_val[mask]
            child.elem_pad = meta.elem_pad[mask]
            child.put("useful_nnz", int((~child.elem_pad).sum()))
            children.append(child)
        return children


@register_operator
class Bin(_BranchingOperator):
    """Put rows into bins by row length (source: ACSR [24], [44]).

    Bin boundaries are powers of two of the average row length; each bin
    becomes a sub-matrix handled by its own sub-graph — the ACSR/HYB-style
    decomposition by row regularity.
    """

    name = "BIN"
    stage = Stage.CONVERTING
    source = "ACSR"
    description = "Bin rows by #non-zeros per row, branching the graph"
    params = (
        ParamSpec(
            "n_bins",
            coarse=(2, 3),
            fine=(2, 3, 4, 5),
            description="number of row-length bins",
        ),
    )

    def check(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        if meta.n_rows < 2:
            raise OperatorError("BIN: nothing to bin")

    def partition(
        self, meta: MatrixMetadataSet, params: Mapping[str, object]
    ) -> List[MatrixMetadataSet]:
        n_bins = int(params["n_bins"])
        lengths = _row_lengths(meta).astype(np.float64)
        avg = max(lengths.mean(), 1.0)
        # Boundaries: avg * 2^k, centred so the middle bin holds the average.
        powers = [avg * (2.0 ** (k + 1)) for k in range(n_bins - 1)]
        edges = np.array([0.0] + powers + [np.inf])
        children: List[MatrixMetadataSet] = []
        for i in range(n_bins):
            row_ids = np.flatnonzero((lengths >= edges[i]) & (lengths < edges[i + 1]))
            if row_ids.size == 0:
                continue
            children.append(_slice_rows(meta, row_ids))
        return children if children else [meta.copy()]
