"""Operator base machinery: stages, parameter specs, registry.

An operator (paper §IV-A) is a design strategy of the SpMV program — a
"vector in design space" that may move simultaneously along the format,
kernel and parameter dimensions.  Each operator declares:

* its **stage** (converting / mapping / implementing),
* a **parameter space** — per-parameter coarse grid (measured directly) and
  fine grid (interpolated by the search engine's ML model, §VI-A),
* an ``apply`` transformation of the Matrix Metadata Set,
* a ``check`` precondition implementing the dependency rules of §IV-B.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Type

from repro.core.metadata import MatrixMetadataSet

__all__ = [
    "Stage",
    "ParamSpec",
    "Operator",
    "OperatorError",
    "OPERATOR_REGISTRY",
    "register_operator",
    "get_operator",
    "operators_in_stage",
]


class OperatorError(ValueError):
    """Dependency violation or inapplicable operator (paper §IV-B)."""


class Stage(enum.IntEnum):
    """The three design stages; graphs are non-decreasing in stage order."""

    CONVERTING = 0
    MAPPING = 1
    IMPLEMENTING = 2


@dataclass(frozen=True)
class ParamSpec:
    """Searchable parameter of an operator.

    ``coarse`` values are measured by running generated programs; ``fine``
    values are reached only through ML interpolation (three-level search).
    ``fine`` must be a superset of ``coarse``.
    """

    name: str
    coarse: Tuple[object, ...]
    fine: Tuple[object, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.coarse:
            raise ValueError(f"parameter {self.name!r} needs a coarse grid")
        fine = self.fine if self.fine else self.coarse
        object.__setattr__(self, "fine", tuple(fine))
        missing = [v for v in self.coarse if v not in self.fine]
        if missing:
            raise ValueError(
                f"coarse values {missing} of {self.name!r} missing from fine grid"
            )

    @property
    def default(self) -> object:
        return self.coarse[0]


class Operator:
    """Base class for all design-strategy operators.

    Subclasses set the class attributes and implement :meth:`apply`;
    :meth:`check` may be overridden for extra dependency rules.
    """

    #: Unique registry name, e.g. ``"BMT_ROW_BLOCK"``.
    name: str = ""
    stage: Stage = Stage.CONVERTING
    #: Literature the strategy is distilled from (Table II "Source" column).
    source: str = ""
    description: str = ""
    params: Tuple[ParamSpec, ...] = ()
    #: True for ROW_DIV / BIN — operators that split the matrix and branch
    #: the Operator Graph.
    branching: bool = False

    # ------------------------------------------------------------------
    def default_params(self) -> Dict[str, object]:
        return {p.name: p.default for p in self.params}

    def resolve_params(self, given: Optional[Mapping[str, object]]) -> Dict[str, object]:
        """Fill defaults and reject unknown parameter names."""
        resolved = self.default_params()
        if given:
            unknown = set(given) - set(resolved)
            if unknown:
                raise OperatorError(
                    f"{self.name}: unknown parameters {sorted(unknown)}"
                )
            resolved.update(given)
        return resolved

    def param_spec(self, name: str) -> ParamSpec:
        for spec in self.params:
            if spec.name == name:
                return spec
        raise KeyError(f"{self.name} has no parameter {name!r}")

    # ------------------------------------------------------------------
    def check(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        """Raise :class:`OperatorError` if the operator cannot apply now.

        The default enforces the stage-wide rules: mapping requires a
        compressed matrix (paper: "the mapping stage always begins after the
        COMPRESS operator"), implementing requires mapping to have finished.
        """
        if self.stage is not Stage.CONVERTING and not meta.compressed:
            raise OperatorError(f"{self.name}: requires COMPRESS first")

    def apply(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Operator {self.name} ({self.stage.name.lower()})>"


#: name → operator instance (operators are stateless; one instance suffices).
OPERATOR_REGISTRY: Dict[str, Operator] = {}


def register_operator(cls: Type[Operator]) -> Type[Operator]:
    """Class decorator adding an operator to the registry."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"{cls.__name__} must define a name")
    if instance.name in OPERATOR_REGISTRY:
        raise ValueError(f"duplicate operator name {instance.name!r}")
    OPERATOR_REGISTRY[instance.name] = instance
    return cls


def get_operator(name: str) -> Operator:
    try:
        return OPERATOR_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown operator {name!r}; registered: {sorted(OPERATOR_REGISTRY)}"
        ) from None


def operators_in_stage(stage: Stage) -> List[Operator]:
    return [op for op in OPERATOR_REGISTRY.values() if op.stage is stage]
