"""Mapping-stage operators: distribute the matrix over GPU parallelism levels.

Table II (mapping): BMTB/BMW/BMT × ROW/COL_BLOCK, BMT_NNZ_BLOCK,
BMTB/BMW/BMT_PAD, SORT_BMTB — plus INTERLEAVED_STORAGE and BMTB_ROW_PAD
which appear in the paper's Fig 14a machine-designed format.

BMTB/BMW/BMT abbreviate "a block mapped to a thread block / warp / thread".
Blocks are contiguous runs of the element storage order, globally numbered,
and nested: every BMT lies inside one BMW (if warps are mapped) inside one
BMTB.  Mapping operators must therefore be applied coarse-to-fine; the
dependency rules below reject e.g. ``BMT_ROW_BLOCK`` followed by
``BMTB_ROW_BLOCK`` — the paper's own Fig 5 example of an illegal edge.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

import numpy as np

from repro.core.metadata import MAP_LEVELS, MatrixMetadataSet
from repro.core.operators.base import (
    Operator,
    OperatorError,
    ParamSpec,
    Stage,
    register_operator,
)

__all__ = [
    "BmtbRowBlock",
    "BmwRowBlock",
    "BmtRowBlock",
    "BmtbColBlock",
    "BmtColBlock",
    "BmtbNnzBlock",
    "BmwNnzBlock",
    "BmtNnzBlock",
    "BmtbPad",
    "BmwPad",
    "BmtPad",
    "BmtbRowPad",
    "SortBmtb",
    "InterleavedStorage",
]


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def _level_index(level: str) -> int:
    return MAP_LEVELS.index(level)


def _require_level_free(meta: MatrixMetadataSet, level: str, op_name: str) -> None:
    """Enforce coarse-to-fine creation order for mapping levels."""
    if meta.blocks_of(level) is not None:
        raise OperatorError(f"{op_name}: {level} blocks already defined")
    for finer in MAP_LEVELS[_level_index(level) + 1 :]:
        if meta.blocks_of(finer) is not None:
            raise OperatorError(
                f"{op_name}: cannot create {level} blocks after finer "
                f"{finer} blocks exist (paper §IV-B dependency)"
            )


def _parent_blocks(meta: MatrixMetadataSet, level: str) -> Optional[np.ndarray]:
    """Block ids of the nearest coarser mapped level (None if unmapped)."""
    for coarser in reversed(MAP_LEVELS[: _level_index(level)]):
        blocks = meta.blocks_of(coarser)
        if blocks is not None:
            return blocks
    return None


def _contiguous_ids(keys: np.ndarray) -> np.ndarray:
    """Renumber group keys (non-decreasing not required) to dense ids
    following storage order of first appearance."""
    if keys.size == 0:
        return keys.astype(np.int64)
    change = np.empty(keys.size, dtype=bool)
    change[0] = True
    change[1:] = keys[1:] != keys[:-1]
    return np.cumsum(change) - 1


def _row_block_ids(
    meta: MatrixMetadataSet, rows_per_block: int, op_name: str
) -> np.ndarray:
    """Group elements into blocks of ``rows_per_block`` consecutive rows,
    nested within the current parent blocks."""
    if rows_per_block <= 0:
        raise OperatorError(f"{op_name}: rows_per_block must be positive")
    rows = meta.elem_row
    parent = _parent_blocks_for_new(meta, op_name)
    if parent is None:
        local = rows // rows_per_block
        return _contiguous_ids(local)
    # First row of each parent block (from elements; storage is row-major
    # within parents after row blocking).
    first_row = _per_group_min(parent, rows)
    local = (rows - first_row[parent]) // rows_per_block
    # Combine (parent, local) into dense global ids.
    return _contiguous_ids(parent * (local.max() + 1 if local.size else 1) + local)


def _parent_blocks_for_new(meta: MatrixMetadataSet, op_name: str) -> Optional[np.ndarray]:
    level = op_name.split("_")[0].lower()  # "bmtb" / "bmw" / "bmt"
    return _parent_blocks(meta, level)


def _per_group_min(groups: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Minimum of ``values`` per dense group id."""
    n_groups = int(groups.max()) + 1 if groups.size else 0
    out = np.full(n_groups, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(out, groups, values)
    return out


def _nnz_block_ids(
    meta: MatrixMetadataSet, nnz_per_block: int, op_name: str
) -> np.ndarray:
    """Chunk elements into runs of ``nnz_per_block``, never straddling a
    parent-block boundary (the load-balancing split of CSR5/Merge)."""
    if nnz_per_block <= 0:
        raise OperatorError(f"{op_name}: nnz_per_block must be positive")
    n = meta.stored_elements
    parent = _parent_blocks_for_new(meta, op_name)
    if parent is None:
        return np.arange(n, dtype=np.int64) // nnz_per_block
    # Position within parent block.
    starts = np.flatnonzero(np.r_[True, parent[1:] != parent[:-1]])
    offset_of_parent = np.zeros(int(parent.max()) + 1, dtype=np.int64)
    offset_of_parent[parent[starts]] = starts
    pos_in_parent = np.arange(n, dtype=np.int64) - offset_of_parent[parent]
    local = pos_in_parent // nnz_per_block
    return _contiguous_ids(parent * (int(local.max()) + 1) + local)


def _set_level_blocks(
    meta: MatrixMetadataSet, level: str, block_of_elem: np.ndarray
) -> int:
    n_blocks = int(block_of_elem.max()) + 1 if block_of_elem.size else 0
    meta.set_blocks(level, block_of_elem.astype(np.int64), n_blocks)
    return n_blocks


def _record_offsets(meta: MatrixMetadataSet, level: str) -> None:
    """Add the ``<level>_nz_offsets`` / ``<level>_row_offsets`` format arrays
    (paper Fig 5's added-metadata rows)."""
    blocks = meta.blocks_of(level)
    assert blocks is not None
    n = blocks.size
    starts = np.flatnonzero(np.r_[True, blocks[1:] != blocks[:-1]])
    nz_offsets = np.r_[starts, n].astype(np.int64)
    meta.format_arrays[f"{level}_nz_offsets"] = nz_offsets
    first_rows = meta.elem_row[starts] if n else np.zeros(0, dtype=np.int64)
    meta.format_arrays[f"{level}_row_offsets"] = first_rows.astype(np.int64)


def _pad_blocks(
    meta: MatrixMetadataSet,
    level: str,
    mode: str,
    multiple: int,
    op_name: str,
) -> None:
    """Pad every block at ``level`` to a size target.

    ``mode='multiple'`` rounds each block's element count up to a multiple of
    ``multiple``; ``mode='max'`` equalises all blocks within their parent to
    the parent's max block size (ELL/SELL semantics).  Padding elements copy
    the block's last element's row/column with value 0, so every reduction
    strategy stays semantically valid and no extra x hot-spot is created.
    """
    blocks = meta.blocks_of(level)
    if blocks is None:
        raise OperatorError(f"{op_name}: no {level} blocks to pad")
    for finer in MAP_LEVELS[_level_index(level) + 1 :]:
        if meta.blocks_of(finer) is not None:
            raise OperatorError(
                f"{op_name}: padding must happen before finer {finer} blocks"
            )
    n = blocks.size
    if n == 0:
        return
    n_blocks = int(blocks.max()) + 1
    counts = np.bincount(blocks, minlength=n_blocks)
    if mode == "multiple":
        if multiple <= 1:
            return
        targets = ((counts + multiple - 1) // multiple) * multiple
    elif mode == "max":
        parent = _parent_blocks(meta, level)
        if parent is None:
            targets = np.full(n_blocks, counts.max(), dtype=np.int64)
        else:
            starts = np.flatnonzero(np.r_[True, blocks[1:] != blocks[:-1]])
            parent_of_block = parent[starts]
            max_per_parent = np.zeros(int(parent_of_block.max()) + 1, dtype=np.int64)
            np.maximum.at(max_per_parent, parent_of_block, counts)
            targets = max_per_parent[parent_of_block]
    else:
        raise OperatorError(f"{op_name}: unknown pad mode {mode!r}")
    targets = np.maximum(targets, counts)
    if (targets == counts).all():
        return

    block_starts_in = np.r_[0, np.cumsum(counts)]
    block_starts_out = np.r_[0, np.cumsum(targets)]
    total_out = int(block_starts_out[-1])
    out_block = np.repeat(np.arange(n_blocks), targets)
    pos = np.arange(total_out) - block_starts_out[out_block]
    # Source: real element when pos < count, else repeat the last element.
    src = block_starts_in[out_block] + np.minimum(pos, np.maximum(counts[out_block] - 1, 0))
    is_pad = pos >= counts[out_block]

    meta.elem_row = meta.elem_row[src]
    meta.elem_col = meta.elem_col[src]
    new_vals = meta.elem_val[src]
    new_vals[is_pad] = 0.0
    meta.elem_val = new_vals
    meta.elem_pad = meta.elem_pad[src] | is_pad
    # Re-derive every level's block ids through the gather.
    for lvl in MAP_LEVELS:
        lvl_blocks = meta.blocks_of(lvl)
        if lvl_blocks is not None:
            meta.set_blocks(lvl, lvl_blocks[src], int(lvl_blocks.max()) + 1)
    # Block sizes are now uniform per parent / per multiple: record them.
    meta.format_arrays[f"{level}_sizes"] = targets.astype(np.int64)
    _record_offsets(meta, level)


# ---------------------------------------------------------------------------
# Row-blocking operators
# ---------------------------------------------------------------------------

class _RowBlock(Operator):
    stage = Stage.MAPPING
    level = ""  # set by subclasses

    def check(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        super().check(meta, params)
        _require_level_free(meta, self.level, self.name)

    def apply(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        rows_per_block = int(params["rows_per_block"])  # type: ignore[index]
        ids = _row_block_ids(meta, rows_per_block, self.name)
        _set_level_blocks(meta, self.level, ids)
        _record_offsets(meta, self.level)
        meta.put(f"{self.level}_is_row_block", True)


@register_operator
class BmtbRowBlock(_RowBlock):
    """Split rows into blocks mapped to thread blocks ([39], [43], [46], [47])."""

    name = "BMTB_ROW_BLOCK"
    level = "bmtb"
    source = "SELL-family, CSR-Adaptive"
    description = "Row blocks mapped to CUDA thread blocks"
    params = (
        ParamSpec(
            "rows_per_block",
            coarse=(32, 128, 512),
            fine=(16, 32, 64, 128, 256, 512, 1024),
        ),
    )


@register_operator
class BmwRowBlock(_RowBlock):
    """Split rows into blocks mapped to warps (CSR-vector lineage)."""

    name = "BMW_ROW_BLOCK"
    level = "bmw"
    source = "CSR-Vector, LightSpMV"
    description = "Row blocks mapped to warps"
    params = (
        ParamSpec(
            "rows_per_block",
            coarse=(1, 4, 16),
            fine=(1, 2, 4, 8, 16, 32),
        ),
    )


@register_operator
class BmtRowBlock(_RowBlock):
    """Split rows into blocks mapped to single threads (CSR-scalar lineage)."""

    name = "BMT_ROW_BLOCK"
    level = "bmt"
    source = "CSR-Scalar, SELL-P"
    description = "Row blocks mapped to threads"
    params = (
        ParamSpec(
            "rows_per_block",
            coarse=(1, 2),
            fine=(1, 2, 4),
        ),
    )


# ---------------------------------------------------------------------------
# Column-blocking operators
# ---------------------------------------------------------------------------

class _ColBlock(Operator):
    stage = Stage.MAPPING
    level = ""

    def check(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        super().check(meta, params)
        _require_level_free(meta, self.level, self.name)

    def apply(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        cols_per_block = int(params["cols_per_block"])  # type: ignore[index]
        if cols_per_block <= 0:
            raise OperatorError(f"{self.name}: cols_per_block must be positive")
        parent = _parent_blocks_for_new(meta, self.name)
        col_band = meta.elem_col // cols_per_block
        if parent is None:
            keys = col_band
            order = np.argsort(keys, kind="stable")
        else:
            width = int(col_band.max()) + 1 if col_band.size else 1
            keys = parent * width + col_band
            order = np.argsort(keys, kind="stable")
        # Column blocking re-orders storage inside parents.
        meta.elem_row = meta.elem_row[order]
        meta.elem_col = meta.elem_col[order]
        meta.elem_val = meta.elem_val[order]
        meta.elem_pad = meta.elem_pad[order]
        for lvl in MAP_LEVELS[: _level_index(self.level)]:
            blocks = meta.blocks_of(lvl)
            if blocks is not None:
                meta.set_blocks(lvl, blocks[order], int(blocks.max()) + 1)
        ids = _contiguous_ids(keys[order])
        _set_level_blocks(meta, self.level, ids)
        _record_offsets(meta, self.level)
        # Column blocks need explicit column-band bases in the format.
        blocks = meta.blocks_of(self.level)
        starts = np.flatnonzero(np.r_[True, blocks[1:] != blocks[:-1]]) if blocks.size else np.zeros(0, np.int64)
        meta.format_arrays[f"{self.level}_col_bases"] = (
            meta.elem_col[starts] // cols_per_block * cols_per_block
        ).astype(np.int64)


@register_operator
class BmtbColBlock(_ColBlock):
    """Column bands mapped to thread blocks (2-D blocking [46])."""

    name = "BMTB_COL_BLOCK"
    level = "bmtb"
    source = "2-D blocked SpMV, BCOO"
    description = "Column bands mapped to CUDA thread blocks"
    params = (
        ParamSpec(
            "cols_per_block",
            coarse=(256, 1024),
            fine=(128, 256, 512, 1024, 2048, 4096),
        ),
    )


@register_operator
class BmtColBlock(_ColBlock):
    """Column chunks inside a row mapped to different threads ([39], [43])."""

    name = "BMT_COL_BLOCK"
    level = "bmt"
    source = "BiELL, BCOO"
    description = "Column chunks mapped to threads"
    params = (
        ParamSpec(
            "cols_per_block",
            coarse=(32, 128),
            fine=(16, 32, 64, 128, 256, 512),
        ),
    )


# ---------------------------------------------------------------------------
# NNZ-blocking operators (load-balanced splits)
# ---------------------------------------------------------------------------

class _NnzBlock(Operator):
    stage = Stage.MAPPING
    level = ""

    def check(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        super().check(meta, params)
        _require_level_free(meta, self.level, self.name)

    def apply(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        nnz_per_block = int(params["nnz_per_block"])  # type: ignore[index]
        ids = _nnz_block_ids(meta, nnz_per_block, self.name)
        _set_level_blocks(meta, self.level, ids)
        _record_offsets(meta, self.level)
        # NNZ splits straddle rows: the kernel needs per-element row ids
        # unless a coarser structure pins them; record the row-index array.
        meta.format_arrays.setdefault(
            "elem_row_indices", meta.elem_row.astype(np.int64)
        )


@register_operator
class BmtbNnzBlock(_NnzBlock):
    """Equal-nnz chunks mapped to thread blocks (Merge-based CSR lineage)."""

    name = "BMTB_NNZ_BLOCK"
    level = "bmtb"
    source = "Merge-based CSR"
    description = "Continuous non-zeros mapped to thread blocks"
    params = (
        ParamSpec(
            "nnz_per_block",
            coarse=(1024, 4096),
            fine=(512, 1024, 2048, 4096, 8192),
        ),
    )


@register_operator
class BmwNnzBlock(_NnzBlock):
    """Equal-nnz tiles mapped to warps (CSR5 tile lineage)."""

    name = "BMW_NNZ_BLOCK"
    level = "bmw"
    source = "CSR5"
    description = "Continuous non-zeros mapped to warps"
    params = (
        ParamSpec(
            "nnz_per_block",
            coarse=(64, 256),
            fine=(32, 64, 128, 256, 512),
        ),
    )


@register_operator
class BmtNnzBlock(_NnzBlock):
    """Equal-nnz runs mapped to threads ([18], [25], [41])."""

    name = "BMT_NNZ_BLOCK"
    level = "bmt"
    source = "CSR5, yaSpMV"
    description = "Continuous non-zeros mapped to threads"
    params = (
        ParamSpec(
            "nnz_per_block",
            coarse=(2, 8, 32),
            fine=(2, 4, 8, 16, 32, 64),
        ),
    )


# ---------------------------------------------------------------------------
# Padding operators
# ---------------------------------------------------------------------------

class _Pad(Operator):
    stage = Stage.MAPPING
    level = ""

    params = (
        ParamSpec("mode", coarse=("multiple", "max")),
        ParamSpec(
            "multiple",
            coarse=(4, 32),
            fine=(2, 4, 8, 16, 32, 64),
            description="size granularity for mode='multiple'",
        ),
    )

    def check(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        super().check(meta, params)
        if meta.blocks_of(self.level) is None:
            raise OperatorError(f"{self.name}: requires {self.level} blocks")

    def apply(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        _pad_blocks(
            meta,
            self.level,
            str(params["mode"]),
            int(params["multiple"]),
            self.name,
        )


@register_operator
class BmtbPad(_Pad):
    """Zero-pad thread-block chunks ([35], [46], [47])."""

    name = "BMTB_PAD"
    level = "bmtb"
    source = "row-grouped CSR"
    description = "Zero padding of BMTB element counts"


@register_operator
class BmwPad(_Pad):
    """Zero-pad warp chunks to uniform size."""

    name = "BMW_PAD"
    level = "bmw"
    source = "AdELL"
    description = "Zero padding of BMW element counts"


@register_operator
class BmtPad(_Pad):
    """Zero-pad per-thread chunks — ELL/SELL-P's equal-work trick."""

    name = "BMT_PAD"
    level = "bmt"
    source = "ELLPACK, SELL-P"
    description = "Zero padding of BMT element counts"


@register_operator
class BmtbRowPad(Operator):
    """Pad the row count of each BMTB to a multiple (paper Fig 14a).

    With interleaved storage every BMTB must present a rectangular
    rows × width tile; missing rows are stood in by one zero element
    duplicating the block's last row.
    """

    name = "BMTB_ROW_PAD"
    stage = Stage.MAPPING
    source = "SELL-P"
    description = "Pad rows per BMTB to a multiple"
    params = (
        ParamSpec("multiple", coarse=(32,), fine=(4, 8, 16, 32, 64)),
    )

    def check(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        super().check(meta, params)
        if meta.blocks_of("bmtb") is None or not meta.get("bmtb_is_row_block"):
            raise OperatorError("BMTB_ROW_PAD: requires row-blocked bmtb")
        for finer in ("bmw", "bmt"):
            if meta.blocks_of(finer) is not None:
                raise OperatorError(
                    "BMTB_ROW_PAD: must run before finer blocks exist"
                )

    def apply(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        multiple = int(params["multiple"])
        if multiple <= 1:
            return
        blocks = meta.blocks_of("bmtb")
        assert blocks is not None
        n = blocks.size
        if n == 0:
            return
        starts = np.flatnonzero(np.r_[True, blocks[1:] != blocks[:-1]])
        ends = np.r_[starts[1:], n]
        extra_rows: List[np.ndarray] = []
        extra_blocks: List[int] = []
        for b, (s, e) in enumerate(zip(starts, ends)):
            rows_here = np.unique(meta.elem_row[s:e])
            deficit = (-rows_here.size) % multiple
            if deficit:
                extra_rows.append(np.full(deficit, meta.elem_row[e - 1]))
                extra_blocks.extend([int(blocks[s])] * deficit)
        if not extra_rows:
            return
        pad_rows = np.concatenate(extra_rows)
        pad_blocks = np.asarray(extra_blocks, dtype=np.int64)
        # Append pads, then restore block-contiguous order.
        rows = np.r_[meta.elem_row, pad_rows]
        cols = np.r_[meta.elem_col, meta.elem_col[-1] * np.ones(pad_rows.size, dtype=np.int64)]
        vals = np.r_[meta.elem_val, np.zeros(pad_rows.size)]
        pads = np.r_[meta.elem_pad, np.ones(pad_rows.size, dtype=bool)]
        all_blocks = np.r_[blocks, pad_blocks]
        order = np.argsort(all_blocks, kind="stable")
        meta.elem_row = rows[order]
        meta.elem_col = cols[order]
        meta.elem_val = vals[order]
        meta.elem_pad = pads[order]
        meta.set_blocks("bmtb", all_blocks[order], int(all_blocks.max()) + 1)
        _record_offsets(meta, "bmtb")


@register_operator
class SortBmtb(Operator):
    """Sort rows by length within each BMTB ([39]) — shrinks padding while
    keeping the sort window local (cheap format conversion)."""

    name = "SORT_BMTB"
    stage = Stage.MAPPING
    source = "SELL-C-sigma"
    description = "Sort rows in decreasing length within a BMTB"

    def check(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        super().check(meta, params)
        if meta.blocks_of("bmtb") is None or not meta.get("bmtb_is_row_block"):
            raise OperatorError("SORT_BMTB: requires row-blocked bmtb")
        for finer in ("bmw", "bmt"):
            if meta.blocks_of(finer) is not None:
                raise OperatorError("SORT_BMTB: must run before finer blocks")

    def apply(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        from repro.core.operators.converting import _renumber_rows

        blocks = meta.blocks_of("bmtb")
        assert blocks is not None
        lengths = np.bincount(meta.elem_row, minlength=meta.n_rows)
        # Row -> bmtb from the first element of each row (rows don't straddle
        # bmtb row blocks).
        starts = np.flatnonzero(np.r_[True, meta.elem_row[1:] != meta.elem_row[:-1]])
        row_ids = meta.elem_row[starts]
        bmtb_of_row_dense = blocks[starts]
        bmtb_of_row = np.zeros(meta.n_rows, dtype=np.int64)
        bmtb_of_row[row_ids] = bmtb_of_row_dense
        # Stable sort rows by (bmtb, -length) and renumber.
        order = np.lexsort((-lengths, bmtb_of_row))
        new_of_old = np.empty(meta.n_rows, dtype=np.int64)
        new_of_old[order] = np.arange(meta.n_rows)
        saved_blocks = blocks.copy()
        _renumber_rows(meta, new_of_old)
        # Row renumbering is within-bmtb, so block ids per element position
        # are preserved by the row-major re-sort.
        meta.set_blocks("bmtb", saved_blocks, int(saved_blocks.max()) + 1)
        _record_offsets(meta, "bmtb")


@register_operator
class InterleavedStorage(Operator):
    """Transpose per-block storage so warp lanes access consecutive
    addresses — the ELL/SELL column-major trick (paper Fig 14a)."""

    name = "INTERLEAVED_STORAGE"
    stage = Stage.MAPPING
    source = "ELLPACK, SELL"
    description = "Column-major (interleaved) storage within blocks"

    def check(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        super().check(meta, params)
        if meta.finest_level() is None:
            raise OperatorError(
                "INTERLEAVED_STORAGE: requires at least one mapping level"
            )

    def apply(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        meta.interleaved = True
