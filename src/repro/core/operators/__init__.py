"""Operators — the fine-grained SpMV design strategies of Table II.

Every operator is registered in :data:`OPERATOR_REGISTRY`; the search engine
enumerates them through :func:`get_operator` / :func:`operators_in_stage`.
Users can extend AlphaSparse by subclassing
:class:`~repro.core.operators.base.Operator` and calling
:func:`~repro.core.operators.base.register_operator` (paper §IV-A: "AlphaSparse
allows users to implement operators by themselves").
"""

from repro.core.operators.base import (
    Operator,
    OperatorError,
    ParamSpec,
    Stage,
    OPERATOR_REGISTRY,
    get_operator,
    operators_in_stage,
    register_operator,
)

# Importing the stage modules populates the registry.
from repro.core.operators import converting as _converting  # noqa: F401
from repro.core.operators import mapping as _mapping  # noqa: F401
from repro.core.operators import implementing as _implementing  # noqa: F401

__all__ = [
    "Operator",
    "OperatorError",
    "ParamSpec",
    "Stage",
    "OPERATOR_REGISTRY",
    "get_operator",
    "operators_in_stage",
    "register_operator",
]
