"""Implementing-stage operators: runtime resources and reduction strategies.

Table II (implementing): SET_RESOURCES plus eight reduction operators.
Reduction operators append a ``(level, strategy)`` step to the metadata's
reduction chain; the kernel builder turns the chain into the spliced
fragments of Fig 6 and the executor charges each strategy its cost (warp
shuffles, shared-memory traffic, atomics).

Semantics validated at execution time (mirroring kernels that would compute
wrong answers on silicon): *TOTAL* strategies require their scope to contain
a single row; ``GMEM_DIRECT_STORE`` (implicit in human CSR kernels; exposed
here so graphs can express it) requires every output row to have exactly one
producer — otherwise ``GMEM_ATOM_RED`` is mandatory.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.metadata import MatrixMetadataSet
from repro.core.operators.base import (
    Operator,
    OperatorError,
    ParamSpec,
    Stage,
    register_operator,
)

__all__ = [
    "SetResources",
    "GmemAtomRed",
    "GmemDirectStore",
    "ShmemOffsetRed",
    "ShmemTotalRed",
    "WarpTotalRed",
    "WarpBitmapRed",
    "WarpSegRed",
    "ThreadTotalRed",
    "ThreadBitmapRed",
]

_LEVEL_ORDER = {"thread": 0, "warp": 1, "block": 2, "global": 3}


@register_operator
class SetResources(Operator):
    """Set runtime configuration: threads per block and, for unmapped
    (COO-style) kernels, the per-thread work grain."""

    name = "SET_RESOURCES"
    stage = Stage.IMPLEMENTING
    source = "(runtime)"
    description = "Set runtime configurations"
    params = (
        ParamSpec(
            "threads_per_block",
            coarse=(128, 256, 512),
            fine=(64, 128, 256, 512, 1024),
        ),
        ParamSpec(
            "work_per_thread",
            coarse=(1, 4),
            fine=(1, 2, 4, 8, 16),
            description="elements per thread when no mapping level exists",
        ),
    )

    def apply(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        tpb = int(params["threads_per_block"])  # type: ignore[index]
        if tpb % 32 != 0:
            raise OperatorError("SET_RESOURCES: threads_per_block must be a warp multiple")
        meta.threads_per_block = tpb
        wpt = int(params["work_per_thread"])  # type: ignore[index]
        if wpt <= 0:
            raise OperatorError("SET_RESOURCES: work_per_thread must be positive")
        if meta.finest_level() is None:
            n = max(1, meta.stored_elements)
            meta.grid_threads = (n + wpt - 1) // wpt


class _ReductionOperator(Operator):
    stage = Stage.IMPLEMENTING
    level = ""
    strategy = ""

    def check(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        super().check(meta, params)
        steps = meta.reduction_steps
        if steps:
            prev_level = steps[-1][0]
            if _LEVEL_ORDER[self.level] < _LEVEL_ORDER[prev_level]:
                raise OperatorError(
                    f"{self.name}: reduction levels must be non-decreasing "
                    f"({prev_level} already applied)"
                )
            if _LEVEL_ORDER[self.level] == _LEVEL_ORDER[prev_level]:
                raise OperatorError(
                    f"{self.name}: a {self.level}-level reduction already exists"
                )
            if prev_level == "global":
                raise OperatorError(f"{self.name}: chain already ended in global memory")

    def apply(self, meta: MatrixMetadataSet, params: Mapping[str, object]) -> None:
        meta.reduction_steps.append((self.level, self.strategy))


@register_operator
class GmemAtomRed(_ReductionOperator):
    """Atomically add intermediate results to y in global memory ([35])."""

    name = "GMEM_ATOM_RED"
    level = "global"
    strategy = "GMEM_ATOM_RED"
    source = "row-grouped CSR, COO kernels"
    description = "Atomic adds of partial results into global memory"


@register_operator
class GmemDirectStore(_ReductionOperator):
    """Plain stores to y — valid only when each row has one producer."""

    name = "GMEM_DIRECT_STORE"
    level = "global"
    strategy = "GMEM_DIRECT_STORE"
    source = "CSR-Scalar and every one-writer-per-row kernel"
    description = "Direct global-memory stores of final row results"


@register_operator
class ShmemOffsetRed(_ReductionOperator):
    """Row-offset-guided reduction in shared memory ([22], [27], [34]) —
    the CSR-Adaptive / CSR-Stream thread-block reduction."""

    name = "SHMEM_OFFSET_RED"
    level = "block"
    strategy = "SHMEM_OFFSET_RED"
    source = "CSR-Adaptive"
    description = "Reduce multi-row partials in shared memory via row offsets"


@register_operator
class ShmemTotalRed(_ReductionOperator):
    """Tree-reduce a whole thread block into one row's result ([22], [24])."""

    name = "SHMEM_TOTAL_RED"
    level = "block"
    strategy = "SHMEM_TOTAL_RED"
    source = "CSR-VectorL, ACSR long-row bins"
    description = "Reduce all block partials into a single row result"


@register_operator
class WarpTotalRed(_ReductionOperator):
    """Warp-shuffle reduction of one row per warp ([48], [49])."""

    name = "WARP_TOTAL_RED"
    level = "warp"
    strategy = "WARP_TOTAL_RED"
    source = "CSR-Vector, LightSpMV"
    description = "Shuffle-reduce all warp partials into one row"


@register_operator
class WarpBitmapRed(_ReductionOperator):
    """Bitmap-guided warp reduction for mixed short/long rows ([47])."""

    name = "WARP_BITMAP_RED"
    level = "warp"
    strategy = "WARP_BITMAP_RED"
    source = "AdELL"
    description = "Reduce warp partials by row-boundary bitmap"


@register_operator
class WarpSegRed(_ReductionOperator):
    """Segmented-sum warp reduction ([18], segment sum [52])."""

    name = "WARP_SEG_RED"
    level = "warp"
    strategy = "WARP_SEG_RED"
    source = "CSR5"
    description = "Reduce warp partials by segmented sum"


@register_operator
class ThreadTotalRed(_ReductionOperator):
    """Serial register reduction of one row per thread ([24], [47], [50])."""

    name = "THREAD_TOTAL_RED"
    level = "thread"
    strategy = "THREAD_TOTAL_RED"
    source = "CSR-Scalar, SELL-P"
    description = "Reduce each thread's elements into one register result"


@register_operator
class ThreadBitmapRed(_ReductionOperator):
    """Serial register reduction across row boundaries via bitmap ([18], [25])."""

    name = "THREAD_BITMAP_RED"
    level = "thread"
    strategy = "THREAD_BITMAP_RED"
    source = "CSR5, yaSpMV"
    description = "Serially reduce per-thread elements, bitmap-marking rows"
