"""Pluggable workload layer: which sparse operation is being tuned.

The paper demonstrates machine-designed formats+kernels for SpMV, but the
thesis — search beats fixed-format libraries — is not SpMV-specific.  This
module makes the *operation being tuned* a first-class object so every
layer of the stack (executor, cost model, codegen, search, baselines,
bench, store, serve) is parameterised on it instead of hard-coding
``y = A @ x``:

:class:`Workload`
    One sparse operation: the dense operand it consumes (shape +
    deterministic generation), the reference computation, the
    tolerance-aware correctness gate, the exact flop count behind every
    GFLOPS figure, and a content token that scopes cache/store keys so
    artifacts of different workloads can never cross-serve.

Three concrete instances ship:

* ``spmv`` — ``y = A @ x`` (the paper's operation; the default, and
  bit-identical to the stack's historical behaviour),
* ``spmm4`` / ``spmm16`` — ``Y = A @ X`` with a dense ``k``-column
  right-hand side (k = 4 / 16),
* ``spmvt`` — transpose SpMV ``y = A.T @ x`` (gathers along rows,
  scatters along columns — the path that forces atomics on row-major
  formats, exactly as on real hardware).

Execution semantics are *declarative*: a workload states ``k`` (dense RHS
columns) and ``transpose`` (swap gather/scatter axes), and the simulated
GPU interprets a plan accordingly — so a new workload in this family is a
plugin, not another cross-cutting surgery.

The SpMV instance is the **default workload**: its ``scope_token`` is the
identity and it contributes no extra cache/store key material, which keeps
search histories, design-store entries and bench records byte-identical to
the pre-workload-layer code (asserted in ``tests/test_workloads.py``).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Dict, Tuple, Union

import numpy as np

from repro.sparse.matrix import SparseMatrix, spmv_allclose

__all__ = [
    "Workload",
    "SpMV",
    "SpMM",
    "SpMVT",
    "WORKLOADS",
    "DEFAULT_WORKLOAD",
    "get_workload",
    "register_workload",
]

#: Seed of the deterministic dense operand every search/baseline
#: measurement uses (historically the engine's fixed SpMV ``x`` seed).
OPERAND_SEED = 0x5EED

#: Name of the workload whose behaviour (and cache/store keys) must stay
#: bit-identical to the pre-workload-layer stack.
DEFAULT_WORKLOAD_NAME = "spmv"


class Workload(ABC):
    """One sparse operation the search tunes kernels for.

    Subclasses set the class attributes and implement :meth:`reference`;
    everything else — operand generation, the correctness gate, flop
    counts, key scoping — derives from those.
    """

    #: Registry key (and CLI spelling), e.g. ``"spmm16"``.
    name: str = ""
    #: Human label for tables and CLI output, e.g. ``"SpMM (k=16)"``.
    display: str = ""
    #: Dense right-hand-side columns (1 = vector operand).
    k: int = 1
    #: True when the kernel gathers along *rows* and scatters along
    #: *columns* (transpose operation).
    transpose: bool = False

    # ------------------------------------------------------------------
    # Identity & key scoping
    # ------------------------------------------------------------------
    @property
    def is_default(self) -> bool:
        """The workload whose keys/behaviour are the historical SpMV."""
        return self.name == DEFAULT_WORKLOAD_NAME

    @property
    def token(self) -> str:
        """Content token mixed into cache/store keys (non-default only)."""
        return self.name

    def scope_token(self, token: Tuple) -> Tuple:
        """Matrix token scoped to this workload.

        The default workload returns the token unchanged (byte-identical
        keys, histories and store entries); any other workload folds its
        content token into the digest component — the 5-tuple shape every
        store/cache consumer unpacks is preserved, but a SpMM design can
        never be served for a SpMV request (or vice versa).
        """
        if self.is_default:
            return token
        name, n_rows, n_cols, nnz, digest = token
        scoped = hashlib.blake2b(
            f"{digest}/{self.token}".encode("utf-8"), digest_size=16
        ).hexdigest()
        return (name, n_rows, n_cols, nnz, scoped)

    def scope_key(self, key: Tuple) -> Tuple:
        """Append the workload token to a cache key (non-default only)."""
        return key if self.is_default else key + (self.token,)

    # ------------------------------------------------------------------
    # Operand & result geometry
    # ------------------------------------------------------------------
    def operand_shape(self, n_rows: int, n_cols: int) -> Tuple[int, ...]:
        """Shape of the dense operand for an ``n_rows x n_cols`` matrix."""
        n_in = n_rows if self.transpose else n_cols
        return (n_in,) if self.k == 1 else (n_in, self.k)

    def result_shape(self, n_rows: int, n_cols: int) -> Tuple[int, ...]:
        """Shape of the result for an ``n_rows x n_cols`` matrix."""
        n_out = n_cols if self.transpose else n_rows
        return (n_out,) if self.k == 1 else (n_out, self.k)

    def make_operand(
        self, matrix: SparseMatrix, seed: int = OPERAND_SEED
    ) -> np.ndarray:
        """The deterministic dense operand used by searches and baselines
        (bit-identical to the engine's historical fixed-``x`` scheme for
        the default workload)."""
        shape = self.operand_shape(matrix.n_rows, matrix.n_cols)
        return np.random.default_rng(seed).random(shape)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    @abstractmethod
    def reference(self, matrix: SparseMatrix, x: np.ndarray) -> np.ndarray:
        """Ground-truth result every generated kernel is verified against."""

    def allclose(self, y: np.ndarray, reference: np.ndarray) -> bool:
        """Order-tolerant correctness gate (see
        :func:`repro.sparse.matrix.spmv_allclose` for the tolerance
        rationale; it applies unchanged to matrix-shaped results)."""
        return spmv_allclose(y, reference)

    def flops(self, nnz: int) -> float:
        """Exact useful flop count on a matrix with ``nnz`` stored
        non-zeros — the single source of the numerator behind every
        reported GFLOPS figure (one fused multiply-add per stored element
        per dense right-hand-side column)."""
        return (2.0 * nnz) * self.k

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Workload {self.name!r}>"


class SpMV(Workload):
    """``y = A @ x`` — the paper's operation and the default workload."""

    name = "spmv"
    display = "SpMV"

    def reference(self, matrix: SparseMatrix, x: np.ndarray) -> np.ndarray:
        return matrix.spmv_reference(x)


class SpMM(Workload):
    """``Y = A @ X`` with a dense ``k``-column right-hand side."""

    def __init__(self, k: int) -> None:
        if k < 2:
            raise ValueError("SpMM needs k >= 2 dense columns; use SpMV")
        self.k = int(k)
        self.name = f"spmm{k}"
        self.display = f"SpMM (k={k})"

    def reference(self, matrix: SparseMatrix, x: np.ndarray) -> np.ndarray:
        return matrix.spmm_reference(x)


class SpMVT(Workload):
    """``y = A.T @ x`` — transpose SpMV (row gather, column scatter)."""

    name = "spmvt"
    display = "transpose SpMV"
    transpose = True

    def reference(self, matrix: SparseMatrix, x: np.ndarray) -> np.ndarray:
        return matrix.spmv_t_reference(x)


#: name -> workload instance (the CLI's ``--workload`` choices).
WORKLOADS: Dict[str, Workload] = {}


def register_workload(workload: Workload) -> Workload:
    """Add a workload to the registry (duplicate names are an error)."""
    if not workload.name:
        raise ValueError("workload must define a name")
    if workload.name in WORKLOADS:
        raise ValueError(f"duplicate workload {workload.name!r}")
    WORKLOADS[workload.name] = workload
    return workload


register_workload(SpMV())
register_workload(SpMM(4))
register_workload(SpMM(16))
register_workload(SpMVT())

#: The workload the whole stack defaults to (historical behaviour).
DEFAULT_WORKLOAD: Workload = WORKLOADS[DEFAULT_WORKLOAD_NAME]


def get_workload(name: Union[str, Workload, None]) -> Workload:
    """Resolve a workload by name (idempotent on instances).

    Unknown names raise a :class:`ValueError` that lists the registered
    workloads, so a typo at the CLI reads as guidance, not a KeyError.
    """
    if name is None:
        return DEFAULT_WORKLOAD
    if isinstance(name, Workload):
        return name
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; registered workloads: "
            + ", ".join(sorted(WORKLOADS))
        ) from None


def ensure_engine_workload(engine, workload) -> None:
    """Reject a workload request that conflicts with an injected engine.

    Components that accept both an optional pre-built search engine and
    an optional workload (the corpus runner, the serving frontend) call
    this before adopting ``engine.workload``; with no injected engine (or
    no explicit workload) there is nothing to reconcile.
    """
    if engine is None or workload is None:
        return
    if get_workload(workload).name != engine.workload.name:
        raise ValueError(
            "workload conflicts with the injected engine's workload; "
            "pass one or the other"
        )
