"""SELL (Sliced ELLPACK) baseline [36], [38].

Rows are globally length-sorted, sliced into chunks of 32, each slice padded
to its own maximum and stored column-major — ELL's coalescing without ELL's
global padding blow-up.
"""

from __future__ import annotations

from repro.baselines.base import GraphBaseline, register_baseline
from repro.core.graph import OperatorGraph
from repro.sparse.matrix import SparseMatrix

__all__ = ["SellBaseline"]


@register_baseline
class SellBaseline(GraphBaseline):
    name = "SELL"

    #: slice height (the C of SELL-C-sigma); 32 matches warp width.
    slice_rows = 32

    def graph(self, matrix: SparseMatrix) -> OperatorGraph:
        return OperatorGraph.from_names(
            [
                "SORT",
                "COMPRESS",
                ("BMTB_ROW_BLOCK", {"rows_per_block": self.slice_rows}),
                ("BMT_ROW_BLOCK", {"rows_per_block": 1}),
                ("BMT_PAD", {"mode": "max"}),
                "INTERLEAVED_STORAGE",
                ("SET_RESOURCES", {"threads_per_block": 256}),
                "THREAD_TOTAL_RED",
                "GMEM_DIRECT_STORE",
            ]
        )
