"""Baseline format infrastructure.

Every baseline of the paper's evaluation (§VII-B) is implemented on the
same simulated GPU as AlphaSparse's generated kernels — the analogue of the
paper running every library on the same physical card.  Most baselines are
expressed as fixed Operator Graphs (they *are* the source formats of
Table II); HYB and DIA need custom construction and override
:meth:`SpmvBaseline.program`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.graph import OperatorGraph
from repro.core.kernel.builder import KernelBuilder
from repro.core.kernel.program import GeneratedProgram
from repro.gpu.arch import GPUSpec
from repro.gpu.executor import PlanValidationError
from repro.sparse.matrix import SparseMatrix
from repro.workloads import DEFAULT_WORKLOAD, Workload

__all__ = [
    "BaselineMeasurement",
    "SpmvBaseline",
    "GraphBaseline",
    "BASELINE_REGISTRY",
    "register_baseline",
    "get_baseline",
    "measure_baselines",
    "measurement_ok",
]


@dataclass(frozen=True)
class BaselineMeasurement:
    """One baseline's result on one matrix/GPU.

    Every field is always finite: inapplicable baselines carry
    ``gflops=0.0, time_s=0.0`` (they never ran) and incorrect ones
    ``gflops=0.0`` with the real kernel time, so column sums/means in
    reporting never see ``inf``.  Aggregators select on :attr:`ok` rather
    than interpreting the zeros.
    """

    baseline: str
    matrix: str
    gpu: str
    gflops: float
    time_s: float
    correct: bool
    applicable: bool = True
    note: str = ""

    @property
    def ok(self) -> bool:
        """Usable as a speedup denominator: applicable, correct, ran."""
        return measurement_ok(self)


def measurement_ok(meas) -> bool:
    """The one usability predicate: applicable, correct, > 0 GFLOPS.

    Accepts a live :class:`BaselineMeasurement` or its dict form from a
    persisted result store, so live aggregation and store-reading paths
    cannot diverge on what "usable" means.
    """
    if isinstance(meas, BaselineMeasurement):
        return meas.applicable and meas.correct and meas.gflops > 0
    return bool(meas["applicable"] and meas["correct"] and meas["gflops"] > 0)


class SpmvBaseline(ABC):
    """A human-designed SpMV format + kernel."""

    #: Registry name, e.g. ``"CSR5"``.
    name: str = ""

    def applicable(self, matrix: SparseMatrix) -> bool:
        """Some formats refuse pathological inputs (e.g. ELL's padding cap)."""
        return True

    @abstractmethod
    def program(self, matrix: SparseMatrix) -> GeneratedProgram:
        """Construct the baseline's program for a matrix."""

    # ------------------------------------------------------------------
    def measure(
        self,
        matrix: SparseMatrix,
        gpu: GPUSpec,
        x: Optional[np.ndarray] = None,
        reference: Optional[np.ndarray] = None,
        workload: Optional[Workload] = None,
    ) -> BaselineMeasurement:
        """Run the baseline; inapplicable formats report zero GFLOPS.

        ``workload`` selects the operation measured (None = the default
        SpMV).  ``reference`` is the precomputed workload reference —
        batched callers (:func:`measure_baselines`, the corpus runner) pass
        it so the reference computation runs once per matrix, not once per
        baseline.  Correctness uses the workload's order-tolerant
        ``allclose`` gate: atomic-reduction baselines (COO, row-grouped
        CSR) legitimately accumulate in a different order than the
        reference.  A baseline whose reduction chain is semantically
        invalid for the workload — e.g. a direct-store row kernel asked to
        scatter into columns under transpose SpMV — reports inapplicable,
        exactly like a library refusing an unsupported operation.
        """
        workload = workload or DEFAULT_WORKLOAD
        if not self.applicable(matrix):
            return BaselineMeasurement(
                baseline=self.name,
                matrix=matrix.name,
                gpu=gpu.name,
                gflops=0.0,
                time_s=0.0,
                correct=False,
                applicable=False,
                note="format not applicable to this sparsity pattern",
            )
        if x is None:
            x = workload.make_operand(matrix)
        if reference is None:
            reference = workload.reference(matrix, x)
        prog = self.program(matrix)
        try:
            result = prog.run(x, gpu, workload=workload)
        except PlanValidationError as exc:
            return BaselineMeasurement(
                baseline=self.name,
                matrix=matrix.name,
                gpu=gpu.name,
                gflops=0.0,
                time_s=0.0,
                correct=False,
                applicable=False,
                note=f"kernel invalid for workload {workload.name}: {exc}",
            )
        correct = workload.allclose(result.y, reference)
        return BaselineMeasurement(
            baseline=self.name,
            matrix=matrix.name,
            gpu=gpu.name,
            gflops=result.gflops if correct else 0.0,
            time_s=result.total_time_s,
            correct=correct,
            note=(
                ""
                if correct
                else f"numeric mismatch against reference {workload.display}"
            ),
        )


class GraphBaseline(SpmvBaseline):
    """Baseline defined by a (possibly matrix-dependent) Operator Graph.

    Baselines are built *without* Model-Driven Format Compression: the
    released libraries they model hand-wrote their access patterns but do
    not fit-and-inline index arrays — that optimisation is AlphaSparse's
    own (paper Fig 14c credits it with +32 %).
    """

    def __init__(self) -> None:
        self._builder = KernelBuilder(compressor=None)

    @abstractmethod
    def graph(self, matrix: SparseMatrix) -> OperatorGraph:
        """The fixed design; parameters may adapt to matrix statistics the
        way the original implementations' auto-configuration does."""

    def program(self, matrix: SparseMatrix) -> GeneratedProgram:
        return self._builder.build(matrix, self.graph(matrix))


#: name -> baseline instance.
BASELINE_REGISTRY: Dict[str, SpmvBaseline] = {}


def register_baseline(cls):
    """Class decorator adding a baseline to the registry."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"{cls.__name__} must define a name")
    if instance.name in BASELINE_REGISTRY:
        raise ValueError(f"duplicate baseline {instance.name!r}")
    BASELINE_REGISTRY[instance.name] = instance
    return cls


def get_baseline(name: str) -> SpmvBaseline:
    try:
        return BASELINE_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown baseline {name!r}; registered: {sorted(BASELINE_REGISTRY)}"
        ) from None


def measure_baselines(
    matrix: SparseMatrix,
    gpu: GPUSpec,
    names: List[str],
    x: Optional[np.ndarray] = None,
    reference: Optional[np.ndarray] = None,
    runtime=None,
    workload: Optional[Workload] = None,
) -> Dict[str, BaselineMeasurement]:
    """Measure several baselines on one matrix, sharing one reference.

    The batched entry point for corpus-scale evaluation: ``x`` and the
    reference result are computed once per workload and reused by every
    baseline (the per-matrix caches the corpus runner relies on), and
    ``runtime`` — a :class:`~repro.search.evaluation.EvaluationRuntime` or
    anything with its ``map(fn, items)`` shape — optionally spreads the
    independent measurements over a worker pool.  Results come back keyed
    by baseline name, in ``names`` order (Python dicts preserve insertion
    order), for any worker count.
    """
    workload = workload or DEFAULT_WORKLOAD
    if x is None:
        x = workload.make_operand(matrix)
    if reference is None:
        reference = workload.reference(matrix, x)

    def run(name: str) -> BaselineMeasurement:
        return get_baseline(name).measure(
            matrix, gpu, x, reference=reference, workload=workload
        )

    if runtime is None:
        measurements = [run(name) for name in names]
    else:
        measurements = runtime.map(run, list(names))
    return {m.baseline: m for m in measurements}
