"""ELL baseline (root format; cuSPARSE v9.2 ELL in the paper's PFS).

Every row padded to the global maximum length, column-major storage, one
thread per row.  Refuses matrices whose padding would exceed a blow-up cap —
the same practical restriction that made NVIDIA drop ELL from later
cuSPARSE releases.
"""

from __future__ import annotations

from repro.baselines.base import GraphBaseline, register_baseline
from repro.core.graph import OperatorGraph
from repro.sparse.matrix import SparseMatrix

__all__ = ["EllBaseline"]

#: Refuse when padded storage exceeds this multiple of nnz.
_MAX_PAD_BLOWUP = 10.0


@register_baseline
class EllBaseline(GraphBaseline):
    name = "ELL"

    def applicable(self, matrix: SparseMatrix) -> bool:
        stats = matrix.stats
        padded = stats.max_row_length * stats.n_rows
        return padded <= _MAX_PAD_BLOWUP * max(stats.nnz, 1)

    def graph(self, matrix: SparseMatrix) -> OperatorGraph:
        return OperatorGraph.from_names(
            [
                "COMPRESS",
                ("BMT_ROW_BLOCK", {"rows_per_block": 1}),
                ("BMT_PAD", {"mode": "max"}),
                "INTERLEAVED_STORAGE",
                ("SET_RESOURCES", {"threads_per_block": 256}),
                "THREAD_TOTAL_RED",
                "GMEM_DIRECT_STORE",
            ]
        )
