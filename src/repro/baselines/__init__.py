"""Baseline SpMV formats (paper §VII-B).

Three classes of comparison, all running on the same simulated GPU:

* **Artificial formats** — ACSR, CSR-Adaptive, CSR5, Merge-based CSR, HYB
  (the five SOTA of Fig 9a), plus root formats COO/CSR/ELL/DIA and derived
  SELL / row-grouped CSR.
* **Format selector** — :class:`~repro.baselines.pfs.PerfectFormatSelector`,
  the 100 %-accuracy oracle over ten member formats.
* **Tensor algebra compiler** — :class:`~repro.baselines.taco.TacoBaseline`.
"""

from repro.baselines.base import (
    BaselineMeasurement,
    SpmvBaseline,
    GraphBaseline,
    BASELINE_REGISTRY,
    register_baseline,
    get_baseline,
)

# Importing the format modules populates the registry.
from repro.baselines.coo import CooBaseline
from repro.baselines.csr import CsrBaseline, CsrScalarBaseline, CsrVectorBaseline
from repro.baselines.ell import EllBaseline
from repro.baselines.dia import DiaBaseline
from repro.baselines.sell import SellBaseline
from repro.baselines.rowgrouped import RowGroupedCsrBaseline
from repro.baselines.csr_adaptive import CsrAdaptiveBaseline
from repro.baselines.csr5 import Csr5Baseline
from repro.baselines.merge import MergeCsrBaseline
from repro.baselines.acsr import AcsrBaseline
from repro.baselines.hyb import HybBaseline
from repro.baselines.taco import TacoBaseline
from repro.baselines.pfs import (
    PFS_MEMBERS,
    SOTA_FORMATS,
    PerfectFormatSelector,
    PfsSelection,
)

__all__ = [
    "BaselineMeasurement",
    "SpmvBaseline",
    "GraphBaseline",
    "BASELINE_REGISTRY",
    "register_baseline",
    "get_baseline",
    "CooBaseline",
    "CsrBaseline",
    "CsrScalarBaseline",
    "CsrVectorBaseline",
    "EllBaseline",
    "DiaBaseline",
    "SellBaseline",
    "RowGroupedCsrBaseline",
    "CsrAdaptiveBaseline",
    "Csr5Baseline",
    "MergeCsrBaseline",
    "AcsrBaseline",
    "HybBaseline",
    "TacoBaseline",
    "PFS_MEMBERS",
    "SOTA_FORMATS",
    "PerfectFormatSelector",
    "PfsSelection",
]
