"""ACSR baseline [24] (implemented from the paper, as the authors did).

Adaptive CSR bins rows by length and launches a differently-shaped kernel
per bin: thread-per-row for short bins, warp-per-row for medium bins and a
whole block per very long row — the binning cost the paper's Fig 14
analysis calls "expensive ... because the matrix is not too irregular".
"""

from __future__ import annotations

from repro.baselines.base import GraphBaseline, register_baseline
from repro.core.graph import GraphNode, OperatorGraph
from repro.sparse.matrix import SparseMatrix

__all__ = ["AcsrBaseline"]


@register_baseline
class AcsrBaseline(GraphBaseline):
    name = "ACSR"

    def graph(self, matrix: SparseMatrix) -> OperatorGraph:
        short_child = [
            GraphNode("COMPRESS"),
            GraphNode("BMT_ROW_BLOCK", {"rows_per_block": 1}),
            GraphNode("SET_RESOURCES", {"threads_per_block": 256}),
            GraphNode("THREAD_TOTAL_RED"),
            GraphNode("GMEM_ATOM_RED"),
        ]
        medium_child = [
            GraphNode("COMPRESS"),
            GraphNode("BMW_ROW_BLOCK", {"rows_per_block": 1}),
            GraphNode("SET_RESOURCES", {"threads_per_block": 256}),
            GraphNode("WARP_TOTAL_RED"),
            GraphNode("GMEM_ATOM_RED"),
        ]
        long_child = [
            GraphNode("COMPRESS"),
            GraphNode("BMW_ROW_BLOCK", {"rows_per_block": 1}),
            GraphNode("SET_RESOURCES", {"threads_per_block": 256}),
            GraphNode("WARP_TOTAL_RED"),
            GraphNode("GMEM_ATOM_RED"),
        ]
        return OperatorGraph(
            [
                GraphNode(
                    "BIN",
                    {"n_bins": 3},
                    children=[short_child, medium_child, long_child],
                )
            ]
        )
