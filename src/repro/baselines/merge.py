"""Merge-based CSR baseline [27] (Merrill & Garland's merge-spmv).

The merge-path decomposition gives every thread block an *exactly* equal
share of (rows + nnz) work; threads walk their share serially across row
boundaries and the block reduces carry-rows in shared memory.  The other
top artificial format of the paper's Fig 9a.
"""

from __future__ import annotations

from repro.baselines.base import GraphBaseline, register_baseline
from repro.core.graph import OperatorGraph
from repro.sparse.matrix import SparseMatrix

__all__ = ["MergeCsrBaseline"]


@register_baseline
class MergeCsrBaseline(GraphBaseline):
    name = "Merge"

    def items_per_thread(self, matrix: SparseMatrix) -> int:
        """merge-spmv sizes its grid to fill the device: items per thread
        grow with the matrix so the thread count tracks the GPU's capacity."""
        return int(max(1, min(8, matrix.nnz // 16384)))

    def graph(self, matrix: SparseMatrix) -> OperatorGraph:
        ipt = self.items_per_thread(matrix)
        per_block = 256 * ipt
        return OperatorGraph.from_names(
            [
                "COMPRESS",
                ("BMTB_NNZ_BLOCK", {"nnz_per_block": per_block}),
                ("BMT_NNZ_BLOCK", {"nnz_per_block": ipt}),
                ("SET_RESOURCES", {"threads_per_block": 256}),
                "THREAD_BITMAP_RED",
                "SHMEM_OFFSET_RED",
                "GMEM_ATOM_RED",
            ]
        )
