"""Row-grouped CSR baseline [28], [35].

Groups of consecutive rows are mapped to thread blocks whose threads stream
the group's non-zeros cooperatively; partial results go straight to global
memory with atomics — the "inefficient global memory reduction" the paper's
Fig 14 discussion calls out, paired with a low padding rate.
"""

from __future__ import annotations

from repro.baselines.base import GraphBaseline, register_baseline
from repro.core.graph import OperatorGraph
from repro.sparse.matrix import SparseMatrix

__all__ = ["RowGroupedCsrBaseline"]


@register_baseline
class RowGroupedCsrBaseline(GraphBaseline):
    name = "row-grouped CSR"

    def graph(self, matrix: SparseMatrix) -> OperatorGraph:
        # Group size targets ~4 rows per warp of the block, as in [35].
        stats = matrix.stats
        rows_per_block = max(32, min(512, int(4096 / max(stats.avg_row_length, 1.0))))
        return OperatorGraph.from_names(
            [
                "COMPRESS",
                ("BMTB_ROW_BLOCK", {"rows_per_block": rows_per_block}),
                ("SET_RESOURCES", {"threads_per_block": 128}),
                "GMEM_ATOM_RED",
            ]
        )
