"""TACO baseline [30] — the tensor-algebra-compiler comparison (§VII-E).

TACO's automatically generated CUDA SpMV is a straightforward
row-parallel CSR kernel: no warp-level primitives, no shared-memory
staging, no load balancing — the two deficiencies the paper cites ("not
tailored for SpMV", "lacks the utilization of GPU features").  Modelled as
CSR-Scalar with an unfused atomic finish and compiler-default launch
configuration.
"""

from __future__ import annotations

from repro.baselines.base import GraphBaseline, register_baseline
from repro.core.graph import OperatorGraph
from repro.sparse.matrix import SparseMatrix

__all__ = ["TacoBaseline"]


@register_baseline
class TacoBaseline(GraphBaseline):
    name = "TACO"

    def graph(self, matrix: SparseMatrix) -> OperatorGraph:
        return OperatorGraph.from_names(
            [
                "COMPRESS",
                ("BMT_ROW_BLOCK", {"rows_per_block": 1}),
                ("SET_RESOURCES", {"threads_per_block": 256}),
                "THREAD_TOTAL_RED",
                "GMEM_ATOM_RED",
            ]
        )
