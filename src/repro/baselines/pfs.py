"""Perfect Format Selector (paper §VII-B).

The paper's stand-in for traditional auto-tuners: "PFS can certainly select
the best formats by directly running SpMV of all candidate formats" — a
100 %-accuracy oracle over ten members: the five state-of-the-art formats
(ACSR, CSR-Adaptive, CSR5, Merge, HYB), three cuSPARSE root formats (ELL,
COO, CSR) and two derived formats (SELL, row-grouped CSR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.base import (
    BaselineMeasurement,
    SpmvBaseline,
    get_baseline,
)
from repro.gpu.arch import GPUSpec
from repro.sparse.matrix import SparseMatrix
from repro.workloads import DEFAULT_WORKLOAD

__all__ = ["PFS_MEMBERS", "SOTA_FORMATS", "PerfectFormatSelector", "PfsSelection"]

#: The five state-of-the-art artificial formats of Fig 9a.
SOTA_FORMATS = ["ACSR", "CSR-Adaptive", "CSR5", "Merge", "HYB"]

#: The full PFS membership of §VII-B.
PFS_MEMBERS = SOTA_FORMATS + ["ELL", "COO", "CSR", "SELL", "row-grouped CSR"]


@dataclass
class PfsSelection:
    """The oracle's pick plus every member's measurement."""

    best: BaselineMeasurement
    all_measurements: List[BaselineMeasurement]

    @property
    def gflops(self) -> float:
        return self.best.gflops

    @property
    def selected_format(self) -> str:
        return self.best.baseline

    def by_name(self) -> Dict[str, BaselineMeasurement]:
        return {m.baseline: m for m in self.all_measurements}


class PerfectFormatSelector:
    """Runs every member format and returns the fastest."""

    def __init__(self, members: Optional[List[str]] = None) -> None:
        self.member_names = list(members) if members else list(PFS_MEMBERS)

    @property
    def members(self) -> List[SpmvBaseline]:
        return [get_baseline(name) for name in self.member_names]

    def select(
        self,
        matrix: SparseMatrix,
        gpu: GPUSpec,
        x: Optional[np.ndarray] = None,
        workload=None,
    ) -> PfsSelection:
        workload = workload or DEFAULT_WORKLOAD
        if x is None:
            x = workload.make_operand(matrix)
        reference = workload.reference(matrix, x)
        return self.select_from(
            [
                b.measure(matrix, gpu, x, reference=reference, workload=workload)
                for b in self.members
            ],
            matrix_name=matrix.name,
        )

    def select_from(
        self,
        measurements: List[BaselineMeasurement],
        matrix_name: str = "",
    ) -> PfsSelection:
        """Pick the oracle's winner from already-taken measurements.

        Lets batched callers (the corpus runner) measure every baseline
        exactly once and derive the PFS selection from the same data
        instead of re-running the member kernels.
        """
        usable = [m for m in measurements if m.ok]
        if not usable:
            raise RuntimeError(
                f"no PFS member could handle matrix {matrix_name!r}"
            )
        best = max(usable, key=lambda m: m.gflops)
        return PfsSelection(best=best, all_measurements=list(measurements))
