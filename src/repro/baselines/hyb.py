"""HYB baseline [51] (cuSPARSE 9.2 HYB in the paper).

HYB decomposes the matrix itself: the first *k* non-zeros of every row form
a regular ELL part (k = average row length, cuSPARSE's default heuristic),
the overflow forms a COO part; the two kernels launch back-to-back.  This
row-granular *matrix decomposition* is exactly the strategy the paper's
§VII-H names as missing from AlphaSparse's operator set — so it is built
here outside the Operator Graph machinery, as a custom program.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines.base import SpmvBaseline, register_baseline
from repro.core.graph import OperatorGraph
from repro.core.kernel.builder import KernelBuilder
from repro.core.kernel.program import GeneratedProgram, KernelUnit
from repro.sparse.matrix import SparseMatrix

__all__ = ["HybBaseline", "hyb_split"]


def hyb_split(matrix: SparseMatrix, ell_width: int) -> tuple:
    """Split into (ELL part, COO part): first ``ell_width`` non-zeros of
    every row vs the overflow.  Either part may be empty."""
    offsets = matrix.row_offsets()
    pos_in_row = np.arange(matrix.nnz, dtype=np.int64) - offsets[matrix.rows]
    in_ell = pos_in_row < ell_width
    ell = SparseMatrix(
        matrix.n_rows,
        matrix.n_cols,
        matrix.rows[in_ell],
        matrix.cols[in_ell],
        matrix.vals[in_ell],
        name=f"{matrix.name}:ell",
    )
    coo = SparseMatrix(
        matrix.n_rows,
        matrix.n_cols,
        matrix.rows[~in_ell],
        matrix.cols[~in_ell],
        matrix.vals[~in_ell],
        name=f"{matrix.name}:coo",
    ) if (~in_ell).any() else None
    return ell, coo


@register_baseline
class HybBaseline(SpmvBaseline):
    name = "HYB"

    def __init__(self) -> None:
        self._builder = KernelBuilder(compressor=None)

    def _ell_width(self, matrix: SparseMatrix) -> int:
        # cuSPARSE heuristic: ELL width = ceil(average row length).
        return max(1, int(np.ceil(matrix.stats.avg_row_length)))

    def program(self, matrix: SparseMatrix) -> GeneratedProgram:
        ell_part, coo_part = hyb_split(matrix, self._ell_width(matrix))
        kernels: List[KernelUnit] = []

        if ell_part.nnz:
            # ELL rows all have <= width non-zeros; rows with zero entries in
            # the ELL part are possible when the matrix has empty rows — the
            # corpus excludes those, matching the paper's test-set condition.
            ell_graph = OperatorGraph.from_names(
                [
                    "COMPRESS",
                    ("BMT_ROW_BLOCK", {"rows_per_block": 1}),
                    ("BMT_PAD", {"mode": "max"}),
                    "INTERLEAVED_STORAGE",
                    ("SET_RESOURCES", {"threads_per_block": 256}),
                    "THREAD_TOTAL_RED",
                    "GMEM_ATOM_RED",
                ]
            )
            kernels.extend(self._builder.build(ell_part, ell_graph).kernels)

        if coo_part is not None and coo_part.nnz:
            coo_graph = OperatorGraph.from_names(
                [
                    "COMPRESS",
                    ("SET_RESOURCES", {"threads_per_block": 256}),
                    "GMEM_ATOM_RED",
                ]
            )
            kernels.extend(self._builder.build(coo_part, coo_graph).kernels)

        return GeneratedProgram(
            matrix_name=matrix.name,
            n_rows=matrix.n_rows,
            n_cols=matrix.n_cols,
            useful_nnz=matrix.nnz,
            kernels=kernels,
        )
