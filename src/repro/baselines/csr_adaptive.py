"""CSR-Adaptive baseline [22], [34] (ViennaCL 1.7.1 in the paper).

CSR-Stream's idea: size row blocks so each thread block streams a bounded
chunk of non-zeros into shared memory coalesced, then reduce by row offsets
in shared memory.  No register-level reduction — the weakness the paper's
Fig 14 analysis identifies ("ignorance of thread-level reduction").
"""

from __future__ import annotations

from repro.baselines.base import GraphBaseline, register_baseline
from repro.core.graph import OperatorGraph
from repro.sparse.matrix import SparseMatrix

__all__ = ["CsrAdaptiveBaseline"]

#: Non-zeros each thread block should stream (CSR-Stream's shared-mem sizing).
_TARGET_NNZ_PER_BLOCK = 2048


@register_baseline
class CsrAdaptiveBaseline(GraphBaseline):
    name = "CSR-Adaptive"

    def graph(self, matrix: SparseMatrix) -> OperatorGraph:
        stats = matrix.stats
        rows_per_block = max(
            1,
            min(1024, int(_TARGET_NNZ_PER_BLOCK / max(stats.avg_row_length, 1.0))),
        )
        return OperatorGraph.from_names(
            [
                "COMPRESS",
                ("BMTB_ROW_BLOCK", {"rows_per_block": rows_per_block}),
                ("SET_RESOURCES", {"threads_per_block": 256}),
                "SHMEM_OFFSET_RED",
                "GMEM_DIRECT_STORE",
            ]
        )
