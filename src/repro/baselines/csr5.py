"""CSR5 baseline [18] (the authors' released implementation in the paper).

Equal-nnz 2-D tiles (warp-wide, sigma-deep), stored transposed for
coalescing; threads reduce serially with a row-boundary bitmap, warps finish
with a segmented sum, stragglers land atomically — the thread-level load
balance that makes CSR5 one of the two strongest artificial formats in the
paper's Fig 9a.
"""

from __future__ import annotations

from repro.baselines.base import GraphBaseline, register_baseline
from repro.core.graph import OperatorGraph
from repro.sparse.matrix import SparseMatrix

__all__ = ["Csr5Baseline"]


@register_baseline
class Csr5Baseline(GraphBaseline):
    name = "CSR5"

    def sigma(self, matrix: SparseMatrix) -> int:
        """CSR5 tunes sigma to the matrix (the released code picks 4-16 by
        nnz/row and device fill)."""
        return int(max(2, min(16, matrix.nnz // 16384)))

    def graph(self, matrix: SparseMatrix) -> OperatorGraph:
        sigma = self.sigma(matrix)
        return OperatorGraph.from_names(
            [
                "COMPRESS",
                ("BMW_NNZ_BLOCK", {"nnz_per_block": 32 * sigma}),
                ("BMT_NNZ_BLOCK", {"nnz_per_block": sigma}),
                "INTERLEAVED_STORAGE",
                ("SET_RESOURCES", {"threads_per_block": 256}),
                "THREAD_BITMAP_RED",
                "WARP_SEG_RED",
                "GMEM_ATOM_RED",
            ]
        )
