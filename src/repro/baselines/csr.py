"""CSR baseline (cuSPARSE v11.6 CSR in the paper's PFS).

cuSPARSE picks scalar vs vector internally by average row length; the same
auto-configuration is mirrored here: short rows get a thread each
(CSR-Scalar), longer rows a warp each (CSR-Vector with shuffle reduction).
"""

from __future__ import annotations

from repro.baselines.base import GraphBaseline, register_baseline
from repro.core.graph import OperatorGraph
from repro.sparse.matrix import SparseMatrix

__all__ = ["CsrBaseline", "CsrScalarBaseline", "CsrVectorBaseline"]


@register_baseline
class CsrScalarBaseline(GraphBaseline):
    """One row per thread, serial register reduction, direct store."""

    name = "CSR-Scalar"

    def graph(self, matrix: SparseMatrix) -> OperatorGraph:
        return OperatorGraph.from_names(
            [
                "COMPRESS",
                ("BMT_ROW_BLOCK", {"rows_per_block": 1}),
                ("SET_RESOURCES", {"threads_per_block": 256}),
                "THREAD_TOTAL_RED",
                "GMEM_DIRECT_STORE",
            ]
        )


@register_baseline
class CsrVectorBaseline(GraphBaseline):
    """One row per warp, shuffle reduction, direct store."""

    name = "CSR-Vector"

    def graph(self, matrix: SparseMatrix) -> OperatorGraph:
        return OperatorGraph.from_names(
            [
                "COMPRESS",
                ("BMW_ROW_BLOCK", {"rows_per_block": 1}),
                ("SET_RESOURCES", {"threads_per_block": 256}),
                "WARP_TOTAL_RED",
                "GMEM_DIRECT_STORE",
            ]
        )


@register_baseline
class CsrBaseline(GraphBaseline):
    """cuSPARSE-style CSR: scalar/vector switch on average row length."""

    name = "CSR"

    def graph(self, matrix: SparseMatrix) -> OperatorGraph:
        if matrix.stats.avg_row_length < 4.0:
            return CsrScalarBaseline().graph(matrix)
        return CsrVectorBaseline().graph(matrix)
