"""COO baseline (root format; cuSPARSE COO in the paper's PFS).

One element per grid-stride step, every partial atomically added to ``y`` —
perfectly load balanced, maximally atomic-bound.
"""

from __future__ import annotations

from repro.baselines.base import GraphBaseline, register_baseline
from repro.core.graph import OperatorGraph
from repro.sparse.matrix import SparseMatrix

__all__ = ["CooBaseline"]


@register_baseline
class CooBaseline(GraphBaseline):
    name = "COO"

    def graph(self, matrix: SparseMatrix) -> OperatorGraph:
        return OperatorGraph.from_names(
            [
                "COMPRESS",
                ("SET_RESOURCES", {"threads_per_block": 256, "work_per_thread": 1}),
                "GMEM_ATOM_RED",
            ]
        )
