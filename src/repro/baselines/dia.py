"""DIA baseline (root format).

Diagonal storage: one dense array per occupied diagonal, no column indices
at all (offsets reconstruct them), one thread per row, diagonal-major
(coalesced) traversal.  Inapplicable when the occupied-diagonal count would
explode storage — the classic DIA restriction.

DIA's element order cannot be expressed by the current operator set (the
paper's §VII-H lists diagonal-pattern operators as future work), so the
plan is constructed directly.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SpmvBaseline, register_baseline
from repro.core.format import FormatArray, MachineDesignedFormat
from repro.core.kernel.program import GeneratedProgram, KernelUnit
from repro.gpu.executor import ExecutionPlan, ReductionStep
from repro.gpu.memory import INDEX_BYTES, VALUE_BYTES
from repro.sparse.matrix import SparseMatrix

__all__ = ["DiaBaseline"]

#: Refuse when padded diagonal storage exceeds this multiple of nnz.
_MAX_BLOWUP = 12.0


@register_baseline
class DiaBaseline(SpmvBaseline):
    name = "DIA"

    def _diagonals(self, matrix: SparseMatrix) -> np.ndarray:
        return np.unique(matrix.cols - matrix.rows)

    def applicable(self, matrix: SparseMatrix) -> bool:
        n_diags = self._diagonals(matrix).size
        return n_diags * matrix.n_rows <= _MAX_BLOWUP * max(matrix.nnz, 1)

    def program(self, matrix: SparseMatrix) -> GeneratedProgram:
        diags = self._diagonals(matrix)
        n, n_diags = matrix.n_rows, diags.size
        diag_index = {int(d): i for i, d in enumerate(diags)}

        # Dense (diag, row) grid, padding where the diagonal has no entry.
        values = np.zeros(n_diags * n, dtype=np.float64)
        grid_rows = np.tile(np.arange(n, dtype=np.int64), n_diags)
        elem_diag = (matrix.cols - matrix.rows).astype(np.int64)
        slots = (
            np.array([diag_index[int(d)] for d in elem_diag], dtype=np.int64) * n
            + matrix.rows
        )
        values[slots] = matrix.vals
        grid_cols = grid_rows + np.repeat(diags, n)
        # Out-of-range columns read x[0] times zero — same trick real DIA
        # kernels use (clamped index, zero value).
        cols = np.clip(grid_cols, 0, matrix.n_cols - 1)

        plan = ExecutionPlan(
            n_rows=n,
            n_cols=matrix.n_cols,
            useful_nnz=matrix.nnz,
            values=values,
            col_indices=cols,
            out_rows=grid_rows,
            thread_of_nz=grid_rows.copy(),
            n_threads=n,
            threads_per_block=256,
            reduction_steps=(
                ReductionStep("thread", "THREAD_TOTAL_RED"),
                ReductionStep("global", "GMEM_DIRECT_STORE"),
            ),
            interleaved=True,  # diagonal-major storage is coalesced
            extra_format_bytes=float(n_diags * INDEX_BYTES),
            storage_run_length=1.0,
            label="dia",
        )
        # DIA stores no per-element column indices: discount them.
        plan.extra_format_bytes -= values.size * INDEX_BYTES

        fmt = MachineDesignedFormat(
            name="DIA",
            arrays=[
                FormatArray("values", values, VALUE_BYTES),
                FormatArray("diag_offsets", diags, INDEX_BYTES),
            ],
        )
        unit = KernelUnit(
            label="dia",
            plan=plan,
            format=fmt,
            source="// DIA kernel: one thread per row, loop over diagonals",
            applied_operators=["(custom DIA construction)"],
        )
        return GeneratedProgram(
            matrix_name=matrix.name,
            n_rows=n,
            n_cols=matrix.n_cols,
            useful_nnz=matrix.nnz,
            kernels=[unit],
        )
