"""Analytic kernel-time model.

Combines the quantities extracted from an :class:`~repro.gpu.executor.ExecutionPlan`
into a predicted kernel time.  The model is a max-of-bottlenecks roofline
with additive reduction/atomic terms:

``time = launch + max(T_mem, T_comp) * imbalance / occupancy + T_red + T_atomic``

where

* ``T_mem``  — effective bytes / (DRAM bandwidth × coalescing × L2 boost),
* ``T_comp`` — fused multiply-add work (including padded zeros) / peak FLOPS,
* ``imbalance`` — warp-divergence and inter-block wave imbalance factors,
* ``occupancy`` — bandwidth ramp for kernels too small to saturate the card,
* ``T_red``  — shared-memory / shuffle / serial reduction operations,
* ``T_atomic`` — global atomics with a contention penalty.

All terms are computed from *summary statistics*, never per-element Python
loops, so a full search stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.gpu.arch import GPUSpec
from repro.gpu.memory import l2_bandwidth_boost

__all__ = ["KernelCostInputs", "CostBreakdown", "CostModel"]

_GIGA = 1.0e9


@dataclass(frozen=True)
class KernelCostInputs:
    """Everything the cost model needs, gathered by the executor.

    Attributes
    ----------
    useful_flops:
        Exact useful flop count of the workload on the original matrix
        (:meth:`repro.workloads.Workload.flops`) — the numerator of
        reported GFLOPS.
    stored_elements:
        Stored non-zeros *including padding*; drives wasted compute/bytes.
    format_bytes:
        Total bytes of every format array the kernel streams (values,
        column indices, offsets, bitmap words, ...), after Model-Driven
        Format Compression removed any model-fitted arrays.
    gather_bytes:
        Estimated DRAM traffic of the ``x`` gather.
    y_bytes:
        Result-vector traffic (stores, plus read-modify-write for atomics).
    coalescing:
        Useful fraction of each format-stream transaction, in (0, 1].
    n_threads / n_warps / n_blocks / threads_per_block:
        Launch geometry.
    warp_lockstep_elements:
        Sum over warps of ``warp_size * max(elements per thread in warp)`` —
        the element-steps the SIMT machine actually executes; the excess over
        ``stored_elements`` is divergence waste.
    max_block_elements / mean_block_elements:
        Inter-block load-balance indicators.
    atomic_ops:
        Global atomicAdd count.
    max_atomics_per_row:
        Peak number of atomics landing on one output row (contention).
    shmem_ops / shuffle_ops / serial_red_ops:
        Reduction-instruction counts per strategy class.
    sync_barriers:
        `__syncthreads`-equivalent barriers per block (shared-mem strategies).
    """

    useful_flops: float
    stored_elements: int
    format_bytes: float
    gather_bytes: float
    y_bytes: float
    coalescing: float
    n_threads: int
    n_warps: int
    n_blocks: int
    threads_per_block: int
    warp_lockstep_elements: float
    max_block_elements: float
    mean_block_elements: float
    atomic_ops: int
    max_atomics_per_row: int
    shmem_ops: int
    shuffle_ops: int
    serial_red_ops: int
    sync_barriers: int
    #: bytes per matrix value (4 = fp32 as in the paper, 8 = fp64)
    value_bytes: int = 4
    #: dense right-hand-side columns of the workload (k): each stored
    #: element performs k FMAs and each partial result is a k-vector, so
    #: compute, reduction and atomic work scale by this factor (memory
    #: traffic is already scaled inside the byte totals).
    rhs_vectors: int = 1


@dataclass(frozen=True)
class CostBreakdown:
    """Predicted time decomposition; ``total_s`` is authoritative."""

    total_s: float
    memory_s: float
    compute_s: float
    reduction_s: float
    atomic_s: float
    launch_s: float
    occupancy: float
    divergence_factor: float
    block_imbalance: float
    effective_bandwidth_gbps: float
    gflops: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "total_s": self.total_s,
            "memory_s": self.memory_s,
            "compute_s": self.compute_s,
            "reduction_s": self.reduction_s,
            "atomic_s": self.atomic_s,
            "launch_s": self.launch_s,
            "occupancy": self.occupancy,
            "divergence_factor": self.divergence_factor,
            "block_imbalance": self.block_imbalance,
            "effective_bandwidth_gbps": self.effective_bandwidth_gbps,
            "gflops": self.gflops,
        }


class CostModel:
    """Maps :class:`KernelCostInputs` to a :class:`CostBreakdown` for a GPU."""

    def __init__(self, gpu: GPUSpec) -> None:
        self.gpu = gpu

    # ------------------------------------------------------------------
    def occupancy(self, inputs: KernelCostInputs) -> float:
        """Fraction of peak bandwidth reachable with this much parallelism.

        Memory latency hiding needs tens of thousands of resident threads;
        below that, effective bandwidth ramps roughly linearly (sub-linearly
        near saturation).  Kernels must also put work on every SM.
        """
        gpu = self.gpu
        thread_ramp = min(1.0, inputs.n_threads / gpu.saturating_threads)
        sm_ramp = min(1.0, inputs.n_blocks / gpu.num_sms)
        # Square-root softening: half the saturating threads reach ~70 % BW,
        # matching published achievable-bandwidth curves.
        ramp = max(thread_ramp, 1e-6) ** 0.5 * max(sm_ramp, 1e-6) ** 0.25
        return float(min(1.0, max(ramp, 1e-4)))

    def divergence_factor(self, inputs: KernelCostInputs) -> float:
        """Ratio of SIMT element-steps executed to useful stored elements."""
        if inputs.stored_elements == 0:
            return 1.0
        return float(
            max(1.0, inputs.warp_lockstep_elements / inputs.stored_elements)
        )

    def block_imbalance(self, inputs: KernelCostInputs) -> float:
        """Wave-level imbalance: with few blocks the slowest block gates the
        kernel; with many blocks per SM the scheduler evens the load out."""
        if inputs.mean_block_elements <= 0 or inputs.n_blocks == 0:
            return 1.0
        raw = inputs.max_block_elements / inputs.mean_block_elements
        waves = max(1.0, inputs.n_blocks / self.gpu.num_sms)
        # Imbalance amortises as the number of waves grows.
        return float(max(1.0, 1.0 + (raw - 1.0) / waves))

    # ------------------------------------------------------------------
    def evaluate(self, inputs: KernelCostInputs) -> CostBreakdown:
        gpu = self.gpu
        occupancy = self.occupancy(inputs)
        divergence = self.divergence_factor(inputs)
        imbalance = self.block_imbalance(inputs)

        streamed = inputs.format_bytes + inputs.gather_bytes + inputs.y_bytes
        boost = l2_bandwidth_boost(streamed, gpu)
        bandwidth = gpu.dram_bandwidth_gbps * _GIGA * boost * occupancy
        # Idle warp lanes waste transaction slots exactly like padding wastes
        # stored bytes, so the format stream is charged at the SIMT lockstep
        # rate (divergence ×) on top of the address-spread (coalescing ÷).
        effective_bytes = (
            inputs.format_bytes * divergence / max(inputs.coalescing, 1e-3)
            + inputs.gather_bytes
            + inputs.y_bytes
        )
        memory_s = effective_bytes / bandwidth

        # Compute: 2 flops per stored element per RHS column (padding
        # wastes real cycles), executed in warp lockstep => scale by
        # divergence.  fp64 runs at the double-precision roof.
        peak = gpu.peak_gflops_dp if inputs.value_bytes >= 8 else gpu.peak_gflops_sp
        compute_elems = inputs.stored_elements * divergence
        compute_s = (
            2.0 * compute_elems * inputs.rhs_vectors
        ) / (peak * _GIGA * occupancy)

        # Reduction instructions execute concurrently across SMs: the
        # *_gops throughputs are whole-GPU figures, scaled by how many SMs
        # actually hold blocks.  Barriers serialise only within a block, so
        # their latency is paid once per wave, not once per block.
        sm_par = max(1e-3, min(1.0, inputs.n_blocks / gpu.num_sms))
        # Partial results are k-vectors under a multi-column workload, so
        # every reduction instruction repeats per RHS column (barrier
        # counts do not: synchronisation is per step, not per value).
        reduction_s = (
            inputs.shmem_ops / (gpu.shmem_gops * _GIGA)
            + inputs.shuffle_ops / (gpu.shuffle_gops * _GIGA)
            + inputs.serial_red_ops / (gpu.peak_gflops_sp * _GIGA * 0.25)
        ) / sm_par * inputs.rhs_vectors
        reduction_s += (
            inputs.sync_barriers * 2.0e-8 / max(1, min(inputs.n_blocks, gpu.num_sms))
        )

        contention = 1.0
        if inputs.atomic_ops > 0 and inputs.max_atomics_per_row > 1:
            share = inputs.max_atomics_per_row / inputs.atomic_ops
            contention = 1.0 + gpu.atomic_conflict_penalty * min(1.0, share * 8.0)
        atomic_s = (
            inputs.atomic_ops * contention * inputs.rhs_vectors
            / (gpu.atomic_gops * _GIGA)
        )

        core_s = max(memory_s, compute_s) * imbalance
        total_s = gpu.kernel_launch_overhead_s + core_s + reduction_s + atomic_s
        gflops = inputs.useful_flops / total_s / _GIGA if total_s > 0 else 0.0
        return CostBreakdown(
            total_s=float(total_s),
            memory_s=float(memory_s),
            compute_s=float(compute_s),
            reduction_s=float(reduction_s),
            atomic_s=float(atomic_s),
            launch_s=gpu.kernel_launch_overhead_s,
            occupancy=occupancy,
            divergence_factor=divergence,
            block_imbalance=imbalance,
            effective_bandwidth_gbps=bandwidth / _GIGA,
            gflops=float(gflops),
        )
