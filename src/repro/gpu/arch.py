"""GPU architecture descriptions.

The presets carry the published specifications the paper reports (§VII-A):

* **A100** — Ampere, 6912 CUDA cores (108 SMs), 40 GB HBM2 at 1.5 TB/s,
  19.49 TFLOPS single precision, 40 MB L2.
* **RTX 2080** — Turing, 2944 CUDA cores (46 SMs), 8 GB GDDR6 at 448 GB/s,
  10.07 TFLOPS single precision, 4 MB L2.

Secondary constants (atomic throughput, shuffle latency, launch overhead)
use vendor microbenchmark figures commonly cited in the SpMV literature;
only their *relative* magnitudes matter for ranking candidate kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "A100", "RTX2080", "gpu_by_name"]


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU used by the cost model."""

    name: str
    num_sms: int
    cuda_cores: int
    warp_size: int
    max_threads_per_block: int
    shared_mem_per_block: int          # bytes
    l2_cache_bytes: int
    dram_bandwidth_gbps: float         # GB/s
    l2_bandwidth_gbps: float           # GB/s (bandwidth when hitting in L2)
    peak_gflops_sp: float
    #: double-precision peak; the paper evaluates fp32 only, fp64 is a
    #: library extension (A100 1:2 ratio, consumer Turing 1:32).
    peak_gflops_dp: float
    # Secondary throughput/latency constants (seconds or ops/s).
    atomic_gops: float                 # global atomicAdd throughput, Gops/s
    atomic_conflict_penalty: float     # extra cost factor per conflicting atomic
    shmem_gops: float                  # shared-memory reduction ops, Gops/s
    shuffle_gops: float                # warp-shuffle ops, Gops/s
    kernel_launch_overhead_s: float
    #: threads needed in flight to saturate DRAM bandwidth
    saturating_threads: int

    @property
    def max_warps(self) -> int:
        return self.cuda_cores // self.warp_size

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or self.num_sms <= 0:
            raise ValueError("warp_size and num_sms must be positive")
        if self.dram_bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")


A100 = GPUSpec(
    name="A100",
    num_sms=108,
    cuda_cores=6912,
    warp_size=32,
    max_threads_per_block=1024,
    shared_mem_per_block=164 * 1024,
    l2_cache_bytes=40 * 1024 * 1024,
    dram_bandwidth_gbps=1555.0,
    l2_bandwidth_gbps=4500.0,
    peak_gflops_sp=19490.0,
    peak_gflops_dp=9700.0,
    atomic_gops=16.0,
    atomic_conflict_penalty=4.0,
    shmem_gops=600.0,
    shuffle_gops=1200.0,
    kernel_launch_overhead_s=2.0e-7,
    saturating_threads=16_000,
)

RTX2080 = GPUSpec(
    name="RTX2080",
    num_sms=46,
    cuda_cores=2944,
    warp_size=32,
    max_threads_per_block=1024,
    shared_mem_per_block=64 * 1024,
    l2_cache_bytes=4 * 1024 * 1024,
    dram_bandwidth_gbps=448.0,
    l2_bandwidth_gbps=1800.0,
    peak_gflops_sp=10070.0,
    peak_gflops_dp=315.0,
    atomic_gops=8.0,
    atomic_conflict_penalty=4.0,
    shmem_gops=300.0,
    shuffle_gops=600.0,
    kernel_launch_overhead_s=2.0e-7,
    saturating_threads=8_000,
)

_BY_NAME = {"A100": A100, "RTX2080": RTX2080, "RTX 2080": RTX2080}


def gpu_by_name(name: str) -> GPUSpec:
    """Look up a preset by name (case-insensitive, space-insensitive)."""
    key = name.replace(" ", "").upper()
    for candidate, spec in _BY_NAME.items():
        if candidate.replace(" ", "").upper() == key:
            return spec
    raise KeyError(f"unknown GPU {name!r}; presets: A100, RTX2080")
