"""Simulated GPU substrate.

The paper measures generated CUDA kernels on an NVIDIA A100 and RTX 2080.
This environment has no GPU, so kernels produced by the generator execute
*functionally* in NumPy while an analytic performance model — parameterised
with the two cards' published specifications — predicts the kernel time.
SpMV is memory-bound (the paper's own roofline argument, §VII-C), so the
model scores exactly the quantities the paper attributes performance to:
bytes moved (format + gathered x + y), padding waste, warp divergence and
load imbalance, reduction-strategy cost, atomic contention, L2-cache fit and
SM occupancy.

Public entry points:

* :class:`~repro.gpu.arch.GPUSpec` with :data:`~repro.gpu.arch.A100` and
  :data:`~repro.gpu.arch.RTX2080` presets,
* :class:`~repro.gpu.executor.ExecutionPlan` — the neutral description of a
  generated kernel's work assignment,
* :func:`~repro.gpu.executor.execute` — run a plan: returns ``y`` plus the
  predicted time/GFLOPS breakdown.
"""

from repro.gpu.analysis import (
    AnalysisStats,
    DesignAnalysis,
    LeafAnalysis,
    LeafAnalysisCache,
)
from repro.gpu.arch import GPUSpec, A100, RTX2080, gpu_by_name
from repro.gpu.cost import CostBreakdown, CostModel, KernelCostInputs
from repro.gpu.executor import (
    ExecutionPlan,
    ExecutionResult,
    ReductionStep,
    execute,
    plan_cost_inputs,
)
from repro.gpu.memory import (
    coalescing_efficiency,
    gather_traffic_bytes,
    l2_bandwidth_boost,
)

__all__ = [
    "AnalysisStats",
    "DesignAnalysis",
    "LeafAnalysis",
    "LeafAnalysisCache",
    "GPUSpec",
    "A100",
    "RTX2080",
    "gpu_by_name",
    "CostBreakdown",
    "CostModel",
    "KernelCostInputs",
    "ExecutionPlan",
    "ExecutionResult",
    "ReductionStep",
    "execute",
    "plan_cost_inputs",
    "coalescing_efficiency",
    "gather_traffic_bytes",
    "l2_bandwidth_boost",
]
