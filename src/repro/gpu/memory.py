"""Memory-system estimators: coalescing, x-gather traffic, L2 fit.

These translate a kernel's access pattern into effective bytes and
bandwidth multipliers for the cost model.  The modelling choices mirror the
performance arguments the SpMV literature (and the paper's §VII-C analysis)
makes:

* **Coalescing** — a warp loading 32 consecutive non-zeros issues one
  128-byte transaction; a warp whose threads each walk a private contiguous
  chunk of length *L* spreads its 32 addresses over ``32*L`` elements and
  wastes most of each 32-byte sector.  Interleaved (column-major / SELL-style)
  storage restores unit stride.
* **x-gather** — the random gather ``x[col]`` is the irregular access; its
  traffic depends on column reuse and whether ``x`` fits in L2.
* **L2 fit** — working sets inside L2 stream at L2 bandwidth instead of
  DRAM bandwidth, the effect behind the paper's Fig 11a speedup bump for
  matrices under 40 MB.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.arch import GPUSpec

__all__ = [
    "coalescing_efficiency",
    "gather_traffic_bytes",
    "l2_bandwidth_boost",
    "SECTOR_BYTES",
    "VALUE_BYTES",
    "INDEX_BYTES",
]

#: Minimum DRAM transaction granularity (bytes).
SECTOR_BYTES = 32
#: Single-precision value size — the paper evaluates in fp32.
VALUE_BYTES = 4
#: Index element size (int32 in generated formats).
INDEX_BYTES = 4

#: Floor for chunk-per-thread access.  A thread walking its own contiguous
#: chunk eventually consumes every byte of the lines it touches (the lines
#: stay hot in L2 across loop iterations), so the sustained penalty is
#: latency/MLP-bound at roughly 4x rather than the naive one-word-per-sector
#: 8x.
_MIN_COALESCING = 0.25


def coalescing_efficiency(
    avg_run_length: float, interleaved: bool, warp_size: int = 32
) -> float:
    """Useful fraction of each memory transaction for format-array streams.

    Parameters
    ----------
    avg_run_length:
        Mean number of *contiguous* elements each thread consumes before its
        neighbour's data begins (1 for nnz-interleaved mappings, the
        per-thread chunk size for row/chunk-contiguous mappings).
    interleaved:
        True when storage was transposed so that lane *i* of a warp reads
        element *i* of consecutive groups (ELL/SELL column-major layout) —
        restores full coalescing regardless of chunk length.
    """
    if interleaved:
        return 1.0
    run = max(1.0, float(avg_run_length))
    # Stride of `run` elements between lanes => 1/run of each transaction is
    # useful, floored at the sector granularity.
    return float(max(_MIN_COALESCING, min(1.0, 1.0 / run)))


def gather_traffic_bytes(
    nnz: int,
    unique_cols: int,
    n_cols: int,
    gpu: GPUSpec,
    operand_bytes: float = 0.0,
) -> float:
    """Estimated DRAM bytes for the ``x[col_indices]`` gather.

    Every distinct column must be fetched at least once.  Repeat touches hit
    in cache when the referenced slice of ``x`` fits in L2; otherwise a
    fraction proportional to the overflow misses again.  A sector-granularity
    factor accounts for scattered first touches.

    ``operand_bytes`` overrides the operand footprint used for the L2-fit
    decision (0 = the historical fp32 vector assumption) — multi-vector
    workloads gather ``k`` values per index, so their operand overflows L2
    ``k`` times sooner than the single-vector estimate.
    """
    if nnz == 0:
        return 0.0
    x_bytes = operand_bytes if operand_bytes > 0 else n_cols * VALUE_BYTES
    # First touches: unique columns, fetched at sector granularity. Columns
    # are scattered, so each first touch moves a partial sector; assume two
    # useful words per sector on average for sparse column sets.
    first_touch = unique_cols * max(VALUE_BYTES, SECTOR_BYTES // 4)
    repeats = max(0, nnz - unique_cols)
    if x_bytes <= 0.5 * gpu.l2_cache_bytes:
        repeat_miss_rate = 0.0
    elif x_bytes <= gpu.l2_cache_bytes:
        repeat_miss_rate = 0.2
    else:
        # L2 holds a fraction of x; misses scale with the overflow.
        repeat_miss_rate = min(1.0, 1.0 - gpu.l2_cache_bytes / (2.0 * x_bytes))
    return float(first_touch + repeats * VALUE_BYTES * repeat_miss_rate)


def l2_bandwidth_boost(working_set_bytes: float, gpu: GPUSpec) -> float:
    """Bandwidth multiplier when the streamed working set fits in L2.

    Returns the factor by which effective bandwidth exceeds DRAM bandwidth:
    1.0 when the working set clearly overflows L2, up to
    ``l2_bandwidth / dram_bandwidth`` when it fits comfortably, with a linear
    ramp in between (repeated SpMV iterations re-stream the same arrays, the
    setting the paper's GFLOPS measurements use).
    """
    ratio = working_set_bytes / gpu.l2_cache_bytes
    peak = gpu.l2_bandwidth_gbps / gpu.dram_bandwidth_gbps
    if ratio <= 0.5:
        return peak
    if ratio >= 2.0:
        return 1.0
    # Linear ramp from full boost at 0.5x L2 down to none at 2x L2.
    frac = (2.0 - ratio) / 1.5
    return float(1.0 + (peak - 1.0) * frac)


def unique_column_count(col_indices: np.ndarray) -> int:
    """Number of distinct columns referenced (ignores negative padding ids).

    O(n + max_col) presence counting — column ids are bounded by the matrix
    width, so a bincount table replaces the sort inside ``np.unique``.
    For leaves whose id range is much wider than their element count (a
    sparse slice of a very wide matrix) the table would dominate, so the
    sort-based path remains as the fallback.
    """
    if col_indices.size == 0:
        return 0
    valid = col_indices[col_indices >= 0]
    if valid.size == 0:
        return 0
    if int(valid.max()) > 8 * valid.size:
        return int(np.unique(valid).size)
    return int(np.count_nonzero(np.bincount(valid.astype(np.int64, copy=False))))
