"""Functional executor + statistics extraction for generated kernels.

A generated SpMV kernel is described by an :class:`ExecutionPlan` — the
neutral contract between the kernel builder (:mod:`repro.core.kernel`) and
the simulated GPU.  The plan says, for every *stored* element (original
non-zeros plus padding), which output row it contributes to and which CUDA
thread processes it, plus the chain of reduction strategies that funnels
per-thread partial results into the ``y`` vector.

:func:`execute` does two things:

1. **Functional execution** — computes ``y`` exactly (vectorised NumPy), so
   every machine-designed kernel is verified against ``A @ x``.
2. **Performance projection** — derives :class:`~repro.gpu.cost.KernelCostInputs`
   from the plan (divergence, imbalance, partial-result flow through the
   reduction levels, atomics) and evaluates the analytic cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.gpu.arch import GPUSpec
from repro.gpu.cost import CostBreakdown, CostModel, KernelCostInputs
from repro.gpu.memory import (
    INDEX_BYTES,
    VALUE_BYTES,
    coalescing_efficiency,
    gather_traffic_bytes,
    unique_column_count,
)

__all__ = [
    "ReductionStep",
    "ExecutionPlan",
    "ExecutionResult",
    "PlanValidationError",
    "execute",
    "plan_cost_inputs",
    "validate_plan",
]

#: Reduction levels in pipeline order.
LEVELS = ("thread", "warp", "block", "global")

#: Strategies per level understood by the executor (matches Table II).
LEVEL_STRATEGIES = {
    "thread": {"THREAD_TOTAL_RED", "THREAD_BITMAP_RED"},
    "warp": {"WARP_TOTAL_RED", "WARP_BITMAP_RED", "WARP_SEG_RED"},
    "block": {"SHMEM_TOTAL_RED", "SHMEM_OFFSET_RED"},
    "global": {"GMEM_ATOM_RED", "GMEM_DIRECT_STORE"},
}


class PlanValidationError(ValueError):
    """A reduction chain is semantically invalid for this work assignment."""


@dataclass(frozen=True)
class ReductionStep:
    """One stage of the reduction pipeline (level + strategy name)."""

    level: str
    strategy: str

    def __post_init__(self) -> None:
        if self.level not in LEVEL_STRATEGIES:
            raise ValueError(f"unknown reduction level {self.level!r}")
        if self.strategy not in LEVEL_STRATEGIES[self.level]:
            raise ValueError(
                f"strategy {self.strategy!r} not valid at level {self.level!r}"
            )


@dataclass
class ExecutionPlan:
    """Work assignment + reduction chain of one generated SpMV kernel.

    Arrays are aligned with *stored order* (the machine-designed format's
    element order, padding included).  Padding elements carry
    ``out_rows == -1`` and ``col_indices == -1``.
    """

    n_rows: int
    n_cols: int
    useful_nnz: int
    values: np.ndarray
    col_indices: np.ndarray
    out_rows: np.ndarray
    thread_of_nz: np.ndarray
    n_threads: int
    threads_per_block: int
    reduction_steps: Tuple[ReductionStep, ...]
    interleaved: bool = False
    extra_format_bytes: float = 0.0
    #: Mean contiguous elements a thread consumes before its neighbour's
    #: data begins: chunk size for chunk-per-thread mappings, 1.0 for
    #: round-robin / grid-stride distributions.  None = derive from the mean
    #: per-thread element count (chunked assumption).
    storage_run_length: Optional[float] = None
    #: bytes per matrix/x/y value (4 = fp32, 8 = fp64)
    value_bytes: int = 4
    label: str = ""

    def __post_init__(self) -> None:
        n = self.values.shape[0]
        for arr_name in ("col_indices", "out_rows", "thread_of_nz"):
            arr = getattr(self, arr_name)
            if arr.shape != (n,):
                raise ValueError(f"{arr_name} must match values length {n}")
        if self.threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")
        if self.n_threads <= 0:
            raise ValueError("n_threads must be positive")
        if not self.reduction_steps:
            raise ValueError("plan needs at least a global reduction step")
        if self.reduction_steps[-1].level != "global":
            raise ValueError("last reduction step must be global")

    # Convenience geometry -------------------------------------------------
    @property
    def warp_size(self) -> int:
        return 32

    @property
    def n_warps(self) -> int:
        return (self.n_threads + self.warp_size - 1) // self.warp_size

    @property
    def n_blocks(self) -> int:
        return (self.n_threads + self.threads_per_block - 1) // self.threads_per_block

    @property
    def stored_elements(self) -> int:
        return int(self.values.shape[0])


@dataclass(frozen=True)
class ExecutionResult:
    """Output of one simulated kernel run."""

    y: np.ndarray
    cost: CostBreakdown
    inputs: KernelCostInputs

    @property
    def time_s(self) -> float:
        return self.cost.total_s

    @property
    def gflops(self) -> float:
        return self.cost.gflops


# ---------------------------------------------------------------------------
# Partial-result flow through the reduction pipeline
# ---------------------------------------------------------------------------

@dataclass
class _PipelineStats:
    """Counts accumulated while partial results flow through the levels."""

    shuffle_ops: int = 0
    shmem_ops: int = 0
    serial_red_ops: int = 0
    sync_barriers: int = 0
    atomic_ops: int = 0
    final_rows: Optional[np.ndarray] = None


def _flow_partials(plan: ExecutionPlan) -> _PipelineStats:
    """Walk the reduction chain, validating strategies and counting ops.

    Partial results start as the distinct (thread, row) pairs; each level
    merges partials that share a row within its scope.  TOTAL strategies
    additionally require their scope to contain a single row.  Group ids are
    tracked together with their current granularity (threads per group), so
    a block step after a warp step regroups correctly.
    """
    valid = plan.out_rows >= 0
    rows = plan.out_rows[valid]
    threads = plan.thread_of_nz[valid]
    stats = _PipelineStats()
    if rows.size == 0:
        stats.final_rows = rows
        return stats

    # Current partials: (scope_group, row). Start pre-thread-level: each
    # element is its own partial owned by its thread.
    cur_groups = threads
    cur_rows = rows
    granularity = 1  # threads represented by one group id
    reached_global = False

    for step in plan.reduction_steps:
        if step.level == "thread":
            distinct = _pair_counts(cur_groups, cur_rows)
            if step.strategy == "THREAD_TOTAL_RED":
                if distinct.per_group_max > 1:
                    raise PlanValidationError(
                        "THREAD_TOTAL_RED requires each thread to cover one row"
                    )
                # serial adds happen inside the FMA loop — already counted
                # in the compute term
            else:  # THREAD_BITMAP_RED: per-element row-boundary checks
                stats.serial_red_ops += int(cur_rows.size)
            cur_groups, cur_rows = _merge(cur_groups, cur_rows)
        elif step.level == "warp":
            if granularity > plan.warp_size:
                raise PlanValidationError(
                    "warp reduction cannot follow a coarser-grained step"
                )
            groups = cur_groups // (plan.warp_size // granularity)
            granularity = plan.warp_size
            distinct = _pair_counts(groups, cur_rows)
            n_active_warps = distinct.n_groups
            if step.strategy == "WARP_TOTAL_RED":
                if distinct.per_group_max > 1:
                    raise PlanValidationError(
                        "WARP_TOTAL_RED requires one row per warp"
                    )
                stats.shuffle_ops += n_active_warps * 5
            elif step.strategy == "WARP_SEG_RED":
                stats.shuffle_ops += n_active_warps * 10
            else:  # WARP_BITMAP_RED
                stats.shuffle_ops += n_active_warps * 8
            cur_groups, cur_rows = _merge(groups, cur_rows)
        elif step.level == "block":
            if granularity > plan.threads_per_block:
                raise PlanValidationError(
                    "block reduction cannot follow a coarser-grained step"
                )
            groups = cur_groups // (plan.threads_per_block // granularity)
            granularity = plan.threads_per_block
            distinct = _pair_counts(groups, cur_rows)
            n_active_blocks = distinct.n_groups
            if step.strategy == "SHMEM_TOTAL_RED":
                if distinct.per_group_max > 1:
                    raise PlanValidationError(
                        "SHMEM_TOTAL_RED requires one row per thread block"
                    )
                stats.shmem_ops += int(cur_rows.size)
                stats.sync_barriers += n_active_blocks * max(
                    1, int(np.log2(max(2, plan.threads_per_block)))
                )
            else:  # SHMEM_OFFSET_RED: segmented row-offset reduce in shmem
                stats.shmem_ops += int(3 * cur_rows.size)
                stats.sync_barriers += n_active_blocks * 2
            cur_groups, cur_rows = _merge(groups, cur_rows)
        else:  # global
            reached_global = True
            stats.final_rows = cur_rows
            if step.strategy == "GMEM_ATOM_RED":
                stats.atomic_ops = int(cur_rows.size)
            else:  # GMEM_DIRECT_STORE — every row written exactly once
                counts = np.bincount(cur_rows, minlength=plan.n_rows)
                if counts.max(initial=0) > 1:
                    raise PlanValidationError(
                        "GMEM_DIRECT_STORE requires a single partial per row; "
                        "use GMEM_ATOM_RED"
                    )
    if not reached_global:
        raise PlanValidationError("reduction chain never reached global memory")
    return stats


@dataclass(frozen=True)
class _PairCounts:
    n_groups: int
    per_group_max: int


def _pair_counts(groups: np.ndarray, rows: np.ndarray) -> _PairCounts:
    """Distinct-group count and max distinct rows within any group."""
    if rows.size == 0:
        return _PairCounts(0, 0)
    key = groups.astype(np.int64) * (int(rows.max()) + 1) + rows
    uniq_pairs = np.unique(key)
    pair_groups = uniq_pairs // (int(rows.max()) + 1)
    group_ids, counts = np.unique(pair_groups, return_counts=True)
    return _PairCounts(int(group_ids.size), int(counts.max()))


def _merge(groups: np.ndarray, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse partials sharing (group, row) into one partial."""
    if rows.size == 0:
        return groups, rows
    base = int(rows.max()) + 1
    key = groups.astype(np.int64) * base + rows
    uniq = np.unique(key)
    return (uniq // base), (uniq % base)


# ---------------------------------------------------------------------------
# Cost-input extraction
# ---------------------------------------------------------------------------

def plan_cost_inputs(plan: ExecutionPlan, gpu: GPUSpec) -> KernelCostInputs:
    """Summarise a plan into the numbers the cost model consumes."""
    valid = plan.out_rows >= 0
    stored = plan.stored_elements
    per_thread = np.bincount(
        plan.thread_of_nz, minlength=plan.n_threads
    ).astype(np.int64)

    # Warp lockstep: pad threads to a multiple of warp size, take the max
    # element count per warp — idle lanes still burn issue slots.
    warp = plan.warp_size
    padded_len = plan.n_warps * warp
    padded = np.zeros(padded_len, dtype=np.int64)
    padded[: per_thread.size] = per_thread
    warp_max = padded.reshape(plan.n_warps, warp).max(axis=1)
    lockstep = float((warp_max * warp).sum())

    # Block-level work distribution.
    tpb = plan.threads_per_block
    padded_blocks = plan.n_blocks * tpb
    per_thread_b = np.zeros(padded_blocks, dtype=np.int64)
    per_thread_b[: per_thread.size] = per_thread
    block_work = per_thread_b.reshape(plan.n_blocks, tpb).sum(axis=1)
    max_block = float(block_work.max(initial=0))
    mean_block = float(block_work.mean()) if block_work.size else 0.0

    if plan.storage_run_length is not None:
        avg_run = float(plan.storage_run_length)
    else:
        active = per_thread[per_thread > 0]
        avg_run = float(active.mean()) if active.size else 1.0
    coalescing = coalescing_efficiency(avg_run, plan.interleaved, warp)

    unique_cols = unique_column_count(plan.col_indices)
    gather = gather_traffic_bytes(
        plan.useful_nnz, unique_cols, plan.n_cols, gpu
    ) * (plan.value_bytes / VALUE_BYTES)

    stats = _flow_partials(plan)
    final_rows = stats.final_rows
    if final_rows is not None and final_rows.size:
        max_atomics = int(
            np.bincount(final_rows, minlength=plan.n_rows).max(initial=0)
        ) if stats.atomic_ops else 0
    else:
        max_atomics = 0

    vb = plan.value_bytes
    format_bytes = stored * (vb + INDEX_BYTES) + plan.extra_format_bytes
    y_bytes = plan.n_rows * vb + stats.atomic_ops * 2 * vb

    return KernelCostInputs(
        useful_flops=2.0 * plan.useful_nnz,
        stored_elements=stored,
        format_bytes=float(format_bytes),
        gather_bytes=float(gather),
        y_bytes=float(y_bytes),
        coalescing=coalescing,
        n_threads=plan.n_threads,
        n_warps=plan.n_warps,
        n_blocks=plan.n_blocks,
        threads_per_block=tpb,
        warp_lockstep_elements=lockstep,
        max_block_elements=max_block,
        mean_block_elements=mean_block,
        atomic_ops=stats.atomic_ops,
        max_atomics_per_row=max_atomics,
        shmem_ops=stats.shmem_ops,
        shuffle_ops=stats.shuffle_ops,
        serial_red_ops=stats.serial_red_ops,
        sync_barriers=stats.sync_barriers,
        value_bytes=plan.value_bytes,
    )


def validate_plan(plan: ExecutionPlan) -> None:
    """Raise :class:`PlanValidationError` if the reduction chain is invalid."""
    _flow_partials(plan)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def execute(plan: ExecutionPlan, x: np.ndarray, gpu: GPUSpec) -> ExecutionResult:
    """Run the kernel functionally and project its performance.

    Returns the exact ``y`` (verified against padding-safety invariants) and
    the cost breakdown.  Raises :class:`PlanValidationError` for semantically
    invalid reduction chains — the same kernels that would compute wrong
    answers on real hardware.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (plan.n_cols,):
        raise ValueError(f"x must have shape ({plan.n_cols},)")

    inputs = plan_cost_inputs(plan, gpu)  # validates the reduction chain

    valid = plan.out_rows >= 0
    cols = plan.col_indices[valid]
    if cols.size and (cols.min() < 0 or cols.max() >= plan.n_cols):
        raise PlanValidationError("valid element with out-of-range column")
    products = plan.values[valid] * x[cols]
    y = np.zeros(plan.n_rows, dtype=np.float64)
    if products.size:
        np.add.at(y, plan.out_rows[valid], products)

    cost = CostModel(gpu).evaluate(inputs)
    return ExecutionResult(y=y, cost=cost, inputs=inputs)
