"""Functional executor + statistics extraction for generated kernels.

A generated kernel is described by an :class:`ExecutionPlan` — the
neutral contract between the kernel builder (:mod:`repro.core.kernel`) and
the simulated GPU.  The plan says, for every *stored* element (original
non-zeros plus padding), which output row it contributes to and which CUDA
thread processes it, plus the chain of reduction strategies that funnels
per-thread partial results into the ``y`` vector.

Execution is parameterised on a :class:`~repro.workloads.Workload`: the
same plan arrays serve ``y = A @ x`` (gather along columns, scatter along
rows — the default, bit-identical to the stack's historical behaviour),
``Y = A @ X`` with a dense k-column operand, and transpose SpMV
``y = A.T @ x`` (gather along rows, scatter along columns — reduction
chains are re-validated against the *column* partial flow, so
direct-store row kernels correctly become invalid and atomic designs win,
as on real hardware).

:func:`execute` does two things:

1. **Functional execution** — computes ``y`` exactly (vectorised NumPy), so
   every machine-designed kernel is verified against the workload's
   reference computation.
2. **Performance projection** — derives :class:`~repro.gpu.cost.KernelCostInputs`
   from the plan (divergence, imbalance, partial-result flow through the
   reduction levels, atomics, workload flop/traffic scaling) and evaluates
   the analytic cost model.

Statistics are extracted with linear-time primitives: the reduction walk
sorts the ``(group, row)`` key space at most once and then works on
boundary differences of the (much smaller) distinct-pair set, distinct
counting uses ``bincount`` presence tables instead of sort-based
``np.unique``, and the functional ``y`` is a weighted ``bincount`` rather
than ``np.add.at``.  When a plan carries a
:class:`~repro.gpu.analysis.LeafAnalysis` (``plan.analysis``, attached by
the staged evaluator), everything runtime scalars cannot change — valid
mask, sorted pair machinery, cost projection per distribution digest,
functional ``y`` per input vector — is computed once per design leaf and
shared across the whole runtime-parameter grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.errors import (
    DiagnosableError,
    PLAN_GATHER_RANGE,
    PLAN_SCATTER_RANGE,
    REDUCE_CHAIN_BLOCK_TOTAL,
    REDUCE_CHAIN_DIRECT_STORE,
    REDUCE_CHAIN_NO_GLOBAL,
    REDUCE_CHAIN_ORDER,
    REDUCE_CHAIN_THREAD_TOTAL,
    REDUCE_CHAIN_WARP_TOTAL,
    code_of,
)
from repro.gpu.arch import GPUSpec
from repro.gpu.cost import CostBreakdown, CostModel, KernelCostInputs
from repro.gpu.memory import (
    INDEX_BYTES,
    VALUE_BYTES,
    coalescing_efficiency,
    gather_traffic_bytes,
    unique_column_count,
)
from repro.workloads import DEFAULT_WORKLOAD, Workload

__all__ = [
    "ReductionStep",
    "ExecutionPlan",
    "ExecutionResult",
    "PlanValidationError",
    "compute_cost_entry",
    "cost_entry_key",
    "execute",
    "functional_y_entry",
    "plan_cost_inputs",
    "validate_plan",
]

#: Reduction levels in pipeline order.
LEVELS = ("thread", "warp", "block", "global")

#: Strategies per level understood by the executor (matches Table II).
LEVEL_STRATEGIES = {
    "thread": {"THREAD_TOTAL_RED", "THREAD_BITMAP_RED"},
    "warp": {"WARP_TOTAL_RED", "WARP_BITMAP_RED", "WARP_SEG_RED"},
    "block": {"SHMEM_TOTAL_RED", "SHMEM_OFFSET_RED"},
    "global": {"GMEM_ATOM_RED", "GMEM_DIRECT_STORE"},
}


class PlanValidationError(DiagnosableError):
    """A reduction chain is semantically invalid for this work assignment.

    Carries a stable diagnostic ``code`` (see :mod:`repro.errors`) shared
    with the static verifier, so dynamic and static verdicts are
    comparable; ``str(exc)`` stays the bare message (byte-identity).
    """

    default_code = "PLAN-INVALID"


@dataclass(frozen=True)
class ReductionStep:
    """One stage of the reduction pipeline (level + strategy name)."""

    level: str
    strategy: str

    def __post_init__(self) -> None:
        if self.level not in LEVEL_STRATEGIES:
            raise ValueError(f"unknown reduction level {self.level!r}")
        if self.strategy not in LEVEL_STRATEGIES[self.level]:
            raise ValueError(
                f"strategy {self.strategy!r} not valid at level {self.level!r}"
            )


@dataclass
class ExecutionPlan:
    """Work assignment + reduction chain of one generated kernel.

    Arrays are aligned with *stored order* (the machine-designed format's
    element order, padding included).  Padding elements carry
    ``out_rows == -1`` and ``col_indices == -1``.
    """

    n_rows: int
    n_cols: int
    useful_nnz: int
    values: np.ndarray
    col_indices: np.ndarray
    out_rows: np.ndarray
    thread_of_nz: np.ndarray
    n_threads: int
    threads_per_block: int
    reduction_steps: Tuple[ReductionStep, ...]
    interleaved: bool = False
    extra_format_bytes: float = 0.0
    #: Mean contiguous elements a thread consumes before its neighbour's
    #: data begins: chunk size for chunk-per-thread mappings, 1.0 for
    #: round-robin / grid-stride distributions.  None = derive from the mean
    #: per-thread element count (chunked assumption).
    storage_run_length: Optional[float] = None
    #: bytes per matrix/x/y value (4 = fp32, 8 = fp64)
    value_bytes: int = 4
    label: str = ""
    #: per-leaf analysis cache (:class:`repro.gpu.analysis.LeafAnalysis`)
    #: attached by the staged evaluator; None = standalone plan.
    analysis: Optional[object] = field(default=None, repr=False, compare=False)
    #: content key of the thread distribution (``(digest, n_threads, tpb)``)
    #: used to share cost projections across runtime assignments.
    cost_key: Optional[Tuple] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        n = self.values.shape[0]
        for arr_name in ("col_indices", "out_rows", "thread_of_nz"):
            arr = getattr(self, arr_name)
            if arr.shape != (n,):
                raise ValueError(f"{arr_name} must match values length {n}")
        if self.threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")
        if self.n_threads <= 0:
            raise ValueError("n_threads must be positive")
        if n:
            # An out-of-range thread id would silently corrupt the
            # per-thread bincounts plan_cost_inputs is built on.
            tmin = int(self.thread_of_nz.min())
            tmax = int(self.thread_of_nz.max())
            if tmin < 0 or tmax >= self.n_threads:
                raise ValueError(
                    f"thread_of_nz out of range: ids span [{tmin}, {tmax}] "
                    f"but n_threads is {self.n_threads}"
                )
            if int(self.out_rows.max(initial=-1)) >= self.n_rows:
                raise ValueError(
                    f"out_rows references row >= n_rows ({self.n_rows})"
                )
        if not self.reduction_steps:
            raise ValueError("plan needs at least a global reduction step")
        if self.reduction_steps[-1].level != "global":
            raise ValueError("last reduction step must be global")

    # Convenience geometry -------------------------------------------------
    @property
    def warp_size(self) -> int:
        return 32

    @property
    def n_warps(self) -> int:
        return (self.n_threads + self.warp_size - 1) // self.warp_size

    @property
    def n_blocks(self) -> int:
        return (self.n_threads + self.threads_per_block - 1) // self.threads_per_block

    @property
    def stored_elements(self) -> int:
        return int(self.values.shape[0])


@dataclass(frozen=True)
class ExecutionResult:
    """Output of one simulated kernel run."""

    y: np.ndarray
    cost: CostBreakdown
    inputs: KernelCostInputs

    @property
    def time_s(self) -> float:
        return self.cost.total_s

    @property
    def gflops(self) -> float:
        return self.cost.gflops


# ---------------------------------------------------------------------------
# Partial-result flow through the reduction pipeline
# ---------------------------------------------------------------------------

@dataclass
class _PipelineStats:
    """Counts accumulated while partial results flow through the levels."""

    shuffle_ops: int = 0
    shmem_ops: int = 0
    serial_red_ops: int = 0
    sync_barriers: int = 0
    atomic_ops: int = 0
    final_rows: Optional[np.ndarray] = None


@dataclass(frozen=True)
class _PairCounts:
    n_groups: int
    per_group_max: int


def _dedup_sorted(key: np.ndarray) -> np.ndarray:
    """Distinct values of an already-sorted key array (boundary diff)."""
    if key.size <= 1:
        return key
    mask = np.empty(key.size, dtype=bool)
    mask[0] = True
    np.not_equal(key[1:], key[:-1], out=mask[1:])
    return key[mask]


def _sorted_unique_pairs(
    groups: np.ndarray, rows: np.ndarray, base: int
) -> np.ndarray:
    """Sorted distinct ``group * base + row`` keys.

    Storage-order block grouping means the key stream is frequently
    already sorted (chunk-per-thread mappings over row-sorted elements);
    the O(n) monotonicity probe then skips the sort entirely.
    """
    key = groups.astype(np.int64) * base + rows
    if key.size > 1 and np.any(key[1:] < key[:-1]):
        key = np.sort(key)
    return _dedup_sorted(key)


def _pair_stats(key: np.ndarray, base: int) -> _PairCounts:
    """Distinct-group count and max distinct rows per group, from the
    sorted distinct-pair key array — one boundary-diff pass, no sort."""
    if key.size == 0:
        return _PairCounts(0, 0)
    g = key // base
    boundary = np.empty(g.size, dtype=bool)
    boundary[0] = True
    np.not_equal(g[1:], g[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    ends = np.empty(starts.size, dtype=np.int64)
    ends[:-1] = starts[1:]
    ends[-1] = g.size
    return _PairCounts(int(starts.size), int((ends - starts).max()))


def _regroup(key: np.ndarray, base: int, shrink: int) -> np.ndarray:
    """Coarsen the group component of a sorted distinct-pair key by
    ``shrink`` (e.g. threads -> warps), re-sorting only the shrunken set."""
    if shrink <= 1 or key.size == 0:
        return key
    g = key // base
    return _sorted_unique_pairs(g // shrink, key - g * base, base)


def _flow_partials(
    plan: ExecutionPlan,
    valid: Optional[np.ndarray] = None,
    start_pairs: Optional[Tuple[np.ndarray, int]] = None,
    scatter: Optional[np.ndarray] = None,
    n_out: Optional[int] = None,
) -> _PipelineStats:
    """Walk the reduction chain, validating strategies and counting ops.

    Partial results start as the distinct (thread, row) pairs; each level
    merges partials that share a row within its scope.  TOTAL strategies
    additionally require their scope to contain a single row.  Group ids
    are tracked together with their current granularity (threads per
    group), so a block step after a warp step regroups correctly.

    The walk state is the sorted distinct ``(group, row)`` key set plus
    the current multiset size (pre-merge partial count).  ``start_pairs``
    optionally supplies the initial sorted machinery — the one O(n log n)
    step — precomputed per design leaf by the analysis cache.

    ``scatter``/``n_out`` override the output-index array and output size
    (transpose workloads scatter into columns: the same walk then
    validates the chain against the *column* partial flow, so e.g.
    GMEM_DIRECT_STORE demands one partial per output column).  Defaults
    are the row side — the historical SpMV behaviour, unchanged.
    """
    if valid is None:
        valid = plan.out_rows >= 0
    scatter_override = scatter is not None
    if scatter is None:
        scatter = plan.out_rows
    if n_out is None:
        n_out = plan.n_rows
    rows = scatter[valid]
    if scatter_override and rows.size:
        # The row side is range-checked by ExecutionPlan.__post_init__ and
        # the valid mask; an overridden scatter side (transpose: columns)
        # carries no such guarantee, and a stray negative/overflowing
        # index must surface as an invalid plan, not a bincount crash.
        lo, hi = int(rows.min()), int(rows.max())
        if lo < 0 or hi >= n_out:
            raise PlanValidationError(
                "valid element with out-of-range column",
                code=PLAN_SCATTER_RANGE,
            )
    stats = _PipelineStats()
    if rows.size == 0:
        stats.final_rows = rows
        return stats

    if start_pairs is None:
        base = int(rows.max()) + 1
        cur_key = _sorted_unique_pairs(plan.thread_of_nz[valid], rows, base)
    else:
        cur_key, base = start_pairs
    #: partial count of the current multiset: raw elements until the first
    #: merge, the distinct-pair count afterwards.
    cur_size = int(rows.size)
    #: rows of the current partials, with multiplicity (None = derive from
    #: cur_key once a merge has happened).
    rows_multiset: Optional[np.ndarray] = rows
    granularity = 1  # threads represented by one group id
    reached_global = False

    for step in plan.reduction_steps:
        if step.level == "thread":
            distinct = _pair_stats(cur_key, base)
            if step.strategy == "THREAD_TOTAL_RED":
                if distinct.per_group_max > 1:
                    raise PlanValidationError(
                        "THREAD_TOTAL_RED requires each thread to cover one row",
                        code=REDUCE_CHAIN_THREAD_TOTAL,
                    )
                # serial adds happen inside the FMA loop — already counted
                # in the compute term
            else:  # THREAD_BITMAP_RED: per-element row-boundary checks
                stats.serial_red_ops += cur_size
            cur_size = int(cur_key.size)
            rows_multiset = None
        elif step.level == "warp":
            if granularity > plan.warp_size:
                raise PlanValidationError(
                    "warp reduction cannot follow a coarser-grained step",
                    code=REDUCE_CHAIN_ORDER,
                )
            cur_key = _regroup(cur_key, base, plan.warp_size // granularity)
            granularity = plan.warp_size
            distinct = _pair_stats(cur_key, base)
            n_active_warps = distinct.n_groups
            if step.strategy == "WARP_TOTAL_RED":
                if distinct.per_group_max > 1:
                    raise PlanValidationError(
                        "WARP_TOTAL_RED requires one row per warp",
                        code=REDUCE_CHAIN_WARP_TOTAL,
                    )
                stats.shuffle_ops += n_active_warps * 5
            elif step.strategy == "WARP_SEG_RED":
                stats.shuffle_ops += n_active_warps * 10
            else:  # WARP_BITMAP_RED
                stats.shuffle_ops += n_active_warps * 8
            cur_size = int(cur_key.size)
            rows_multiset = None
        elif step.level == "block":
            if granularity > plan.threads_per_block:
                raise PlanValidationError(
                    "block reduction cannot follow a coarser-grained step",
                    code=REDUCE_CHAIN_ORDER,
                )
            cur_key = _regroup(
                cur_key, base, plan.threads_per_block // granularity
            )
            granularity = plan.threads_per_block
            distinct = _pair_stats(cur_key, base)
            n_active_blocks = distinct.n_groups
            if step.strategy == "SHMEM_TOTAL_RED":
                if distinct.per_group_max > 1:
                    raise PlanValidationError(
                        "SHMEM_TOTAL_RED requires one row per thread block",
                        code=REDUCE_CHAIN_BLOCK_TOTAL,
                    )
                stats.shmem_ops += cur_size
                stats.sync_barriers += n_active_blocks * max(
                    1, int(np.log2(max(2, plan.threads_per_block)))
                )
            else:  # SHMEM_OFFSET_RED: segmented row-offset reduce in shmem
                stats.shmem_ops += 3 * cur_size
                stats.sync_barriers += n_active_blocks * 2
            cur_size = int(cur_key.size)
            rows_multiset = None
        else:  # global
            reached_global = True
            final_rows = (
                rows_multiset if rows_multiset is not None else cur_key % base
            )
            stats.final_rows = final_rows
            if step.strategy == "GMEM_ATOM_RED":
                stats.atomic_ops = cur_size
            else:  # GMEM_DIRECT_STORE — every output written exactly once
                counts = np.bincount(final_rows, minlength=n_out)
                if counts.max(initial=0) > 1:
                    raise PlanValidationError(
                        "GMEM_DIRECT_STORE requires a single partial per row; "
                        "use GMEM_ATOM_RED",
                        code=REDUCE_CHAIN_DIRECT_STORE,
                    )
    if not reached_global:
        raise PlanValidationError(
            "reduction chain never reached global memory",
            code=REDUCE_CHAIN_NO_GLOBAL,
        )
    return stats


# ---------------------------------------------------------------------------
# Cost-input extraction
# ---------------------------------------------------------------------------

def plan_cost_inputs(
    plan: ExecutionPlan, gpu: GPUSpec, workload: Optional[Workload] = None
) -> KernelCostInputs:
    """Summarise a plan into the numbers the cost model consumes.

    Plans carrying a leaf analysis share one projection per distribution
    digest (see :func:`_cost_projection`); standalone plans compute from
    scratch.  ``workload`` selects the operation being modelled (None =
    the default SpMV).
    """
    workload = workload or DEFAULT_WORKLOAD
    if plan.analysis is not None and plan.cost_key is not None:
        entry = _cost_projection(plan, gpu, workload)
        if entry[0] == "error":
            raise PlanValidationError(
                entry[1], code=entry[2] if len(entry) > 2 else None
            )
        return entry[1]
    return _compute_cost_inputs(plan, gpu, workload)


def _cost_projection(
    plan: ExecutionPlan, gpu: GPUSpec, workload: Workload
) -> Tuple:
    """Cached ``("ok", inputs, cost)`` / ``("error", msg, code)`` for an
    analysis-backed plan, keyed by the distribution digest + GPU (+ the
    workload token for non-default workloads)."""
    analysis = plan.analysis
    key = workload.scope_key(plan.cost_key + (gpu.name, plan.value_bytes))
    return analysis.cost_projection(
        key, lambda: compute_cost_entry(plan, gpu, workload)
    )


def cost_entry_key(plan: ExecutionPlan, gpu: GPUSpec, workload: Workload) -> Tuple:
    """The cache key :func:`_cost_projection` files a plan's entry under —
    exposed so the batched evaluator can look up whole distribution-digest
    batches via :meth:`LeafAnalysis.cost_batch`."""
    return workload.scope_key(plan.cost_key + (gpu.name, plan.value_bytes))


def compute_cost_entry(
    plan: ExecutionPlan, gpu: GPUSpec, workload: Optional[Workload] = None
) -> Tuple:
    """Uncached entry-form cost projection: ``("ok", inputs, cost)`` or
    ``("error", message, code)`` — never raises for an invalid chain, so
    cached replay is exact for every candidate sharing the entry."""
    workload = workload or DEFAULT_WORKLOAD
    try:
        inputs = _compute_cost_inputs(plan, gpu, workload)
    except PlanValidationError as exc:
        return ("error", str(exc), code_of(exc))
    return ("ok", inputs, CostModel(gpu).evaluate(inputs))


def functional_y_entry(
    plan: ExecutionPlan, x: np.ndarray, workload: Optional[Workload] = None
) -> Tuple:
    """Cached ``("ok", y)`` / ``("error", msg, code)`` of an analysis-backed
    plan for one operand — the per-leaf functional result :func:`execute`
    consults, exposed for the batched evaluator (which sums the per-kernel
    entries itself instead of running ``execute`` per candidate)."""
    workload = workload or DEFAULT_WORKLOAD
    analysis = plan.analysis

    def compute_y() -> Tuple:
        valid = analysis.cached_array("valid", lambda: plan.out_rows >= 0)
        try:
            return ("ok", _functional_y(plan, x, valid, workload))
        except PlanValidationError as exc:
            return ("error", str(exc), code_of(exc))

    return analysis.functional_y(
        x, compute_y, scope="" if workload.is_default else workload.token
    )


def _thread_stats(plan: ExecutionPlan) -> Tuple[np.ndarray, float, float]:
    """Distribution-only statistics: per-thread element histogram, warp
    lockstep issue slots, mean active run length."""
    per_thread = np.bincount(
        plan.thread_of_nz, minlength=plan.n_threads
    ).astype(np.int64)
    # Warp lockstep: pad threads to a multiple of warp size, take the max
    # element count per warp — idle lanes still burn issue slots.
    warp = plan.warp_size
    padded_len = plan.n_warps * warp
    padded = np.zeros(padded_len, dtype=np.int64)
    padded[: per_thread.size] = per_thread
    warp_max = padded.reshape(plan.n_warps, warp).max(axis=1)
    lockstep = float((warp_max * warp).sum())
    active = per_thread[per_thread > 0]
    active_mean = float(active.mean()) if active.size else 1.0
    return per_thread, lockstep, active_mean


def _compute_cost_inputs(
    plan: ExecutionPlan, gpu: GPUSpec, workload: Optional[Workload] = None
) -> KernelCostInputs:
    workload = workload or DEFAULT_WORKLOAD
    # Gather/scatter orientation: the default workload gathers x along
    # column indices and scatters partials into rows; a transpose workload
    # swaps the two sides.  Cache names are scoped by the workload token
    # (identity for the default) so orientations never share entries.
    if workload.transpose:
        scatter_arr, n_out = plan.col_indices, plan.n_cols
        gather_arr, gather_domain = plan.out_rows, plan.n_rows
    else:
        scatter_arr, n_out = plan.out_rows, plan.n_rows
        gather_arr, gather_domain = plan.col_indices, plan.n_cols
    analysis = plan.analysis
    if analysis is not None:
        valid = analysis.cached_array("valid", lambda: plan.out_rows >= 0)
        unique_cols = analysis.cached_scalar(
            workload.scope_key(("unique_cols",)),
            lambda: unique_column_count(gather_arr),
        )
        start_pairs = None
        if plan.cost_key is not None:
            rows_valid = analysis.cached_array(
                workload.scope_key(("rows_valid",)),
                lambda: scatter_arr[valid],
            )
            if rows_valid.size:
                base = analysis.cached_scalar(
                    workload.scope_key(("row_base",)),
                    lambda: int(rows_valid.max()) + 1,
                )
                dist_key = plan.cost_key[0]
                start_pairs = analysis.start_pairs(
                    workload.scope_key((dist_key,)),
                    lambda: (
                        _sorted_unique_pairs(
                            plan.thread_of_nz[valid], rows_valid, base
                        ),
                        base,
                    ),
                )
    else:
        valid = plan.out_rows >= 0
        unique_cols = unique_column_count(gather_arr)
        start_pairs = None
    stored = plan.stored_elements
    warp = plan.warp_size
    if analysis is not None and plan.cost_key is not None:
        # Per-thread histogram, warp lockstep and mean run length depend on
        # the distribution only — share them across block-size variations.
        per_thread, lockstep, active_mean = analysis.cached_scalar(
            ("thread_stats", plan.cost_key[0], plan.n_threads),
            lambda: _thread_stats(plan),
        )
    else:
        per_thread, lockstep, active_mean = _thread_stats(plan)

    # Block-level work distribution.
    tpb = plan.threads_per_block
    padded_blocks = plan.n_blocks * tpb
    per_thread_b = np.zeros(padded_blocks, dtype=np.int64)
    per_thread_b[: per_thread.size] = per_thread
    block_work = per_thread_b.reshape(plan.n_blocks, tpb).sum(axis=1)
    max_block = float(block_work.max(initial=0))
    mean_block = float(block_work.mean()) if block_work.size else 0.0

    avg_run = (
        float(plan.storage_run_length)
        if plan.storage_run_length is not None
        else active_mean
    )
    coalescing = coalescing_efficiency(avg_run, plan.interleaved, warp)

    # Each gathered operand element is a k-vector under a multi-column
    # workload: k contiguous values move per distinct gather index, and
    # the L2-fit decision must see the true operand footprint (the
    # default workload keeps the historical fp32 single-vector estimate).
    operand_bytes = (
        0.0
        if workload.is_default
        else float(gather_domain) * plan.value_bytes * workload.k
    )
    gather = gather_traffic_bytes(
        plan.useful_nnz, unique_cols, gather_domain, gpu,
        operand_bytes=operand_bytes,
    ) * (plan.value_bytes / VALUE_BYTES) * workload.k

    stats = _flow_partials(
        plan,
        valid=valid,
        start_pairs=start_pairs,
        # None on the row side: the plan invariant already range-checks
        # it, so only a transpose (column) scatter needs the walk's
        # override + validation path.
        scatter=scatter_arr if workload.transpose else None,
        n_out=n_out if workload.transpose else None,
    )
    final_rows = stats.final_rows
    if final_rows is not None and final_rows.size:
        max_atomics = int(
            np.bincount(final_rows, minlength=n_out).max(initial=0)
        ) if stats.atomic_ops else 0
    else:
        max_atomics = 0

    vb = plan.value_bytes
    format_bytes = stored * (vb + INDEX_BYTES) + plan.extra_format_bytes
    y_bytes = (n_out * vb + stats.atomic_ops * 2 * vb) * workload.k

    return KernelCostInputs(
        useful_flops=workload.flops(plan.useful_nnz),
        stored_elements=stored,
        format_bytes=float(format_bytes),
        gather_bytes=float(gather),
        y_bytes=float(y_bytes),
        coalescing=coalescing,
        n_threads=plan.n_threads,
        n_warps=plan.n_warps,
        n_blocks=plan.n_blocks,
        threads_per_block=tpb,
        warp_lockstep_elements=lockstep,
        max_block_elements=max_block,
        mean_block_elements=mean_block,
        atomic_ops=stats.atomic_ops,
        max_atomics_per_row=max_atomics,
        shmem_ops=stats.shmem_ops,
        shuffle_ops=stats.shuffle_ops,
        serial_red_ops=stats.serial_red_ops,
        sync_barriers=stats.sync_barriers,
        value_bytes=plan.value_bytes,
        rhs_vectors=workload.k,
    )


def validate_plan(plan: ExecutionPlan, workload: Optional[Workload] = None) -> None:
    """Raise :class:`PlanValidationError` if the reduction chain is invalid
    for the workload (None = the default SpMV: row-scatter semantics)."""
    workload = workload or DEFAULT_WORKLOAD
    if workload.transpose:
        _flow_partials(plan, scatter=plan.col_indices, n_out=plan.n_cols)
    else:
        _flow_partials(plan)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def _functional_y(
    plan: ExecutionPlan,
    x: np.ndarray,
    valid: np.ndarray,
    workload: Optional[Workload] = None,
) -> np.ndarray:
    """Exact result via weighted bincounts over the valid elements.

    The default workload is one bincount into rows; SpMM repeats it per
    dense column; a transpose workload gathers ``x`` along rows and
    scatters into columns.
    """
    workload = workload or DEFAULT_WORKLOAD
    cols = plan.col_indices[valid]
    if cols.size and (cols.min() < 0 or cols.max() >= plan.n_cols):
        raise PlanValidationError(
            "valid element with out-of-range column",
            code=PLAN_GATHER_RANGE if not workload.transpose else PLAN_SCATTER_RANGE,
        )
    if workload.is_default:
        products = plan.values[valid] * x[cols]
        if not products.size:
            return np.zeros(plan.n_rows, dtype=np.float64)
        return np.bincount(
            plan.out_rows[valid], weights=products, minlength=plan.n_rows
        )
    if workload.transpose:
        # Valid elements always carry an in-range row (plan invariant), so
        # the row gather needs no extra check; cols is the scatter side.
        products = plan.values[valid] * x[plan.out_rows[valid]]
        out = np.zeros(plan.n_cols, dtype=np.float64)
        if products.size:
            out += np.bincount(cols, weights=products, minlength=plan.n_cols)
        return out
    # Multi-column (SpMM): one bincount per dense RHS column.
    out = np.zeros((plan.n_rows, workload.k), dtype=np.float64)
    if cols.size:
        rows = plan.out_rows[valid]
        products = plan.values[valid][:, None] * x[cols, :]
        for j in range(workload.k):
            out[:, j] = np.bincount(
                rows, weights=products[:, j], minlength=plan.n_rows
            )
    return out


def execute(
    plan: ExecutionPlan,
    x: np.ndarray,
    gpu: GPUSpec,
    workload: Optional[Workload] = None,
) -> ExecutionResult:
    """Run the kernel functionally and project its performance.

    Returns the exact result (verified against padding-safety invariants)
    and the cost breakdown.  Raises :class:`PlanValidationError` for
    semantically invalid reduction chains — the same kernels that would
    compute wrong answers on real hardware.  ``workload`` selects the
    operation (None = the default SpMV, bit-identical to the historical
    single-operation executor).

    Analysis-backed plans reuse the leaf's cached cost projection and the
    cached functional result for this ``x``; the returned array is then a
    shared read-only array.
    """
    workload = workload or DEFAULT_WORKLOAD
    x = np.asarray(x, dtype=np.float64)
    if workload.is_default:
        if x.shape != (plan.n_cols,):
            raise ValueError(f"x must have shape ({plan.n_cols},)")
    else:
        expected = workload.operand_shape(plan.n_rows, plan.n_cols)
        if x.shape != expected:
            raise ValueError(
                f"operand for workload {workload.name!r} must have shape "
                f"{expected}"
            )

    analysis = plan.analysis
    if analysis is not None and plan.cost_key is not None:
        # validates the reduction chain
        entry = _cost_projection(plan, gpu, workload)
        if entry[0] == "error":
            raise PlanValidationError(
                entry[1], code=entry[2] if len(entry) > 2 else None
            )
        _, inputs, cost = entry
        y_entry = functional_y_entry(plan, x, workload)
        if y_entry[0] == "error":
            raise PlanValidationError(
                y_entry[1], code=y_entry[2] if len(y_entry) > 2 else None
            )
        y = y_entry[1]
    else:
        # validates the reduction chain
        inputs = plan_cost_inputs(plan, gpu, workload)
        y = _functional_y(plan, x, plan.out_rows >= 0, workload)
        cost = CostModel(gpu).evaluate(inputs)
    return ExecutionResult(y=y, cost=cost, inputs=inputs)
