"""Leaf-level plan analysis: share everything runtime scalars cannot change.

Candidate evaluation during search re-assembles and re-measures one design
leaf under many runtime-parameter assignments (``SET_RESOURCES``: thread
counts and work grains).  Profiling shows most of that work is *identical*
across the whole runtime grid — the element arrays (``values`` /
``col_indices`` / ``out_rows``) belong to the leaf, not the candidate — yet
the executor used to recompute sort-based statistics and the functional
``y`` for every assignment.

This module is the plan-analysis subsystem that makes evaluation
incremental across a leaf's runtime grid:

:class:`LeafAnalysis`
    Per-design-leaf cache of the quantities runtime scalars cannot change:
    the valid-element mask, the original-row projection (``out_rows``), the
    distinct-column count, the unique output rows, the sorted
    ``(thread, row)`` pair machinery the reduction walk starts from, the
    functional ``y`` per input vector — and, keyed by the scalars that *do*
    matter, the thread distribution, the assembled
    :class:`~repro.core.kernel.program.KernelUnit` and the full cost
    projection (:class:`~repro.gpu.cost.KernelCostInputs` +
    :class:`~repro.gpu.cost.CostBreakdown`).

:class:`DesignAnalysis`
    One analysis per design-cache key: a :class:`LeafAnalysis` per kernel
    of the (possibly branching) design, the cached cross-kernel write
    check, and the cached ``spmv_allclose`` verdict — numeric verification
    runs once per design instead of once per candidate.

:class:`LeafAnalysisCache`
    Thread-safe LRU of :class:`DesignAnalysis` keyed exactly like the
    design cache (``(matrix token, design signature)``), with hit/miss
    counters surfaced in :class:`~repro.search.engine.SearchResult`.

Everything cached is the output of a deterministic function of the leaf
plus explicit key scalars, so search histories are byte-identical whether
the analysis cache is on or off, serial or pooled.  Cached arrays are
handed out read-only; treat every returned object as immutable.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "AnalysisStats",
    "DesignAnalysis",
    "DistResult",
    "LeafAnalysis",
    "LeafAnalysisCache",
    "content_digest",
]


def content_digest(*parts: object) -> str:
    """blake2b-128 content address of arrays / bytes / strings.

    Shared by the analysis caches, the engine's verify keys, the matrix
    token and the persistent design store's key scheme — one digest
    function everywhere means a design hydrated from the store lands on
    exactly the cache keys an in-process design would have, so the
    leaf-analysis cache fills identically either way.
    """
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        if isinstance(part, (bytes, bytearray)):
            h.update(part)
        elif isinstance(part, str):
            h.update(part.encode("utf-8"))
        else:
            h.update(np.ascontiguousarray(part).tobytes())
    return h.hexdigest()


def _readonly(arr: np.ndarray) -> np.ndarray:
    arr.setflags(write=False)
    return arr


@dataclass(frozen=True)
class DistResult:
    """One cached thread distribution (output of ``KernelBuilder._distribute``).

    ``key`` is the deps-projected runtime-scalar tuple the distribution was
    cached under.  The dependency set is pinned per leaf, so within one
    :class:`LeafAnalysis` the tuple identifies the distribution — downstream
    caches (plan, cost projection, thread stats) key on it directly, which
    is why a leaf whose distribution ignores a runtime scalar shares cost
    projections across the whole grid without hashing ``thread_of_nz``.
    """

    thread_of_nz: np.ndarray
    n_threads: int
    threads_per_block: int
    run_length: Optional[float]
    key: Tuple


@dataclass(frozen=True)
class AnalysisStats:
    """Design-level counters of one :class:`LeafAnalysisCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def since(self, other: "AnalysisStats") -> "AnalysisStats":
        return AnalysisStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            evictions=self.evictions - other.evictions,
        )


class LeafAnalysis:
    """Lazy per-leaf cache of deterministic computations.

    All methods take a ``compute`` closure so this class stays free of
    builder/executor imports (those modules import *us*).  The lock only
    guards dict lookups/inserts — closures run outside it, so candidates
    of one leaf keep evaluating in parallel under a worker pool.  Two
    workers racing on a cold key may both compute; every closure is a
    deterministic function of the key, so ``setdefault`` keeps the first
    result and the duplicate is discarded unseen.
    """

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self._scalars: Dict[object, object] = {}
        self._arrays: Dict[object, np.ndarray] = {}
        self._dist: Dict[Tuple, DistResult] = {}
        self._pairs: Dict[Tuple, Tuple[np.ndarray, int]] = {}
        self._cost: Dict[Tuple, Tuple] = {}
        self._units: Dict[Tuple, Tuple] = {}
        self._y: Dict[str, Tuple] = {}
        self._x_memo: Optional[Tuple[np.ndarray, str]] = None

    # -- generic memo helpers -------------------------------------------
    def cached_array(
        self, name: object, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        with self.lock:
            arr = self._arrays.get(name)
        if arr is None:
            value = _readonly(np.asarray(compute()))
            with self.lock:
                arr = self._arrays.setdefault(name, value)
        return arr

    def cached_scalar(self, name: object, compute: Callable[[], object]) -> object:
        with self.lock:
            if name in self._scalars:
                return self._scalars[name]
        value = compute()
        with self.lock:
            return self._scalars.setdefault(name, value)

    # -- keyed caches ----------------------------------------------------
    def distribution(
        self,
        scalars: Dict[str, object],
        compute: Callable[[], Tuple[np.ndarray, int, int, Optional[float], Tuple[str, ...]]],
    ) -> DistResult:
        """Thread distribution, keyed by the runtime scalars it depends on.

        ``compute`` returns ``(thread_of_nz, n_threads, tpb, run, deps)``
        where ``deps`` names the entries of ``scalars`` the chosen
        distribution path read.  The dependency set is a property of the
        leaf's block structure, so the first computation pins it; later
        lookups project ``scalars`` onto it — a leaf whose distribution is
        fully structural computes exactly one distribution for its whole
        runtime grid.
        """
        with self.lock:
            deps = self._scalars.get("__dist_deps")
            if deps is not None:
                dist = self._dist.get(tuple(scalars[name] for name in deps))
                if dist is not None:
                    return dist
        thread_of_nz, n_threads, tpb, run, deps = compute()
        key = tuple(scalars[name] for name in deps)
        dist = DistResult(
            thread_of_nz=_readonly(thread_of_nz),
            n_threads=int(n_threads),
            threads_per_block=int(tpb),
            run_length=run,
            key=key,
        )
        with self.lock:
            self._scalars["__dist_deps"] = deps
            return self._dist.setdefault(key, dist)

    def start_pairs(
        self, key: Tuple, compute: Callable[[], Tuple[np.ndarray, int]]
    ) -> Tuple[np.ndarray, int]:
        """Sorted distinct ``(thread, row)`` keys + base for the reduction walk."""
        with self.lock:
            pairs = self._pairs.get(key)
        if pairs is None:
            sorted_key, base = compute()
            value = (_readonly(sorted_key), int(base))
            with self.lock:
                pairs = self._pairs.setdefault(key, value)
        return pairs

    def cost_projection(self, key: Tuple, compute: Callable[[], Tuple]) -> Tuple:
        """``("ok", inputs, cost)`` or ``("error", message)`` per cost key.

        ``compute`` must return such a tuple rather than raise, so invalid
        reduction chains replay their exact :class:`PlanValidationError`
        for every candidate without re-walking the chain.
        """
        with self.lock:
            entry = self._cost.get(key)
        if entry is None:
            value = compute()
            with self.lock:
                entry = self._cost.setdefault(key, value)
        return entry

    def unit(self, key: Tuple, compute: Callable[[], Tuple]) -> Tuple:
        """``("ok", KernelUnit)`` or ``("error", exc_name, message)`` per
        runtime-parameter assignment."""
        with self.lock:
            entry = self._units.get(key)
        if entry is None:
            value = compute()
            with self.lock:
                entry = self._units.setdefault(key, value)
        return entry

    # -- batch entry points ---------------------------------------------
    def unit_batch(
        self, keys: List[Tuple], compute: Callable[[Tuple], Tuple]
    ) -> List[Tuple]:
        """Unit entries for ``keys``, in order, with batched lock trips.

        The whole runtime grid of one design group is looked up under a
        single lock acquisition; ``compute(key)`` runs once per *distinct*
        missing key (first-occurrence order, outside the lock) and the
        results are inserted with one further trip.  ``setdefault`` keeps
        a concurrently-raced first value, exactly like :meth:`unit`.
        """
        with self.lock:
            entries = {key: self._units.get(key) for key in keys}
        missing = [key for key, entry in entries.items() if entry is None]
        if missing:
            computed = {key: compute(key) for key in missing}
            with self.lock:
                for key, value in computed.items():
                    entries[key] = self._units.setdefault(key, value)
        return [entries[key] for key in keys]

    def cost_batch(
        self, keys: List[Tuple], compute: Callable[[Tuple], Tuple]
    ) -> List[Tuple]:
        """Cost-projection entries for ``keys``, in order, with batched
        lock trips — the distribution-digest analogue of :meth:`unit_batch`
        (entry shape is :meth:`cost_projection`'s)."""
        with self.lock:
            entries = {key: self._cost.get(key) for key in keys}
        missing = [key for key, entry in entries.items() if entry is None]
        if missing:
            computed = {key: compute(key) for key in missing}
            with self.lock:
                for key, value in computed.items():
                    entries[key] = self._cost.setdefault(key, value)
        return [entries[key] for key in keys]

    # -- functional execution -------------------------------------------
    def x_digest(self, x: np.ndarray) -> str:
        """Content digest of ``x`` (memoised for the common fixed-x search)."""
        with self.lock:
            memo = self._x_memo
        if memo is not None and memo[0] is x:
            return memo[1]
        digest = content_digest(x)
        with self.lock:
            self._x_memo = (x, digest)
        return digest

    def functional_y(
        self, x: np.ndarray, compute: Callable[[], Tuple], scope: str = ""
    ) -> Tuple:
        """``("ok", y)`` or ``("error", message)`` for one input operand.

        ``scope`` namespaces the entry (non-default workload token): two
        workloads may legitimately share the same operand bytes — e.g.
        SpMV and transpose SpMV on a square matrix — but never a result.
        """
        key = self.x_digest(x)
        if scope:
            key = f"{scope}:{key}"
        with self.lock:
            entry = self._y.get(key)
        if entry is None:
            value = compute()
            if value[0] == "ok":
                value = ("ok", _readonly(value[1]))
            with self.lock:
                entry = self._y.setdefault(key, value)
        return entry


class DesignAnalysis:
    """Analyses for every kernel of one cached design, plus design-level
    caches (cross-kernel write check, numeric verdict)."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self._leaves: List[LeafAnalysis] = []
        self._cross_check: Optional[Tuple] = None  # ("ok",) | ("error", msg)
        self._verdicts: Dict[str, bool] = {}

    def leaf(self, index: int) -> LeafAnalysis:
        with self.lock:
            while len(self._leaves) <= index:
                self._leaves.append(LeafAnalysis())
            return self._leaves[index]

    def cross_check(self, compute: Callable[[], Optional[str]]) -> Optional[str]:
        """Cached cross-kernel write conflict: ``None`` (ok) or the error
        message.  ``compute`` returns the same and, being deterministic,
        runs outside the lock (a racing duplicate is discarded)."""
        with self.lock:
            entry = self._cross_check
        if entry is None:
            message = compute()
            value = ("ok",) if message is None else ("error", message)
            with self.lock:
                if self._cross_check is None:
                    self._cross_check = value
                entry = self._cross_check
        return None if entry[0] == "ok" else entry[1]

    def verdict(self, key: str, compute: Callable[[], bool]) -> bool:
        """Cached numeric-verification verdict for one ``(x, reference)``
        context key — verification runs once per design, not per candidate
        (deterministic compute runs outside the lock)."""
        with self.lock:
            if key in self._verdicts:
                return self._verdicts[key]
        value = bool(compute())
        with self.lock:
            return self._verdicts.setdefault(key, value)


class LeafAnalysisCache:
    """Thread-safe LRU of :class:`DesignAnalysis`, keyed like the design
    cache: ``(matrix token, design signature)``."""

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, DesignAnalysis]" = OrderedDict()
        self._stats = AnalysisStats()

    def stats(self) -> AnalysisStats:
        with self._lock:
            return replace(self._stats)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def for_design(self, key: Tuple) -> DesignAnalysis:
        """The design's analysis, created on first request (one miss per
        design — deterministic under any worker count)."""
        with self._lock:
            analysis = self._entries.get(key)
            if analysis is None:
                analysis = DesignAnalysis()
                self._entries[key] = analysis
                self._stats = replace(self._stats, misses=self._stats.misses + 1)
                evicted = 0
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    evicted += 1
                if evicted:
                    self._stats = replace(
                        self._stats, evictions=self._stats.evictions + evicted
                    )
            else:
                self._entries.move_to_end(key)
                self._stats = replace(self._stats, hits=self._stats.hits + 1)
            return analysis
