"""Incremental JSON result store for corpus evaluation runs.

A store maps content-addressed matrix keys to finished per-matrix records
(baseline measurements + search outcome).  Records are flushed to disk as
each matrix completes — via a temp-file + ``os.replace`` so a crash mid-
write never corrupts earlier results — and a rerun pointed at the same
path skips every matrix it already holds.

The store also pins the run configuration (GPU, budget, seed, baseline
list): resuming with a different configuration would silently mix
incomparable measurements, so it is an error instead.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.store.errors import StoreError, StoreVersionError

__all__ = [
    "ResultStore",
    "ResultStoreError",
    "ResultStoreVersionError",
    "StoreVersionError",
    "SCHEMA_VERSION",
]

SCHEMA_VERSION = 1


class ResultStoreError(StoreError):
    """Raised for corrupt store files or mismatched run configurations.

    Schema-version mismatches raise :class:`ResultStoreVersionError`,
    which is *also* the shared
    :class:`~repro.store.errors.StoreVersionError` (used by the design
    store too) — so callers can distinguish "re-run with the old code"
    from "the file is damaged" while broad ``except ResultStoreError``
    handlers keep catching every store failure."""


class ResultStoreVersionError(StoreVersionError, ResultStoreError):
    """A result store whose schema predates (or postdates) this code."""


class ResultStore:
    """Keyed, insertion-ordered record storage with optional persistence.

    ``path=None`` gives a purely in-memory store (ephemeral runs); with a
    path, an existing file is loaded for resumption and every
    :meth:`put` rewrites the file atomically.
    """

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._config: Optional[Dict] = None
        self._records: Dict[str, Dict] = {}
        if self.path is not None and os.path.exists(self.path):
            self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            with open(self.path, "r") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ResultStoreError(
                f"cannot load result store {self.path!r}: {exc}"
            ) from exc
        if not isinstance(data, dict) or "matrices" not in data:
            raise ResultStoreError(
                f"{self.path!r} is not a result store (no 'matrices' key)"
            )
        if "schema" not in data:
            # Pre-versioning files (before run-config pinning existed)
            # carry no schema marker; without this guard their records
            # would surface as KeyErrors deep inside aggregation.
            raise ResultStoreVersionError(
                f"{self.path!r} has no schema marker — it predates run-"
                "config pinning; re-run the benchmark to rebuild it "
                f"(current schema {SCHEMA_VERSION})"
            )
        if data.get("schema") != SCHEMA_VERSION:
            raise ResultStoreVersionError(
                f"{self.path!r} has schema {data.get('schema')!r}, "
                f"expected {SCHEMA_VERSION}; rebuild the store with this "
                "revision (or read it with the revision that wrote it)"
            )
        self._config = data.get("config")
        self._records = dict(data["matrices"])

    def flush(self) -> None:
        """Atomically persist the current state (no-op for in-memory stores)."""
        if self.path is None:
            return
        payload = {
            "schema": SCHEMA_VERSION,
            "config": self._config,
            "matrices": self._records,
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------
    @property
    def config(self) -> Optional[Dict]:
        return self._config

    def bind_config(self, config: Dict) -> None:
        """Set the run configuration, or verify it matches the stored one.

        A store written under one (GPU, budget, seed, baselines) tuple must
        not accumulate results from another — the aggregate tables would
        mix incomparable runs.
        """
        if self._config is None:
            self._config = dict(config)
            return
        if self._config != dict(config):
            diff = {
                key: (self._config.get(key), config.get(key))
                for key in set(self._config) | set(config)
                if self._config.get(key) != config.get(key)
            }
            raise ResultStoreError(
                "result store was written with a different run "
                f"configuration (stored vs requested): {diff}; use a fresh "
                "store path to run a new configuration"
            )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def get(self, key: str) -> Dict:
        return self._records[key]

    def put(self, key: str, record: Dict) -> None:
        """Insert one finished record and persist immediately."""
        self._records[key] = record
        self.flush()

    def items(self) -> Iterator[Tuple[str, Dict]]:
        return iter(self._records.items())

    def records(self) -> List[Dict]:
        """Stored records in insertion order."""
        return list(self._records.values())
