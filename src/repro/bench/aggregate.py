"""Corpus-level aggregation: the paper's §VII tables from a result store.

All aggregation works on the plain-JSON records the
:class:`~repro.bench.runner.CorpusRunner` persists, so the same tables
render from a live run or from a reloaded store file.

Inapplicable and incorrect baselines report 0 GFLOPS; they are *filtered*
here (per-baseline matrix counts make the filtering visible) rather than
turned into ``inf`` speedups — :func:`repro.analysis.metrics.speedup`
refuses non-positive denominators and the aggregators refuse non-finite
inputs, so a leak is a loud error instead of a corrupted geomean.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.metrics import geomean, speedup, speedup_histogram
from repro.analysis.reporting import render_table
from repro.baselines.base import measurement_ok

__all__ = [
    "baseline_speedups",
    "pfs_speedups",
    "creativity_counts",
    "record_workload",
    "render_corpus_report",
]


def _searched(records: Sequence[Dict]) -> List[Dict]:
    """Records whose search produced a valid winner (the only ones a
    speedup can be computed for)."""
    return [r for r in records if r["search"]["best_gflops"] > 0]


def baseline_speedups(records: Sequence[Dict]) -> Dict[str, List[float]]:
    """Per-baseline speedups of the machine-designed SpMV, usable
    measurements only (baseline applicable, correct, and > 0 GFLOPS)."""
    out: Dict[str, List[float]] = {}
    for record in _searched(records):
        best = record["search"]["best_gflops"]
        for name, meas in record["baselines"].items():
            out.setdefault(name, [])
            if measurement_ok(meas):
                out[name].append(speedup(best, meas["gflops"]))
    return out


def pfs_speedups(records: Sequence[Dict]) -> List[float]:
    """Speedup over the Perfect Format Selector per matrix (Fig 10's x
    axis), skipping matrices where search or every PFS member failed."""
    out: List[float] = []
    for record in _searched(records):
        pfs = record.get("pfs")
        if pfs and pfs["gflops"] > 0:
            out.append(speedup(record["search"]["best_gflops"], pfs["gflops"]))
    return out


def creativity_counts(records: Sequence[Dict]) -> Dict[str, int]:
    """§VII-G class counts over the winning designs."""
    counts = {
        "machine-designed": 0,
        "parameter-novel": 0,  # source structure, non-shipped parameters
        "structure-novel": 0,
        "source-format": 0,
        "branching": 0,
    }
    for record in records:
        creativity = record.get("creativity")
        if not creativity:
            continue
        if creativity["machine_designed"]:
            counts["machine-designed"] += 1
            if creativity["structure_novel"]:
                counts["structure-novel"] += 1
            else:
                counts["parameter-novel"] += 1
        else:
            counts["source-format"] += 1
        if creativity["branching"]:
            counts["branching"] += 1
    return counts


def record_workload(record: Dict) -> str:
    """Workload a corpus record was measured under (absent key == the
    default spmv, matching the runner's record convention)."""
    return record.get("workload", "spmv")


def render_corpus_report(
    records: Sequence[Dict], title: str = "Corpus evaluation"
) -> str:
    """The corpus summary the ``bench`` command prints: per-baseline
    geomean speedups, the Fig 10 histogram over PFS, creativity classes.

    Records carry their workload; the header and the speedup table name it
    when any non-default workload is present (spmv-only reports render
    their exact historical text).
    """
    if not records:
        raise ValueError("no records to report")
    searched = _searched(records)
    skipped = len(records) - len(searched)
    workloads = sorted({record_workload(r) for r in records})
    kernel_label = (
        "SpMV" if workloads == ["spmv"] else " / ".join(workloads)
    )

    sections: List[str] = []
    per_baseline = baseline_speedups(records)
    ranked = sorted(
        per_baseline.items(),
        key=lambda item: geomean(item[1]) if item[1] else float("-inf"),
        reverse=True,
    )
    rows: List[List[object]] = [
        [
            name,
            f"{len(values)}/{len(searched)}",
            f"{geomean(values):.3f}x" if values else "n/a",
        ]
        for name, values in ranked
    ]
    header = f"{title} — {len(records)} matrices"
    if skipped:
        header += f" ({skipped} without a valid search winner, excluded)"
    sections.append(render_table(
        header
        + f"\nGeomean speedup of the machine-designed {kernel_label} "
        "per baseline",
        ["baseline", "usable", "geomean speedup"],
        rows,
    ))

    vs_pfs = pfs_speedups(records)
    if vs_pfs:
        hist = speedup_histogram(vs_pfs)
        sections.append(render_table(
            "Fig 10: speedup over PFS — frequency distribution "
            f"(geomean {geomean(vs_pfs):.3f}x over {len(vs_pfs)} matrices)",
            ["speedup bin", "% of matrices"],
            [[label, f"{pct:.1f}"] for label, pct in hist],
        ))

    counts = creativity_counts(records)
    sections.append(render_table(
        "Creativity of winning designs (paper SecVII-G)",
        ["class", "matrices"],
        [[name, count] for name, count in counts.items()],
    ))
    return "\n\n".join(sections)
