"""Corpus runner: baselines + design search for every matrix of a collection.

One :class:`CorpusRunner` drives the whole paper-§VII pipeline over a
matrix collection with the staged evaluation runtime underneath:

* one shared :class:`~repro.search.engine.SearchEngine` — every search
  reuses the same design cache and worker pool, exactly like
  ``SearchEngine.search_many``;
* the independent baseline measurements of each matrix are sharded over
  that same :class:`~repro.search.evaluation.EvaluationRuntime` pool;
* each matrix's dense input vector and reference SpMV are computed once
  and shared by all of its baselines (and the PFS oracle is derived from
  the same measurements instead of re-running the member kernels);
* every finished matrix is flushed to the
  :class:`~repro.bench.store.ResultStore`, so an interrupted run resumes
  without re-measuring completed matrices.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.analysis.metrics import classify_creativity
from repro.baselines import PFS_MEMBERS, PerfectFormatSelector
from repro.baselines.base import measure_baselines
from repro.bench.store import ResultStore
from repro.gpu.arch import GPUSpec
from repro.search import SearchBudget, SearchEngine
from repro.search.evaluation import matrix_token
from repro.search.samplers import DEFAULT_SAMPLER_NAME
from repro.sparse.collection import CorpusEntry
from repro.sparse.matrix import SparseMatrix
from repro.store.design import DesignStore
from repro.store.records import search_result_record
from repro.workloads import Workload, ensure_engine_workload

__all__ = ["CorpusRunner", "CorpusRunResult", "CorpusRunStats", "DEFAULT_BASELINES"]

#: The evaluation's full baseline set: the ten PFS members plus the
#: non-member comparisons the ``baselines`` command prints.
DEFAULT_BASELINES: List[str] = PFS_MEMBERS + ["DIA", "TACO", "CSR-Scalar", "CSR-Vector"]


@dataclass(frozen=True)
class CorpusRunStats:
    """Accounting of one :meth:`CorpusRunner.run` call."""

    measured: int
    resumed: int
    wall_s: float

    @property
    def total(self) -> int:
        return self.measured + self.resumed


@dataclass
class CorpusRunResult:
    """Records in input-collection order plus run accounting."""

    records: List[Dict] = field(default_factory=list)
    stats: CorpusRunStats = CorpusRunStats(0, 0, 0.0)
    store: Optional[ResultStore] = None


class CorpusRunner:
    """Run the full per-matrix evaluation over a collection, resumably.

    ``engine`` may be injected to share a cache/pool beyond one runner
    (mirroring ``SearchEngine``'s injectable runtime); an injected engine
    is the caller's to close.

    ``design_store`` additionally persists every search to a
    :class:`~repro.store.design.DesignStore`: designs are written through
    the engine (warm-starting later runs) and each matrix's winning
    result+artifact is recorded, so a corpus run doubles as a serving
    warm-up.  The store never changes what is measured — records stay
    byte-identical with or without it.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        budget: Optional[SearchBudget] = None,
        seed: int = 0,
        store: Optional[ResultStore] = None,
        baselines: Optional[Sequence[str]] = None,
        engine: Optional[SearchEngine] = None,
        progress: Optional[Callable[[str], None]] = None,
        design_store: Optional[DesignStore] = None,
        workload: Optional[Workload] = None,
        static_pruning: bool = True,
        warm_start: bool = False,
    ) -> None:
        self.gpu = gpu
        self.seed = seed
        self.store = store if store is not None else ResultStore()
        self.baselines = list(baselines) if baselines else list(DEFAULT_BASELINES)
        self.design_store = design_store
        self.warm_start = warm_start
        if warm_start and design_store is None and engine is None:
            raise ValueError("warm_start requires a design_store")
        self._owns_engine = engine is None
        ensure_engine_workload(engine, workload)
        self.engine = engine or SearchEngine(
            gpu,
            budget=budget,
            seed=seed,
            store=design_store,
            workload=workload,
            enable_static_pruning=static_pruning,
            warm_start_store=design_store if warm_start else None,
        )
        #: the workload every baseline measurement and search runs under
        #: (the injected engine's when one is supplied).
        self.workload = self.engine.workload
        self.progress = progress or (lambda _msg: None)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "CorpusRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def config(self) -> Dict:
        """The comparability contract a result store pins.

        Every result-affecting knob is included: the full search budget
        (minus ``jobs`` — worker count changes wall clock, never results)
        and the engine's search-space switches.  Two runs with equal
        configs produce identical records for the same matrix.
        """
        budget = self.engine.budget
        config = {
            "gpu": self.gpu.name,
            "seed": self.seed,
            "baselines": list(self.baselines),
            "budget": {
                "max_structures": budget.max_structures,
                "coarse_evals_per_structure": budget.coarse_evals_per_structure,
                "max_total_evals": budget.max_total_evals,
                "ml_top_k": budget.ml_top_k,
                "ml_fine_cap": budget.ml_fine_cap,
                "ml_min_samples": budget.ml_min_samples,
                "time_limit_s": budget.time_limit_s,
            },
            "engine": {
                "pruning": self.engine.enable_pruning,
                "extensions": self.engine.enable_extensions,
                "seeding": self.engine.enable_seeding,
            },
        }
        if self.engine.enable_static_pruning:
            # Pinned only when on: pruning-off runs resume result stores
            # written before the static verifier existed.
            config["engine"]["static_pruning"] = True
        if self.engine.warm_start_store is not None:
            # Pinned only when on: warm starts seed the candidate stream
            # from the design store, so histories legitimately differ —
            # cold runs resume pre-warm-start result stores unchanged.
            config["engine"]["warm_start"] = True
        if not self.workload.is_default:
            # The default workload pins no key, so pre-workload-layer
            # result stores stay resumable and spmv configs byte-identical.
            config["workload"] = self.workload.name
        if self.engine.sampler_cls.name != DEFAULT_SAMPLER_NAME:
            # Same convention for the sampler: the default annealer pins
            # no key, so pre-sampler-layer result stores stay resumable.
            config["engine"]["sampler"] = self.engine.sampler_cls.name
            if self.engine.sampler_seed is not None:
                config["engine"]["sampler_seed"] = self.engine.sampler_seed
        return config

    @staticmethod
    def record_key(matrix: SparseMatrix) -> str:
        """Content-addressed store key: name plus a triplet digest, so a
        renamed-but-identical file resumes and a same-named different
        matrix does not collide."""
        token = matrix_token(matrix)
        return f"{token[0] or 'unnamed'}:{token[-1][:16]}"

    def _search_seed(self, key: str) -> int:
        """Per-matrix search seed derived from the matrix *content*, not
        its position in the input list — so corpus shards tile the full
        run and a resumed run measures leftovers identically regardless
        of ordering."""
        digest = key.rsplit(":", 1)[-1]
        return (self.seed + int(digest, 16)) % (2**63)

    # ------------------------------------------------------------------
    def run(
        self, matrices: Iterable[Union[SparseMatrix, CorpusEntry]]
    ) -> CorpusRunResult:
        start = time.perf_counter()
        self.store.bind_config(self.config())
        entries = [
            (m.matrix, m.family) if isinstance(m, CorpusEntry) else (m, "")
            for m in matrices
        ]
        records: List[Dict] = []
        measured = resumed = 0
        for i, (matrix, family) in enumerate(entries):
            key = self.record_key(matrix)
            if key in self.store:
                record = self.store.get(key)
                resumed += 1
                self.progress(
                    f"[{i + 1}/{len(entries)}] {matrix.name or key}: resumed"
                )
            else:
                record = self._evaluate_matrix(
                    matrix, family, seed=self._search_seed(key)
                )
                self.store.put(key, record)
                measured += 1
                self.progress(
                    f"[{i + 1}/{len(entries)}] {matrix.name or key}: "
                    f"best {record['search']['best_gflops']:.1f} GFLOPS, "
                    f"{record['search']['total_evaluations']} evals"
                )
            records.append(record)
        return CorpusRunResult(
            records=records,
            stats=CorpusRunStats(
                measured=measured,
                resumed=resumed,
                wall_s=time.perf_counter() - start,
            ),
            store=self.store,
        )

    # ------------------------------------------------------------------
    def _evaluate_matrix(
        self, matrix: SparseMatrix, family: str, seed: int
    ) -> Dict:
        """Everything the corpus tables need for one matrix, as plain JSON."""
        # Per-matrix caches: one operand, one reference result shared by
        # every baseline measurement (the search keeps its own, computed
        # once per search inside the engine).
        x = self.workload.make_operand(matrix)
        reference = self.workload.reference(matrix, x)
        measurements = measure_baselines(
            matrix,
            self.gpu,
            self.baselines,
            x=x,
            reference=reference,
            runtime=self.engine.runtime,
            workload=self.workload,
        )

        pfs: Optional[Dict] = None
        members = [measurements[n] for n in PFS_MEMBERS if n in measurements]
        if any(m.ok for m in members):
            selection = PerfectFormatSelector().select_from(members, matrix.name)
            pfs = {
                "selected_format": selection.selected_format,
                "gflops": selection.gflops,
            }

        result = self.engine.search(matrix, seed=seed)
        creativity: Optional[Dict] = None
        best_ops: List[str] = []
        if result.best_graph is not None:
            best_ops = list(result.best_graph.operator_names())
            creativity = classify_creativity(result.best_graph, matrix)
        if self.design_store is not None and result.best_graph is not None:
            self.design_store.put_result(
                self.workload.scope_token(matrix_token(matrix)),
                self.gpu.name,
                search_result_record(matrix, self.gpu.name, result, seed=seed),
            )

        record = {
            "name": matrix.name,
            "family": family,
            "n_rows": matrix.n_rows,
            "n_cols": matrix.n_cols,
            "nnz": matrix.nnz,
            "baselines": {m.baseline: asdict(m) for m in measurements.values()},
            "pfs": pfs,
            "search": {
                "best_gflops": result.best_gflops,
                "best_ops": best_ops,
                "total_evaluations": result.total_evaluations,
                "structures_tried": result.structures_tried,
                "designer_runs": result.designer_runs,
                "design_cache_hits": result.design_cache_hits,
                "design_cache_misses": result.design_cache_misses,
                "wall_time_s": result.wall_time_s,
            },
            "creativity": creativity,
        }
        if self.engine.enable_static_pruning:
            # Same absent-key convention as the config: records from
            # pruning-off runs keep their exact historical bytes.
            record["search"]["static_pruned"] = result.static_pruned
        if self.engine.warm_start_store is not None:
            # Absent key == cold search: records from cold runs keep
            # their exact historical bytes (GOLDEN_BENCH_DIGEST).
            record["search"]["warm_start_hits"] = result.warm_start_hits
        if result.sampler != DEFAULT_SAMPLER_NAME:
            # Absent keys == annealer: default-sampler records keep their
            # exact historical bytes (GOLDEN_BENCH_DIGEST).
            record["search"]["sampler"] = result.sampler
            record["search"]["sampler_pruned"] = result.sampler_pruned
        if not self.workload.is_default:
            # Absent key == spmv: pre-workload-layer records (and spmv
            # records) keep their exact historical bytes.
            record["workload"] = self.workload.name
        return record
