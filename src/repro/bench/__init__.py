"""Corpus-scale evaluation pipeline (paper §VII, Figs 10-12).

The paper's headline numbers are corpus-level: geomean speedups over
PFS/cuSPARSE across hundreds of SuiteSparse matrices.  This package turns
the per-matrix building blocks (baseline measurement, the staged search
runtime) into a corpus pipeline:

:class:`~repro.bench.store.ResultStore`
    Incremental JSON persistence — every finished matrix is flushed to
    disk, so interrupted runs resume instead of restarting.

:class:`~repro.bench.runner.CorpusRunner`
    Drives baselines + design search per matrix over one shared
    :class:`~repro.search.engine.SearchEngine` (one design cache, one
    worker pool), caching each matrix's reference SpMV so it is computed
    once, not once per baseline.

:mod:`~repro.bench.aggregate`
    Renders the paper's corpus tables from a store: per-baseline geomean
    speedups, the Fig 10 histogram, §VII-G creativity-class counts.

CLI entry point: ``python -m repro bench <matrices...> [--jobs N]
[--resume PATH]``.
"""

from repro.bench.store import (
    ResultStore,
    ResultStoreError,
    ResultStoreVersionError,
    StoreVersionError,
)
from repro.bench.runner import CorpusRunner, CorpusRunResult, CorpusRunStats
from repro.bench.aggregate import (
    baseline_speedups,
    creativity_counts,
    pfs_speedups,
    render_corpus_report,
)

__all__ = [
    "ResultStore",
    "ResultStoreError",
    "ResultStoreVersionError",
    "StoreVersionError",
    "CorpusRunner",
    "CorpusRunResult",
    "CorpusRunStats",
    "baseline_speedups",
    "creativity_counts",
    "pfs_speedups",
    "render_corpus_report",
]
