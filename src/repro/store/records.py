"""Result-record construction shared by the CLI, the corpus runner and the
serving frontend.

A result record is the serving layer's unit of knowledge about one
``(matrix, arch)`` pair: the winning Operator Graph, its measured GFLOPS,
the matrix's *feature signature* (the sparsity statistics the pruning rules
and the GBT cost model already condition on, log-scaled into a comparable
vector) and, optionally, the full exported artifact payload — so
``frontend.resolve`` can answer an exact hit without rebuilding anything.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.graph import OperatorGraph
from repro.core.kernel.program import GeneratedProgram
from repro.gpu.analysis import content_digest
from repro.sparse.matrix import SparseMatrix

__all__ = [
    "FEATURE_NAMES",
    "feature_vector",
    "make_result_record",
    "nearest_result_digest",
    "search_result_record",
]

#: The matrix-level feature signature used for nearest-neighbour serving.
#: Size-like quantities are log-scaled (corpus matrices span orders of
#: magnitude), shape-like quantities stay linear.
FEATURE_NAMES = (
    "log_rows",
    "log_cols",
    "log_nnz",
    "log_avg_row_length",
    "log_row_variance",
    "log_max_row_length",
    "density",
    "empty_row_fraction",
)


def feature_vector(matrix: SparseMatrix) -> List[float]:
    """Feature signature of one matrix (aligned with :data:`FEATURE_NAMES`)."""
    s = matrix.stats
    return [
        math.log1p(s.n_rows),
        math.log1p(s.n_cols),
        math.log1p(s.nnz),
        math.log1p(s.avg_row_length),
        math.log1p(s.row_variance),
        math.log1p(s.max_row_length),
        float(s.density),
        s.empty_rows / s.n_rows if s.n_rows else 0.0,
    ]


def nearest_result_digest(
    metas: Sequence[Tuple[str, Dict]],
    own_features: Sequence[float],
    workload: str = "spmv",
    exclude_digest: Optional[str] = None,
) -> Optional[str]:
    """Digest of the stored result whose feature signature is closest.

    The donor-ranking rule shared by the serving frontend's tier-2
    neighbour transfer and the engine's cross-matrix warm start: walk the
    lightweight ``(digest, meta)`` sidecar pairs, keep graph-bearing
    records of the same workload (absent == spmv) that are not the matrix
    itself (``exclude_digest`` is its content digest), and rank by
    Euclidean feature distance with a deterministic ``(name, digest)``
    tie-break.  Returns ``None`` when no donor qualifies.
    """
    own = np.asarray(own_features, dtype=float)
    best: Optional[Tuple[Tuple[float, str, str], str]] = None
    for digest, meta in metas:
        if not meta.get("has_graph"):
            continue
        # Donors must share the request's workload (absent == spmv): a
        # SpMM request never transfers a SpMV design.
        if meta.get("workload", "spmv") != workload:
            continue
        if exclude_digest is not None and meta.get("matrix_digest") == exclude_digest:
            continue
        features = meta.get("features")
        if not features or len(features) != own.size:
            continue
        distance = float(
            np.linalg.norm(own - np.asarray(features, dtype=float))
        )
        rank = (distance, str(meta.get("name") or ""), digest)
        if best is None or rank < best[0]:
            best = (rank, digest)
    return None if best is None else best[1]


def search_result_record(
    matrix: SparseMatrix,
    arch: str,
    result,
    seed: int,
    include_artifact: bool = True,
) -> Dict:
    """Result record for one finished search (the shared shape persisted
    by the CLI, the corpus runner and the serving frontend — one place to
    extend the stored search metadata)."""
    return make_result_record(
        matrix,
        arch,
        result.best_gflops,
        result.best_graph,
        program=result.best_program if include_artifact else None,
        search={
            "total_evaluations": result.total_evaluations,
            "structures_tried": result.structures_tried,
            "designer_runs": result.designer_runs,
            "wall_time_s": result.wall_time_s,
            "seed": seed,
        },
        via="search",
        workload=getattr(result, "workload", "spmv"),
    )


def make_result_record(
    matrix: SparseMatrix,
    arch: str,
    best_gflops: float,
    graph: Optional[OperatorGraph],
    program: Optional[GeneratedProgram] = None,
    search: Optional[Dict] = None,
    via: str = "search",
    neighbour_of: str = "",
    workload: str = "spmv",
) -> Dict:
    """One JSON-safe result record (see module docstring for semantics).

    ``workload`` names the operation the record's numbers were measured
    for; the default SpMV is recorded *implicitly* (no key), so spmv
    records — and every pre-workload-layer store — keep their exact
    historical bytes, while non-default records are explicit.
    """
    # Imported here, not at module top: repro.export uses the store codec,
    # so a top-level import would cycle through this package's __init__.
    from repro.export import program_payload

    record = {
        "name": matrix.name,
        "arch": arch,
        "n_rows": matrix.n_rows,
        "n_cols": matrix.n_cols,
        "nnz": matrix.nnz,
        "matrix_digest": content_digest(matrix.rows, matrix.cols, matrix.vals),
        "features": feature_vector(matrix),
        "best_gflops": float(best_gflops),
        "graph": None if graph is None else graph.to_dict(),
        "search": dict(search) if search else {},
        "via": via,
        "neighbour_of": neighbour_of,
        "artifact": (
            None if program is None else program_payload(program, graph)
        ),
    }
    if workload and workload != "spmv":
        record["workload"] = workload
    return record
