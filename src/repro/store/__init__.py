"""Persistent design store (see :mod:`repro.store.design`).

Turns one-time search output into durable, content-addressed artifacts:
design entries warm-start later searches (zero Designer runs in a fresh
process), result entries let the serving layer answer without searching.
"""

from repro.store.codec import (
    decode_leaves,
    decode_value,
    encode_leaves,
    encode_value,
    key_digest,
    payload_digest,
)
from repro.store.design import SCHEMA_VERSION, DesignStore, EntryStatus, StoreStats
from repro.store.errors import StoreError, StoreVersionError
from repro.store.records import (
    FEATURE_NAMES,
    feature_vector,
    make_result_record,
    search_result_record,
)

__all__ = [
    "DesignStore",
    "EntryStatus",
    "StoreStats",
    "StoreError",
    "StoreVersionError",
    "SCHEMA_VERSION",
    "FEATURE_NAMES",
    "feature_vector",
    "make_result_record",
    "search_result_record",
    "encode_leaves",
    "decode_leaves",
    "encode_value",
    "decode_value",
    "key_digest",
    "payload_digest",
]
