"""Persistent design store (see :mod:`repro.store.design`).

Turns one-time search output into durable, content-addressed artifacts:
design entries warm-start later searches (zero Designer runs in a fresh
process), result entries let the serving layer answer without searching.

Two interchangeable backends hold bit-identical content:

* ``dir`` (:class:`DesignStore`) — one file per entry, atomic replace.
* ``journal`` (:class:`~repro.store.journal.JournalStore`) — crash-safe
  append-only log with checksummed records, multi-writer file locking,
  and snapshot compaction (the serving backend).

:func:`open_store` dispatches on the store header so callers never need
to know which backend wrote a directory.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.store.codec import (
    decode_leaves,
    decode_value,
    encode_leaves,
    encode_value,
    key_digest,
    payload_digest,
)
from repro.store.design import (
    SCHEMA_VERSION,
    DesignStore,
    EntryStatus,
    StoreStats,
    design_entry_doc,
    result_entry_doc,
    result_meta_doc,
)
from repro.store.errors import StoreError, StoreVersionError
from repro.store.journal import JournalStore, LockTimeoutError
from repro.store.records import (
    FEATURE_NAMES,
    feature_vector,
    make_result_record,
    search_result_record,
)

__all__ = [
    "DesignStore",
    "JournalStore",
    "open_store",
    "EntryStatus",
    "StoreStats",
    "StoreError",
    "StoreVersionError",
    "LockTimeoutError",
    "SCHEMA_VERSION",
    "FEATURE_NAMES",
    "feature_vector",
    "make_result_record",
    "search_result_record",
    "design_entry_doc",
    "result_entry_doc",
    "result_meta_doc",
    "encode_leaves",
    "decode_leaves",
    "encode_value",
    "decode_value",
    "key_digest",
    "payload_digest",
]


def open_store(
    path: str | os.PathLike,
    backend: str = "auto",
    create: bool = True,
    faults=None,
    **kwargs,
):
    """Open (or create) a design store with the right backend.

    ``backend="auto"`` reads the existing header and opens whichever
    backend wrote the store; when creating a *new* store, ``auto`` means
    ``dir`` (the conservative default — ``journal`` is the serving
    backend and is opted into explicitly).  Extra keyword arguments go to
    the backend constructor (e.g. ``lock_policy``/``auto_compact_bytes``
    for the journal backend; they are rejected for ``dir``).
    """
    if backend not in ("auto", "dir", "journal"):
        raise StoreError(
            f"unknown store backend {backend!r}; one of auto/dir/journal"
        )
    path = os.fspath(path)
    if backend == "auto":
        backend = _detect_backend(path) or "dir"
    if backend == "journal":
        return JournalStore(path, create=create, faults=faults, **kwargs)
    if kwargs:
        raise StoreError(
            f"directory backend takes no extra options, got {sorted(kwargs)}"
        )
    return DesignStore(path, create=create, faults=faults)


def _detect_backend(path: str) -> Optional[str]:
    """Backend recorded in an existing store header, else None."""
    header_path = os.path.join(path, "store.json")
    try:
        with open(header_path, "r") as fh:
            header = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(header, dict) or header.get("kind") != "design-store":
        return None
    return str(header.get("backend", "dir"))
