"""Shared error types for the on-disk stores.

Both persistence subsystems — the corpus :class:`~repro.bench.store.ResultStore`
and the design :class:`~repro.store.design.DesignStore` — version their
on-disk schema.  A store written by an older (or newer) code revision must
fail loudly and uniformly instead of surfacing as a ``KeyError`` deep inside
aggregation or hydration, so the version failure is one shared exception
type here, below both stores.
"""

from __future__ import annotations

__all__ = ["StoreError", "StoreVersionError"]


class StoreError(ValueError):
    """A store file or directory cannot be used (corrupt, wrong kind,
    unwritable)."""


class StoreVersionError(StoreError):
    """The on-disk schema version does not match this code revision.

    Raised when a store predates (or postdates) the running schema — e.g. a
    result store written before run-config pinning, or a design store from
    a different layout generation.  The remedy is always the same: rebuild
    the store with the current code (or read it with the revision that
    wrote it), never to guess at field meanings.
    """
