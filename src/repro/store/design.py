"""Persistent, content-addressed design store.

A one-time AlphaSparse search yields a reusable machine-designed
format+kernel per matrix — but every in-process cache dies with the
process.  The :class:`DesignStore` turns search results into durable
artifacts:

**Design entries** persist Designer output keyed on
``(matrix token, design signature, arch name)`` — exactly the in-memory
:class:`~repro.search.evaluation.DesignCache` key plus the architecture —
so a second search of the same matrix *in a different process* warm-starts
from stored designs and performs zero Designer runs.  Failed designs
(:class:`~repro.core.designer.DesignError`) are stored too; replaying the
failure is as load-bearing for byte-identical histories as replaying a
success.

**Result entries** persist one finished search per ``(matrix, arch)``:
the winning Operator Graph, its measured GFLOPS, the matrix's feature
signature (nearest-neighbour serving) and the exported artifact payload
(everything :func:`repro.export.export_program` writes, inline).

Layout — one directory, sharded one-file-per-entry::

    <root>/store.json            header: {"schema": N, "kind": "design-store"}
    <root>/designs/<digest>.json
    <root>/results/<digest>.json

Every write goes through a temp file + ``os.replace`` (the
``bench.ResultStore`` atomicity pattern), and distinct keys live in
distinct files, so concurrent writers — two engines sharing one store
path, or one engine racing a crash — can never corrupt each other: the
worst outcome of a race on the *same* key is that identical content is
replaced by identical content.  A store whose header schema does not match
this revision raises :class:`~repro.store.errors.StoreVersionError` up
front; an individually corrupt or truncated entry file is treated as a
cache miss (counted in :attr:`StoreStats.corrupt`) so serving degrades
instead of failing.  On first detection the damaged file is *quarantined*
— moved to a ``corrupt/`` sibling directory (``STORE-QUARANTINED`` in the
:mod:`repro.errors` taxonomy) — so the store never re-reads known damage,
a later write of the same key heals cleanly, and the evidence survives for
post-mortems; ``verify --repair`` quarantines in bulk and ``gc`` prunes.

An alternative *journal* backend with the same read/write surface —
append-only log, multi-writer file locking, crash recovery, compaction —
lives in :mod:`repro.store.journal`; :func:`repro.store.open_store`
dispatches on the header's ``backend`` field.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.designer import DesignLeaf
from repro.reliability.faults import FaultInjector, FaultPlan
from repro.store.codec import (
    decode_leaves,
    encode_leaves,
    key_digest,
    payload_digest,
)
from repro.store.errors import StoreError, StoreVersionError

__all__ = [
    "DesignStore",
    "StoreStats",
    "EntryStatus",
    "SCHEMA_VERSION",
    "design_entry_doc",
    "result_entry_doc",
    "result_meta_doc",
]

SCHEMA_VERSION = 1

_HEADER = "store.json"
_KINDS = ("designs", "results")
_QUARANTINE = "corrupt"
_CLAIMS = "claims"


def _matrix_fields(token: Tuple) -> Dict[str, object]:
    name, n_rows, n_cols, nnz, digest = token
    return {
        "name": name,
        "n_rows": int(n_rows),
        "n_cols": int(n_cols),
        "nnz": int(nnz),
        "digest": digest,
    }


def design_entry_doc(
    token: Tuple, signature: Tuple, arch: str, payload: Dict[str, object]
) -> Dict[str, object]:
    """The canonical design entry document.

    Shared by both backends — the directory store writes it as one file,
    the journal store embeds it in a log record — so stored *content* is
    bit-identical regardless of backend (asserted by the differential
    suite in ``tests/test_journal_store.py``).
    """
    return {
        "schema": SCHEMA_VERSION,
        "kind": "design",
        "arch": arch,
        "matrix": _matrix_fields(token),
        "signature": repr(signature),
        "payload_digest": payload_digest(payload),
        "payload": payload,
    }


def result_entry_doc(token: Tuple, arch: str, record: Dict) -> Dict[str, object]:
    """The canonical result entry document (see :func:`design_entry_doc`)."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "result",
        "arch": arch,
        "matrix": _matrix_fields(token),
        "payload_digest": payload_digest(record),
        "payload": record,
    }


def result_meta_doc(arch: Optional[str], record: Dict) -> Dict:
    """Lightweight nearest-neighbour metadata derived from one record."""
    meta = {
        "schema": SCHEMA_VERSION,
        "arch": arch,
        "name": record.get("name"),
        "matrix_digest": record.get("matrix_digest"),
        "features": record.get("features"),
        "best_gflops": record.get("best_gflops"),
        "via": record.get("via", "search"),
        "has_graph": record.get("graph") is not None,
    }
    if "workload" in record:
        # Absent == spmv (matching the record convention), so sidecars
        # of pre-workload-layer stores stay byte-identical.
        meta["workload"] = record["workload"]
    return meta


@dataclass(frozen=True)
class StoreStats:
    """Counters of one :class:`DesignStore` handle (hit/miss/write per
    entry kind, plus corrupt entries encountered), ``since``-comparable
    like the in-memory cache stats."""

    design_hits: int = 0
    design_misses: int = 0
    design_writes: int = 0
    result_hits: int = 0
    result_misses: int = 0
    result_writes: int = 0
    corrupt: int = 0
    quarantined: int = 0

    def since(self, other: "StoreStats") -> "StoreStats":
        return StoreStats(
            design_hits=self.design_hits - other.design_hits,
            design_misses=self.design_misses - other.design_misses,
            design_writes=self.design_writes - other.design_writes,
            result_hits=self.result_hits - other.result_hits,
            result_misses=self.result_misses - other.result_misses,
            result_writes=self.result_writes - other.result_writes,
            corrupt=self.corrupt - other.corrupt,
            quarantined=self.quarantined - other.quarantined,
        )


@dataclass(frozen=True)
class EntryStatus:
    """One entry's integrity verdict (``verify`` / ``ls``)."""

    kind: str  # "design" | "result"
    filename: str
    ok: bool
    matrix: str
    arch: str
    detail: str
    bytes: int


class _CorruptEntry(Exception):
    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class DesignStore:
    """On-disk content-addressed store of designs and search results."""

    def __init__(
        self,
        path: str | os.PathLike,
        create: bool = True,
        faults: Optional[FaultPlan | FaultInjector] = None,
    ) -> None:
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._stats = StoreStats()
        #: chaos seam — a :class:`~repro.reliability.faults.FaultInjector`
        #: consulted on entry reads/writes (None in production)
        self.faults = (
            faults.injector() if isinstance(faults, FaultPlan) else faults
        )
        #: ``(relative filename, reason)`` per entry this handle moved to
        #: ``corrupt/`` — the evidence behind ``STORE-QUARANTINED`` lines
        self.quarantine_log: List[Tuple[str, str]] = []
        header_path = os.path.join(self.path, _HEADER)
        if os.path.isfile(self.path):
            raise StoreError(
                f"{self.path!r} is a file; a design store is a directory"
            )
        if os.path.exists(header_path):
            try:
                with open(header_path, "r") as fh:
                    header = json.load(fh)
            except (OSError, json.JSONDecodeError) as exc:
                raise StoreError(
                    f"cannot read design-store header {header_path!r}: {exc}"
                ) from exc
            if not isinstance(header, dict) or header.get("kind") != "design-store":
                raise StoreError(
                    f"{self.path!r} is not a design store (bad header)"
                )
            if header.get("schema") != SCHEMA_VERSION:
                raise StoreVersionError(
                    f"design store {self.path!r} has schema "
                    f"{header.get('schema')!r}, this revision reads "
                    f"{SCHEMA_VERSION}; rebuild the store (or read it with "
                    "the revision that wrote it)"
                )
            if header.get("backend", "dir") != "dir":
                raise StoreError(
                    f"design store {self.path!r} uses the "
                    f"{header.get('backend')!r} backend; open it with "
                    "repro.store.open_store (or the matching backend class)"
                )
        elif create:
            os.makedirs(self.path, exist_ok=True)
            self._atomic_write(
                header_path, {"schema": SCHEMA_VERSION, "kind": "design-store"}
            )
        else:
            raise StoreError(f"no design store at {self.path!r}")
        for kind in _KINDS:
            os.makedirs(os.path.join(self.path, kind), exist_ok=True)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        with self._lock:
            return replace(self._stats)

    def _bump(self, **deltas: int) -> None:
        with self._lock:
            self._stats = replace(
                self._stats,
                **{k: getattr(self._stats, k) + v for k, v in deltas.items()},
            )

    def __len__(self) -> int:
        return sum(len(self._list(kind)) for kind in _KINDS)

    # ------------------------------------------------------------------
    # Low-level entry I/O
    # ------------------------------------------------------------------
    def _entry_path(self, kind: str, digest: str) -> str:
        return os.path.join(self.path, kind, f"{digest}.json")

    def _list(self, kind: str) -> List[str]:
        directory = os.path.join(self.path, kind)
        if not os.path.isdir(directory):
            return []
        return sorted(
            name for name in os.listdir(directory) if name.endswith(".json")
        )

    def _atomic_write(self, path: str, document: Dict) -> None:
        if self.faults is not None:
            self.faults.maybe_slow("write", path)
            self.faults.maybe_io_error("write", path)
        directory = os.path.dirname(path)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(document, fh, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _read_entry(self, path: str, kind: str) -> Dict:
        """Load + integrity-check one entry file; raises _CorruptEntry."""
        try:
            if self.faults is not None:
                self.faults.maybe_slow("read", path)
                self.faults.maybe_io_error("read", path)
            with open(path, "r") as fh:
                entry = json.load(fh)
        except OSError as exc:
            raise _CorruptEntry(f"unreadable: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise _CorruptEntry(f"not valid JSON: {exc}") from exc
        if not isinstance(entry, dict):
            raise _CorruptEntry("entry is not a JSON object")
        if entry.get("schema") != SCHEMA_VERSION:
            raise _CorruptEntry(
                f"entry schema {entry.get('schema')!r} != {SCHEMA_VERSION}"
            )
        if entry.get("kind") != kind:
            raise _CorruptEntry(
                f"entry kind {entry.get('kind')!r}, expected {kind!r}"
            )
        if "payload" not in entry or "payload_digest" not in entry:
            raise _CorruptEntry("entry has no payload")
        if payload_digest(entry["payload"]) != entry["payload_digest"]:
            raise _CorruptEntry("payload digest mismatch (truncated or edited)")
        return entry

    # ------------------------------------------------------------------
    # Design entries
    # ------------------------------------------------------------------
    def design_digest(self, token: Tuple, signature: Tuple, arch: str) -> str:
        return key_digest("design", token, signature, arch)

    def get_design(
        self, token: Tuple, signature: Tuple, arch: str
    ) -> Optional[Tuple[str, object]]:
        """Stored design-phase outcome, or None on miss/corruption.

        Returns ``("ok", leaves)`` for a stored success and
        ``("error", message)`` for a stored :class:`DesignError` — the
        caller replays the failure exactly like the in-memory cache does.
        """
        path = self._entry_path(
            "designs", self.design_digest(token, signature, arch)
        )
        if not os.path.exists(path):
            self._bump(design_misses=1)
            return None
        try:
            entry = self._read_entry(path, "design")
            payload = entry["payload"]
            if entry.get("matrix", {}).get("digest") != token[-1]:
                raise _CorruptEntry("matrix digest does not match key")
            if payload.get("status") == "error":
                outcome: Tuple[str, object] = ("error", str(payload["message"]))
            else:
                outcome = ("ok", decode_leaves(payload["leaves"]))
        except (_CorruptEntry, KeyError, TypeError, ValueError) as exc:
            self._bump(design_misses=1, corrupt=1)
            self._quarantine(path, str(exc))
            return None
        self._bump(design_hits=1)
        return outcome

    def _quarantine(self, path: str, reason: str) -> bool:
        """Move a corrupt entry to ``corrupt/`` on first detection.

        Quarantining (rather than retrying the damage forever, or deleting
        the evidence) clears the key — so the caller's write-back heals the
        store — while keeping the damaged bytes for inspection.  A second
        corruption of the same filename overwrites the earlier quarantined
        copy: the most recent damage is the interesting one.  Best-effort:
        a read-only store just keeps treating the entry as a miss.
        """
        rel = os.path.relpath(path, self.path)
        try:
            directory = os.path.join(self.path, _QUARANTINE)
            os.makedirs(directory, exist_ok=True)
            os.replace(path, os.path.join(directory, os.path.basename(path)))
        except OSError:
            return False
        with self._lock:
            self.quarantine_log.append((rel, reason))
            self._stats = replace(
                self._stats, quarantined=self._stats.quarantined + 1
            )
        return True

    def put_design(
        self,
        token: Tuple,
        signature: Tuple,
        arch: str,
        leaves: Optional[Sequence[DesignLeaf]] = None,
        error: Optional[str] = None,
    ) -> None:
        """Persist one design-phase outcome (success or DesignError).

        First writer wins: an existing entry for the key is left alone —
        design output is a deterministic function of the key, so a racing
        second writer would only replace identical content.
        """
        if (leaves is None) == (error is None):
            raise StoreError("put_design takes exactly one of leaves/error")
        path = self._entry_path(
            "designs", self.design_digest(token, signature, arch)
        )
        if os.path.exists(path):
            return
        if error is not None:
            payload: Dict[str, object] = {"status": "error", "message": error}
        else:
            payload = {"status": "ok", "leaves": encode_leaves(leaves)}
        self._atomic_write(path, design_entry_doc(token, signature, arch, payload))
        self._bump(design_writes=1)

    # ------------------------------------------------------------------
    # Result entries
    # ------------------------------------------------------------------
    def result_digest(self, token: Tuple, arch: str) -> str:
        return key_digest("result", token, arch)

    def get_result(self, token: Tuple, arch: str) -> Optional[Dict]:
        """The stored search result for ``(matrix, arch)``, or None."""
        path = self._entry_path("results", self.result_digest(token, arch))
        if not os.path.exists(path):
            self._bump(result_misses=1)
            return None
        try:
            entry = self._read_entry(path, "result")
            if entry.get("matrix", {}).get("digest") != token[-1]:
                raise _CorruptEntry("matrix digest does not match key")
        except _CorruptEntry as exc:
            self._bump(result_misses=1, corrupt=1)
            self._quarantine(path, exc.reason)
            return None
        self._bump(result_hits=1)
        return entry["payload"]

    def put_result(self, token: Tuple, arch: str, record: Dict) -> None:
        """Persist (or overwrite) the finished search result for a matrix.

        Unlike designs, results are overwritten: a fresh full search may
        legitimately replace a neighbour-transferred record with a better
        one.  A small ``.meta`` sidecar (features, name, GFLOPS — no
        artifact) is written next to the entry so nearest-neighbour scans
        never have to decode full artifact payloads.
        """
        digest = self.result_digest(token, arch)
        self._atomic_write(
            self._entry_path("results", digest),
            result_entry_doc(token, arch, record),
        )
        self._atomic_write(
            self._meta_path(digest), self._meta_from_record(arch, record)
        )
        self._bump(result_writes=1)

    # -- lightweight result metadata (nearest-neighbour index) ----------
    def _meta_path(self, digest: str) -> str:
        return os.path.join(self.path, "results", f"{digest}.meta")

    # Kept as a method alias: the canonical builder is module-level so the
    # journal backend derives identical metadata without a store handle.
    _meta_from_record = staticmethod(result_meta_doc)

    def result_metas(self, arch: Optional[str] = None) -> List[Tuple[str, Dict]]:
        """``(digest, meta)`` per stored result — the cheap scan the
        serving frontend ranks neighbours on.  A missing or unreadable
        sidecar self-heals from one full entry read (and is written back);
        corrupt entries are skipped and counted."""
        out: List[Tuple[str, Dict]] = []
        for name in self._list("results"):
            digest = name[: -len(".json")]
            meta: Optional[Dict] = None
            meta_path = self._meta_path(digest)
            if os.path.exists(meta_path):
                try:
                    with open(meta_path, "r") as fh:
                        candidate = json.load(fh)
                    if (
                        isinstance(candidate, dict)
                        and candidate.get("schema") == SCHEMA_VERSION
                    ):
                        meta = candidate
                except (OSError, json.JSONDecodeError):
                    meta = None
            if meta is None:
                entry_path = os.path.join(self.path, "results", name)
                try:
                    entry = self._read_entry(entry_path, "result")
                except _CorruptEntry as exc:
                    self._bump(corrupt=1)
                    self._quarantine(entry_path, exc.reason)
                    continue
                meta = self._meta_from_record(entry.get("arch"), entry["payload"])
                try:
                    self._atomic_write(meta_path, meta)
                except OSError:
                    # Read-only store (multi-reader serving deployment):
                    # serve from the in-memory meta, heal nothing.
                    pass
            if arch is not None and meta.get("arch") != arch:
                continue
            out.append((digest, meta))
        return out

    def result_payload(self, digest: str) -> Optional[Dict]:
        """Full (digest-verified) record behind one :meth:`result_metas`
        row — loaded only for the chosen neighbour, never during ranking."""
        path = self._entry_path("results", digest)
        if not os.path.exists(path):
            return None
        try:
            entry = self._read_entry(path, "result")
        except _CorruptEntry as exc:
            self._bump(corrupt=1)
            self._quarantine(path, exc.reason)
            return None
        return entry["payload"]

    def results(self, arch: Optional[str] = None) -> List[Dict]:
        """Every valid stored result record (optionally one arch only),
        in deterministic filename order; corrupt entries are skipped."""
        records = []
        for name in self._list("results"):
            path = os.path.join(self.path, "results", name)
            try:
                entry = self._read_entry(path, "result")
            except _CorruptEntry as exc:
                self._bump(corrupt=1)
                self._quarantine(path, exc.reason)
                continue
            if arch is not None and entry.get("arch") != arch:
                continue
            records.append(entry["payload"])
        return records

    def design_payloads(self) -> List[Tuple[str, str, Dict]]:
        """``(filename, signature-repr, payload)`` per valid design entry,
        in deterministic filename order — the static audit walks these to
        re-judge persisted designs; corrupt entries are skipped (they are
        already surfaced by :meth:`verify`)."""
        out: List[Tuple[str, str, Dict]] = []
        for name in self._list("designs"):
            path = os.path.join(self.path, "designs", name)
            try:
                entry = self._read_entry(path, "design")
            except _CorruptEntry:
                continue
            out.append(
                (name, str(entry.get("signature", "")), entry["payload"])
            )
        return out

    # ------------------------------------------------------------------
    # Maintenance (CLI: store ls / verify / gc)
    # ------------------------------------------------------------------
    def entries(self) -> List[EntryStatus]:
        """Integrity status of every entry file (``ls`` / ``verify``)."""
        out: List[EntryStatus] = []
        for kind_dir, kind in (("designs", "design"), ("results", "result")):
            for name in self._list(kind_dir):
                path = os.path.join(self.path, kind_dir, name)
                size = os.path.getsize(path) if os.path.exists(path) else 0
                try:
                    entry = self._read_entry(path, kind)
                except _CorruptEntry as exc:
                    out.append(
                        EntryStatus(kind, name, False, "?", "?", exc.reason, size)
                    )
                    continue
                matrix = entry.get("matrix", {})
                if kind == "design":
                    payload = entry["payload"]
                    if payload.get("status") == "error":
                        detail = "design error (cached failure)"
                    else:
                        detail = f"{len(payload.get('leaves', []))} leaf(s)"
                else:
                    payload = entry["payload"]
                    gflops = payload.get("best_gflops")
                    via = payload.get("via", "search")
                    detail = (
                        f"{gflops:.1f} GFLOPS via {via}"
                        if isinstance(gflops, (int, float))
                        else via
                    )
                out.append(
                    EntryStatus(
                        kind,
                        name,
                        True,
                        str(matrix.get("name") or "<unnamed>"),
                        str(entry.get("arch")),
                        detail,
                        size,
                    )
                )
        return out

    def verify(self, repair: bool = False) -> List[EntryStatus]:
        """Deep integrity check: :meth:`entries` plus payload decoding —
        a design entry must also hydrate back into leaves.

        With ``repair=True`` every failing entry is quarantined to
        ``corrupt/`` on the spot (the ``store verify --repair`` CLI path),
        exactly as a read path would on first detection; the returned
        statuses still describe the damage found.
        """
        out = []
        for status in self.entries():
            if status.ok and status.kind == "design":
                path = os.path.join(self.path, "designs", status.filename)
                try:
                    entry = self._read_entry(path, "design")
                    if entry["payload"].get("status") != "error":
                        decode_leaves(entry["payload"]["leaves"])
                except (_CorruptEntry, KeyError, TypeError, ValueError) as exc:
                    status = replace(
                        status, ok=False, detail=f"payload will not hydrate: {exc}"
                    )
            if repair and not status.ok:
                kind_dir = "designs" if status.kind == "design" else "results"
                self._quarantine(
                    os.path.join(self.path, kind_dir, status.filename),
                    status.detail,
                )
            out.append(status)
        return out

    # ------------------------------------------------------------------
    # Search claims (at-most-once execution for the resolver pool)
    # ------------------------------------------------------------------
    def claim_search(self, key: str) -> bool:
        """Atomically claim one search execution; True iff we won it.

        The resolver pool writes a claim *before* starting a fresh search
        so a request re-dispatched after a worker death can prove a search
        already started and degrade instead of running it again —
        at-most-once search execution.  Claims are durable (they must
        survive the claimant's crash); ``gc`` prunes them.
        """
        directory = os.path.join(self.path, _CLAIMS)
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{key_digest('claim', key)}.json")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as fh:
            json.dump({"schema": SCHEMA_VERSION, "key": key}, fh)
            fh.write("\n")
        return True

    def claims(self) -> List[str]:
        """Every outstanding claim key (diagnostics / chaos assertions)."""
        directory = os.path.join(self.path, _CLAIMS)
        if not os.path.isdir(directory):
            return []
        out = []
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(directory, name), "r") as fh:
                    out.append(str(json.load(fh)["key"]))
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                continue
        return out

    def gc(self) -> Tuple[List[str], List[str]]:
        """Prune corrupt entries and unreferenced designs.

        A design entry is *referenced* when a valid result record exists
        for the same ``(matrix digest, arch)`` — i.e. some search of that
        matrix ran to completion.  Unreferenced designs are partial-search
        residue; they would be regenerated (and re-stored) by the next
        search, so pruning them is always safe.  Returns
        ``(removed_corrupt, removed_unreferenced)`` filenames.
        """
        referenced = set()
        for name in self._list("results"):
            path = os.path.join(self.path, "results", name)
            try:
                entry = self._read_entry(path, "result")
            except _CorruptEntry:
                continue
            referenced.add(
                (entry.get("matrix", {}).get("digest"), entry.get("arch"))
            )
        removed_corrupt: List[str] = []
        removed_unreferenced: List[str] = []
        for kind_dir, kind in (("designs", "design"), ("results", "result")):
            for name in self._list(kind_dir):
                path = os.path.join(self.path, kind_dir, name)
                try:
                    entry = self._read_entry(path, kind)
                except _CorruptEntry:
                    os.unlink(path)
                    removed_corrupt.append(f"{kind_dir}/{name}")
                    continue
                if kind == "design":
                    key = (
                        entry.get("matrix", {}).get("digest"),
                        entry.get("arch"),
                    )
                    if key not in referenced:
                        os.unlink(path)
                        removed_unreferenced.append(f"{kind_dir}/{name}")
        # Meta sidecars are derived data: drop any whose entry is gone
        # (including entries gc just removed) — they regenerate on demand.
        results_dir = os.path.join(self.path, "results")
        for name in sorted(os.listdir(results_dir)):
            if not name.endswith(".meta"):
                continue
            entry_path = os.path.join(
                results_dir, name[: -len(".meta")] + ".json"
            )
            if not os.path.exists(entry_path):
                os.unlink(os.path.join(results_dir, name))
        # Claims are per-run execution fences; once no pool run is live
        # they are residue, and gc is only run between serving sessions.
        claims_dir = os.path.join(self.path, _CLAIMS)
        if os.path.isdir(claims_dir):
            for name in sorted(os.listdir(claims_dir)):
                if name.endswith(".json"):
                    os.unlink(os.path.join(claims_dir, name))
        return removed_corrupt, removed_unreferenced
