"""Crash-safe append-only journal backend for the design store.

The directory backend (:class:`~repro.store.design.DesignStore`) gives
per-entry atomicity via temp-file + ``os.replace`` — good enough for two
cooperating engines, but every entry is its own file (directory churn at
serving scale) and there is no total order of writes to recover or reason
from.  The :class:`JournalStore` keeps the *same read/write surface* and
replaces the layout with a single append-only log:

Layout::

    <root>/store.json      {"schema": 1, "kind": "design-store",
                            "backend": "journal"}
    <root>/journal.log     16-byte header + length-prefixed records
    <root>/journal.lock    writer mutual exclusion (flock)
    <root>/snapshot.json   compacted state (absent until first compaction)

Journal format — a 16-byte header (``b"REPROJNL"`` magic + big-endian
u64 *epoch*, bumped on every compaction) followed by records::

    [u32 payload length][u32 crc32(payload)][payload bytes]

where the payload is canonical JSON ``{"op": ..., "key": ..., "entry": ...}``
(ops: ``design`` — first-writer-wins, ``result`` — last-writer-wins,
``claim`` — at-most-once search fence, ``drop`` — journal-style quarantine
of a damaged entry).  Entry documents are byte-identical to the directory
backend's files (shared builders in :mod:`repro.store.design`), so the two
backends hold bit-identical content for the same write sequence.

Crash safety:

* **Torn tail** — a writer dying mid-append leaves a partial frame.  The
  length prefix + CRC make it detectable: readers simply never advance
  past it, and the next writer (which must hold the file lock, so no
  in-flight append can be mistaken for a crash) truncates the tail before
  appending.  A torn final record is dropped; it never poisons the log.
* **Multi-writer** — appends happen under an exclusive ``flock`` acquired
  with bounded retries and deterministic backoff
  (:class:`~repro.reliability.retry.RetryPolicy`); exhaustion raises
  :class:`LockTimeoutError` instead of blocking forever.
* **Compaction** — :meth:`compact` folds the current state into
  ``snapshot.json`` (atomic replace) and resets the journal to an empty
  log with a bumped epoch.  A crash between the two steps is safe: a
  snapshot *newer* than the journal epoch means the journal's records are
  already folded in and are ignored until recovery resets the file.
* **Read-through cache** — each handle keeps the replayed state in memory
  and revalidates it against ``(epoch, journal size)`` per read: same
  epoch + unchanged size is a pure cache hit, grown size replays only the
  delta, anything else reloads snapshot + journal.

Damage inside a CRC-valid frame (payload digest mismatch — e.g. the
``corrupt_record`` fault) is skipped at replay without losing framing;
frame-level damage loses the records behind it (``STORE-TAIL-LOST``),
which ``verify`` reports and ``compact``/``gc`` reclaim.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.designer import DesignLeaf
from repro.reliability.faults import FaultInjector, FaultPlan, InjectedCrash
from repro.reliability.retry import RetryError, RetryPolicy, call_with_retry
from repro.store.codec import decode_leaves, encode_leaves, key_digest, payload_digest
from repro.store.design import (
    SCHEMA_VERSION,
    EntryStatus,
    StoreStats,
    design_entry_doc,
    result_entry_doc,
    result_meta_doc,
)
from repro.store.errors import StoreError, StoreVersionError

try:  # posix writer locking; the fallback below covers exotic platforms
    import fcntl
except ImportError:  # pragma: no cover - non-posix
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "JournalStore",
    "LockContended",
    "LockTimeoutError",
    "default_lock_policy",
]

_MAGIC = b"REPROJNL"
_HEADER_SIZE = 16  # magic + u64 epoch
_FRAME = struct.Struct(">II")  # payload length, crc32
_MAX_RECORD = 1 << 30

_JOURNAL = "journal.log"
_LOCKFILE = "journal.lock"
_SNAPSHOT = "snapshot.json"
_STOREHEADER = "store.json"


class LockContended(OSError):
    """One journal-lock acquisition attempt failed (retried internally)."""


class LockTimeoutError(StoreError):
    """The journal writer lock stayed contended past the retry budget."""


def default_lock_policy() -> RetryPolicy:
    """Bounded lock acquisition: ~50 tries over roughly two seconds."""
    return RetryPolicy(
        attempts=50,
        base_delay_s=0.002,
        multiplier=1.4,
        max_delay_s=0.06,
        jitter=0.25,
        retry_on=(LockContended,),
    )


@dataclass
class _State:
    """Replayed journal state plus the cache-validity token."""

    epoch: int = 0
    offset: int = _HEADER_SIZE
    designs: Dict[str, Dict] = field(default_factory=dict)
    results: Dict[str, Dict] = field(default_factory=dict)
    claims: Set[str] = field(default_factory=set)
    #: payload-invalid records skipped during replay (reason strings)
    invalid: List[str] = field(default_factory=list)
    #: framing damage found mid-log: (offset, reason) — records behind it
    #: are unreachable until compaction
    tail_lost: Optional[Tuple[int, str]] = None


class JournalStore:
    """Append-only journal with the :class:`DesignStore` API surface."""

    backend = "journal"

    def __init__(
        self,
        path: str | os.PathLike,
        create: bool = True,
        faults: Optional[FaultPlan | FaultInjector] = None,
        lock_policy: Optional[RetryPolicy] = None,
        auto_compact_bytes: Optional[int] = 64 << 20,
    ) -> None:
        self.path = os.fspath(path)
        self.faults = (
            faults.injector() if isinstance(faults, FaultPlan) else faults
        )
        self.lock_policy = lock_policy or default_lock_policy()
        #: journal size that triggers snapshot compaction after an append
        #: (None disables; the CLI ``store compact`` always works)
        self.auto_compact_bytes = auto_compact_bytes
        self._mutex = threading.RLock()
        self._stats = StoreStats()
        self._state = _State()
        self._loaded = False
        self._append_serial = 0
        self.quarantine_log: List[Tuple[str, str]] = []

        if os.path.isfile(self.path):
            raise StoreError(
                f"{self.path!r} is a file; a design store is a directory"
            )
        header_path = os.path.join(self.path, _STOREHEADER)
        if os.path.exists(header_path):
            try:
                with open(header_path, "r") as fh:
                    header = json.load(fh)
            except (OSError, json.JSONDecodeError) as exc:
                raise StoreError(
                    f"cannot read design-store header {header_path!r}: {exc}"
                ) from exc
            if not isinstance(header, dict) or header.get("kind") != "design-store":
                raise StoreError(
                    f"{self.path!r} is not a design store (bad header)"
                )
            if header.get("schema") != SCHEMA_VERSION:
                raise StoreVersionError(
                    f"design store {self.path!r} has schema "
                    f"{header.get('schema')!r}, this revision reads "
                    f"{SCHEMA_VERSION}; rebuild the store (or read it with "
                    "the revision that wrote it)"
                )
            if header.get("backend", "dir") != "journal":
                raise StoreError(
                    f"design store {self.path!r} uses the "
                    f"{header.get('backend', 'dir')!r} backend; open it with "
                    "repro.store.open_store (or DesignStore directly)"
                )
        elif create:
            os.makedirs(self.path, exist_ok=True)
            tmp = os.path.join(self.path, f".{_STOREHEADER}.tmp")
            with open(tmp, "w") as fh:
                json.dump(
                    {
                        "schema": SCHEMA_VERSION,
                        "kind": "design-store",
                        "backend": "journal",
                    },
                    fh,
                    sort_keys=True,
                )
                fh.write("\n")
            os.replace(tmp, header_path)
        else:
            raise StoreError(f"no design store at {self.path!r}")
        journal = self._journal_path
        if not os.path.exists(journal):
            if not create:
                # a header without a journal is an interrupted creation;
                # recreate the empty log rather than failing every read
                pass
            with open(journal, "xb") as fh:
                fh.write(_MAGIC + struct.pack(">Q", 0))
        # Open-time recovery: if we can take the writer lock without
        # waiting, drop any torn tail now; if a live writer holds it, that
        # writer performs the same recovery before its next append.
        try:
            with self._file_lock(blocking_attempts=1):
                self._recover_locked()
        except (LockTimeoutError, OSError):
            pass

    # ------------------------------------------------------------------
    # Paths / locking
    # ------------------------------------------------------------------
    @property
    def _journal_path(self) -> str:
        return os.path.join(self.path, _JOURNAL)

    @property
    def _snapshot_path(self) -> str:
        return os.path.join(self.path, _SNAPSHOT)

    def _file_lock(self, blocking_attempts: Optional[int] = None):
        """Exclusive cross-process writer lock (bounded-retry flock)."""
        return _JournalLock(
            os.path.join(self.path, _LOCKFILE),
            policy=(
                self.lock_policy
                if blocking_attempts is None
                else replace(self.lock_policy, attempts=blocking_attempts)
            ),
            faults=self.faults,
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        with self._mutex:
            return replace(self._stats)

    def _bump(self, **deltas: int) -> None:
        with self._mutex:
            self._stats = replace(
                self._stats,
                **{k: getattr(self._stats, k) + v for k, v in deltas.items()},
            )

    def __len__(self) -> int:
        with self._mutex:
            self._refresh()
            return len(self._state.designs) + len(self._state.results)

    # ------------------------------------------------------------------
    # Journal reading (the read-through cache tier)
    # ------------------------------------------------------------------
    def _read_header(self) -> int:
        try:
            with open(self._journal_path, "rb") as fh:
                head = fh.read(_HEADER_SIZE)
        except OSError as exc:
            raise StoreError(
                f"cannot read journal {self._journal_path!r}: {exc}"
            ) from exc
        if len(head) < _HEADER_SIZE or head[: len(_MAGIC)] != _MAGIC:
            raise StoreError(
                f"journal {self._journal_path!r} has no valid header"
            )
        return struct.unpack(">Q", head[len(_MAGIC) :])[0]

    def _refresh(self) -> None:
        """Revalidate the in-memory state against the journal position.

        Same epoch + same size: cache hit, nothing read.  Same epoch,
        grown file: replay only the new bytes.  Anything else (compaction
        happened, or the file shrank under recovery): full reload.
        """
        if self.faults is not None:
            self.faults.maybe_slow("journal-refresh")
        try:
            size = os.path.getsize(self._journal_path)
            epoch = self._read_header()
        except (OSError, StoreError):
            if self._loaded:
                return  # serve the cache; writers will surface the error
            raise
        state = self._state
        if self._loaded and epoch == state.epoch and size == state.offset:
            return
        if self._loaded and epoch == state.epoch and size > state.offset:
            self._replay(state, start=state.offset)
            return
        self._state = self._load_state()
        self._loaded = True

    def _load_state(self) -> _State:
        """Full reload: snapshot (if any) + journal replay."""
        state = _State()
        snapshot = self._read_snapshot()
        journal_epoch = self._read_header()
        if snapshot is not None:
            state.designs = dict(snapshot.get("designs", {}))
            state.results = dict(snapshot.get("results", {}))
            state.claims = set(snapshot.get("claims", []))
            state.epoch = int(snapshot.get("epoch", 0))
            if state.epoch > journal_epoch:
                # compaction crashed after the snapshot, before the journal
                # reset: every journal record is already folded in.  Keep
                # the *journal's* epoch as the cache token so refresh stays
                # consistent until a writer finishes the reset.
                state.epoch = journal_epoch
                state.offset = os.path.getsize(self._journal_path)
                return state
        state.epoch = journal_epoch
        state.offset = _HEADER_SIZE
        self._replay(state, start=_HEADER_SIZE)
        return state

    def _read_snapshot(self) -> Optional[Dict]:
        if not os.path.exists(self._snapshot_path):
            return None
        try:
            with open(self._snapshot_path, "r") as fh:
                snapshot = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(snapshot, dict) or snapshot.get("schema") != SCHEMA_VERSION:
            return None
        return snapshot

    def _replay(self, state: _State, start: int) -> None:
        """Apply journal records from ``start``; never advances past an
        incomplete or frame-corrupt record."""
        with open(self._journal_path, "rb") as fh:
            fh.seek(start)
            data = fh.read()
        pos = 0
        while True:
            if pos + _FRAME.size > len(data):
                break  # incomplete frame header: torn tail or in-flight
            length, crc = _FRAME.unpack_from(data, pos)
            if length > _MAX_RECORD:
                state.tail_lost = (start + pos, f"absurd record length {length}")
                self._bump(corrupt=1)
                break
            body = data[pos + _FRAME.size : pos + _FRAME.size + length]
            if len(body) < length:
                break  # incomplete payload: torn tail or in-flight
            if zlib.crc32(body) != crc:
                state.tail_lost = (start + pos, "record checksum mismatch")
                self._bump(corrupt=1)
                break
            self._apply(state, body)
            pos += _FRAME.size + length
        state.offset = start + pos

    def _apply(self, state: _State, body: bytes) -> None:
        """Apply one CRC-valid record; payload damage skips the record."""
        try:
            record = json.loads(body.decode("utf-8"))
            op = record["op"]
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            state.invalid.append(f"undecodable record: {exc}")
            self._bump(corrupt=1)
            return
        if op == "claim":
            key = record.get("key")
            if isinstance(key, str):
                state.claims.add(key)
            return
        if op == "drop":
            target = state.designs if record.get("kind") == "design" else state.results
            target.pop(record.get("key"), None)
            return
        if op not in ("design", "result"):
            state.invalid.append(f"unknown op {op!r}")
            self._bump(corrupt=1)
            return
        key, entry = record.get("key"), record.get("entry")
        ok = (
            isinstance(key, str)
            and isinstance(entry, dict)
            and entry.get("schema") == SCHEMA_VERSION
            and entry.get("kind") == op
            and "payload" in entry
            and payload_digest(entry["payload"]) == entry.get("payload_digest")
        )
        if not ok:
            state.invalid.append(f"{op} record {key!r}: payload digest mismatch")
            self._bump(corrupt=1)
            return
        if op == "design":
            # first-writer-wins, matching the directory backend's
            # put_design contract (design output is key-deterministic)
            state.designs.setdefault(key, entry)
        else:
            state.results[key] = entry

    # ------------------------------------------------------------------
    # Journal writing
    # ------------------------------------------------------------------
    def _recover_locked(self) -> None:
        """Truncated-tail recovery; caller holds the file lock.

        Replays to find the last complete record, then truncates anything
        beyond it — a torn final record from a crashed writer is dropped
        here, never replayed.  Also finishes a crashed compaction (snapshot
        newer than the journal) by resetting the log.
        """
        snapshot = self._read_snapshot()
        journal_epoch = self._read_header()
        if snapshot is not None and int(snapshot.get("epoch", 0)) > journal_epoch:
            self._reset_journal(int(snapshot["epoch"]))
            self._state = self._load_state()
            self._loaded = True
            return
        state = self._load_state()
        size = os.path.getsize(self._journal_path)
        if size > state.offset:
            with open(self._journal_path, "r+b") as fh:
                fh.truncate(state.offset)
                fh.flush()
                os.fsync(fh.fileno())
        self._state = state
        self._loaded = True

    def _reset_journal(self, epoch: int) -> None:
        with open(self._journal_path, "r+b") as fh:
            fh.seek(0)
            fh.write(_MAGIC + struct.pack(">Q", epoch))
            fh.truncate(_HEADER_SIZE)
            fh.flush()
            os.fsync(fh.fileno())

    def _append(self, record: Dict) -> None:
        """Append one record; caller holds mutex + file lock and has run
        recovery, so ``self._state.offset`` is the true end of file."""
        self._append_serial += 1
        serial = self._append_serial
        if self.faults is not None:
            self.faults.maybe_slow("journal-append", serial)
            self.faults.maybe_io_error("journal-append", serial)
        body = json.dumps(record, sort_keys=True).encode("utf-8")
        if self.faults is not None and self.faults.decide(
            "corrupt_record", serial
        ):
            # flip a payload byte and checksum the damage: the frame stays
            # valid, replay-time digest validation must reject the payload
            corrupted = bytearray(body)
            corrupted[len(corrupted) // 2] ^= 0xFF
            body = bytes(corrupted)
        wire = _FRAME.pack(len(body), zlib.crc32(body)) + body
        torn_at = None
        if self.faults is not None and self.faults.decide("torn_write", serial):
            # deterministic cut strictly inside the frame
            from repro.reliability.retry import _unit_hash

            u = _unit_hash(self.faults.plan.seed, "torn-cut", serial)
            torn_at = 1 + int(u * (len(wire) - 1))
        with open(self._journal_path, "r+b") as fh:
            fh.seek(self._state.offset)
            fh.write(wire if torn_at is None else wire[:torn_at])
            fh.flush()
            os.fsync(fh.fileno())
        if torn_at is not None:
            raise InjectedCrash(
                f"torn journal write at append #{serial} "
                f"({torn_at}/{len(wire)} bytes)"
            )
        # apply what actually hit the disk (a corrupt-injected record must
        # not land in our cache either)
        self._apply(self._state, body)
        self._state.offset += len(wire)

    def _write_locked(self, record: Dict) -> None:
        with self._mutex:
            with self._file_lock():
                self._recover_locked()
                self._append(record)
                if (
                    self.auto_compact_bytes is not None
                    and self._state.offset > self.auto_compact_bytes
                ):
                    self._compact_locked()

    # ------------------------------------------------------------------
    # Design entries
    # ------------------------------------------------------------------
    def design_digest(self, token: Tuple, signature: Tuple, arch: str) -> str:
        return key_digest("design", token, signature, arch)

    def get_design(
        self, token: Tuple, signature: Tuple, arch: str
    ) -> Optional[Tuple[str, object]]:
        """Stored design-phase outcome, or None on miss/corruption —
        exactly the :meth:`DesignStore.get_design` contract."""
        digest = self.design_digest(token, signature, arch)
        with self._mutex:
            self._refresh()
            entry = self._state.designs.get(digest)
        if entry is None:
            self._bump(design_misses=1)
            return None
        try:
            if entry.get("matrix", {}).get("digest") != token[-1]:
                raise ValueError("matrix digest does not match key")
            payload = entry["payload"]
            if payload.get("status") == "error":
                outcome: Tuple[str, object] = ("error", str(payload["message"]))
            else:
                outcome = ("ok", decode_leaves(payload["leaves"]))
        except (KeyError, TypeError, ValueError) as exc:
            self._quarantine_entry("design", digest, str(exc))
            self._bump(design_misses=1, corrupt=1)
            return None
        self._bump(design_hits=1)
        return outcome

    def put_design(
        self,
        token: Tuple,
        signature: Tuple,
        arch: str,
        leaves: Optional[Sequence[DesignLeaf]] = None,
        error: Optional[str] = None,
    ) -> None:
        """Persist one design-phase outcome; first writer wins."""
        if (leaves is None) == (error is None):
            raise StoreError("put_design takes exactly one of leaves/error")
        digest = self.design_digest(token, signature, arch)
        if error is not None:
            payload: Dict[str, object] = {"status": "error", "message": error}
        else:
            payload = {"status": "ok", "leaves": encode_leaves(leaves)}
        entry = design_entry_doc(token, signature, arch, payload)
        with self._mutex:
            self._refresh()
            if digest in self._state.designs:
                return
            self._write_locked({"op": "design", "key": digest, "entry": entry})
        self._bump(design_writes=1)

    def _quarantine_entry(self, kind: str, digest: str, reason: str) -> None:
        """Journal-style quarantine: a ``drop`` record clears the damaged
        key (so a write-back heals) and the damage is logged."""
        try:
            self._write_locked({"op": "drop", "kind": kind, "key": digest})
        except (StoreError, OSError):
            return
        with self._mutex:
            self.quarantine_log.append((f"{kind}/{digest}", reason))
            self._stats = replace(
                self._stats, quarantined=self._stats.quarantined + 1
            )

    # ------------------------------------------------------------------
    # Result entries
    # ------------------------------------------------------------------
    def result_digest(self, token: Tuple, arch: str) -> str:
        return key_digest("result", token, arch)

    def get_result(self, token: Tuple, arch: str) -> Optional[Dict]:
        digest = self.result_digest(token, arch)
        with self._mutex:
            self._refresh()
            entry = self._state.results.get(digest)
        if entry is None:
            self._bump(result_misses=1)
            return None
        if entry.get("matrix", {}).get("digest") != token[-1]:
            self._quarantine_entry(
                "result", digest, "matrix digest does not match key"
            )
            self._bump(result_misses=1, corrupt=1)
            return None
        self._bump(result_hits=1)
        return entry["payload"]

    def put_result(self, token: Tuple, arch: str, record: Dict) -> None:
        """Persist (or overwrite) the finished result for a matrix."""
        digest = self.result_digest(token, arch)
        entry = result_entry_doc(token, arch, record)
        with self._mutex:
            self._write_locked({"op": "result", "key": digest, "entry": entry})
        self._bump(result_writes=1)

    def result_metas(self, arch: Optional[str] = None) -> List[Tuple[str, Dict]]:
        """``(digest, meta)`` per stored result, digest-ordered — derived
        in memory from the replayed state (no sidecar files to heal)."""
        with self._mutex:
            self._refresh()
            items = sorted(self._state.results.items())
        out = []
        for digest, entry in items:
            meta = result_meta_doc(entry.get("arch"), entry.get("payload", {}))
            if arch is not None and meta.get("arch") != arch:
                continue
            out.append((digest, meta))
        return out

    def result_payload(self, digest: str) -> Optional[Dict]:
        with self._mutex:
            self._refresh()
            entry = self._state.results.get(digest)
        return None if entry is None else entry.get("payload")

    def results(self, arch: Optional[str] = None) -> List[Dict]:
        with self._mutex:
            self._refresh()
            items = sorted(self._state.results.items())
        return [
            entry["payload"]
            for _, entry in items
            if arch is None or entry.get("arch") == arch
        ]

    def design_payloads(self) -> List[Tuple[str, str, Dict]]:
        with self._mutex:
            self._refresh()
            items = sorted(self._state.designs.items())
        return [
            (f"{digest}.json", str(entry.get("signature", "")), entry["payload"])
            for digest, entry in items
        ]

    # ------------------------------------------------------------------
    # Claims (at-most-once search execution)
    # ------------------------------------------------------------------
    def claim_search(self, key: str) -> bool:
        """Atomically claim one search execution; True iff we won it.

        The check and the claim append happen under one hold of the writer
        lock, so two workers racing on the same key serialise: exactly one
        sees True.  Claims are journal records — they survive the
        claimant's death, which is the whole point."""
        with self._mutex:
            with self._file_lock():
                self._recover_locked()
                if key in self._state.claims:
                    return False
                self._append({"op": "claim", "key": key})
        return True

    def claims(self) -> List[str]:
        with self._mutex:
            self._refresh()
            return sorted(self._state.claims)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> Dict[str, int]:
        """Fold the journal into ``snapshot.json`` and reset the log.

        Returns counters (kept entries, journal bytes reclaimed).  Safe
        against crashes at any point: the snapshot is written atomically
        *before* the journal reset, and recovery finishes an interrupted
        reset on the next locked operation.
        """
        with self._mutex:
            with self._file_lock():
                self._recover_locked()
                return self._compact_locked()

    def _compact_locked(self) -> Dict[str, int]:
        state = self._state
        reclaimed = state.offset - _HEADER_SIZE
        new_epoch = state.epoch + 1
        snapshot = {
            "schema": SCHEMA_VERSION,
            "kind": "design-store-snapshot",
            "epoch": new_epoch,
            "designs": state.designs,
            "results": state.results,
            "claims": sorted(state.claims),
        }
        tmp = self._snapshot_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(snapshot, fh, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._snapshot_path)
        self._reset_journal(new_epoch)
        state.epoch = new_epoch
        state.offset = _HEADER_SIZE
        state.invalid = []
        state.tail_lost = None
        return {
            "designs": len(state.designs),
            "results": len(state.results),
            "claims": len(state.claims),
            "reclaimed_bytes": max(0, reclaimed),
            "epoch": new_epoch,
        }

    # ------------------------------------------------------------------
    # Maintenance (ls / verify / gc)
    # ------------------------------------------------------------------
    def entries(self) -> List[EntryStatus]:
        with self._mutex:
            self._refresh()
            state = self._state
            designs = sorted(state.designs.items())
            results = sorted(state.results.items())
            invalid = list(state.invalid)
            tail_lost = state.tail_lost
        out: List[EntryStatus] = []
        for digest, entry in designs:
            payload = entry.get("payload", {})
            if payload.get("status") == "error":
                detail = "design error (cached failure)"
            else:
                detail = f"{len(payload.get('leaves', []))} leaf(s)"
            out.append(self._status("design", digest, entry, detail))
        for digest, entry in results:
            payload = entry.get("payload", {})
            gflops = payload.get("best_gflops")
            via = payload.get("via", "search")
            detail = (
                f"{gflops:.1f} GFLOPS via {via}"
                if isinstance(gflops, (int, float))
                else via
            )
            out.append(self._status("result", digest, entry, detail))
        for reason in invalid:
            out.append(
                EntryStatus("journal", _JOURNAL, False, "?", "?", reason, 0)
            )
        if tail_lost is not None:
            offset, reason = tail_lost
            out.append(
                EntryStatus(
                    "journal",
                    _JOURNAL,
                    False,
                    "?",
                    "?",
                    f"records lost after offset {offset}: {reason} "
                    "(compact to reclaim)",
                    0,
                )
            )
        return out

    @staticmethod
    def _status(
        kind: str, digest: str, entry: Dict, detail: str
    ) -> EntryStatus:
        matrix = entry.get("matrix", {})
        return EntryStatus(
            kind,
            f"{digest}.json",
            True,
            str(matrix.get("name") or "<unnamed>"),
            str(entry.get("arch")),
            detail,
            len(json.dumps(entry, sort_keys=True)),
        )

    def verify(self, repair: bool = False) -> List[EntryStatus]:
        """Deep check: :meth:`entries` plus design hydration.  With
        ``repair=True``, failing entries are dropped (journal quarantine)
        and framing damage is reclaimed by an immediate compaction."""
        out = []
        needs_compact = False
        for status in self.entries():
            if status.ok and status.kind == "design":
                digest = status.filename[: -len(".json")]
                with self._mutex:
                    entry = self._state.designs.get(digest)
                try:
                    if entry is not None and entry["payload"].get("status") != "error":
                        decode_leaves(entry["payload"]["leaves"])
                except (KeyError, TypeError, ValueError) as exc:
                    status = replace(
                        status, ok=False, detail=f"payload will not hydrate: {exc}"
                    )
                    if repair:
                        self._quarantine_entry("design", digest, status.detail)
            if not status.ok and status.kind == "journal":
                needs_compact = True
            out.append(status)
        if repair and needs_compact:
            self.compact()
        return out

    def gc(self) -> Tuple[List[str], List[str]]:
        """Prune invalid records and unreferenced designs, then compact.

        Mirrors :meth:`DesignStore.gc`: a design is *referenced* when a
        valid result exists for its ``(matrix digest, arch)``; claims are
        between-runs residue and are cleared.
        """
        with self._mutex:
            with self._file_lock():
                self._recover_locked()
                state = self._state
                removed_corrupt = [
                    f"{_JOURNAL}: {reason}" for reason in state.invalid
                ]
                if state.tail_lost is not None:
                    offset, reason = state.tail_lost
                    removed_corrupt.append(
                        f"{_JOURNAL}: records after offset {offset} ({reason})"
                    )
                referenced = {
                    (
                        entry.get("matrix", {}).get("digest"),
                        entry.get("arch"),
                    )
                    for entry in state.results.values()
                }
                removed_unreferenced = []
                for digest in sorted(state.designs):
                    entry = state.designs[digest]
                    key = (
                        entry.get("matrix", {}).get("digest"),
                        entry.get("arch"),
                    )
                    if key not in referenced:
                        del state.designs[digest]
                        removed_unreferenced.append(f"designs/{digest}.json")
                state.claims.clear()
                self._compact_locked()
        return removed_corrupt, removed_unreferenced


class _JournalLock:
    """Exclusive flock with bounded, fault-injectable acquisition."""

    _serial = 0
    _serial_lock = threading.Lock()

    def __init__(
        self,
        path: str,
        policy: RetryPolicy,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.path = path
        self.policy = policy
        self.faults = faults
        self._fd: Optional[int] = None

    def _try_acquire(self) -> None:
        with _JournalLock._serial_lock:
            _JournalLock._serial += 1
            serial = _JournalLock._serial
        if self.faults is not None and self.faults.decide(
            "lock_timeout", serial
        ):
            raise LockContended("injected lock contention")
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            # without fcntl (non-posix) the O_CREAT open itself is the
            # best-effort mutual exclusion; in-process the store mutex
            # already serialises writers
        except OSError as exc:
            os.close(fd)
            raise LockContended(f"journal lock busy: {exc}") from exc
        self._fd = fd

    def __enter__(self) -> "_JournalLock":
        try:
            call_with_retry(
                self._try_acquire, self.policy, describe="journal lock"
            )
        except RetryError as exc:
            raise LockTimeoutError(
                f"could not acquire journal lock {self.path!r}: {exc}"
            ) from exc
        return self

    def __exit__(self, *exc_info) -> None:
        if self._fd is not None:
            try:
                if fcntl is not None:
                    fcntl.flock(self._fd, fcntl.LOCK_UN)
            finally:
                os.close(self._fd)
                self._fd = None
