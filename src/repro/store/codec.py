"""Exact JSON codec for design-phase artifacts.

The design store persists Designer output — :class:`~repro.core.designer.DesignLeaf`
lists whose metadata stores hold numpy arrays, nested dicts, tuples and
scalars — as JSON.  The warm-start contract is *byte identity*: a search
hydrated from the store must replay the exact history a cold search
produces, so every value must round-trip losslessly:

* arrays are encoded as base64 of their raw bytes plus dtype + shape
  (bit-exact, dtype-preserving — never element lists);
* tuples are tagged so they come back as tuples (``reduction_steps``
  entries are compared structurally downstream);
* numpy scalars keep their dtype via the same raw-bytes encoding;
* plain ints/floats/bools/strings/None pass through (Python's JSON float
  repr round-trips doubles exactly).

Anything else is a :class:`~repro.store.errors.StoreError` at encode time —
better to refuse an exotic user-defined metadata entry than to persist a
lossy approximation of it.
"""

from __future__ import annotations

import base64
import hashlib
import json
from typing import Dict, List, Sequence

import numpy as np

from repro.core.designer import DesignLeaf
from repro.core.metadata import MatrixMetadataSet
from repro.store.errors import StoreError

__all__ = [
    "decode_array",
    "decode_leaves",
    "decode_value",
    "encode_array",
    "encode_leaves",
    "encode_value",
    "key_digest",
    "payload_digest",
]

_ARRAY = "__ndarray__"
_TUPLE = "__tuple__"
_SCALAR = "__npscalar__"


def encode_array(arr: np.ndarray) -> Dict[str, object]:
    """Bit-exact JSON form of one array (dtype + shape + raw bytes)."""
    arr = np.ascontiguousarray(arr)
    return {
        _ARRAY: {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "data": base64.b64encode(arr.tobytes()).decode("ascii"),
        }
    }


def decode_array(payload: Dict[str, object]) -> np.ndarray:
    spec = payload[_ARRAY]
    raw = base64.b64decode(spec["data"])  # type: ignore[index]
    arr = np.frombuffer(raw, dtype=np.dtype(spec["dtype"]))  # type: ignore[index]
    arr = arr.reshape(tuple(spec["shape"]))  # type: ignore[index]
    # frombuffer views are read-only; designer output is writable — hand
    # back the same kind of object a cold design phase would have produced.
    return arr.copy()


def encode_value(value: object) -> object:
    """Recursively encode one metadata value into JSON-safe form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.ndarray):
        return encode_array(value)
    if isinstance(value, np.generic):
        return {
            _SCALAR: {
                "dtype": value.dtype.str,
                "data": base64.b64encode(value.tobytes()).decode("ascii"),
            }
        }
    if isinstance(value, tuple):
        return {_TUPLE: [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise StoreError(
                    f"cannot persist dict key {key!r} (only string keys)"
                )
            if key in (_ARRAY, _TUPLE, _SCALAR):
                # A plain dict carrying a tag key would decode as the
                # tagged type — refuse rather than silently corrupt.
                raise StoreError(
                    f"cannot persist dict key {key!r} (reserved codec tag)"
                )
            out[key] = encode_value(item)
        return out
    raise StoreError(f"cannot persist value of type {type(value).__name__}")


def decode_value(value: object) -> object:
    if isinstance(value, dict):
        if _ARRAY in value:
            return decode_array(value)  # type: ignore[arg-type]
        if _TUPLE in value:
            return tuple(decode_value(v) for v in value[_TUPLE])
        if _SCALAR in value:
            spec = value[_SCALAR]
            raw = base64.b64decode(spec["data"])  # type: ignore[index]
            return np.frombuffer(raw, dtype=np.dtype(spec["dtype"]))[0]  # type: ignore[index]
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


# ----------------------------------------------------------------------
# Design leaves
# ----------------------------------------------------------------------
def encode_leaves(leaves: Sequence[DesignLeaf]) -> List[Dict[str, object]]:
    """JSON form of a design-phase result (one entry per leaf)."""
    encoded = []
    for leaf in leaves:
        meta = {key: encode_value(leaf.meta.get(key)) for key in leaf.meta.keys()}
        encoded.append(
            {"branch_path": list(leaf.branch_path), "meta": meta}
        )
    return encoded


def decode_leaves(payload: Sequence[Dict[str, object]]) -> List[DesignLeaf]:
    leaves = []
    for entry in payload:
        store = {
            key: decode_value(value)
            for key, value in entry["meta"].items()  # type: ignore[union-attr]
        }
        leaves.append(
            DesignLeaf(
                meta=MatrixMetadataSet(store),
                branch_path=tuple(entry["branch_path"]),  # type: ignore[arg-type]
            )
        )
    return leaves


# ----------------------------------------------------------------------
# Digests
# ----------------------------------------------------------------------
def key_digest(*parts: object) -> str:
    """Content address of a store key: blake2b-128 over the parts' reprs.

    Keys are built from hashable deterministic-repr values (matrix tokens,
    design signatures, arch names); ``repr`` of those is canonical.
    """
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def payload_digest(payload: object) -> str:
    """Integrity digest of one JSON payload (canonical serialisation)."""
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canon.encode("utf-8"), digest_size=16).hexdigest()
