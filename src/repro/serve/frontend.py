"""Serving frontend: answer "give me a kernel for this matrix" requests.

The production story for AlphaSparse is a service: a user submits a sparse
matrix, the service returns a machine-designed format+kernel artifact.
Paying a full search per request is only necessary for matrices nobody has
seen before; the :class:`Frontend` resolves each request through three
tiers, cheapest first:

1. **Exact store hit** — the :class:`~repro.store.design.DesignStore`
   already holds a finished result for this exact matrix content on this
   arch: answer straight from the stored artifact, zero computation.
2. **Feature-signature nearest neighbour** — find the stored result whose
   matrix statistics (the same sparsity features the pruning rules and the
   GBT cost model condition on, log-scaled; see
   :func:`repro.store.records.feature_vector`) are closest, transplant its
   winning Operator Graph onto the new matrix, build + run + numerically
   verify it.  One candidate evaluation instead of hundreds — and the
   transferred result is written back, so it becomes an exact hit next
   time.
3. **Bounded fresh search** — fall back to a real (budget-capped) search
   through the store-backed engine; the result (and every design the
   search produced) is persisted for future requests.

Batches resolve over the engine's existing
:class:`~repro.search.evaluation.EvaluationRuntime` pool: every request's
exact-hit lookup (a pure store read) is sharded across the workers, then
misses resolve in request order — neighbour transfers and fresh searches
write results that later requests chain on, so ordering them keeps batch
output identical to sequential resolution (searches still parallelise
internally over the same pool).  Hit/miss/fallback counters are surfaced
exactly like the in-memory cache stats (``stats()`` snapshots with
``since`` deltas).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.designer import DesignError
from repro.core.graph import GraphValidationError, OperatorGraph
from repro.core.kernel.builder import BuildError
from repro.gpu.arch import GPUSpec
from repro.gpu.executor import PlanValidationError
from repro.search.engine import SearchBudget, SearchEngine
from repro.search.evaluation import matrix_token
from repro.sparse.matrix import SparseMatrix
from repro.store.design import DesignStore
from repro.store.records import (
    feature_vector,
    make_result_record,
    search_result_record,
)
from repro.workloads import Workload, ensure_engine_workload

__all__ = ["Frontend", "ServeResponse", "ServeStats", "default_serve_budget"]


def default_serve_budget(jobs: int = 1) -> SearchBudget:
    """The bounded fresh-search budget: deep enough to find a usable
    design, far below the offline-search default (320 evaluations)."""
    return SearchBudget(
        max_structures=12,
        coarse_evals_per_structure=8,
        max_total_evals=96,
        ml_top_k=4,
        jobs=jobs,
    )


@dataclass(frozen=True)
class ServeStats:
    """Per-tier request counters (``since``-comparable snapshots)."""

    exact_hits: int = 0
    neighbour_hits: int = 0
    searches: int = 0
    misses: int = 0

    @property
    def requests(self) -> int:
        return self.exact_hits + self.neighbour_hits + self.searches + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served without a fresh search."""
        total = self.requests
        return (self.exact_hits + self.neighbour_hits) / total if total else 0.0

    def since(self, other: "ServeStats") -> "ServeStats":
        return ServeStats(
            exact_hits=self.exact_hits - other.exact_hits,
            neighbour_hits=self.neighbour_hits - other.neighbour_hits,
            searches=self.searches - other.searches,
            misses=self.misses - other.misses,
        )


@dataclass
class ServeResponse:
    """One resolved request.

    ``source`` is the tier that answered: ``"store"`` (exact hit),
    ``"neighbour"`` (transferred design), ``"search"`` (fresh bounded
    search) or ``"miss"`` (the bounded search found no valid design —
    raise the budget or search offline).  ``artifact`` is the
    :func:`repro.export.program_payload` dict; materialise it with
    :func:`repro.export.write_artifact`.
    """

    matrix_name: str
    source: str
    gflops: float
    graph: Optional[OperatorGraph] = None
    artifact: Optional[Dict] = field(default=None, repr=False)
    neighbour_of: str = ""
    evaluations: int = 0
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.source != "miss"


class Frontend:
    """Store-first request resolution over one shared search engine.

    ``engine`` may be injected to share a runtime/cache beyond one
    frontend (an injected engine is the caller's to close); otherwise the
    frontend owns a store-backed engine built from ``budget``/``jobs``.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        store: DesignStore,
        budget: Optional[SearchBudget] = None,
        seed: int = 0,
        jobs: int = 1,
        engine: Optional[SearchEngine] = None,
        include_artifacts: bool = True,
        workload: Optional[Workload] = None,
    ) -> None:
        self.gpu = gpu
        self.store = store
        self.arch = gpu.name
        self.seed = seed
        #: omit artifact payloads from responses/records (smaller stores
        #: when callers only want the measured numbers)
        self.include_artifacts = include_artifacts
        self._owns_engine = engine is None
        ensure_engine_workload(engine, workload)
        self.engine = engine or SearchEngine(
            gpu,
            budget=budget or default_serve_budget(jobs),
            seed=seed,
            store=store,
            workload=workload,
        )
        #: the operation requests are resolved for: store lookups are
        #: scoped to it and the neighbour tier only considers donors of
        #: the same workload, so a SpMM request can never be answered
        #: with a SpMV artifact.
        self.workload = self.engine.workload
        self._lock = threading.Lock()
        self._stats = ServeStats()
        #: cached neighbour-ranking index (one store scan, reused across
        #: requests; invalidated whenever this frontend writes a result)
        self._metas: Optional[List[Tuple[str, Dict]]] = None

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "Frontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> ServeStats:
        with self._lock:
            return replace(self._stats)

    def refresh(self) -> None:
        """Drop the cached neighbour index — call when *another* process
        has been writing to the shared store.  This frontend's own writes
        invalidate it automatically."""
        with self._lock:
            self._metas = None

    def _cached_metas(self) -> List[Tuple[str, Dict]]:
        with self._lock:
            metas = self._metas
        if metas is None:
            metas = self.store.result_metas(self.arch)
            with self._lock:
                # Two pool workers may race on a cold cache; both scans
                # return the same listing, keep whichever landed first.
                if self._metas is None:
                    self._metas = metas
                metas = self._metas
        return metas

    def _record_result(self, token: Tuple, record: Dict) -> None:
        """Persist one result under the workload-scoped key.

        ``token`` is the *raw* matrix token everywhere in this class;
        scoping happens only at the store boundary (here and in
        :meth:`_from_store`), so self-exclusion and seed derivation keep
        using the plain matrix digest.
        """
        self.store.put_result(
            self.workload.scope_token(token), self.arch, record
        )
        self.refresh()

    def _count(self, tier: str) -> None:
        with self._lock:
            self._stats = replace(
                self._stats, **{tier: getattr(self._stats, tier) + 1}
            )

    # ------------------------------------------------------------------
    def resolve(self, matrix: SparseMatrix) -> ServeResponse:
        """Resolve one request: exact hit → neighbour → bounded search."""
        start = time.perf_counter()
        token = matrix_token(matrix)
        response = self._resolve_fast(matrix, token)
        if response is None:
            response = self._resolve_search(matrix, token)
        response.wall_time_s = time.perf_counter() - start
        return response

    def resolve_batch(
        self, matrices: Iterable[SparseMatrix]
    ) -> List[ServeResponse]:
        """Resolve many requests; responses come back in request order.

        The exact-hit tier — pure store reads — is sharded over the
        engine's worker pool.  Misses then resolve *in request order*
        (neighbour transfer, then bounded search), because those tiers
        write results that later requests may legitimately chain on: a
        request must see every earlier request's write-back, exactly as
        sequential :meth:`resolve` calls would.  Batch output is therefore
        identical to sequential resolution, deterministic for any
        ``jobs`` setting.
        """
        matrices = list(matrices)
        tokens = [matrix_token(m) for m in matrices]

        def exact(item: Tuple[SparseMatrix, Tuple]) -> Optional[ServeResponse]:
            t0 = time.perf_counter()
            response = self._from_store(item[0], item[1])
            if response is not None:
                response.wall_time_s = time.perf_counter() - t0
            return response

        exact_responses = self.engine.runtime.map(
            exact, list(zip(matrices, tokens))
        )
        responses: List[ServeResponse] = []
        for matrix, token, response in zip(matrices, tokens, exact_responses):
            if response is not None:
                self._count("exact_hits")
            else:
                t0 = time.perf_counter()
                # Re-check the exact tier too: an earlier miss in this
                # loop may just have written this matrix (duplicates).
                response = self._resolve_fast(matrix, token)
                if response is None:
                    response = self._resolve_search(matrix, token)
                response.wall_time_s = time.perf_counter() - t0
            responses.append(response)
        return responses

    # ------------------------------------------------------------------
    # Tier 1 + 2 (cheap; safe to run on pool workers)
    # ------------------------------------------------------------------
    def _resolve_fast(
        self, matrix: SparseMatrix, token: Tuple
    ) -> Optional[ServeResponse]:
        response = self._from_store(matrix, token)
        if response is not None:
            self._count("exact_hits")
            return response
        response = self._from_neighbour(matrix, token)
        if response is not None:
            self._count("neighbour_hits")
            return response
        return None

    def _from_store(
        self, matrix: SparseMatrix, token: Tuple
    ) -> Optional[ServeResponse]:
        record = self.store.get_result(
            self.workload.scope_token(token), self.arch
        )
        if record is None or record.get("graph") is None:
            return None
        return ServeResponse(
            matrix_name=matrix.name or record.get("name", ""),
            source="store",
            gflops=float(record["best_gflops"]),
            graph=OperatorGraph.from_dict(record["graph"]),
            artifact=record.get("artifact"),
            neighbour_of=record.get("neighbour_of", ""),
        )

    def _from_neighbour(
        self, matrix: SparseMatrix, token: Tuple
    ) -> Optional[ServeResponse]:
        donor = self._nearest(matrix, token)
        if donor is None:
            return None
        try:
            graph = OperatorGraph.from_dict(donor["graph"])
        except (KeyError, TypeError, ValueError, GraphValidationError):
            return None
        evaluated = self._evaluate_transfer(matrix, token, graph)
        if evaluated is None:
            return None
        gflops, program = evaluated
        donor_name = str(donor.get("name") or donor.get("matrix_digest", ""))
        record = make_result_record(
            matrix,
            self.arch,
            gflops,
            graph,
            program=program if self.include_artifacts else None,
            via="neighbour",
            neighbour_of=donor_name,
            workload=self.workload.name,
        )
        self._record_result(token, record)
        return ServeResponse(
            matrix_name=matrix.name,
            source="neighbour",
            gflops=gflops,
            graph=graph,
            artifact=record["artifact"],
            neighbour_of=donor_name,
            evaluations=1,
        )

    def _nearest(
        self, matrix: SparseMatrix, token: Tuple
    ) -> Optional[Dict]:
        """The stored result with the closest feature signature (excluding
        the matrix itself), deterministically tie-broken.

        Ranking walks only the store's lightweight ``.meta`` sidecars —
        O(results) small reads — and decodes the one chosen donor's full
        record (artifact included) at the end."""
        own = np.asarray(feature_vector(matrix))
        best: Optional[Tuple[Tuple[float, str, str], str]] = None
        for digest, meta in self._cached_metas():
            if not meta.get("has_graph"):
                continue
            # Donors must share the request's workload (absent == spmv):
            # a SpMM request never transfers a SpMV design.
            if meta.get("workload", "spmv") != self.workload.name:
                continue
            if meta.get("matrix_digest") == token[-1]:
                continue
            features = meta.get("features")
            if not features or len(features) != own.size:
                continue
            distance = float(
                np.linalg.norm(own - np.asarray(features, dtype=float))
            )
            rank = (distance, str(meta.get("name") or ""), digest)
            if best is None or rank < best[0]:
                best = (rank, digest)
        if best is None:
            return None
        return self.store.result_payload(best[1])

    def _evaluate_transfer(
        self, matrix: SparseMatrix, token: Tuple, graph: OperatorGraph
    ):
        """Build + run + numerically verify one transplanted design.

        A donor graph is a full candidate (structure + parameters); it may
        simply not apply to the new matrix — every such failure means
        falling through to the search tier, never an error."""
        x = self.workload.make_operand(matrix)
        reference = self.workload.reference(matrix, x)
        try:
            program = self.engine.evaluator.build(
                matrix, graph, token=self.workload.scope_token(token)
            )
            result = program.run(x, self.gpu, workload=self.workload)
        except (DesignError, BuildError, PlanValidationError, GraphValidationError):
            return None
        if not self.workload.allclose(result.y, reference):
            return None
        if result.gflops <= 0.0:
            return None
        return float(result.gflops), program

    # ------------------------------------------------------------------
    # Tier 3: bounded fresh search (serial across a batch; each search
    # parallelises internally over the shared pool)
    # ------------------------------------------------------------------
    def _search_seed(self, token: Tuple) -> int:
        """Content-derived seed — the corpus runner's exact scheme (same
        truncated digest), so a frontend fallback search and a ``bench
        --store`` run persist the *same* design for the same matrix and
        base seed, and request order never changes what a search finds."""
        return (self.seed + int(token[-1][:16], 16)) % (2**63)

    def _resolve_search(
        self, matrix: SparseMatrix, token: Tuple
    ) -> ServeResponse:
        seed = self._search_seed(token)
        result = self.engine.search(matrix, seed=seed)
        if result.best_graph is None:
            self._count("misses")
            return ServeResponse(
                matrix_name=matrix.name,
                source="miss",
                gflops=0.0,
                evaluations=result.total_evaluations,
            )
        record = search_result_record(
            matrix,
            self.arch,
            result,
            seed=seed,
            include_artifact=self.include_artifacts,
        )
        self._record_result(token, record)
        self._count("searches")
        return ServeResponse(
            matrix_name=matrix.name,
            source="search",
            gflops=result.best_gflops,
            graph=result.best_graph,
            artifact=record["artifact"],
            evaluations=result.total_evaluations,
        )
