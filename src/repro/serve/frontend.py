"""Serving frontend: answer "give me a kernel for this matrix" requests.

The production story for AlphaSparse is a service: a user submits a sparse
matrix, the service returns a machine-designed format+kernel artifact.
Paying a full search per request is only necessary for matrices nobody has
seen before; the :class:`Frontend` resolves each request through three
tiers, cheapest first:

1. **Exact store hit** — the :class:`~repro.store.design.DesignStore`
   already holds a finished result for this exact matrix content on this
   arch: answer straight from the stored artifact, zero computation.
2. **Feature-signature nearest neighbour** — find the stored result whose
   matrix statistics (the same sparsity features the pruning rules and the
   GBT cost model condition on, log-scaled; see
   :func:`repro.store.records.feature_vector`) are closest, transplant its
   winning Operator Graph onto the new matrix, build + run + numerically
   verify it.  One candidate evaluation instead of hundreds — and the
   transferred result is written back, so it becomes an exact hit next
   time.
3. **Bounded fresh search** — fall back to a real (budget-capped) search
   through the store-backed engine; the result (and every design the
   search produced) is persisted for future requests.

Resolution is also the unit of *graceful degradation*: every tier has a
numeric rank (``TIER_SEARCH`` > ``TIER_NEIGHBOUR`` > ``TIER_EXACT`` >
``TIER_DEGRADED``) and callers may cap the most expensive tier a request
is allowed to use (``max_tier``).  When a capped request cannot be
answered from the store — or when a tier fails with infrastructure
trouble (store I/O errors, lock timeouts) — the request walks *down* the
ladder under the frontend's :class:`~repro.reliability.retry.RetryPolicy`
and bottoms out at :meth:`Frontend.resolve_degraded`, which never raises:
it answers with the nearest stored donor's design *unverified* (flagged
in ``note``, never written back) or, with an empty store, an unmeasured
CSR baseline graph.  A ``DEGRADED`` answer is explicit (``source ==
"degraded"``) so callers can tell a best-effort artifact from a measured
one.

Batches resolve over the engine's existing
:class:`~repro.search.evaluation.EvaluationRuntime` pool: every request's
exact-hit lookup (a pure store read) is sharded across the workers, then
misses resolve in request order — neighbour transfers and fresh searches
write results that later requests chain on, so ordering them keeps batch
output identical to sequential resolution (searches still parallelise
internally over the same pool).  Hit/miss/fallback counters are surfaced
exactly like the in-memory cache stats (``stats()`` snapshots with
``since`` deltas).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.designer import DesignError
from repro.core.graph import GraphValidationError, OperatorGraph
from repro.core.kernel.builder import BuildError
from repro.gpu.arch import GPUSpec
from repro.gpu.executor import PlanValidationError
from repro.reliability.retry import RetryPolicy
from repro.search.engine import SearchBudget, SearchEngine
from repro.search.evaluation import matrix_token
from repro.sparse.matrix import SparseMatrix
from repro.store.design import DesignStore
from repro.store.errors import StoreError
from repro.store.records import (
    feature_vector,
    make_result_record,
    nearest_result_digest,
    search_result_record,
)
from repro.workloads import Workload, ensure_engine_workload

__all__ = [
    "Frontend",
    "ServeResponse",
    "ServeStats",
    "default_serve_budget",
    "default_fallback_policy",
    "TIER_DEGRADED",
    "TIER_EXACT",
    "TIER_NEIGHBOUR",
    "TIER_SEARCH",
]

#: Degradation-ladder ranks: a request's ``max_tier`` caps the most
#: expensive tier it may use; infrastructure failures walk it down one
#: rung per retry.  ``TIER_DEGRADED`` answers always succeed.
TIER_DEGRADED = 0
TIER_EXACT = 1
TIER_NEIGHBOUR = 2
TIER_SEARCH = 3


def default_fallback_policy() -> RetryPolicy:
    """Serve-tier fallback: each infrastructure failure burns one attempt
    and one ladder rung.  Store trouble (I/O errors, lock timeouts) is
    retryable; anything else is a programming error and propagates."""
    return RetryPolicy(
        attempts=4,
        base_delay_s=0.01,
        multiplier=2.0,
        max_delay_s=0.2,
        retry_on=(OSError, StoreError),
    )


def default_serve_budget(jobs: int = 1) -> SearchBudget:
    """The bounded fresh-search budget: deep enough to find a usable
    design, far below the offline-search default (320 evaluations)."""
    return SearchBudget(
        max_structures=12,
        coarse_evals_per_structure=8,
        max_total_evals=96,
        ml_top_k=4,
        jobs=jobs,
    )


@dataclass(frozen=True)
class ServeStats:
    """Per-tier request counters (``since``-comparable snapshots)."""

    exact_hits: int = 0
    neighbour_hits: int = 0
    searches: int = 0
    misses: int = 0
    #: requests re-resolved after an infrastructure failure (each ladder
    #: step counts once — a request retried twice adds two)
    retried: int = 0
    #: requests answered by the explicit DEGRADED tier
    degraded: int = 0

    @property
    def requests(self) -> int:
        return (
            self.exact_hits
            + self.neighbour_hits
            + self.searches
            + self.misses
            + self.degraded
        )

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served without a fresh search."""
        total = self.requests
        return (self.exact_hits + self.neighbour_hits) / total if total else 0.0

    def since(self, other: "ServeStats") -> "ServeStats":
        return ServeStats(
            exact_hits=self.exact_hits - other.exact_hits,
            neighbour_hits=self.neighbour_hits - other.neighbour_hits,
            searches=self.searches - other.searches,
            misses=self.misses - other.misses,
            retried=self.retried - other.retried,
            degraded=self.degraded - other.degraded,
        )


@dataclass
class ServeResponse:
    """One resolved request.

    ``source`` is the tier that answered: ``"store"`` (exact hit),
    ``"neighbour"`` (transferred design), ``"search"`` (fresh bounded
    search), ``"degraded"`` (best-effort answer under failure or a tier
    cap — ``note`` says what it is and ``gflops`` is *not* a measurement
    on this matrix) or ``"miss"`` (the bounded search found no valid
    design — raise the budget or search offline).  ``artifact`` is the
    :func:`repro.export.program_payload` dict; materialise it with
    :func:`repro.export.write_artifact`.
    """

    matrix_name: str
    source: str
    gflops: float
    graph: Optional[OperatorGraph] = None
    artifact: Optional[Dict] = field(default=None, repr=False)
    neighbour_of: str = ""
    evaluations: int = 0
    wall_time_s: float = 0.0
    #: human-readable caveat for degraded answers ("" otherwise)
    note: str = ""

    @property
    def ok(self) -> bool:
        return self.source != "miss"


class Frontend:
    """Store-first request resolution over one shared search engine.

    ``engine`` may be injected to share a runtime/cache beyond one
    frontend (an injected engine is the caller's to close); otherwise the
    frontend owns a store-backed engine built from ``budget``/``jobs``.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        store: DesignStore,
        budget: Optional[SearchBudget] = None,
        seed: int = 0,
        jobs: int = 1,
        engine: Optional[SearchEngine] = None,
        include_artifacts: bool = True,
        workload: Optional[Workload] = None,
        fallback_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.gpu = gpu
        self.store = store
        self.arch = gpu.name
        self.seed = seed
        #: omit artifact payloads from responses/records (smaller stores
        #: when callers only want the measured numbers)
        self.include_artifacts = include_artifacts
        self._owns_engine = engine is None
        ensure_engine_workload(engine, workload)
        self.engine = engine or SearchEngine(
            gpu,
            budget=budget or default_serve_budget(jobs),
            seed=seed,
            store=store,
            workload=workload,
        )
        #: the operation requests are resolved for: store lookups are
        #: scoped to it and the neighbour tier only considers donors of
        #: the same workload, so a SpMM request can never be answered
        #: with a SpMV artifact.
        self.workload = self.engine.workload
        #: degradation-ladder retry budget for infrastructure failures
        self.fallback_policy = fallback_policy or default_fallback_policy()
        self._lock = threading.Lock()
        self._stats = ServeStats()
        #: cached neighbour-ranking index (one store scan, reused across
        #: requests; invalidated whenever this frontend writes a result)
        self._metas: Optional[List[Tuple[str, Dict]]] = None

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "Frontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> ServeStats:
        with self._lock:
            return replace(self._stats)

    def refresh(self) -> None:
        """Drop the cached neighbour index — call when *another* process
        has been writing to the shared store.  This frontend's own writes
        invalidate it automatically."""
        with self._lock:
            self._metas = None

    def _cached_metas(self) -> List[Tuple[str, Dict]]:
        with self._lock:
            metas = self._metas
        if metas is None:
            metas = self.store.result_metas(self.arch)
            with self._lock:
                # Two pool workers may race on a cold cache; both scans
                # return the same listing, keep whichever landed first.
                if self._metas is None:
                    self._metas = metas
                metas = self._metas
        return metas

    def _record_result(self, token: Tuple, record: Dict) -> None:
        """Persist one result under the workload-scoped key.

        ``token`` is the *raw* matrix token everywhere in this class;
        scoping happens only at the store boundary (here and in
        :meth:`_from_store`), so self-exclusion and seed derivation keep
        using the plain matrix digest.
        """
        self.store.put_result(
            self.workload.scope_token(token), self.arch, record
        )
        self.refresh()

    def _count(self, tier: str) -> None:
        with self._lock:
            self._stats = replace(
                self._stats, **{tier: getattr(self._stats, tier) + 1}
            )

    # ------------------------------------------------------------------
    def resolve(
        self, matrix: SparseMatrix, max_tier: int = TIER_SEARCH
    ) -> ServeResponse:
        """Resolve one request: exact hit → neighbour → bounded search.

        ``max_tier`` caps the most expensive tier: ``TIER_NEIGHBOUR``
        forbids fresh searches (a capped request the store cannot answer
        degrades instead of searching), ``TIER_EXACT`` additionally
        forbids transfer evaluation, ``TIER_DEGRADED`` answers from
        :meth:`resolve_degraded` outright.
        """
        start = time.perf_counter()
        token = matrix_token(matrix)
        response = self._resolve_tier(matrix, token, max_tier)
        response.wall_time_s = time.perf_counter() - start
        return response

    def resolve_batch(
        self, matrices: Iterable[SparseMatrix], max_tier: int = TIER_SEARCH
    ) -> List[ServeResponse]:
        """Resolve many requests; responses come back in request order.

        The exact-hit tier — pure store reads — is sharded over the
        engine's worker pool.  Misses then resolve *in request order*
        (neighbour transfer, then bounded search), because those tiers
        write results that later requests may legitimately chain on: a
        request must see every earlier request's write-back, exactly as
        sequential :meth:`resolve` calls would.  Batch output is therefore
        identical to sequential resolution, deterministic for any
        ``jobs`` setting.

        One request's failure never loses the rest of the batch: a store
        read that dies on a pool worker simply falls through to the
        ordered loop, and there each request is re-resolved individually
        down the degradation ladder (:attr:`fallback_policy`), bottoming
        out at a ``DEGRADED`` answer.  The ``retried``/``degraded``
        counters on :meth:`stats` surface how often that happened.
        """
        matrices = list(matrices)
        tokens = [matrix_token(m) for m in matrices]

        def exact(item: Tuple[SparseMatrix, Tuple]) -> Optional[ServeResponse]:
            t0 = time.perf_counter()
            try:
                response = self._from_store(item[0], item[1])
            except self.fallback_policy.retry_on:
                # an injected (or real) store failure on a worker must
                # not poison the batch: treat as a miss, the ordered
                # loop below retries this request with the full ladder
                return None
            if response is not None:
                response.wall_time_s = time.perf_counter() - t0
            return response

        exact_responses = self.engine.runtime.map(
            exact, list(zip(matrices, tokens))
        )
        responses: List[ServeResponse] = []
        for matrix, token, response in zip(matrices, tokens, exact_responses):
            if response is not None:
                self._count("exact_hits")
            else:
                t0 = time.perf_counter()
                # Re-check the exact tier too: an earlier miss in this
                # loop may just have written this matrix (duplicates).
                response = self._resolve_with_fallback(matrix, token, max_tier)
                response.wall_time_s = time.perf_counter() - t0
            responses.append(response)
        return responses

    def _resolve_tier(
        self, matrix: SparseMatrix, token: Tuple, max_tier: int
    ) -> ServeResponse:
        """One pass down the tiers, capped at ``max_tier``.  Tier failures
        propagate; :meth:`_resolve_with_fallback` adds the retry ladder."""
        if max_tier <= TIER_DEGRADED:
            return self.resolve_degraded(matrix, token)
        response = self._from_store(matrix, token)
        if response is not None:
            self._count("exact_hits")
            return response
        if max_tier >= TIER_NEIGHBOUR:
            response = self._from_neighbour(matrix, token)
            if response is not None:
                self._count("neighbour_hits")
                return response
        if max_tier >= TIER_SEARCH:
            return self._resolve_search(matrix, token)
        return self.resolve_degraded(matrix, token)

    def _resolve_with_fallback(
        self, matrix: SparseMatrix, token: Tuple, max_tier: int
    ) -> ServeResponse:
        """Walk the degradation ladder under :attr:`fallback_policy`.

        Each retryable infrastructure failure (store I/O, lock timeout)
        burns one policy attempt *and* one tier: a request that failed at
        the search tier retries capped at neighbour, then exact, then
        answers degraded.  Non-retryable exceptions propagate — a
        programming error must never be papered over as degradation.
        """
        policy = self.fallback_policy
        tier = max_tier
        for attempt in range(policy.attempts):
            try:
                return self._resolve_tier(matrix, token, tier)
            except policy.retry_on:
                self._count("retried")
                tier -= 1
                if tier <= TIER_DEGRADED or attempt + 1 >= policy.attempts:
                    break
                time.sleep(policy.delay(attempt))
        return self.resolve_degraded(matrix, token)

    def resolve_degraded(
        self, matrix: SparseMatrix, token: Optional[Tuple] = None
    ) -> ServeResponse:
        """The explicit DEGRADED answer: best known artifact, zero
        evaluation, never raises.

        Preference order: the nearest stored donor's design *unverified*
        (``gflops`` is the donor's measurement on the donor's matrix, not
        this one — ``note`` says so, and nothing is written back), else an
        unmeasured CSR baseline graph (the paper evaluation's universal
        fallback format), else a graph-less answer carrying only the
        explanation.  ``ok`` stays True: the caller got the best artifact
        the degraded service could produce, explicitly flagged.
        """
        if token is None:
            token = matrix_token(matrix)
        graph = None
        gflops = 0.0
        donor_name = ""
        note = ""
        try:
            donor = self._nearest(matrix, token)
        except Exception:
            donor = None
        if donor is not None:
            try:
                graph = OperatorGraph.from_dict(donor["graph"])
                donor_name = str(
                    donor.get("name") or donor.get("matrix_digest", "")
                )
                gflops = float(donor.get("best_gflops", 0.0))
                note = (
                    f"degraded: unverified transfer from {donor_name!r}; "
                    "gflops is the donor's measurement, not this matrix's"
                )
            except (KeyError, TypeError, ValueError, GraphValidationError):
                graph = None
        if graph is None:
            try:
                from repro.baselines import get_baseline

                graph = get_baseline("CSR").graph(matrix)
                gflops = 0.0
                note = "degraded: unmeasured CSR baseline graph"
            except Exception:
                graph = None
                note = (
                    "degraded: no stored donor and no applicable baseline; "
                    "answer carries no design"
                )
        self._count("degraded")
        return ServeResponse(
            matrix_name=matrix.name,
            source="degraded",
            gflops=gflops,
            graph=graph,
            neighbour_of=donor_name,
            note=note,
        )

    # ------------------------------------------------------------------
    # Tier 1 + 2 (cheap; safe to run on pool workers)
    # ------------------------------------------------------------------
    def _resolve_fast(
        self, matrix: SparseMatrix, token: Tuple
    ) -> Optional[ServeResponse]:
        response = self._from_store(matrix, token)
        if response is not None:
            self._count("exact_hits")
            return response
        response = self._from_neighbour(matrix, token)
        if response is not None:
            self._count("neighbour_hits")
            return response
        return None

    def _from_store(
        self, matrix: SparseMatrix, token: Tuple
    ) -> Optional[ServeResponse]:
        record = self.store.get_result(
            self.workload.scope_token(token), self.arch
        )
        if record is None or record.get("graph") is None:
            return None
        return ServeResponse(
            matrix_name=matrix.name or record.get("name", ""),
            source="store",
            gflops=float(record["best_gflops"]),
            graph=OperatorGraph.from_dict(record["graph"]),
            artifact=record.get("artifact"),
            neighbour_of=record.get("neighbour_of", ""),
        )

    def _from_neighbour(
        self, matrix: SparseMatrix, token: Tuple
    ) -> Optional[ServeResponse]:
        donor = self._nearest(matrix, token)
        if donor is None:
            return None
        try:
            graph = OperatorGraph.from_dict(donor["graph"])
        except (KeyError, TypeError, ValueError, GraphValidationError):
            return None
        evaluated = self._evaluate_transfer(matrix, token, graph)
        if evaluated is None:
            return None
        gflops, program = evaluated
        donor_name = str(donor.get("name") or donor.get("matrix_digest", ""))
        record = make_result_record(
            matrix,
            self.arch,
            gflops,
            graph,
            program=program if self.include_artifacts else None,
            via="neighbour",
            neighbour_of=donor_name,
            workload=self.workload.name,
        )
        self._record_result(token, record)
        return ServeResponse(
            matrix_name=matrix.name,
            source="neighbour",
            gflops=gflops,
            graph=graph,
            artifact=record["artifact"],
            neighbour_of=donor_name,
            evaluations=1,
        )

    def _nearest(
        self, matrix: SparseMatrix, token: Tuple
    ) -> Optional[Dict]:
        """The stored result with the closest feature signature (excluding
        the matrix itself), deterministically tie-broken.

        Ranking walks only the store's lightweight ``.meta`` sidecars —
        O(results) small reads — and decodes the one chosen donor's full
        record (artifact included) at the end.  The ranking rule itself is
        :func:`repro.store.records.nearest_result_digest`, shared with the
        engine's cross-matrix warm start."""
        digest = nearest_result_digest(
            self._cached_metas(),
            feature_vector(matrix),
            workload=self.workload.name,
            exclude_digest=token[-1],
        )
        if digest is None:
            return None
        return self.store.result_payload(digest)

    def _evaluate_transfer(
        self, matrix: SparseMatrix, token: Tuple, graph: OperatorGraph
    ):
        """Build + run + numerically verify one transplanted design.

        A donor graph is a full candidate (structure + parameters); it may
        simply not apply to the new matrix — every such failure means
        falling through to the search tier, never an error."""
        x = self.workload.make_operand(matrix)
        reference = self.workload.reference(matrix, x)
        try:
            program = self.engine.evaluator.build(
                matrix, graph, token=self.workload.scope_token(token)
            )
            result = program.run(x, self.gpu, workload=self.workload)
        except (DesignError, BuildError, PlanValidationError, GraphValidationError):
            return None
        if not self.workload.allclose(result.y, reference):
            return None
        if result.gflops <= 0.0:
            return None
        return float(result.gflops), program

    # ------------------------------------------------------------------
    # Tier 3: bounded fresh search (serial across a batch; each search
    # parallelises internally over the shared pool)
    # ------------------------------------------------------------------
    def _search_seed(self, token: Tuple) -> int:
        """Content-derived seed — the corpus runner's exact scheme (same
        truncated digest), so a frontend fallback search and a ``bench
        --store`` run persist the *same* design for the same matrix and
        base seed, and request order never changes what a search finds."""
        return (self.seed + int(token[-1][:16], 16)) % (2**63)

    def _resolve_search(
        self, matrix: SparseMatrix, token: Tuple
    ) -> ServeResponse:
        seed = self._search_seed(token)
        result = self.engine.search(matrix, seed=seed)
        if result.best_graph is None:
            self._count("misses")
            return ServeResponse(
                matrix_name=matrix.name,
                source="miss",
                gflops=0.0,
                evaluations=result.total_evaluations,
            )
        record = search_result_record(
            matrix,
            self.arch,
            result,
            seed=seed,
            include_artifact=self.include_artifacts,
        )
        self._record_result(token, record)
        self._count("searches")
        return ServeResponse(
            matrix_name=matrix.name,
            source="search",
            gflops=result.best_gflops,
            graph=result.best_graph,
            artifact=record["artifact"],
            evaluations=result.total_evaluations,
        )
