"""Supervised multi-process resolver pool over one shared design store.

One :class:`~repro.serve.frontend.Frontend` answers requests in-process;
this module scales that out and — more importantly — makes it survive the
failures a real serving deployment sees: worker processes that die
mid-request, requests that hang past their deadline, a store that throws
I/O errors.  The design:

* **N resolver workers**, each a forked process owning its *own* store
  handle (journal-backend file locking mediates the shared file) and its
  own store-backed search engine.  Each worker talks to the supervisor
  over a **private duplex pipe** — deliberately *not* a shared queue:
  shared ``multiprocessing.Queue`` locks are held briefly by whichever
  process is sending, so killing a worker at the wrong instant would
  poison the lock for every survivor.  With per-worker pipes a dying
  worker can only break its own channel, which the supervisor reads as
  the death it is.
* **Supervision** — the parent schedules every request itself (it always
  knows which worker holds which request), watches worker liveness
  (``Process.is_alive`` plus a shared heartbeat array the workers stamp
  each loop) and per-request deadlines.  A dead worker is restarted (up
  to ``max_restarts``) and its in-flight request re-dispatched; a request
  past its deadline gets its worker killed and re-dispatched likewise.
* **Degradation on re-dispatch** — every re-dispatch lowers the request's
  tier cap by one rung (search → neighbour → exact → degraded), so a
  request that keeps killing workers cannot livelock the pool: it
  monotonically walks down to an answer that cannot fail.
* **At-most-once search** — before running the expensive search tier a
  worker must win a durable *claim record* in the store
  (:meth:`claim_search`, a journaled append that survives the claimant's
  death).  A re-dispatched request that fails to claim answers from the
  cheap tiers instead of re-running a search another worker may have
  completed — or may still be running.
* **Parent fallback** — when restarts are exhausted or a request falls
  off the ladder, the parent answers it inline (still honouring the
  claim fence), bottoming out at an explicit ``DEGRADED`` response.  The
  pool therefore answers **every** request, always; the counters in
  :class:`PoolStats` say how gracefully.

Fault injection (:class:`~repro.reliability.faults.FaultPlan`) is shipped
to every worker, which derives the same deterministic schedule: a
``worker_kill`` decision is a real ``os._exit`` mid-request, a
``worker_hang`` a real stall — the chaos suite drives the exact paths
described above, reproducibly.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from collections import deque
from dataclasses import dataclass, replace
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.core.graph import OperatorGraph
from repro.gpu.arch import GPUSpec
from repro.reliability.faults import FaultPlan
from repro.search.engine import SearchBudget
from repro.serve.frontend import (
    TIER_DEGRADED,
    TIER_SEARCH,
    Frontend,
    ServeResponse,
    default_serve_budget,
)
from repro.sparse.matrix import SparseMatrix
from repro.store import open_store
from repro.store.codec import key_digest
from repro.workloads import DEFAULT_WORKLOAD_NAME, get_workload

__all__ = ["ResolverPool", "PoolStats", "search_claim_key"]


def search_claim_key(workload: str, arch: str, matrix_digest: str) -> str:
    """The durable at-most-once fence for one search target."""
    return key_digest("search-claim", workload, arch, matrix_digest)


@dataclass(frozen=True)
class PoolStats:
    """Supervision counters for one pool lifetime."""

    requests: int = 0
    answered: int = 0
    #: answers produced by the explicit DEGRADED tier (worker or parent)
    degraded: int = 0
    #: re-dispatches after a worker death, deadline kill, or tier failure
    redispatched: int = 0
    #: worker processes restarted by the supervisor
    restarts: int = 0
    #: workers killed for blowing a request deadline
    deadline_kills: int = 0
    #: requests the parent answered inline (ladder exhausted)
    parent_fallbacks: int = 0
    #: search claims lost to another worker (at-most-once fence held)
    claims_lost: int = 0


def _response_doc(response: ServeResponse) -> Dict:
    """Pipe-safe dict form of a response (graph as its dict encoding)."""
    return {
        "matrix_name": response.matrix_name,
        "source": response.source,
        "gflops": response.gflops,
        "graph": None if response.graph is None else response.graph.to_dict(),
        "artifact": response.artifact,
        "neighbour_of": response.neighbour_of,
        "evaluations": response.evaluations,
        "wall_time_s": response.wall_time_s,
        "note": response.note,
    }


def _response_from_doc(doc: Dict) -> ServeResponse:
    graph = doc.get("graph")
    return ServeResponse(
        matrix_name=doc["matrix_name"],
        source=doc["source"],
        gflops=doc["gflops"],
        graph=None if graph is None else OperatorGraph.from_dict(graph),
        artifact=doc.get("artifact"),
        neighbour_of=doc.get("neighbour_of", ""),
        evaluations=doc.get("evaluations", 0),
        wall_time_s=doc.get("wall_time_s", 0.0),
        note=doc.get("note", ""),
    )


def _worker_main(
    worker_id: int,
    conn: Connection,
    store_path: str,
    backend: str,
    gpu: GPUSpec,
    budget: SearchBudget,
    seed: int,
    workload_name: str,
    include_artifacts: bool,
    faults: Optional[FaultPlan],
    heartbeat,
) -> None:
    """Resolver worker: serve tasks from the private pipe until told to
    stop (a ``None`` task or the pipe closing).

    Tasks are ``(req_id, attempt, max_tier, matrix)``.  Injected
    kills/hangs happen right after a task is received — the window where
    a real crash is hardest to tell from slowness.  Results go back as
    ``("done", req_id, attempt, doc, claim_lost)`` or
    ``("fail", req_id, attempt, error)``.
    """
    injector = faults.injector() if faults is not None else None
    try:
        store = open_store(store_path, backend=backend, faults=faults)
        frontend = Frontend(
            gpu,
            store,
            budget=budget,
            seed=seed,
            workload=get_workload(workload_name),
            include_artifacts=include_artifacts,
        )
    except Exception as exc:  # startup failure: report and die visibly
        try:
            conn.send(("worker-error", repr(exc)))
        except (BrokenPipeError, OSError):
            pass
        return
    arch = gpu.name
    workload_name = frontend.workload.name
    while True:
        heartbeat[worker_id] = time.monotonic()
        try:
            if not conn.poll(0.05):
                continue
            task = conn.recv()
        except (EOFError, OSError):
            break  # supervisor went away
        if task is None:
            break
        req_id, attempt, max_tier, matrix = task
        heartbeat[worker_id] = time.monotonic()
        if injector is not None and injector.decide(
            "worker_kill", req_id, attempt
        ):
            os._exit(17)  # a real death, not an exception
        if injector is not None and injector.decide(
            "worker_hang", req_id, attempt
        ):
            time.sleep(faults.worker_hang_s)
        try:
            response, claim_lost = _resolve_task(
                frontend, store, workload_name, arch, matrix, max_tier
            )
            message = (
                "done",
                req_id,
                attempt,
                _response_doc(response),
                claim_lost,
            )
        except Exception as exc:
            message = ("fail", req_id, attempt, repr(exc))
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            break


def _resolve_task(
    frontend: Frontend,
    store,
    workload_name: str,
    arch: str,
    matrix: SparseMatrix,
    max_tier: int,
) -> Tuple[ServeResponse, bool]:
    """Resolve one request with the search tier behind the claim fence.

    Cheap tiers run first; only when they degrade *and* the request is
    still allowed to search do we try to claim the search execution.
    Losing the claim means another worker ran (or is running) this
    search: the degraded answer stands rather than duplicating work.
    """
    from repro.search.evaluation import matrix_token

    cheap_cap = min(max_tier, TIER_SEARCH - 1)
    response = frontend.resolve(matrix, max_tier=cheap_cap)
    if response.source != "degraded" or max_tier < TIER_SEARCH:
        return response, False
    token = matrix_token(matrix)
    claim = search_claim_key(workload_name, arch, token[-1])
    if not store.claim_search(claim):
        return response, True
    start = time.perf_counter()
    searched = frontend._resolve_search(matrix, token)
    searched.wall_time_s = time.perf_counter() - start
    return searched, False


@dataclass
class _Slot:
    """One worker position: process handle, its pipe, current request."""

    proc: Optional[mp.Process] = None
    conn: Optional[Connection] = None
    req_id: Optional[int] = None
    started: float = 0.0


class ResolverPool:
    """Supervised worker pool answering batches of matrix requests.

    The pool's contract is *an answer for every request, in request
    order* — measured answers when the infrastructure cooperates,
    explicit ``DEGRADED`` answers when it does not.  See the module
    docstring for the supervision protocol.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        store_path: str | os.PathLike,
        workers: int = 2,
        backend: str = "auto",
        budget: Optional[SearchBudget] = None,
        seed: int = 0,
        workload: str = DEFAULT_WORKLOAD_NAME,
        include_artifacts: bool = True,
        deadline_s: float = 30.0,
        max_restarts: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.gpu = gpu
        self.store_path = os.fspath(store_path)
        self.backend = backend
        self.workers = workers
        self.budget = budget or default_serve_budget()
        self.seed = seed
        self.workload = workload
        self.include_artifacts = include_artifacts
        #: per-request wall-clock deadline; a worker past it is killed
        #: and the request re-dispatched one tier down
        self.deadline_s = deadline_s
        self.max_restarts = (
            workers * 3 if max_restarts is None else max_restarts
        )
        self.faults = faults
        # the store must exist before workers race to open it
        open_store(self.store_path, backend=backend)
        self._ctx = mp.get_context("fork")
        self._heartbeat = self._ctx.Array("d", [0.0] * workers)
        self._slots: List[_Slot] = [_Slot() for _ in range(workers)]
        self._restarts_used = 0
        self._stats = PoolStats()
        self._parent_frontend: Optional[Frontend] = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "ResolverPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> PoolStats:
        return replace(self._stats)

    def heartbeats(self) -> List[float]:
        """Seconds since each worker's last heartbeat (telemetry)."""
        now = time.monotonic()
        return [now - t if t else float("inf") for t in self._heartbeat]

    def _bump(self, **deltas: int) -> None:
        self._stats = replace(
            self._stats,
            **{k: getattr(self._stats, k) + v for k, v in deltas.items()},
        )

    def _spawn(self, worker_id: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                child_conn,
                self.store_path,
                self.backend,
                self.gpu,
                self.budget,
                self.seed,
                self.workload,
                self.include_artifacts,
                self.faults,
                self._heartbeat,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()  # the child's end lives in the child only
        slot = self._slots[worker_id]
        slot.proc, slot.conn, slot.req_id = proc, parent_conn, None
        self._heartbeat[worker_id] = time.monotonic()

    def _ensure_workers(self) -> None:
        for worker_id, slot in enumerate(self._slots):
            if slot.proc is None:
                self._spawn(worker_id)

    def _retire(self, worker_id: int, kill: bool = False) -> Optional[int]:
        """Tear down one worker slot; returns its in-flight req_id."""
        slot = self._slots[worker_id]
        req_id = slot.req_id
        if slot.proc is not None:
            if kill and slot.proc.is_alive():
                slot.proc.terminate()
            slot.proc.join(timeout=1.0)
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join(timeout=1.0)
        if slot.conn is not None:
            slot.conn.close()
        slot.proc, slot.conn, slot.req_id = None, None, None
        return req_id

    def _restart(self, worker_id: int) -> None:
        if self._restarts_used < self.max_restarts:
            self._restarts_used += 1
            self._bump(restarts=1)
            self._spawn(worker_id)

    def _parent(self) -> Frontend:
        """Lazy in-process frontend for supervisor-side fallbacks (it
        opens its own store handle, *without* fault injection: the parent
        is the reliability backstop, not a chaos subject)."""
        if self._parent_frontend is None:
            store = open_store(self.store_path, backend=self.backend)
            self._parent_frontend = Frontend(
                self.gpu,
                store,
                budget=self.budget,
                seed=self.seed,
                workload=get_workload(self.workload),
                include_artifacts=self.include_artifacts,
            )
        return self._parent_frontend

    def close(self) -> None:
        for worker_id, slot in enumerate(self._slots):
            if slot.conn is not None:
                try:
                    slot.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            self._retire(worker_id)
        if self._parent_frontend is not None:
            self._parent_frontend.close()
            self._parent_frontend = None

    # ------------------------------------------------------------------
    def resolve_batch(
        self,
        matrices: Iterable[SparseMatrix],
        max_tier: int = TIER_SEARCH,
    ) -> List[ServeResponse]:
        """Answer every request; responses come back in request order."""
        matrices = list(matrices)
        if not matrices:
            return []
        self._ensure_workers()
        self._bump(requests=len(matrices))
        #: req_id -> (attempt, tier) for requests not yet answered
        pending: Dict[int, Tuple[int, int]] = {
            req_id: (0, max_tier) for req_id in range(len(matrices))
        }
        backlog: Deque[int] = deque(range(len(matrices)))
        answers: Dict[int, ServeResponse] = {}

        while len(answers) < len(matrices):
            self._drain(answers, pending, backlog)
            now = time.monotonic()
            self._check_workers(pending, backlog)
            self._check_deadlines(pending, backlog, now)
            self._assign(matrices, pending, backlog, answers)
            if len(answers) < len(matrices):
                time.sleep(0.005)
        self._bump(answered=len(matrices))
        return [answers[req_id] for req_id in range(len(matrices))]

    # ------------------------------------------------------------------
    def _assign(
        self,
        matrices: List[SparseMatrix],
        pending: Dict[int, Tuple[int, int]],
        backlog: Deque[int],
        answers: Dict[int, ServeResponse],
    ) -> None:
        """Hand backlog requests to idle workers; answer inline the ones
        the ladder (or the worker fleet) has exhausted."""
        while backlog:
            req_id = backlog[0]
            if req_id in answers:
                backlog.popleft()
                continue
            attempt, tier = pending[req_id]
            if tier <= TIER_DEGRADED or self._workers_exhausted():
                backlog.popleft()
                self._answer_inline(req_id, matrices[req_id], tier, answers)
                pending.pop(req_id, None)
                continue
            slot_id = self._idle_worker()
            if slot_id is None:
                return
            backlog.popleft()
            slot = self._slots[slot_id]
            try:
                slot.conn.send((req_id, attempt, tier, matrices[req_id]))
            except (BrokenPipeError, OSError):
                # died since the liveness sweep: requeue, let
                # _check_workers reap and restart it
                backlog.appendleft(req_id)
                return
            slot.req_id = req_id
            slot.started = time.monotonic()

    def _idle_worker(self) -> Optional[int]:
        for worker_id, slot in enumerate(self._slots):
            if (
                slot.proc is not None
                and slot.proc.is_alive()
                and slot.conn is not None
                and slot.req_id is None
            ):
                return worker_id
        return None

    def _drain(
        self,
        answers: Dict[int, ServeResponse],
        pending: Dict[int, Tuple[int, int]],
        backlog: Deque[int],
    ) -> None:
        conns = {
            slot.conn: worker_id
            for worker_id, slot in enumerate(self._slots)
            if slot.conn is not None
        }
        if not conns:
            return
        for conn in connection_wait(list(conns), timeout=0.02):
            worker_id = conns[conn]
            slot = self._slots[worker_id]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                # death mid-message; _check_workers reaps the process
                continue
            kind = message[0]
            if kind == "done":
                _, req_id, attempt, doc, claim_lost = message
                slot.req_id = None
                if claim_lost:
                    self._bump(claims_lost=1)
                if req_id not in answers:
                    response = _response_from_doc(doc)
                    if response.source == "degraded":
                        self._bump(degraded=1)
                    answers[req_id] = response
                    pending.pop(req_id, None)
            elif kind == "fail":
                _, req_id, attempt, error = message
                slot.req_id = None
                if req_id not in answers:
                    self._downgrade(req_id, pending, backlog)
            elif kind == "worker-error":
                # startup failure; the process is exiting on its own and
                # _check_workers will reap and restart under the budget
                pass

    def _check_workers(
        self,
        pending: Dict[int, Tuple[int, int]],
        backlog: Deque[int],
    ) -> None:
        """Reap dead workers, re-dispatch their requests, restart them."""
        for worker_id, slot in enumerate(self._slots):
            if slot.proc is None or slot.proc.is_alive():
                continue
            req_id = self._retire(worker_id)
            if req_id is not None and req_id in pending:
                self._downgrade(req_id, pending, backlog)
            self._restart(worker_id)

    def _check_deadlines(
        self,
        pending: Dict[int, Tuple[int, int]],
        backlog: Deque[int],
        now: float,
    ) -> None:
        """Kill workers that blew a request deadline (hangs included)."""
        if self.deadline_s is None:
            return
        for worker_id, slot in enumerate(self._slots):
            if slot.req_id is None or now - slot.started <= self.deadline_s:
                continue
            self._bump(deadline_kills=1)
            req_id = self._retire(worker_id, kill=True)
            if req_id is not None and req_id in pending:
                self._downgrade(req_id, pending, backlog)
            self._restart(worker_id)

    def _downgrade(
        self,
        req_id: int,
        pending: Dict[int, Tuple[int, int]],
        backlog: Deque[int],
    ) -> None:
        """Queue one failed request for re-dispatch one tier down."""
        attempt, tier = pending.get(req_id, (0, TIER_SEARCH))
        pending[req_id] = (attempt + 1, tier - 1)
        self._bump(redispatched=1)
        backlog.append(req_id)

    def _workers_exhausted(self) -> bool:
        alive = any(
            slot.proc is not None and slot.proc.is_alive()
            for slot in self._slots
        )
        return not alive and self._restarts_used >= self.max_restarts

    def _answer_inline(
        self,
        req_id: int,
        matrix: SparseMatrix,
        tier: int,
        answers: Dict[int, ServeResponse],
    ) -> None:
        """Parent-side backstop: resolve inline at the request's current
        tier (the search tier still honours the claim fence), falling to
        an explicit DEGRADED answer on any failure — never raises."""
        frontend = self._parent()
        try:
            response, claim_lost = _resolve_task(
                frontend,
                frontend.store,
                frontend.workload.name,
                self.gpu.name,
                matrix,
                max(tier, TIER_DEGRADED),
            )
            if claim_lost:
                self._bump(claims_lost=1)
        except Exception:
            response = frontend.resolve_degraded(matrix)
        self._bump(parent_fallbacks=1)
        if response.source == "degraded":
            self._bump(degraded=1)
        answers[req_id] = response
