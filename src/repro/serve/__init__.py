"""Serving layer: store-first resolution of kernel requests.

``frontend.resolve(matrix)`` answers by exact design-store hit, then
feature-signature nearest-neighbour transfer, then a bounded fresh search
— see :mod:`repro.serve.frontend`.
"""

from repro.serve.frontend import (
    Frontend,
    ServeResponse,
    ServeStats,
    default_serve_budget,
)

__all__ = ["Frontend", "ServeResponse", "ServeStats", "default_serve_budget"]
