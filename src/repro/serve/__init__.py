"""Serving layer: store-first resolution of kernel requests.

``frontend.resolve(matrix)`` answers by exact design-store hit, then
feature-signature nearest-neighbour transfer, then a bounded fresh search
— see :mod:`repro.serve.frontend`.  Requests degrade gracefully down that
ladder under infrastructure failure, bottoming out at an explicit
``DEGRADED`` answer; :mod:`repro.serve.pool` scales resolution across a
supervised multi-process worker pool that restarts crashed workers and
answers every request.
"""

from repro.serve.frontend import (
    TIER_DEGRADED,
    TIER_EXACT,
    TIER_NEIGHBOUR,
    TIER_SEARCH,
    Frontend,
    ServeResponse,
    ServeStats,
    default_fallback_policy,
    default_serve_budget,
)
from repro.serve.pool import PoolStats, ResolverPool, search_claim_key

__all__ = [
    "Frontend",
    "ServeResponse",
    "ServeStats",
    "ResolverPool",
    "PoolStats",
    "search_claim_key",
    "default_serve_budget",
    "default_fallback_policy",
    "TIER_DEGRADED",
    "TIER_EXACT",
    "TIER_NEIGHBOUR",
    "TIER_SEARCH",
]
