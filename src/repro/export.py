"""Artifact export: persist a generated SpMV program to disk.

The paper positions AlphaSparse as "an extremely optimized library
generator" whose output "can be directly called in real-world applications"
(§III, artifact description).  This module writes that artifact: a
directory containing the machine-designed format's arrays (``.npy``), the
generated kernel source, the winning Operator Graph (JSON, reloadable), and
a manifest — everything a downstream build would need.

Export is split into two halves so the design store can persist the same
artifact *inline*:

:func:`program_payload`
    The artifact as one JSON-safe dict — sources, launch geometry,
    operator provenance and format arrays (bit-exact base64 encoding,
    compressed arrays as their closed-form model).  This is what a
    :class:`~repro.store.design.DesignStore` result entry carries, so the
    serving frontend can hand back a complete artifact without rebuilding
    the program.

:func:`write_artifact`
    Materialises a payload into the on-disk directory layout below.

:func:`export_program` is the original one-shot composition of the two.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

import numpy as np

from repro.core.graph import OperatorGraph
from repro.core.kernel.program import GeneratedProgram
from repro.store.codec import decode_array, encode_array

__all__ = [
    "export_program",
    "program_payload",
    "write_artifact",
    "load_exported_graph",
    "read_manifest",
]

_MANIFEST = "manifest.json"
_GRAPH = "operator_graph.json"


def program_payload(
    program: GeneratedProgram,
    graph: Optional[OperatorGraph] = None,
    encoded: bool = True,
) -> Dict[str, object]:
    """The program's complete artifact as one JSON-safe dict.

    ``encoded=False`` keeps format arrays as raw ndarrays instead of
    base64 — the plain disk-export path uses it to skip the encode/decode
    round-trip entirely (the resulting payload is for
    :func:`write_artifact` only, not for JSON serialisation).
    """
    payload: Dict[str, object] = {
        "matrix_name": program.matrix_name,
        "n_rows": program.n_rows,
        "n_cols": program.n_cols,
        "useful_nnz": program.useful_nnz,
        "format_bytes": program.format_bytes,
        "kernels": [],
    }
    for unit in program.kernels:
        array_entries = []
        for arr in unit.format.arrays:
            entry: Dict[str, object] = {
                "name": arr.name,
                "stored_bytes": arr.stored_bytes,
                "raw_bytes": arr.raw_bytes,
            }
            if arr.model is not None:
                entry["model"] = {
                    "kind": arr.model.kind,
                    "coeffs": list(arr.model.coeffs),
                    "period": arr.model.period,
                    "exceptions": [list(e) for e in arr.model.exceptions],
                    "length": arr.model.length,
                }
            else:
                entry["data"] = encode_array(arr.data) if encoded else arr.data
            array_entries.append(entry)
        payload["kernels"].append(
            {
                "label": unit.label.replace("/", "_") or "root",
                "source_text": unit.source,
                "operators": list(unit.applied_operators),
                "launch": {
                    "blocks": unit.plan.n_blocks,
                    "threads_per_block": unit.plan.threads_per_block,
                    "interleaved": unit.plan.interleaved,
                },
                "arrays": array_entries,
            }
        )
    if graph is not None:
        payload["operator_graph"] = graph.to_dict()
    return payload


def write_artifact(
    payload: Dict[str, object], directory: str | os.PathLike
) -> str:
    """Materialise a :func:`program_payload` dict on disk.

    Layout::

        <dir>/manifest.json
        <dir>/operator_graph.json          (when the graph is present)
        <dir>/kernel_<label>.cu            (CUDA-like source per kernel)
        <dir>/<label>/<array>.npy          (format arrays per kernel)

    Returns the manifest path.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    manifest: Dict[str, object] = {
        "matrix_name": payload["matrix_name"],
        "n_rows": payload["n_rows"],
        "n_cols": payload["n_cols"],
        "useful_nnz": payload["useful_nnz"],
        "format_bytes": payload["format_bytes"],
        "kernels": [],
    }
    for kernel in payload["kernels"]:
        label = kernel["label"]
        kernel_dir = os.path.join(directory, label)
        os.makedirs(kernel_dir, exist_ok=True)
        array_entries = []
        for arr in kernel["arrays"]:
            entry: Dict[str, object] = {
                "name": arr["name"],
                "stored_bytes": arr["stored_bytes"],
                "raw_bytes": arr["raw_bytes"],
            }
            if "model" in arr:
                entry["model"] = dict(arr["model"])
            else:
                path = os.path.join(kernel_dir, f"{arr['name']}.npy")
                data = arr["data"]
                if isinstance(data, dict):
                    data = decode_array(data)
                np.save(path, np.asarray(data))
                entry["file"] = os.path.relpath(path, directory)
            array_entries.append(entry)
        source_path = os.path.join(directory, f"kernel_{label}.cu")
        with open(source_path, "w") as handle:
            handle.write(kernel["source_text"] + "\n")
        manifest["kernels"].append(
            {
                "label": label,
                "source": os.path.relpath(source_path, directory),
                "operators": list(kernel["operators"]),
                "launch": dict(kernel["launch"]),
                "arrays": array_entries,
            }
        )
    if "operator_graph" in payload:
        with open(os.path.join(directory, _GRAPH), "w") as handle:
            json.dump(payload["operator_graph"], handle, indent=2)
        manifest["operator_graph"] = _GRAPH
    manifest_path = os.path.join(directory, _MANIFEST)
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle, indent=2)
    return manifest_path


def export_program(
    program: GeneratedProgram,
    directory: str | os.PathLike,
    graph: Optional[OperatorGraph] = None,
) -> str:
    """Write a program's artifact directory; returns the manifest path."""
    return write_artifact(
        program_payload(program, graph, encoded=False), directory
    )


def read_manifest(directory: str | os.PathLike) -> Dict[str, object]:
    """Load an exported artifact's manifest."""
    with open(os.path.join(os.fspath(directory), _MANIFEST)) as handle:
        return json.load(handle)


def load_exported_graph(directory: str | os.PathLike) -> OperatorGraph:
    """Reload the Operator Graph saved next to an exported program."""
    with open(os.path.join(os.fspath(directory), _GRAPH)) as handle:
        return OperatorGraph.from_dict(json.load(handle))
