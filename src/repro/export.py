"""Artifact export: persist a generated SpMV program to disk.

The paper positions AlphaSparse as "an extremely optimized library
generator" whose output "can be directly called in real-world applications"
(§III, artifact description).  This module writes that artifact: a
directory containing the machine-designed format's arrays (``.npy``), the
generated kernel source, the winning Operator Graph (JSON, reloadable), and
a manifest — everything a downstream build would need.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

import numpy as np

from repro.core.graph import OperatorGraph
from repro.core.kernel.program import GeneratedProgram

__all__ = ["export_program", "load_exported_graph", "read_manifest"]

_MANIFEST = "manifest.json"
_GRAPH = "operator_graph.json"


def export_program(
    program: GeneratedProgram,
    directory: str | os.PathLike,
    graph: Optional[OperatorGraph] = None,
) -> str:
    """Write a program's artifact directory; returns the manifest path.

    Layout::

        <dir>/manifest.json
        <dir>/operator_graph.json          (when the graph is supplied)
        <dir>/kernel_<label>.cu            (CUDA-like source per kernel)
        <dir>/<label>/<array>.npy          (format arrays per kernel)
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    manifest: Dict[str, object] = {
        "matrix_name": program.matrix_name,
        "n_rows": program.n_rows,
        "n_cols": program.n_cols,
        "useful_nnz": program.useful_nnz,
        "format_bytes": program.format_bytes,
        "kernels": [],
    }
    for unit in program.kernels:
        label = unit.label.replace("/", "_") or "root"
        kernel_dir = os.path.join(directory, label)
        os.makedirs(kernel_dir, exist_ok=True)
        array_entries = []
        for arr in unit.format.arrays:
            entry: Dict[str, object] = {
                "name": arr.name,
                "stored_bytes": arr.stored_bytes,
                "raw_bytes": arr.raw_bytes,
            }
            if arr.model is not None:
                entry["model"] = {
                    "kind": arr.model.kind,
                    "coeffs": list(arr.model.coeffs),
                    "period": arr.model.period,
                    "exceptions": [list(e) for e in arr.model.exceptions],
                    "length": arr.model.length,
                }
            else:
                path = os.path.join(kernel_dir, f"{arr.name}.npy")
                np.save(path, arr.data)
                entry["file"] = os.path.relpath(path, directory)
            array_entries.append(entry)
        source_path = os.path.join(directory, f"kernel_{label}.cu")
        with open(source_path, "w") as handle:
            handle.write(unit.source + "\n")
        manifest["kernels"].append(
            {
                "label": label,
                "source": os.path.relpath(source_path, directory),
                "operators": unit.applied_operators,
                "launch": {
                    "blocks": unit.plan.n_blocks,
                    "threads_per_block": unit.plan.threads_per_block,
                    "interleaved": unit.plan.interleaved,
                },
                "arrays": array_entries,
            }
        )
    if graph is not None:
        with open(os.path.join(directory, _GRAPH), "w") as handle:
            json.dump(graph.to_dict(), handle, indent=2)
        manifest["operator_graph"] = _GRAPH
    manifest_path = os.path.join(directory, _MANIFEST)
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle, indent=2)
    return manifest_path


def read_manifest(directory: str | os.PathLike) -> Dict[str, object]:
    """Load an exported artifact's manifest."""
    with open(os.path.join(os.fspath(directory), _MANIFEST)) as handle:
        return json.load(handle)


def load_exported_graph(directory: str | os.PathLike) -> OperatorGraph:
    """Reload the Operator Graph saved next to an exported program."""
    with open(os.path.join(os.fspath(directory), _GRAPH)) as handle:
        return OperatorGraph.from_dict(json.load(handle))
