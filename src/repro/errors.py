"""Common error taxonomy: stable diagnostic codes for validation failures.

Every dynamic validation error the stack raises — a reduction chain that
cannot validate for its work assignment (:class:`PlanValidationError` in
:mod:`repro.gpu.executor`), a malformed operator graph
(:class:`GraphValidationError` in :mod:`repro.core.graph`) — derives from
:class:`DiagnosableError` and carries a stable ``code``.  The static
verifier (:mod:`repro.staticcheck`) proves verdicts under the *same*
codes, which is what makes the two comparable: a differential test can
assert not just "statically invalid implies dynamically invalid" but that
both sides agree on *why*.

Codes are part of the public contract (documented in the README's "Static
checking" section); the message text is not — but note that error strings
are embedded in :meth:`EvalRecord.identity` digests and persisted by the
design store, so changing a message is a byte-identity break while adding
a code is not.  ``str(exc)`` therefore stays exactly the message, with the
code riding along as an attribute.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "DiagnosableError",
    "REDUCE_CHAIN_THREAD_TOTAL",
    "REDUCE_CHAIN_WARP_TOTAL",
    "REDUCE_CHAIN_BLOCK_TOTAL",
    "REDUCE_CHAIN_DIRECT_STORE",
    "REDUCE_CHAIN_ORDER",
    "REDUCE_CHAIN_NO_GLOBAL",
    "PLAN_SCATTER_RANGE",
    "PLAN_GATHER_RANGE",
    "GRAPH_BRANCH_CHILDREN",
    "GRAPH_NESTING_DEPTH",
    "GRAPH_EMPTY",
    "GRAPH_STAGE_ORDER",
    "GRAPH_AFTER_GLOBAL",
    "GRAPH_BRANCH_TAIL",
    "GRAPH_BRANCH_CONTINUATION",
    "GRAPH_NO_GLOBAL",
    "KERNEL_UNDECLARED_IDENT",
    "KERNEL_SCATTER_NEEDS_ATOMIC",
    "KERNEL_OOB_INDEX",
    "KERNEL_DEAD_FRAGMENT",
    "KERNEL_ACCUM_DTYPE",
    "STORE_CORRUPT_ENTRY",
    "STORE_BAD_GRAPH",
    "STORE_UNKNOWN_OPERATOR",
    "STORE_BAD_WORKLOAD",
    "STORE_QUARANTINED",
    "STORE_TAIL_LOST",
    "CHECK_UNSOUND",
    "code_of",
]

# --- reduction-chain semantics (shared with repro.staticcheck) -------------
REDUCE_CHAIN_THREAD_TOTAL = "REDUCE-CHAIN-THREAD-TOTAL"
REDUCE_CHAIN_WARP_TOTAL = "REDUCE-CHAIN-WARP-TOTAL"
REDUCE_CHAIN_BLOCK_TOTAL = "REDUCE-CHAIN-BLOCK-TOTAL"
REDUCE_CHAIN_DIRECT_STORE = "REDUCE-CHAIN-DIRECT-STORE"
REDUCE_CHAIN_ORDER = "REDUCE-CHAIN-ORDER"
REDUCE_CHAIN_NO_GLOBAL = "REDUCE-CHAIN-NO-GLOBAL"

# --- plan geometry ---------------------------------------------------------
PLAN_SCATTER_RANGE = "PLAN-SCATTER-RANGE"
PLAN_GATHER_RANGE = "PLAN-GATHER-RANGE"

# --- operator-graph shape --------------------------------------------------
GRAPH_BRANCH_CHILDREN = "GRAPH-BRANCH-CHILDREN"
GRAPH_NESTING_DEPTH = "GRAPH-NESTING-DEPTH"
GRAPH_EMPTY = "GRAPH-EMPTY"
GRAPH_STAGE_ORDER = "GRAPH-STAGE-ORDER"
GRAPH_AFTER_GLOBAL = "GRAPH-AFTER-GLOBAL"
GRAPH_BRANCH_TAIL = "GRAPH-BRANCH-TAIL"
GRAPH_BRANCH_CONTINUATION = "GRAPH-BRANCH-CONTINUATION"
GRAPH_NO_GLOBAL = "GRAPH-NO-GLOBAL"

# --- generated-kernel lint (static-only; never raised dynamically) ---------
KERNEL_UNDECLARED_IDENT = "KERNEL-UNDECLARED-IDENT"
KERNEL_SCATTER_NEEDS_ATOMIC = "KERNEL-SCATTER-NEEDS-ATOMIC"
KERNEL_OOB_INDEX = "KERNEL-OOB-INDEX"
KERNEL_DEAD_FRAGMENT = "KERNEL-DEAD-FRAGMENT"
KERNEL_ACCUM_DTYPE = "KERNEL-ACCUM-DTYPE"

# --- design-store audit (static-only) --------------------------------------
STORE_CORRUPT_ENTRY = "STORE-CORRUPT-ENTRY"
STORE_BAD_GRAPH = "STORE-BAD-GRAPH"
STORE_UNKNOWN_OPERATOR = "STORE-UNKNOWN-OPERATOR"
STORE_BAD_WORKLOAD = "STORE-BAD-WORKLOAD"
#: a corrupt entry was moved aside to the store's ``corrupt/`` sibling dir
#: (first detection on a read path, or ``store verify --repair``) — the
#: store stops retrying it and a rewrite of the key heals cleanly
STORE_QUARANTINED = "STORE-QUARANTINED"
#: a journal-backend store lost records after a mid-log framing corruption
#: (everything before the damage replays; compaction reclaims the file)
STORE_TAIL_LOST = "STORE-TAIL-LOST"

# --- the checker checking itself (differential self-test) ------------------
CHECK_UNSOUND = "CHECK-UNSOUND"


class DiagnosableError(ValueError):
    """A :class:`ValueError` carrying a stable diagnostic ``code``.

    ``str(exc)`` is exactly ``message`` — codes never leak into the text,
    because error strings participate in search-history and design-store
    byte-identity contracts.
    """

    #: Fallback when a raise site predates the taxonomy (or an error is
    #: re-raised from a cache that only persisted the message).
    default_code = "UNCLASSIFIED"

    def __init__(self, message: str = "", *, code: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code or self.default_code


def code_of(exc: BaseException) -> str:
    """Diagnostic code of any exception (``UNCLASSIFIED`` when untyped)."""
    return getattr(exc, "code", None) or DiagnosableError.default_code
