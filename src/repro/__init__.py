"""repro — a reproduction of AlphaSparse (Du et al., SC 2022).

AlphaSparse generates high-performance SpMV formats *and* kernels directly
from a sparse matrix by searching the original design space (format x
kernel x parameters) expressed as an Operator Graph.  This package
reimplements the full system in Python: the operator IR and Designer, the
Format & Kernel Generator with Model-Driven Format Compression, the
three-level Search Engine with a gradient-boosted-tree cost model, every
baseline format of the paper's evaluation, and a simulated-GPU substrate
(the environment has no CUDA device; see DESIGN.md for the substitution
argument).

Quickstart::

    from repro import SearchEngine, A100, read_matrix_market

    matrix = read_matrix_market("my_matrix.mtx")
    result = SearchEngine(A100).search(matrix)
    print(result.best_gflops, result.best_graph.describe())
    print(result.best_program.source())
"""

from repro.sparse import (
    SparseMatrix,
    MatrixStats,
    read_matrix_market,
    write_matrix_market,
    corpus,
    named_matrix,
)
from repro.gpu import A100, RTX2080, GPUSpec, gpu_by_name, execute
from repro.core import (
    OperatorGraph,
    GraphNode,
    Designer,
    MatrixMetadataSet,
    GeneratedProgram,
    build_program,
    ModelDrivenCompressor,
)
from repro.search import SearchBudget, SearchEngine, SearchResult
from repro.baselines import (
    BASELINE_REGISTRY,
    PerfectFormatSelector,
    get_baseline,
    SOTA_FORMATS,
    PFS_MEMBERS,
)
from repro.store import DesignStore
from repro.serve import Frontend
from repro.workloads import WORKLOADS, Workload, get_workload

__version__ = "1.0.0"

__all__ = [
    "SparseMatrix",
    "MatrixStats",
    "read_matrix_market",
    "write_matrix_market",
    "corpus",
    "named_matrix",
    "A100",
    "RTX2080",
    "GPUSpec",
    "gpu_by_name",
    "execute",
    "OperatorGraph",
    "GraphNode",
    "Designer",
    "MatrixMetadataSet",
    "GeneratedProgram",
    "build_program",
    "ModelDrivenCompressor",
    "SearchBudget",
    "SearchEngine",
    "SearchResult",
    "BASELINE_REGISTRY",
    "PerfectFormatSelector",
    "get_baseline",
    "SOTA_FORMATS",
    "PFS_MEMBERS",
    "DesignStore",
    "Frontend",
    "WORKLOADS",
    "Workload",
    "get_workload",
    "__version__",
]
