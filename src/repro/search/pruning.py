"""Pruning strategies (paper §VI-B) and successive-halving eval pruning.

"AlphaSparse provides a ban list for pruned operators, according to already
existing operators of graph and sparsity patterns of input matrices."
Rules encode the high-quality human experience the paper credits for the
2.5x search-time reduction and 1.2x performance gain of Table III: regular
matrices skip irregularity machinery, short-row matrices skip long-row
reductions, and so on.  Users can add their own rules.

:class:`SuccessiveHalvingPruner` prunes at a different layer: instead of
banning operators up front, it drops *candidates within one evaluation
batch* after cheap cost-projection rungs, so adaptive samplers spend full
measurements (functional execution + numeric verification) only on rung
survivors.  See :meth:`SearchEngine._measure_pruned` for the driving loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Set

from repro.sparse.matrix import IRREGULARITY_THRESHOLD, MatrixStats

__all__ = [
    "PruningRule",
    "PruningRules",
    "SuccessiveHalvingPruner",
    "default_rules",
]


@dataclass(frozen=True)
class PruningRule:
    """One ban rule: when ``predicate(stats)`` holds, ``banned`` operators
    are removed from the structure sampler's menu."""

    name: str
    predicate: Callable[[MatrixStats], bool]
    banned: frozenset
    reason: str = ""


class PruningRules:
    """A mutable collection of :class:`PruningRule` with a ban-list query."""

    def __init__(self, rules: List[PruningRule] | None = None) -> None:
        self.rules: List[PruningRule] = list(rules) if rules else []

    def add(
        self,
        name: str,
        predicate: Callable[[MatrixStats], bool],
        banned,
        reason: str = "",
    ) -> None:
        self.rules.append(PruningRule(name, predicate, frozenset(banned), reason))

    def ban_list(self, stats: MatrixStats) -> Set[str]:
        banned: Set[str] = set()
        for rule in self.rules:
            if rule.predicate(stats):
                banned |= rule.banned
        return banned

    def active_rules(self, stats: MatrixStats) -> List[PruningRule]:
        return [r for r in self.rules if r.predicate(stats)]


@dataclass(frozen=True)
class SuccessiveHalvingPruner:
    """Rank one batch's candidates into successive-halving waves.

    The tournament runs on the *cheap rung* scores (analytic cost
    projections): at each rung the top ``1/eta`` fraction survives, down
    to ``min_survivors``.  :meth:`waves` returns candidate indices grouped
    for measurement — wave 0 is the final-rung survivors, wave 1 the group
    eliminated at the last rung, and so on; concatenated, the waves list
    every candidate in descending projected score.  The engine fully
    measures wave 0 and promotes later waves only while no valid
    measurement exists, so projection failures (score 0) can never starve
    a batch: the tournament degrades to descending-order measurement until
    something validates.
    """

    #: fraction of candidates surviving each rung is ``1/eta``.
    eta: float = 2.0
    #: tournament floor — batches at or below this size are never pruned.
    min_survivors: int = 2

    def __post_init__(self) -> None:
        if self.eta <= 1.0:
            raise ValueError("eta must be > 1")
        if self.min_survivors < 1:
            raise ValueError("min_survivors must be >= 1")

    def waves(self, scores: Sequence[float]) -> List[List[int]]:
        """Indices into ``scores`` grouped into measurement waves."""
        order = sorted(range(len(scores)), key=lambda i: (-scores[i], i))
        cuts = [len(order)]
        while cuts[-1] > self.min_survivors:
            cuts.append(
                max(self.min_survivors, math.ceil(cuts[-1] / self.eta))
            )
        waves = [order[: cuts[-1]]]
        for rung in range(len(cuts) - 1, 0, -1):
            waves.append(order[cuts[rung]: cuts[rung - 1]])
        return [w for w in waves if w]


def default_rules() -> PruningRules:
    """The built-in experience distilled from the format literature."""
    rules = PruningRules()
    rules.add(
        "regular-skip-irregularity-machinery",
        lambda s: s.row_variance <= IRREGULARITY_THRESHOLD,
        {
            "WARP_SEG_RED",
            "WARP_BITMAP_RED",
            "THREAD_BITMAP_RED",
            "BIN",
            "ROW_DIV",
            "BMT_NNZ_BLOCK",
            "BMW_NNZ_BLOCK",
            "BMTB_NNZ_BLOCK",
        },
        "regular matrices gain nothing from load-balancing splits or "
        "segmented reductions (paper: 'matrices with short rows do not "
        "need to try operators for long row reduction')",
    )
    rules.add(
        "short-rows-skip-block-wide-reduction",
        lambda s: s.max_row_length < 128,
        {"SHMEM_TOTAL_RED"},
        "a whole-thread-block reduction only pays off for very long rows",
    )
    rules.add(
        "short-rows-skip-column-splits",
        lambda s: s.avg_row_length < 32,
        {"BMT_COL_BLOCK", "BMTB_COL_BLOCK", "COL_DIV"},
        "column splitting subdivides rows that are already short",
    )
    rules.add(
        "irregular-skip-naive-padding",
        lambda s: s.row_variance > 100 * IRREGULARITY_THRESHOLD,
        {"BMTB_PAD"},
        "padding whole thread-block chunks explodes on extremely skewed rows",
    )
    rules.add(
        "tiny-skip-division",
        lambda s: s.n_rows < 256,
        {"ROW_DIV", "COL_DIV", "BIN"},
        "sub-matrices of a tiny matrix cannot fill the GPU",
    )
    return rules
