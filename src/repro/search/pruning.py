"""Pruning strategies (paper §VI-B).

"AlphaSparse provides a ban list for pruned operators, according to already
existing operators of graph and sparsity patterns of input matrices."
Rules encode the high-quality human experience the paper credits for the
2.5x search-time reduction and 1.2x performance gain of Table III: regular
matrices skip irregularity machinery, short-row matrices skip long-row
reductions, and so on.  Users can add their own rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Set

from repro.sparse.matrix import IRREGULARITY_THRESHOLD, MatrixStats

__all__ = ["PruningRule", "PruningRules", "default_rules"]


@dataclass(frozen=True)
class PruningRule:
    """One ban rule: when ``predicate(stats)`` holds, ``banned`` operators
    are removed from the structure sampler's menu."""

    name: str
    predicate: Callable[[MatrixStats], bool]
    banned: frozenset
    reason: str = ""


class PruningRules:
    """A mutable collection of :class:`PruningRule` with a ban-list query."""

    def __init__(self, rules: List[PruningRule] | None = None) -> None:
        self.rules: List[PruningRule] = list(rules) if rules else []

    def add(
        self,
        name: str,
        predicate: Callable[[MatrixStats], bool],
        banned,
        reason: str = "",
    ) -> None:
        self.rules.append(PruningRule(name, predicate, frozenset(banned), reason))

    def ban_list(self, stats: MatrixStats) -> Set[str]:
        banned: Set[str] = set()
        for rule in self.rules:
            if rule.predicate(stats):
                banned |= rule.banned
        return banned

    def active_rules(self, stats: MatrixStats) -> List[PruningRule]:
        return [r for r in self.rules if r.predicate(stats)]


def default_rules() -> PruningRules:
    """The built-in experience distilled from the format literature."""
    rules = PruningRules()
    rules.add(
        "regular-skip-irregularity-machinery",
        lambda s: s.row_variance <= IRREGULARITY_THRESHOLD,
        {
            "WARP_SEG_RED",
            "WARP_BITMAP_RED",
            "THREAD_BITMAP_RED",
            "BIN",
            "ROW_DIV",
            "BMT_NNZ_BLOCK",
            "BMW_NNZ_BLOCK",
            "BMTB_NNZ_BLOCK",
        },
        "regular matrices gain nothing from load-balancing splits or "
        "segmented reductions (paper: 'matrices with short rows do not "
        "need to try operators for long row reduction')",
    )
    rules.add(
        "short-rows-skip-block-wide-reduction",
        lambda s: s.max_row_length < 128,
        {"SHMEM_TOTAL_RED"},
        "a whole-thread-block reduction only pays off for very long rows",
    )
    rules.add(
        "short-rows-skip-column-splits",
        lambda s: s.avg_row_length < 32,
        {"BMT_COL_BLOCK", "BMTB_COL_BLOCK", "COL_DIV"},
        "column splitting subdivides rows that are already short",
    )
    rules.add(
        "irregular-skip-naive-padding",
        lambda s: s.row_variance > 100 * IRREGULARITY_THRESHOLD,
        {"BMTB_PAD"},
        "padding whole thread-block chunks explodes on extremely skewed rows",
    )
    rules.add(
        "tiny-skip-division",
        lambda s: s.n_rows < 256,
        {"ROW_DIV", "COL_DIV", "BIN"},
        "sub-matrices of a tiny matrix cannot fill the GPU",
    )
    return rules
