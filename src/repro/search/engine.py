"""The three-level Search Engine (paper §VI-A).

Level 1 proposes graph structures (:class:`~repro.search.space.StructureSampler`),
level 2 measures each structure's coarse parameter grid by *running the
generated programs* on the simulated GPU, and level 3 fits a gradient-
boosted-tree cost model to the measurements and interpolates the fine grid,
re-measuring only the model's top picks.  Simulated annealing governs early
termination of the first two levels; every invalid candidate (dependency
violation, semantic reduction failure, wrong numeric result) scores zero and
is recorded, mirroring how the real system discards non-compiling kernels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.designer import DesignError
from repro.core.graph import GraphValidationError, OperatorGraph
from repro.core.kernel.builder import BuildError, KernelBuilder
from repro.core.kernel.program import GeneratedProgram
from repro.core.optimizer import ModelDrivenCompressor
from repro.gpu.arch import GPUSpec
from repro.gpu.executor import PlanValidationError
from repro.search.annealing import AnnealingSchedule
from repro.search.mlmodel import GradientBoostedTrees, mean_absolute_deviation
from repro.search.pruning import PruningRules, default_rules
from repro.search.space import (
    SampledStructure,
    StructureSampler,
    enumerate_param_grid,
    features_for,
    graph_with_params,
    param_slots,
    seed_structures,
)
from repro.sparse.matrix import SparseMatrix

__all__ = ["SearchBudget", "EvalRecord", "SearchResult", "SearchEngine"]


@dataclass(frozen=True)
class SearchBudget:
    """Iteration/time budgets.

    The paper caps searches at 8 hours of kernel runs; here the analogous
    hard caps are evaluation counts (each evaluation builds and runs one
    generated program).
    """

    max_structures: int = 24
    coarse_evals_per_structure: int = 10
    max_total_evals: int = 320
    ml_top_k: int = 5
    ml_fine_cap: int = 256
    ml_min_samples: int = 8
    time_limit_s: Optional[float] = None


@dataclass
class EvalRecord:
    """One measured candidate (levels 2 or 3)."""

    iteration: int
    structure_sig: Tuple
    assignment: Dict
    gflops: float
    valid: bool
    level: str  # "coarse" | "fine"
    error: str = ""


@dataclass
class SearchResult:
    """Output of one AlphaSparse search."""

    matrix_name: str
    gpu_name: str
    best_gflops: float
    best_graph: Optional[OperatorGraph]
    best_program: Optional[GeneratedProgram]
    history: List[EvalRecord]
    coarse_iterations: int
    total_evaluations: int
    structures_tried: int
    banned_operators: Set[str]
    ml_mad: Optional[float]
    wall_time_s: float

    @property
    def best_time_s(self) -> float:
        if self.best_gflops <= 0:
            return float("inf")
        return 0.0 if self.best_program is None else (
            2.0 * self.best_program.useful_nnz / (self.best_gflops * 1e9)
        )


class SearchEngine:
    """Drives AlphaSparse: enumerate, measure, interpolate, stop."""

    def __init__(
        self,
        gpu: GPUSpec,
        budget: Optional[SearchBudget] = None,
        pruning: Optional[PruningRules] = None,
        enable_pruning: bool = True,
        annealing: Optional[AnnealingSchedule] = None,
        seed: int = 0,
        enable_extensions: bool = False,
        enable_seeding: bool = True,
    ) -> None:
        self.gpu = gpu
        self.budget = budget or SearchBudget()
        self.pruning = pruning if pruning is not None else default_rules()
        self.enable_pruning = enable_pruning
        self.annealing = annealing or AnnealingSchedule()
        self.seed = seed
        #: opt in to the paper's future-work operators (SecVII-H HYB
        #: decomposition); off by default to mirror the paper's prototype
        self.enable_extensions = enable_extensions
        #: visit the source-format archetypes before random structures
        #: (ablatable design choice; see benchmarks/test_abl_seeding.py)
        self.enable_seeding = enable_seeding
        self.builder = KernelBuilder(compressor=ModelDrivenCompressor())

    # ------------------------------------------------------------------
    def search(self, matrix: SparseMatrix) -> SearchResult:
        start = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        banned = (
            self.pruning.ban_list(matrix.stats) if self.enable_pruning else set()
        )
        sampler = StructureSampler(
            banned=banned,
            seed=int(rng.integers(2**31)),
            extensions=self.enable_extensions,
        )
        schedule = self.annealing
        schedule.reset()

        x = np.random.default_rng(0x5EED).random(matrix.n_cols)
        reference = matrix.spmv_reference(x)

        history: List[EvalRecord] = []
        best_gflops = 0.0
        best_graph: Optional[OperatorGraph] = None
        best_program: Optional[GeneratedProgram] = None
        incumbent_score = 0.0
        seen_structures: Set[Tuple] = set()
        structure_store: Dict[Tuple, SampledStructure] = {}
        evals = 0
        structures_tried = 0

        def out_of_budget() -> bool:
            if evals >= self.budget.max_total_evals:
                return True
            if (
                self.budget.time_limit_s is not None
                and time.perf_counter() - start > self.budget.time_limit_s
            ):
                return True
            return False

        # Level 1 visits the source-format archetypes first (the search
        # space contains every format of Table II by construction), then
        # explores random machine designs.
        seeds = (
            seed_structures(banned, extensions=self.enable_extensions)
            if self.enable_seeding
            else []
        )

        # ---------------- Levels 1 + 2 ----------------
        while structures_tried < self.budget.max_structures and not out_of_budget():
            # Paper footnote 10: the "no pruning" baseline removes simulated
            # annealing too, so early termination is part of the pruned
            # configuration.
            if self.enable_pruning and schedule.should_terminate():
                break
            proposal = None
            while seeds:
                candidate = seeds.pop(0)
                if candidate.signature not in seen_structures:
                    proposal = candidate
                    break
            if proposal is None:
                proposal = self._propose(sampler, seen_structures)
            if proposal is None:
                break  # structure space (as pruned) exhausted
            seen_structures.add(proposal.signature)
            structure_store[proposal.signature] = proposal
            structures_tried += 1

            assignments = enumerate_param_grid(
                proposal.graph,
                proposal.locks,
                level="coarse",
                cap=self.budget.coarse_evals_per_structure,
                rng=rng,
            )
            structure_best = 0.0
            for assignment in assignments:
                if out_of_budget():
                    break
                gflops, program, error = self._evaluate(
                    matrix, proposal, assignment, x, reference
                )
                evals += 1
                history.append(
                    EvalRecord(
                        iteration=evals,
                        structure_sig=proposal.signature,
                        assignment=dict(assignment),
                        gflops=gflops,
                        valid=error == "",
                        level="coarse",
                        error=error,
                    )
                )
                structure_best = max(structure_best, gflops)
                if gflops > best_gflops:
                    best_gflops = gflops
                    best_graph = graph_with_params(
                        proposal.graph, assignment, proposal.locks
                    )
                    best_program = program

            improved = structure_best > incumbent_score
            if schedule.accept(structure_best, incumbent_score, rng):
                incumbent_score = max(incumbent_score, structure_best)
            schedule.step(improved)

        coarse_iterations = evals

        # ---------------- Level 3: ML interpolation ----------------
        ml_mad: Optional[float] = None
        if best_graph is not None and not out_of_budget():
            ml_mad, refined = self._ml_level(
                matrix, history, structure_store, x, reference, rng, coarse_iterations
            )
            if refined is not None and refined[0] > best_gflops:
                best_gflops, best_graph, best_program = refined

        return SearchResult(
            matrix_name=matrix.name,
            gpu_name=self.gpu.name,
            best_gflops=best_gflops,
            best_graph=best_graph,
            best_program=best_program,
            history=history,
            coarse_iterations=coarse_iterations,
            total_evaluations=len(history),
            structures_tried=structures_tried,
            banned_operators=banned,
            ml_mad=ml_mad,
            wall_time_s=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def _propose(
        self, sampler: StructureSampler, seen: Set[Tuple], max_attempts: int = 40
    ) -> Optional[SampledStructure]:
        for _ in range(max_attempts):
            proposal = sampler.sample()
            if proposal.signature not in seen:
                return proposal
        return None

    # ------------------------------------------------------------------
    def _evaluate(
        self,
        matrix: SparseMatrix,
        proposal: SampledStructure,
        assignment: Dict,
        x: np.ndarray,
        reference: np.ndarray,
    ) -> Tuple[float, Optional[GeneratedProgram], str]:
        """Build + run one candidate; invalid candidates score 0."""
        try:
            graph = graph_with_params(proposal.graph, assignment, proposal.locks)
            program = self.builder.build(matrix, graph)
            result = program.run(x, self.gpu)
            if not np.allclose(result.y, reference, rtol=1e-9, atol=1e-9):
                return 0.0, None, "numeric mismatch"
            return float(result.gflops), program, ""
        except (
            DesignError,
            BuildError,
            PlanValidationError,
            GraphValidationError,
        ) as exc:
            return 0.0, None, f"{type(exc).__name__}: {exc}"

    # ------------------------------------------------------------------
    def _ml_level(
        self,
        matrix: SparseMatrix,
        history: List[EvalRecord],
        structure_store: Dict[Tuple, SampledStructure],
        x: np.ndarray,
        reference: np.ndarray,
        rng: np.random.Generator,
        iteration_base: int,
    ) -> Tuple[Optional[float], Optional[Tuple[float, OperatorGraph, GeneratedProgram]]]:
        """Fit the GBT model per best structure, probe the fine grid."""
        valid = [r for r in history if r.valid and r.level == "coarse"]
        if not valid:
            return None, None
        # Best structure by measured coarse performance.
        best_by_structure: Dict[Tuple, float] = {}
        for rec in valid:
            best_by_structure[rec.structure_sig] = max(
                best_by_structure.get(rec.structure_sig, 0.0), rec.gflops
            )
        ranked = sorted(best_by_structure, key=best_by_structure.get, reverse=True)

        mad: Optional[float] = None
        best_refined: Optional[Tuple[float, OperatorGraph, GeneratedProgram]] = None
        for sig in ranked[:2]:
            proposal = structure_store[sig]
            slots = param_slots(proposal.graph, proposal.locks)
            if not slots:
                continue
            samples = [r for r in valid if r.structure_sig == sig]
            if len(samples) < self.budget.ml_min_samples:
                continue
            X = np.stack(
                [features_for(slots, self._key_assign(r.assignment)) for r in samples]
            )
            y = np.array([r.gflops for r in samples])
            model = GradientBoostedTrees().fit(X, y)
            mad = mean_absolute_deviation(y, model.predict(X))

            fine = enumerate_param_grid(
                proposal.graph,
                proposal.locks,
                level="fine",
                cap=self.budget.ml_fine_cap,
                rng=rng,
            )
            measured = {
                tuple(sorted(self._key_assign(r.assignment).items()))
                for r in samples
            }
            fine = [
                a
                for a in fine
                if tuple(sorted(a.items())) not in measured
            ]
            if not fine:
                continue
            Xf = np.stack([features_for(slots, a) for a in fine])
            pred = model.predict(Xf)
            top = np.argsort(-pred)[: self.budget.ml_top_k]
            for rank, idx in enumerate(top):
                assignment = fine[int(idx)]
                gflops, program, error = self._evaluate(
                    matrix, proposal, assignment, x, reference
                )
                history.append(
                    EvalRecord(
                        iteration=iteration_base + rank + 1,
                        structure_sig=sig,
                        assignment=dict(assignment),
                        gflops=gflops,
                        valid=error == "",
                        level="fine",
                        error=error,
                    )
                )
                if program is not None and (
                    best_refined is None or gflops > best_refined[0]
                ):
                    best_refined = (
                        gflops,
                        graph_with_params(proposal.graph, assignment, proposal.locks),
                        program,
                    )
        return mad, best_refined

    @staticmethod
    def _key_assign(assignment: Dict) -> Dict:
        """History assignments may have been JSON-ified; normalise keys."""
        out = {}
        for key, value in assignment.items():
            if isinstance(key, list):
                key = tuple(key)
            out[key] = value
        return out
