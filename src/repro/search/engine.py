"""The three-level Search Engine (paper §VI-A).

Level 1 proposes graph structures (:class:`~repro.search.space.StructureSampler`),
level 2 measures each structure's coarse parameter grid by *running the
generated programs* on the simulated GPU, and level 3 fits a gradient-
boosted-tree cost model to the measurements and interpolates the fine grid,
re-measuring only the model's top picks.  Simulated annealing governs early
termination of the first two levels; every invalid candidate (dependency
violation, semantic reduction failure, wrong numeric result) scores zero and
is recorded, mirroring how the real system discards non-compiling kernels.

Candidate evaluation is delegated to the staged runtime of
:mod:`repro.search.evaluation`: design leaves are computed once per
structure signature and reused across the whole runtime-parameter grid
(content-addressed :class:`~repro.search.evaluation.DesignCache`), and a
structure's parameter grid is evaluated as an ordered batch over an
optional worker pool (``SearchBudget.jobs``).  The engine itself holds no
per-search mutable state — schedules and RNGs are created per
:meth:`SearchEngine.search` call — so one engine (one cache, one pool) can
drive many searches, including the collection-level
:meth:`SearchEngine.search_many` driver used by the CLI and the benchmark
harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.designer import DesignError
from repro.core.graph import GraphValidationError, OperatorGraph
from repro.core.kernel.builder import BuildError, KernelBuilder
from repro.core.kernel.program import GeneratedProgram
from repro.core.optimizer import ModelDrivenCompressor
from repro.gpu.arch import GPUSpec
from repro.gpu.executor import PlanValidationError
from repro.gpu.analysis import LeafAnalysisCache, content_digest
from repro.search.annealing import AnnealingSchedule
from repro.search.batcheval import (
    BatchEvaluator,
    design_group_key,
    group_candidates,
)
from repro.search.evaluation import (
    DesignCache,
    EvaluationRuntime,
    StagedEvaluator,
    StageTimings,
    matrix_token,
)
from repro.search.mlmodel import GradientBoostedTrees, mean_absolute_deviation
from repro.store.design import DesignStore
from repro.store.errors import StoreError
from repro.store.records import feature_vector, nearest_result_digest
from repro.search.pruning import (
    PruningRules,
    SuccessiveHalvingPruner,
    default_rules,
)
from repro.search.samplers import (
    DEFAULT_SAMPLER_NAME,
    Sampler,
    SearchSpace,
    get_sampler,
)
from repro.search.space import (
    SampledStructure,
    enumerate_param_grid,
    features_for,
    graph_with_params,
    param_slots,
)
from repro.sparse.matrix import SparseMatrix
from repro.staticcheck.diagnostics import Verdict
from repro.staticcheck.facts import MatrixFacts
from repro.staticcheck.reduction import analyze_design
from repro.workloads import DEFAULT_WORKLOAD, WORKLOADS, Workload, get_workload

__all__ = ["SearchBudget", "EvalRecord", "SearchResult", "SearchEngine"]


@dataclass(frozen=True)
class SearchBudget:
    """Iteration/time budgets.

    The paper caps searches at 8 hours of kernel runs; here the analogous
    hard caps are evaluation counts (each evaluation builds and runs one
    generated program).  ``max_total_evals`` bounds coarse *and* fine
    evaluations together.  ``jobs`` selects the evaluation worker count:
    1 is a deterministic serial loop, >1 evaluates each structure's
    parameter batch on a thread pool — identical results, less wall
    clock, for count-budgeted searches.  With ``time_limit_s`` set the
    evaluation count at the deadline depends on wall clock (and, pooled,
    on batches completing in flight), so time-limited histories are not
    reproducible under any ``jobs`` setting.

    ``ml_min_samples`` defaults to the size of the coarse runtime grid
    (``SET_RESOURCES``: 3 thread counts x 2 work grains) — the sample
    count a structure's stratified coarse batch produces, so the fine
    level stays reachable under the default budget.
    """

    max_structures: int = 24
    coarse_evals_per_structure: int = 10
    max_total_evals: int = 320
    ml_top_k: int = 5
    ml_fine_cap: int = 256
    ml_min_samples: int = 6
    time_limit_s: Optional[float] = None
    jobs: int = 1


@dataclass
class EvalRecord:
    """One measured candidate (levels 2 or 3)."""

    iteration: int
    structure_sig: Tuple
    assignment: Dict
    gflops: float
    valid: bool
    level: str  # "coarse" | "fine"
    error: str = ""

    def identity(self) -> Tuple:
        """Hashable form of every result-bearing field — the byte-identity
        contract the cache/parallelism tests and benchmarks compare on."""
        return (
            self.iteration,
            self.structure_sig,
            tuple(sorted(map(str, self.assignment.items()))),
            self.gflops,
            self.valid,
            self.level,
            self.error,
        )


@dataclass
class SearchResult:
    """Output of one AlphaSparse search."""

    matrix_name: str
    gpu_name: str
    best_gflops: float
    best_graph: Optional[OperatorGraph]
    best_program: Optional[GeneratedProgram]
    history: List[EvalRecord]
    coarse_iterations: int
    total_evaluations: int
    structures_tried: int
    banned_operators: Set[str]
    ml_mad: Optional[float]
    wall_time_s: float
    #: staged-runtime accounting (per search): Designer executions and the
    #: design-cache hit/miss counters that verify cached design reuse.
    designer_runs: int = 0
    design_cache_hits: int = 0
    design_cache_misses: int = 0
    jobs: int = 1
    #: leaf-analysis cache counters (design-level lookups) and the
    #: per-stage wall-time breakdown (design / assembly / analysis /
    #: verify / ml) accumulated by the staged evaluator.
    analysis_cache_hits: int = 0
    analysis_cache_misses: int = 0
    stage_times: Dict[str, float] = field(default_factory=dict)
    #: persistent design-store counters (design-level lookups during this
    #: search): hits are designs hydrated from disk instead of designed.
    store_hits: int = 0
    store_misses: int = 0
    #: name of the workload this search tuned for, plus its dense-column
    #: count (kept directly so results of unregistered custom workloads
    #: still price themselves).
    workload: str = "spmv"
    workload_k: int = 1
    #: candidates the static verifier refuted before any evaluation was
    #: spent on them (see :mod:`repro.staticcheck`); they consume no
    #: entry in ``history`` and no slot of ``max_total_evals``.
    static_pruned: int = 0
    #: name of the sampler that drove this search (``"annealer"`` is the
    #: legacy default).
    sampler: str = DEFAULT_SAMPLER_NAME
    #: candidates dropped by successive-halving eval pruning: they lost a
    #: cheap cost-projection rung to a fully-measured valid winner, so no
    #: full measurement (and no ``history`` entry) was spent on them.
    #: Always 0 for the default annealer (it predates pruning and stays
    #: byte-identical).
    sampler_pruned: int = 0
    #: donor candidates injected from the warm-start store and measured
    #: before the ask/tell loop (0 when warm starts are off or no donor
    #: qualified); they do occupy history slots, so warm-started
    #: trajectories are intentionally not byte-comparable to cold runs.
    warm_start_hits: int = 0

    @property
    def best_time_s(self) -> float:
        if self.best_gflops <= 0:
            return float("inf")
        if self.best_program is None:
            return 0.0
        nnz = self.best_program.useful_nnz
        wl = WORKLOADS.get(self.workload)
        # Registered workloads own their flop formula; for a custom
        # unregistered one fall back to the generic FMA count the base
        # Workload.flops defines, from the recorded column count.
        flops = wl.flops(nnz) if wl is not None else (2.0 * nnz) * self.workload_k
        return flops / (self.best_gflops * 1e9)

    @property
    def design_cache_hit_rate(self) -> float:
        lookups = self.design_cache_hits + self.design_cache_misses
        return self.design_cache_hits / lookups if lookups else 0.0


@dataclass
class _SearchState:
    """Per-search mutable state (never stored on the engine)."""

    start: float
    budget: SearchBudget
    token: Tuple
    x: np.ndarray
    reference: np.ndarray
    #: content key of (x, reference) under which design-level numeric
    #: verdicts are cached — computed once per search.
    verify_key: str = ""
    history: List[EvalRecord] = field(default_factory=list)
    evals: int = 0
    best_gflops: float = 0.0
    best_graph: Optional[OperatorGraph] = None
    best_program: Optional[GeneratedProgram] = None
    #: matrix facts backing static pre-eval pruning (None = pruning off).
    facts: Optional[MatrixFacts] = None
    static_pruned: int = 0
    sampler_pruned: int = 0
    #: static-verifier verdicts memoized per (structure signature, params
    #: with grid_threads masked) — the verifier reads threads_per_block
    #: but never grid_threads, so candidates differing only in work grain
    #: share one verdict.  Used by the batched path only.
    static_memo: Dict[Tuple, bool] = field(default_factory=dict)

    def time_up(self) -> bool:
        return (
            self.budget.time_limit_s is not None
            and time.perf_counter() - self.start > self.budget.time_limit_s
        )

    def out_of_budget(self) -> bool:
        return self.evals >= self.budget.max_total_evals or self.time_up()


class SearchEngine:
    """Drives AlphaSparse: enumerate, measure, interpolate, stop.

    Safe to reuse (and, with ``jobs > 1``, shares one worker pool and one
    design cache) across many searches; see :meth:`search_many`.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        budget: Optional[SearchBudget] = None,
        pruning: Optional[PruningRules] = None,
        enable_pruning: bool = True,
        annealing: Optional[AnnealingSchedule] = None,
        seed: int = 0,
        enable_extensions: bool = False,
        enable_seeding: bool = True,
        enable_static_pruning: bool = True,
        enable_design_cache: bool = True,
        enable_analysis_cache: bool = True,
        runtime: Optional[EvaluationRuntime] = None,
        store: Optional[DesignStore] = None,
        workload: Optional[Workload] = None,
        sampler: Optional[object] = None,
        sampler_seed: Optional[int] = None,
        enable_sampler_pruning: bool = True,
        enable_batch_eval: bool = True,
        warm_start_store: Optional[DesignStore] = None,
    ) -> None:
        self.gpu = gpu
        self.budget = budget or SearchBudget()
        #: the operation every candidate is built, run and verified for
        #: (one engine = one workload; caches/stores are keyed so that
        #: engines of different workloads sharing a store never cross).
        self.workload = (
            get_workload(workload) if workload is not None else DEFAULT_WORKLOAD
        )
        self.pruning = pruning if pruning is not None else default_rules()
        self.enable_pruning = enable_pruning
        #: template only — cloned per search so the engine stays stateless
        self.annealing = annealing or AnnealingSchedule()
        self.seed = seed
        #: opt in to the paper's future-work operators (SecVII-H HYB
        #: decomposition); off by default to mirror the paper's prototype
        self.enable_extensions = enable_extensions
        #: visit the source-format archetypes before random structures
        #: (ablatable design choice; see benchmarks/test_abl_seeding.py)
        self.enable_seeding = enable_seeding
        #: refute candidates with the static verifier before spending an
        #: evaluation on them (sound: only designs whose reduction chain
        #: provably cannot validate are skipped).  Also lets the sampler
        #: shape its chain menu to the workload.  Off reproduces the
        #: pre-verifier search histories byte for byte.
        self.enable_static_pruning = enable_static_pruning
        #: candidate sampler driving the ask/tell loop (name or class; see
        #: :mod:`repro.search.samplers`).  The default annealer reproduces
        #: the legacy engine behaviour byte for byte.
        self.sampler_cls = get_sampler(sampler)
        #: seed of the adaptive samplers' private RNG; None derives it
        #: from the per-search seed (the annealer draws from the engine
        #: RNG regardless, so this only affects qmc/tpe/dts).
        self.sampler_seed = sampler_seed
        #: successive-halving eval pruning for samplers that opt in
        #: (``Sampler.prunes``); losing candidates are dropped after a
        #: cheap cost-projection rung and counted in
        #: ``SearchResult.sampler_pruned``.
        self.enable_sampler_pruning = enable_sampler_pruning
        self.sh_pruner = SuccessiveHalvingPruner()
        self.builder = KernelBuilder(
            compressor=ModelDrivenCompressor(), workload=self.workload
        )
        #: content-addressed Designer-output cache (None = ablated)
        self.cache: Optional[DesignCache] = (
            DesignCache() if enable_design_cache else None
        )
        #: leaf-level plan-analysis cache (None = ablated): shares cost
        #: projections, functional y and verdicts across each design
        #: leaf's runtime-parameter grid.
        self.analysis: Optional[LeafAnalysisCache] = (
            LeafAnalysisCache() if enable_analysis_cache else None
        )
        #: persistent design store (None = purely in-memory caching):
        #: searches read stored designs through the cache and write every
        #: Designer outcome back, so a later *process* warm-starts.
        self.store = store
        self.evaluator = StagedEvaluator(
            self.builder,
            cache=self.cache,
            analysis=self.analysis,
            store=store,
            arch=gpu.name,
        )
        #: batched group evaluator (None = legacy per-candidate path):
        #: candidates sharing a design signature evaluate as one vectorized
        #: pass (see :mod:`repro.search.batcheval`).  Requires both the
        #: design and analysis caches — ablating either falls back to the
        #: per-candidate path, so cache-off counters keep their historical
        #: meaning (one Designer run per evaluation, etc.).  Histories are
        #: byte-identical batched vs not.
        self.batch: Optional[BatchEvaluator] = (
            BatchEvaluator(self.evaluator, gpu, self.workload)
            if enable_batch_eval
            and self.cache is not None
            and self.analysis is not None
            else None
        )
        #: store consulted for cross-matrix warm starts (None = off): each
        #: search seeds itself from the closest prior winner's graph,
        #: injected as an iteration-0 candidate before the ask/tell loop.
        self.warm_start_store = warm_start_store
        #: ``runtime`` injection lets many engines share one worker pool
        #: (the benchmark harness does this); an injected runtime is the
        #: caller's to close.
        self._owns_runtime = runtime is None
        self.runtime = runtime or EvaluationRuntime(jobs=self.budget.jobs)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool (no-op for serial engines and for
        engines using an injected, caller-owned runtime)."""
        if self._owns_runtime:
            self.runtime.close()

    def __enter__(self) -> "SearchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def search_many(
        self,
        matrices: Iterable[SparseMatrix],
        seeds: Optional[Sequence[int]] = None,
    ) -> List[SearchResult]:
        """Collection-level driver: search every matrix with this engine.

        All searches share the engine's design cache and worker pool —
        the way the benchmark harness reproduces whole paper figures.
        ``seeds`` optionally overrides the engine seed per matrix.
        """
        matrices = list(matrices)
        if seeds is not None and len(seeds) != len(matrices):
            raise ValueError("seeds must match matrices in length")
        return [
            self.search(m, seed=None if seeds is None else seeds[i])
            for i, m in enumerate(matrices)
        ]

    # ------------------------------------------------------------------
    def search(
        self, matrix: SparseMatrix, seed: Optional[int] = None
    ) -> SearchResult:
        start = time.perf_counter()
        rng = np.random.default_rng(self.seed if seed is None else seed)
        cache_before = self.cache.stats() if self.cache is not None else None
        analysis_before = (
            self.analysis.stats() if self.analysis is not None else None
        )
        timings_before = self.evaluator.timings.snapshot()
        store_before = self.store.stats() if self.store is not None else None
        designer_before = self.builder.designer.executions
        banned = (
            self.pruning.ban_list(matrix.stats) if self.enable_pruning else set()
        )
        space = SearchSpace(
            banned=frozenset(banned),
            extensions=self.enable_extensions,
            seeding=self.enable_seeding,
            budget=self.budget,
            shaping_workload=(
                self.workload if self.enable_static_pruning else None
            ),
            annealing_termination=self.enable_pruning,
            annealing_template=self.annealing,
        )
        sampler: Sampler = self.sampler_cls()
        # The annealer draws its structure-sampler seed from ``rng`` inside
        # begin() — the first draw of the legacy engine loop, preserved.
        sampler.begin(
            space,
            rng,
            seed=(
                self.sampler_seed
                if self.sampler_seed is not None
                else (self.seed if seed is None else seed)
            ),
        )
        prune = sampler.prunes and self.enable_sampler_pruning

        x = self.workload.make_operand(matrix)
        reference = self.workload.reference(matrix, x)
        state = _SearchState(
            start=start,
            budget=self.budget,
            token=self.workload.scope_token(matrix_token(matrix)),
            x=x,
            reference=reference,
            verify_key=content_digest(x, reference),
            facts=(
                self.evaluator.matrix_facts(matrix)
                if self.enable_static_pruning
                else None
            ),
        )

        structure_store: Dict[Tuple, SampledStructure] = {}
        structures_tried = 0

        # ---------------- Level 0: cross-matrix warm start ----------------
        # Seed the search with the store's closest prior winner: the donor
        # graph is a full candidate (structure + parameters), measured as
        # an iteration-0 batch so the sampler's ask/tell loop sees it in
        # history and every later candidate must beat it.
        warm_start_hits = 0
        if self.warm_start_store is not None and not state.out_of_budget():
            donor = self._warm_start_proposal(matrix)
            if donor is not None:
                if donor.signature not in structure_store:
                    structure_store[donor.signature] = donor
                    structures_tried += 1
                records = self._measure_batch(
                    matrix, donor, [{}], state, level="coarse"
                )
                warm_start_hits = len(records)

        # ---------------- Levels 1 + 2: the ask/tell loop ----------------
        # The sampler owns *which* candidates to try (structures and
        # parameter assignments); the engine owns budgets, static pruning,
        # measurement and history recording.
        while not state.out_of_budget():
            batches = sampler.ask(state.history)
            if batches is None:
                break  # sampler done (terminated, exhausted, or converged)
            records_per_batch = []
            for batch in batches:
                if batch.proposal.signature not in structure_store:
                    structure_store[batch.proposal.signature] = batch.proposal
                    structures_tried += 1
                records_per_batch.append(
                    self._measure_batch(
                        matrix,
                        batch.proposal,
                        batch.assignments,
                        state,
                        level=batch.level,
                        prune=prune,
                    )
                )
            sampler.tell(batches, records_per_batch)

        coarse_iterations = state.evals

        # ---------------- Level 3: ML interpolation ----------------
        ml_mad: Optional[float] = None
        if (
            sampler.uses_ml_level
            and state.best_graph is not None
            and not state.out_of_budget()
        ):
            ml_mad = self._ml_level(matrix, state, structure_store, rng)

        designer_runs = self.builder.designer.executions - designer_before
        cache_delta = (
            self.cache.stats().since(cache_before)
            if cache_before is not None
            else None
        )
        analysis_delta = (
            self.analysis.stats().since(analysis_before)
            if analysis_before is not None
            else None
        )
        stage_times = StageTimings.since(
            timings_before, self.evaluator.timings.snapshot()
        )
        store_delta = (
            self.store.stats().since(store_before)
            if store_before is not None
            else None
        )
        return SearchResult(
            matrix_name=matrix.name,
            gpu_name=self.gpu.name,
            best_gflops=state.best_gflops,
            best_graph=state.best_graph,
            best_program=state.best_program,
            history=state.history,
            coarse_iterations=coarse_iterations,
            total_evaluations=len(state.history),
            structures_tried=structures_tried,
            banned_operators=banned,
            ml_mad=ml_mad,
            wall_time_s=time.perf_counter() - start,
            designer_runs=designer_runs,
            design_cache_hits=cache_delta.hits if cache_delta else 0,
            design_cache_misses=cache_delta.misses if cache_delta else 0,
            jobs=self.runtime.jobs,
            analysis_cache_hits=analysis_delta.hits if analysis_delta else 0,
            analysis_cache_misses=analysis_delta.misses if analysis_delta else 0,
            stage_times=stage_times,
            store_hits=store_delta.design_hits if store_delta else 0,
            store_misses=store_delta.design_misses if store_delta else 0,
            workload=self.workload.name,
            workload_k=self.workload.k,
            static_pruned=state.static_pruned,
            sampler=self.sampler_cls.name,
            sampler_pruned=state.sampler_pruned,
            warm_start_hits=warm_start_hits,
        )

    # ------------------------------------------------------------------
    def _measure_batch(
        self,
        matrix: SparseMatrix,
        proposal: SampledStructure,
        assignments: Sequence[Dict],
        state: _SearchState,
        level: str,
        prune: bool = False,
    ) -> List[EvalRecord]:
        """Evaluate a structure's parameter assignments as one batch.

        With static pruning on, assignments whose reduction chain the
        verifier refutes for this matrix+workload are dropped before
        anything else — they consume no evaluation slot and leave no
        history record, only the ``static_pruned`` counter.

        With ``prune`` set (adaptive samplers), survivors of a cheap
        successive-halving cost-projection tournament are fully measured
        first and the losers are skipped entirely once a valid winner
        exists (``sampler_pruned``); otherwise every candidate is
        measured.  Returns the new history records, in submission order.
        """
        candidates = list(assignments)
        if state.facts is not None:
            kept = []
            if self.batch is not None:
                # Batched mode: memoize verdicts per runtime-masked key
                # (grid_threads only — the verifier reads
                # threads_per_block), so a structure's whole work-grain
                # axis shares one analyze_design pass.
                op_names = [node.op_name for node in proposal.graph.walk()]
                for assignment in candidates:
                    merged = dict(proposal.locks)
                    merged.update(assignment)
                    memo_key = (
                        proposal.signature,
                        design_group_key(merged, op_names, keep_tpb=True),
                    )
                    invalid = state.static_memo.get(memo_key)
                    if invalid is None:
                        graph = graph_with_params(
                            proposal.graph, assignment, proposal.locks
                        )
                        report = analyze_design(
                            graph, self.workload, state.facts
                        )
                        invalid = report.verdict is Verdict.INVALID
                        state.static_memo[memo_key] = invalid
                    if invalid:
                        state.static_pruned += 1
                    else:
                        kept.append(assignment)
            else:
                for assignment in candidates:
                    graph = graph_with_params(
                        proposal.graph, assignment, proposal.locks
                    )
                    report = analyze_design(graph, self.workload, state.facts)
                    if report.verdict is Verdict.INVALID:
                        state.static_pruned += 1
                    else:
                        kept.append(assignment)
            candidates = kept
        if prune and len(candidates) > self.sh_pruner.min_survivors:
            return self._measure_pruned(matrix, proposal, candidates, state, level)
        return self._measure_list(matrix, proposal, candidates, state, level)

    # ------------------------------------------------------------------
    def _measure_pruned(
        self,
        matrix: SparseMatrix,
        proposal: SampledStructure,
        candidates: List[Dict],
        state: _SearchState,
        level: str,
    ) -> List[EvalRecord]:
        """Successive-halving measurement (see
        :class:`~repro.search.pruning.SuccessiveHalvingPruner`).

        Every candidate runs the cheap rung — the analytic cost projection
        of :meth:`StagedEvaluator.project`, no functional execution or
        verification — and the halving tournament on projected scores
        groups candidates into waves: the final-rung survivors first, then
        the per-rung eliminated groups in descending projection order.
        Wave 0 is fully measured; later waves run only while no valid
        measurement exists (projection failures and invalid designs score
        0, so an all-invalid survivor wave falls through to the next
        group).  Once a wave yields a valid winner, the remaining waves
        are dropped and counted in ``sampler_pruned`` — lossless on this
        simulator, where a valid candidate's measured GFLOPS equals its
        projection, so no pruned candidate could have beaten the winner.
        """
        scores = []
        for assignment in candidates:
            graph = graph_with_params(proposal.graph, assignment, proposal.locks)
            scores.append(
                self.evaluator.project(
                    matrix, graph, self.gpu, self.workload, token=state.token
                )
            )
        waves = self.sh_pruner.waves(scores)
        records: List[EvalRecord] = []
        for index, wave in enumerate(waves):
            if index > 0 and any(r.valid and r.gflops > 0 for r in records):
                state.sampler_pruned += sum(len(w) for w in waves[index:])
                break
            if state.out_of_budget():
                break
            records.extend(
                self._measure_list(
                    matrix,
                    proposal,
                    [candidates[i] for i in wave],
                    state,
                    level,
                )
            )
        return records

    # ------------------------------------------------------------------
    def _measure_list(
        self,
        matrix: SparseMatrix,
        proposal: SampledStructure,
        candidates: Sequence[Dict],
        state: _SearchState,
        level: str,
    ) -> List[EvalRecord]:
        """Fully measure candidates as one ordered batch.

        The batch is truncated to the remaining evaluation budget up front
        (so ``max_total_evals`` holds under any worker count) and results
        fold into the search state in submission order, keeping histories
        byte-identical between serial and pooled execution.

        With the batched evaluator active, candidates sharing a design
        signature are grouped and each group evaluates as one vectorized
        pass — a work unit of the runtime, so ``--jobs`` shards groups,
        not candidates.  Results scatter back into submission order; a
        group cut off by the time limit leaves holes, which only occurs
        where reproducibility is already waived.
        """
        room = self.budget.max_total_evals - state.evals
        batch = list(candidates)[: max(0, room)]

        if self.batch is not None and batch:
            groups = group_candidates(proposal, batch)

            def run_group(group):
                return self.batch.evaluate_group(
                    matrix,
                    proposal,
                    group.assignments,
                    state.token,
                    state.x,
                    state.reference,
                    state.verify_key,
                )

            group_results = self.runtime.map(
                run_group, groups, stop=state.time_up
            )
            results = [None] * len(batch)
            for group, outs in zip(groups, group_results):
                for position, out in zip(group.indices, outs):
                    results[position] = out
        else:

            def run(assignment: Dict):
                return self._evaluate(matrix, proposal, assignment, state)

            results = self.runtime.map(run, batch, stop=state.time_up)

        records: List[EvalRecord] = []
        for assignment, result in zip(batch, results):
            if result is None:
                continue
            gflops, program, error = result
            state.evals += 1
            record = EvalRecord(
                iteration=state.evals,
                structure_sig=proposal.signature,
                assignment=dict(assignment),
                gflops=gflops,
                valid=error == "",
                level=level,
                error=error,
            )
            state.history.append(record)
            records.append(record)
            if gflops > state.best_gflops:
                state.best_gflops = gflops
                state.best_graph = graph_with_params(
                    proposal.graph, assignment, proposal.locks
                )
                state.best_program = program
        return records

    # ------------------------------------------------------------------
    def _evaluate(
        self,
        matrix: SparseMatrix,
        proposal: SampledStructure,
        assignment: Dict,
        state: _SearchState,
    ) -> Tuple[float, Optional[GeneratedProgram], str]:
        """Build + run one candidate; invalid candidates score 0."""
        timings = self.evaluator.timings
        try:
            graph = graph_with_params(proposal.graph, assignment, proposal.locks)
            program = self.evaluator.build(matrix, graph, token=state.token)
            t0 = time.perf_counter()
            # "analysis" stage = plan analysis + cost projection +
            # functional execution (program.run), cached or not — with the
            # analysis cache on, hits make this stage collapse.
            result = program.run(state.x, self.gpu, workload=self.workload)
            timings.add("analysis", time.perf_counter() - t0)
            # Order-tolerant gate: atomic-reduction candidates accumulate
            # in a different order than the reference (see the workload's
            # allclose).  The verdict is a function of the design (not the
            # runtime scalars), so analysis-backed programs verify once
            # per design.
            t0 = time.perf_counter()
            if program.analysis is not None:
                ok = program.analysis.verdict(
                    state.verify_key,
                    lambda: self.workload.allclose(result.y, state.reference),
                )
            else:
                ok = self.workload.allclose(result.y, state.reference)
            timings.add("verify", time.perf_counter() - t0)
            if not ok:
                return 0.0, None, "numeric mismatch"
            return float(result.gflops), program, ""
        except (
            DesignError,
            BuildError,
            PlanValidationError,
            GraphValidationError,
        ) as exc:
            return 0.0, None, f"{type(exc).__name__}: {exc}"

    # ------------------------------------------------------------------
    def _warm_start_proposal(
        self, matrix: SparseMatrix
    ) -> Optional[SampledStructure]:
        """The warm-start store's closest prior winner, as a proposal.

        Donor ranking is the serving frontend's tier-2 rule
        (:func:`~repro.store.records.nearest_result_digest`): graph-bearing
        results of the same workload, excluding this matrix itself, ranked
        by feature-signature distance.  The donor graph carries its tuned
        parameters, so it is proposed with empty locks and a single empty
        assignment.  Any decode failure means no warm start, never an
        error — the search proceeds cold.
        """
        store = self.warm_start_store
        try:
            metas = store.result_metas(self.gpu.name)
        except StoreError:
            return None
        if not metas:
            return None
        digest = nearest_result_digest(
            metas,
            feature_vector(matrix),
            workload=self.workload.name,
            exclude_digest=matrix_token(matrix)[-1],
        )
        if digest is None:
            return None
        payload = store.result_payload(digest)
        if payload is None or not payload.get("graph"):
            return None
        try:
            graph = OperatorGraph.from_dict(payload["graph"])
        except (KeyError, TypeError, ValueError, GraphValidationError):
            return None
        return SampledStructure(graph=graph, locks={})

    # ------------------------------------------------------------------
    def _ml_level(
        self,
        matrix: SparseMatrix,
        state: _SearchState,
        structure_store: Dict[Tuple, SampledStructure],
        rng: np.random.Generator,
    ) -> Optional[float]:
        """Fit the GBT model per best structure, probe the fine grid.

        Fine evaluations continue the global iteration numbering and draw
        from the same ``max_total_evals`` budget as the coarse level.
        """
        valid = [r for r in state.history if r.valid and r.level == "coarse"]
        if not valid:
            return None
        # Best structure by measured coarse performance.
        best_by_structure: Dict[Tuple, float] = {}
        for rec in valid:
            best_by_structure[rec.structure_sig] = max(
                best_by_structure.get(rec.structure_sig, 0.0), rec.gflops
            )
        ranked = sorted(best_by_structure, key=best_by_structure.get, reverse=True)

        mad: Optional[float] = None
        for sig in ranked[:2]:
            if state.out_of_budget():
                break
            proposal = structure_store[sig]
            slots = param_slots(proposal.graph, proposal.locks)
            if not slots:
                continue
            samples = [r for r in valid if r.structure_sig == sig]
            if len(samples) < self.budget.ml_min_samples:
                continue
            t0 = time.perf_counter()
            X = np.stack(
                [features_for(slots, self._key_assign(r.assignment)) for r in samples]
            )
            y = np.array([r.gflops for r in samples])
            model = GradientBoostedTrees().fit(X, y)
            mad = mean_absolute_deviation(y, model.predict(X))
            self.evaluator.timings.add("ml", time.perf_counter() - t0)

            fine = enumerate_param_grid(
                proposal.graph,
                proposal.locks,
                level="fine",
                cap=self.budget.ml_fine_cap,
                rng=rng,
            )
            measured = {
                tuple(sorted(self._key_assign(r.assignment).items()))
                for r in samples
            }
            fine = [
                a
                for a in fine
                if tuple(sorted(a.items())) not in measured
            ]
            if not fine:
                continue
            t0 = time.perf_counter()
            Xf = np.stack([features_for(slots, a) for a in fine])
            pred = model.predict(Xf)
            self.evaluator.timings.add("ml", time.perf_counter() - t0)
            # Stable sort: tied predictions resolve to enumeration order,
            # which lists design-relevant combinations in contiguous blocks
            # — tied fine probes then share design leaves with one another
            # (and with the coarse level) through the design cache.
            top = np.argsort(-pred, kind="stable")[: self.budget.ml_top_k]
            self._measure_batch(
                matrix,
                proposal,
                [fine[int(idx)] for idx in top],
                state,
                level="fine",
            )
        return mad

    @staticmethod
    def _key_assign(assignment: Dict) -> Dict:
        """History assignments may have been JSON-ified; normalise keys."""
        out = {}
        for key, value in assignment.items():
            if isinstance(key, list):
                key = tuple(key)
            out[key] = value
        return out
