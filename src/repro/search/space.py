"""Search space: structure sampling and parameter-grid enumeration.

The structure sampler composes Operator Graphs the way the paper's level-1
search does — choosing operators stage by stage, honouring dependency rules
and the pruning ban list.  It also emits *parameter locks*: values implied
by the structure choice (e.g. THREAD_TOTAL_RED forces one row per thread),
which the parameter levels must not search over.

Parameter enumeration (levels 2 and 3) walks the cartesian product of every
unlocked operator parameter on the coarse or fine grid, capped and sampled
without replacement when the product explodes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.graph import GraphNode, OperatorGraph
from repro.core.kernel.builder import RUNTIME_PARAM_OPS
from repro.core.operators import get_operator

__all__ = [
    "SampledStructure",
    "StructureSampler",
    "enumerate_param_grid",
    "graph_with_params",
    "param_slots",
    "features_for",
]

#: (node_index_in_walk_order, param_name) — a searchable coordinate.
ParamKey = Tuple[int, str]


@dataclass
class SampledStructure:
    """A level-1 proposal: graph skeleton + structurally locked parameters."""

    graph: OperatorGraph
    locks: Dict[ParamKey, object] = field(default_factory=dict)
    #: memoised structure signature — the graph never mutates after
    #: sampling, and the engine reads this per candidate in its hot loop.
    _signature: Optional[Tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def signature(self) -> Tuple:
        if self._signature is None:
            self._signature = self.graph.structure_signature()
        return self._signature


# ---------------------------------------------------------------------------
# Structure sampling
# ---------------------------------------------------------------------------

class StructureSampler:
    """Random composition of Operator Graph structures.

    ``banned`` removes operators per the pruning rules; proposals are
    deduplicated by the caller via :attr:`SampledStructure.signature`.
    """

    def __init__(
        self,
        banned: Optional[Set[str]] = None,
        seed: int = 0,
        extensions: bool = False,
        workload=None,
    ) -> None:
        self.banned = set(banned or ())
        self.rng = np.random.default_rng(seed)
        #: include future-work operators (HYB_DECOMP, paper SecVII-H) in the menu
        self.extensions = extensions
        #: optional workload to shape the reduction-chain menu for.  With a
        #: transpose workload the sampler skips row-oriented TOTAL steps and
        #: direct stores (the static verifier proves those can never
        #: validate — scatter runs along columns).  ``None`` keeps the
        #: historical draw sequence byte-identical, which is what engines
        #: pass when static pruning is disabled.
        self.workload = workload

    # -- small helpers ---------------------------------------------------
    def _ok(self, name: str) -> bool:
        return name not in self.banned

    def _maybe(self, prob: float) -> bool:
        return bool(self.rng.random() < prob)

    def _pick(self, options: Sequence[str]) -> Optional[str]:
        options = [o for o in options if self._ok(o)]
        if not options:
            return None
        return str(self.rng.choice(options))

    # --------------------------------------------------------------------
    def sample(self) -> SampledStructure:
        """One random structure (always statically valid)."""
        nodes: List[GraphNode] = []
        locks: Dict[ParamKey, object] = {}

        # Converting: optional reorder, optional branch, COMPRESS.
        reorder = None
        if self._maybe(0.45):
            reorder = self._pick(["SORT", "SORT_SUB"])
            if reorder:
                nodes.append(GraphNode(reorder))
        if self._maybe(0.18):
            menu = ["ROW_DIV", "BIN"]
            if self.extensions:
                menu.append("HYB_DECOMP")
            branch = self._pick(menu)
            if branch:
                nodes.append(GraphNode(branch))
        nodes.append(GraphNode("COMPRESS"))

        # Mapping: compose levels coarse-to-fine.
        level_kinds: Dict[str, str] = {}
        if self._maybe(0.55):
            kind = self._pick(["BMTB_ROW_BLOCK", "BMTB_NNZ_BLOCK", "BMTB_COL_BLOCK"])
            if kind:
                nodes.append(GraphNode(kind))
                level_kinds["bmtb"] = kind
        if self._maybe(0.40):
            kind = self._pick(["BMW_ROW_BLOCK", "BMW_NNZ_BLOCK"])
            if kind:
                nodes.append(GraphNode(kind))
                level_kinds["bmw"] = kind
        if self._maybe(0.60):
            kind = self._pick(["BMT_ROW_BLOCK", "BMT_NNZ_BLOCK", "BMT_COL_BLOCK"])
            if kind:
                nodes.append(GraphNode(kind))
                level_kinds["bmt"] = kind

        # Decorations.
        if level_kinds.get("bmtb") == "BMTB_ROW_BLOCK":
            if self._maybe(0.30) and self._ok("SORT_BMTB"):
                # insert right after the BMTB node
                idx = next(
                    i for i, nd in enumerate(nodes) if nd.op_name == "BMTB_ROW_BLOCK"
                )
                nodes.insert(idx + 1, GraphNode("SORT_BMTB"))
        finest = None
        for lvl in ("bmt", "bmw", "bmtb"):
            if lvl in level_kinds:
                finest = lvl
                break
        if finest and self._maybe(0.45):
            pad_name = {"bmt": "BMT_PAD", "bmw": "BMW_PAD", "bmtb": "BMTB_PAD"}[finest]
            if self._ok(pad_name):
                mode = "max" if ("bmtb" in level_kinds and finest == "bmt") else "multiple"
                nodes.append(GraphNode(pad_name, {"mode": mode}))
        if level_kinds and self._maybe(0.40) and self._ok("INTERLEAVED_STORAGE"):
            nodes.append(GraphNode("INTERLEAVED_STORAGE"))

        # Implementing: resources + reduction chain.
        nodes.append(GraphNode("SET_RESOURCES"))
        chain, chain_locks = self._reduction_chain(level_kinds, reorder)
        nodes.extend(GraphNode(name) for name in chain)

        graph = OperatorGraph(nodes)

        # Structural locks: pin parameters implied by reduction validity.
        walk = list(graph.walk())
        for i, node in enumerate(walk):
            if (node.op_name, "rows_per_block") in chain_locks and node.op_name in (
                "BMT_ROW_BLOCK",
                "BMW_ROW_BLOCK",
            ):
                locks[(i, "rows_per_block")] = chain_locks[(node.op_name, "rows_per_block")]
        return SampledStructure(graph=graph, locks=locks)

    # --------------------------------------------------------------------
    def _reduction_chain(
        self, level_kinds: Dict[str, str], reorder: Optional[str]
    ) -> Tuple[List[str], Dict[Tuple[str, str], object]]:
        """Choose a reduction chain consistent with the mapping structure.

        With a transpose workload set, row-oriented TOTAL steps and the
        direct-store ending are excluded up front instead of generated and
        rejected: partials scatter along *columns*, so a one-row-per-scope
        TOTAL reduction (or a row-aligned single-writer claim) can never
        validate whenever some row touches two columns — exactly the
        ``REDUCE-CHAIN-*`` verdicts :mod:`repro.staticcheck` proves.
        """
        chain: List[str] = []
        locks: Dict[Tuple[str, str], object] = {}
        transpose = self.workload is not None and getattr(
            self.workload, "transpose", False
        )
        single_writer = not transpose  # can we end with a direct store?

        bmt_kind = level_kinds.get("bmt")
        bmw_kind = level_kinds.get("bmw")
        if bmt_kind:
            if (
                not transpose
                and bmt_kind == "BMT_ROW_BLOCK"
                and self._ok("THREAD_TOTAL_RED")
                and self._maybe(0.7)
            ):
                chain.append("THREAD_TOTAL_RED")
                locks[("BMT_ROW_BLOCK", "rows_per_block")] = 1
            elif self._ok("THREAD_BITMAP_RED"):
                chain.append("THREAD_BITMAP_RED")
                single_writer = single_writer and bmt_kind == "BMT_ROW_BLOCK"
            if bmt_kind != "BMT_ROW_BLOCK":
                single_writer = False
        if bmw_kind or (bmt_kind and self._maybe(0.25)):
            if (
                not transpose
                and bmw_kind == "BMW_ROW_BLOCK"
                and self._ok("WARP_TOTAL_RED")
                and self._maybe(0.7)
            ):
                chain.append("WARP_TOTAL_RED")
                locks[("BMW_ROW_BLOCK", "rows_per_block")] = 1
            else:
                warp_op = self._pick(["WARP_SEG_RED", "WARP_BITMAP_RED"])
                if warp_op:
                    chain.append(warp_op)
                if bmw_kind and bmw_kind != "BMW_ROW_BLOCK":
                    single_writer = False
        if "bmtb" in level_kinds and self._maybe(0.45):
            block_menu = (
                ["SHMEM_OFFSET_RED"]
                if transpose
                else ["SHMEM_OFFSET_RED", "SHMEM_TOTAL_RED"]
            )
            block_op = self._pick(block_menu)
            if block_op:
                chain.append(block_op)
                if block_op == "SHMEM_OFFSET_RED":
                    # block-level merge guarantees one partial per row within
                    # a row-blocked BMTB
                    if level_kinds["bmtb"] == "BMTB_ROW_BLOCK":
                        single_writer = single_writer and True
                    else:
                        single_writer = False

        # Column splits always create multiple writers per row.
        if any(kind.endswith("COL_BLOCK") for kind in level_kinds.values()):
            single_writer = False
        if not level_kinds:
            single_writer = False  # COO grid-stride
        if not chain and not level_kinds:
            pass  # plain COO: elements straight to atomics

        if single_writer and self._ok("GMEM_DIRECT_STORE") and self._maybe(0.75):
            chain.append("GMEM_DIRECT_STORE")
        else:
            chain.append("GMEM_ATOM_RED")
        return chain, locks


# ---------------------------------------------------------------------------
# Archetype seeds
# ---------------------------------------------------------------------------

#: (name, op sequence, {op_name: {param: locked_value}}).  These are the
#: source-format design points of Table II — the search space provably
#: contains every one of them, so level 1 visits them first (the paper's
#: claim "AlphaSparse has covered almost all popular formats" made
#: operational).  All other parameters stay searchable.
_ARCHETYPES: List[Tuple[str, List[str], Dict[str, Dict[str, object]]]] = [
    ("csr-scalar", ["COMPRESS", "BMT_ROW_BLOCK", "SET_RESOURCES",
                    "THREAD_TOTAL_RED", "GMEM_DIRECT_STORE"],
     {"BMT_ROW_BLOCK": {"rows_per_block": 1}}),
    ("csr-vector", ["COMPRESS", "BMW_ROW_BLOCK", "SET_RESOURCES",
                    "WARP_TOTAL_RED", "GMEM_DIRECT_STORE"],
     {"BMW_ROW_BLOCK": {"rows_per_block": 1}}),
    ("ell", ["COMPRESS", "BMT_ROW_BLOCK", "BMT_PAD", "INTERLEAVED_STORAGE",
             "SET_RESOURCES", "THREAD_TOTAL_RED", "GMEM_DIRECT_STORE"],
     {"BMT_ROW_BLOCK": {"rows_per_block": 1}, "BMT_PAD": {"mode": "max"}}),
    ("sell", ["SORT", "COMPRESS", "BMTB_ROW_BLOCK", "BMT_ROW_BLOCK",
              "BMT_PAD", "INTERLEAVED_STORAGE", "SET_RESOURCES",
              "THREAD_TOTAL_RED", "GMEM_DIRECT_STORE"],
     {"BMT_ROW_BLOCK": {"rows_per_block": 1}, "BMT_PAD": {"mode": "max"}}),
    ("csr5-like", ["COMPRESS", "BMW_NNZ_BLOCK", "BMT_NNZ_BLOCK",
                   "INTERLEAVED_STORAGE", "SET_RESOURCES",
                   "THREAD_BITMAP_RED", "WARP_SEG_RED", "GMEM_ATOM_RED"], {}),
    ("merge-like", ["COMPRESS", "BMTB_NNZ_BLOCK", "BMT_NNZ_BLOCK",
                    "SET_RESOURCES", "THREAD_BITMAP_RED", "SHMEM_OFFSET_RED",
                    "GMEM_ATOM_RED"], {}),
    ("csr-adaptive", ["COMPRESS", "BMTB_ROW_BLOCK", "SET_RESOURCES",
                      "SHMEM_OFFSET_RED", "GMEM_DIRECT_STORE"], {}),
    ("row-grouped", ["COMPRESS", "BMTB_ROW_BLOCK", "SET_RESOURCES",
                     "GMEM_ATOM_RED"], {}),
    ("coo", ["COMPRESS", "SET_RESOURCES", "GMEM_ATOM_RED"], {}),
    # The Fig 14a mixed design: SELL's block structure + row-grouped CSR's
    # thread blocking + CSR-Adaptive's shared-memory reduction.
    ("fig14-mix", ["SORT", "COMPRESS", "BMTB_ROW_BLOCK", "BMT_ROW_BLOCK",
                   "BMT_PAD", "INTERLEAVED_STORAGE", "SET_RESOURCES",
                   "THREAD_TOTAL_RED", "SHMEM_OFFSET_RED",
                   "GMEM_DIRECT_STORE"],
     {"BMT_ROW_BLOCK": {"rows_per_block": 1}}),
]


#: Future-work archetype (paper SecVII-H): HYB's row-width decomposition,
#: regular head handled ELL-style, both children accumulating atomically.
_EXTENSION_ARCHETYPES: List[Tuple[str, List[str], Dict[str, Dict[str, object]]]] = [
    ("hyb-like", ["HYB_DECOMP", "COMPRESS", "BMT_ROW_BLOCK", "BMT_PAD",
                  "INTERLEAVED_STORAGE", "SET_RESOURCES", "THREAD_TOTAL_RED",
                  "GMEM_ATOM_RED"],
     {"BMT_ROW_BLOCK": {"rows_per_block": 1}, "BMT_PAD": {"mode": "max"}}),
]


def seed_structures(
    banned: Optional[Set[str]] = None, extensions: bool = False
) -> List[SampledStructure]:
    """Archetype proposals compatible with the ban list, in priority order."""
    banned = set(banned or ())
    archetypes = list(_ARCHETYPES)
    if extensions:
        archetypes = archetypes + _EXTENSION_ARCHETYPES
    seeds: List[SampledStructure] = []
    for _name, ops, op_locks in archetypes:
        if any(op in banned for op in ops):
            continue
        graph = OperatorGraph.from_names(ops)
        locks: Dict[ParamKey, object] = {}
        for i, node in enumerate(graph.walk()):
            for pname, value in op_locks.get(node.op_name, {}).items():
                locks[(i, pname)] = value
        seeds.append(SampledStructure(graph=graph, locks=locks))
    return seeds


# ---------------------------------------------------------------------------
# Parameter enumeration
# ---------------------------------------------------------------------------

def param_slots(
    graph: OperatorGraph, locks: Optional[Dict[ParamKey, object]] = None
) -> List[Tuple[ParamKey, Tuple[object, ...], Tuple[object, ...]]]:
    """Searchable parameters of a graph: (key, coarse grid, fine grid)."""
    locks = locks or {}
    slots = []
    for i, node in enumerate(graph.walk()):
        op = get_operator(node.op_name)
        for spec in op.params:
            key = (i, spec.name)
            if key in locks:
                continue
            slots.append((key, spec.coarse, spec.fine))
    return slots


def graph_with_params(
    graph: OperatorGraph,
    assignment: Dict[ParamKey, object],
    locks: Optional[Dict[ParamKey, object]] = None,
) -> OperatorGraph:
    """Copy of ``graph`` with the assignment (and locks) applied."""
    new = graph.copy()
    merged = dict(locks or {})
    merged.update(assignment)
    for i, node in enumerate(new.walk()):
        for (idx, name), value in merged.items():
            if idx == i:
                node.params[name] = value
    return new


def enumerate_param_grid(
    graph: OperatorGraph,
    locks: Optional[Dict[ParamKey, object]] = None,
    level: str = "coarse",
    cap: int = 64,
    rng: Optional[np.random.Generator] = None,
) -> List[Dict[ParamKey, object]]:
    """Assignments over the coarse/fine cartesian product, sampled to ``cap``.

    The default assignment (all-first grid values) is always included first,
    so every structure gets at least one canonical measurement.

    When the product exceeds ``cap``, sampling is *stratified by design
    relevance*: parameters of runtime-only operators (``SET_RESOURCES``,
    see :data:`repro.core.kernel.builder.RUNTIME_PARAM_OPS`) are crossed in
    full against a small pool of design-relevant combinations.  Design
    leaves depend only on the design-relevant parameters, so every batch
    enumerated this way re-runs the Designer once per pool entry and the
    staged evaluator's cache serves the rest — design-parameter exploration
    happens across structures and through the fine level instead of inside
    one coarse batch.
    """
    if level not in ("coarse", "fine"):
        raise ValueError("level must be 'coarse' or 'fine'")
    slots = param_slots(graph, locks)
    if not slots:
        return [{}]
    grids = [coarse if level == "coarse" else fine for _, coarse, fine in slots]
    keys = [key for key, _, _ in slots]
    total = 1
    for g in grids:
        total *= len(g)
    if total <= cap:
        product = itertools.product(*grids)
        return [dict(zip(keys, combo)) for combo in product]

    op_names = [node.op_name for node in graph.walk()]
    is_runtime = [op_names[key[0]] in RUNTIME_PARAM_OPS for key in keys]
    design_grids = [g for g, rt in zip(grids, is_runtime) if not rt]
    runtime_grids = [g for g, rt in zip(grids, is_runtime) if rt]
    n_runtime = 1
    for g in runtime_grids:
        n_runtime *= len(g)
    n_design_total = 1
    for g in design_grids:
        n_design_total *= len(g)

    rng = rng or np.random.default_rng(0)
    # Design-combo pool: canonical defaults first, then distinct samples.
    pool: List[Tuple[object, ...]] = [tuple(g[0] for g in design_grids)]
    seen = {pool[0]}
    max_design = min(max(1, cap // n_runtime), n_design_total)
    attempts = 0
    while len(pool) < max_design and attempts < cap * 20:
        combo = tuple(g[rng.integers(len(g))] for g in design_grids)
        attempts += 1
        if combo in seen:
            continue
        seen.add(combo)
        pool.append(combo)

    assignments: List[Dict[ParamKey, object]] = []
    for design_combo in pool:
        for runtime_combo in itertools.product(*runtime_grids):
            design_it = iter(design_combo)
            runtime_it = iter(runtime_combo)
            values = [
                next(runtime_it) if rt else next(design_it) for rt in is_runtime
            ]
            assignments.append(dict(zip(keys, values)))
            if len(assignments) == cap:
                return assignments
    return assignments


def features_for(
    slots: Sequence[Tuple[ParamKey, Tuple[object, ...], Tuple[object, ...]]],
    assignment: Dict[ParamKey, object],
) -> np.ndarray:
    """Numeric feature vector of an assignment (for the GBT cost model).

    Numeric parameters enter in log2 (grids are geometric); categorical
    parameters enter as their index in the fine grid.
    """
    feats = np.zeros(len(slots), dtype=np.float64)
    for j, (key, _coarse, fine) in enumerate(slots):
        value = assignment.get(key, fine[0])
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            feats[j] = np.log2(max(float(value), 1e-9))
        else:
            feats[j] = float(fine.index(value)) if value in fine else -1.0
    return feats
