"""Staged evaluation runtime: cached design reuse + parallel evaluation.

The three-level search evaluates hundreds of candidate designs per matrix.
Most of those candidates share a graph *structure* and differ only in
scalar parameters, yet a naive evaluator re-runs the Designer over the full
metadata set for every one of them.  This module makes candidate evaluation
a first-class subsystem with three pieces:

:class:`DesignCache`
    Content-addressed cache of Designer output keyed on
    ``(matrix token, design signature)`` — the matrix's content hash plus
    the graph identity with runtime-only parameters masked (see
    :func:`repro.core.kernel.builder.design_signature`).  Hit/miss counters
    are surfaced in :class:`~repro.search.engine.SearchResult`.  Concurrent
    misses of the same key run the Designer exactly once (per-entry locks),
    so counters are deterministic under any worker count.

:class:`StagedEvaluator`
    Splits ``KernelBuilder.build`` into the structure-level design phase
    (cached) and the parameter-level plan-assembly phase (run per
    candidate).  With ``cache=None`` it degrades to the plain uncached
    build, which the engine's ``enable_design_cache=False`` ablation uses.
    With ``analysis`` set (a :class:`~repro.gpu.analysis.LeafAnalysisCache`)
    assembly and execution become incremental across each design leaf's
    runtime grid: kernel units, cost projections and the functional ``y`` /
    numeric verdict are computed once per leaf and shared by every
    candidate.  Per-stage wall time is accumulated in :attr:`timings`.

    With ``store`` set (a :class:`~repro.store.design.DesignStore`) the
    design phase becomes *read-through persistent*: a miss in the
    in-memory cache consults the store before running the Designer, and
    every Designer outcome — success or :class:`DesignError` — is written
    back.  Stored leaves decode bit-exactly, so search histories are
    byte-identical store-on vs store-off, and a second search of the same
    matrix in a *fresh process* performs zero Designer runs.

:class:`EvaluationRuntime`
    Maps an evaluation function over a candidate batch — a
    ``concurrent.futures`` thread pool when ``jobs > 1``, a deterministic
    serial loop otherwise.  Results always return in submission order, so
    search trajectories are identical for every ``jobs`` setting.  Work
    units may be whole design groups: the engine's batched path
    (:mod:`repro.search.batcheval`) hands one
    :class:`~repro.search.batcheval.CandidateGroup` per dispatch, so
    ``--jobs`` shards groups, not candidates.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.core.designer import DesignError, DesignLeaf
from repro.core.graph import GraphValidationError, OperatorGraph
from repro.core.kernel.builder import BuildError, KernelBuilder, design_signature
from repro.core.kernel.program import GeneratedProgram
from repro.gpu.analysis import LeafAnalysisCache, content_digest
from repro.gpu.arch import GPUSpec
from repro.gpu.cost import CostModel
from repro.gpu.executor import PlanValidationError, plan_cost_inputs
from repro.sparse.matrix import SparseMatrix
from repro.store.design import DesignStore

__all__ = [
    "CacheStats",
    "DesignCache",
    "StagedEvaluator",
    "EvaluationRuntime",
    "StageTimings",
    "matrix_token",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def matrix_token(matrix: SparseMatrix) -> Tuple:
    """Content-address of a matrix: name, shape and a triplet digest.

    Hashing the triplets (rather than trusting ``matrix.name``) keeps a
    shared multi-matrix cache safe for anonymous or same-named matrices.
    Callers tuning a non-default workload scope the token with
    :meth:`repro.workloads.Workload.scope_token` before keying caches or
    stores on it, so designs/analyses of different workloads never mix
    (the default SpMV scope is the identity — historical keys unchanged).
    """
    digest = content_digest(matrix.rows, matrix.cols, matrix.vals)
    return (matrix.name, matrix.n_rows, matrix.n_cols, matrix.nnz, digest)


@dataclass(frozen=True)
class CacheStats:
    """Counters of one :class:`DesignCache` (misses == Designer executions)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def since(self, other: "CacheStats") -> "CacheStats":
        """Delta of two snapshots (per-search accounting)."""
        return CacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            evictions=self.evictions - other.evictions,
        )


class _CacheEntry:
    """One cache slot; ``lock`` serialises the first (designing) caller."""

    __slots__ = ("lock", "leaves", "error", "done")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.leaves: Optional[List[DesignLeaf]] = None
        self.error: Optional[str] = None
        self.done = False


class DesignCache:
    """Thread-safe LRU cache of design-phase output.

    Failed designs (:class:`DesignError`) are cached too — the search
    records the same dead candidate for every parameter assignment of a
    structurally invalid graph, and re-running the Designer to rediscover
    the failure would forfeit most of the caching win.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, _CacheEntry]" = OrderedDict()
        self._stats = CacheStats()

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        with self._lock:
            return replace(self._stats)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    def get_or_design(
        self, key: Tuple, factory: Callable[[], List[DesignLeaf]]
    ) -> List[DesignLeaf]:
        """Return the cached leaves for ``key``, running ``factory`` at most
        once per key across all threads."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = _CacheEntry()
                self._entries[key] = entry
            else:
                self._entries.move_to_end(key)
        with entry.lock:
            if not entry.done:
                try:
                    entry.leaves = factory()
                except DesignError as exc:
                    entry.error = str(exc)
                except BaseException:
                    # Unexpected failure: drop the slot so later calls retry.
                    with self._lock:
                        if self._entries.get(key) is entry:
                            del self._entries[key]
                    raise
                entry.done = True
                with self._lock:
                    self._stats = replace(self._stats, misses=self._stats.misses + 1)
                    self._evict_locked()
            else:
                with self._lock:
                    self._stats = replace(self._stats, hits=self._stats.hits + 1)
        if entry.error is not None:
            raise DesignError(entry.error)
        assert entry.leaves is not None
        return entry.leaves

    def _evict_locked(self) -> None:
        """Drop least-recently-used *completed* entries beyond capacity."""
        evicted = 0
        for key in list(self._entries):
            if len(self._entries) <= self.max_entries:
                break
            if self._entries[key].done:
                del self._entries[key]
                evicted += 1
        if evicted:
            self._stats = replace(
                self._stats, evictions=self._stats.evictions + evicted
            )


class StageTimings:
    """Thread-safe accumulator of per-stage wall time.

    Under a worker pool, concurrent stage time adds up like CPU time —
    stage sums may exceed elapsed wall clock.  Snapshots are plain dicts;
    :meth:`since` turns two snapshots into a per-search delta.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seconds: Dict[str, float] = {}

    def add(self, stage: str, seconds: float) -> None:
        with self._lock:
            self._seconds[stage] = self._seconds.get(stage, 0.0) + seconds

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._seconds)

    @staticmethod
    def since(before: Dict[str, float], after: Dict[str, float]) -> Dict[str, float]:
        return {
            stage: after[stage] - before.get(stage, 0.0) for stage in sorted(after)
        }


class StagedEvaluator:
    """Two-phase candidate builds: cached design + per-candidate assembly,
    with optional leaf-level analysis reuse across the runtime grid and
    optional read-through persistence to a design store."""

    def __init__(
        self,
        builder: KernelBuilder,
        cache: Optional[DesignCache] = None,
        analysis: Optional[LeafAnalysisCache] = None,
        store: Optional[DesignStore] = None,
        arch: str = "",
    ) -> None:
        self.builder = builder
        self.cache = cache
        self.analysis = analysis
        #: persistent design store (``arch`` names the GPU the designs are
        #: stored under — designs here are arch-independent, but the store
        #: keys on it so a multi-arch deployment can never cross-serve).
        self.store = store
        self.arch = arch
        self.timings = StageTimings()
        #: memoized static-verifier fact sets, keyed by matrix content
        #: token — one O(nnz) pass per matrix per evaluator lifetime,
        #: shared by every search (and every workload; facts are
        #: workload-independent) this evaluator serves.
        self._facts: Dict[Tuple, "MatrixFacts"] = {}
        self._facts_lock = threading.Lock()

    def matrix_facts(self, matrix: SparseMatrix) -> "MatrixFacts":
        """The matrix's static-analysis facts, computed once per content."""
        from repro.staticcheck.facts import matrix_facts

        token = matrix_token(matrix)
        with self._facts_lock:
            facts = self._facts.get(token)
        if facts is None:
            facts = matrix_facts(matrix)
            with self._facts_lock:
                self._facts.setdefault(token, facts)
        return facts

    def _design(
        self,
        matrix: SparseMatrix,
        graph: OperatorGraph,
        token: Tuple,
        signature: Tuple,
    ) -> List[DesignLeaf]:
        """Design phase with store read-through and write-back.

        Store hits — successes *and* recorded :class:`DesignError`
        failures — replay without touching the Designer; misses run it and
        persist the outcome, so the next process warm-starts.
        """
        if self.store is None:
            return self.builder.design_phase(matrix, graph)
        outcome = self.store.get_design(token, signature, self.arch)
        if outcome is not None:
            status, value = outcome
            if status == "error":
                raise DesignError(value)
            return value
        try:
            leaves = self.builder.design_phase(matrix, graph)
        except DesignError as exc:
            self.store.put_design(token, signature, self.arch, error=str(exc))
            raise
        self.store.put_design(token, signature, self.arch, leaves=leaves)
        return leaves

    def design_leaves(
        self,
        matrix: SparseMatrix,
        graph: OperatorGraph,
        token: Tuple,
        signature: Tuple,
    ) -> List["DesignLeaf"]:
        """Design-phase leaves for ``(token, signature)``, cached + timed.

        The batched evaluator runs the design phase once per candidate
        *group* through this entry point (the per-candidate :meth:`build`
        path folds the same lookup into each build).
        """
        t0 = time.perf_counter()
        try:
            if self.cache is None:
                return self._design(matrix, graph, token, signature)
            return self.cache.get_or_design(
                (token, signature),
                lambda: self._design(matrix, graph, token, signature),
            )
        finally:
            self.timings.add("design", time.perf_counter() - t0)

    def build(
        self,
        matrix: SparseMatrix,
        graph: OperatorGraph,
        token: Optional[Tuple] = None,
    ) -> GeneratedProgram:
        """Build one candidate program, reusing cached design leaves.

        ``token`` is the precomputed :func:`matrix_token` — pass it when
        evaluating many candidates of one matrix to hash the triplets once
        per search instead of once per candidate.
        """
        if self.cache is None and self.analysis is None and self.store is None:
            t0 = time.perf_counter()
            leaves = self.builder.design_phase(matrix, graph)
            self.timings.add("design", time.perf_counter() - t0)
            t0 = time.perf_counter()
            program = self.builder.assembly_phase(matrix, graph, leaves)
            self.timings.add("assembly", time.perf_counter() - t0)
            return program
        token = token or matrix_token(matrix)
        signature = design_signature(graph)
        key = (token, signature)
        leaves = self.design_leaves(matrix, graph, token, signature)
        design = None if self.analysis is None else self.analysis.for_design(key)
        t0 = time.perf_counter()
        program = self.builder.assembly_phase(
            matrix, graph, leaves, analysis=design
        )
        self.timings.add("assembly", time.perf_counter() - t0)
        return program

    def project(
        self,
        matrix: SparseMatrix,
        graph: OperatorGraph,
        gpu: GPUSpec,
        workload=None,
        token: Optional[Tuple] = None,
    ) -> float:
        """Cheap successive-halving rung: projected GFLOPS of a candidate.

        Builds the candidate (design + assembly, both cached) and runs
        *only* the analytic cost model over its plans — no functional
        execution and no numeric verification, which is where candidate
        evaluation spends its time.  The GFLOPS formula mirrors
        :meth:`GeneratedProgram.run` (kernels launch back-to-back), so a
        valid candidate's projection equals its measured score on this
        simulator.  Candidates that fail to build or whose plans don't
        validate project 0.0 — exactly the candidates a full measurement
        would score 0.  Projections warm the analysis cache, so the
        rung's cost-input work is reused when a survivor is measured.
        """
        t0 = time.perf_counter()
        try:
            program = self.build(matrix, graph, token=token)
            total = 0.0
            for unit in program.kernels:
                inputs = plan_cost_inputs(unit.plan, gpu, workload)
                total += CostModel(gpu).evaluate(inputs).total_s
        except (
            DesignError,
            BuildError,
            PlanValidationError,
            GraphValidationError,
        ):
            return 0.0
        finally:
            self.timings.add("project", time.perf_counter() - t0)
        if total <= 0:
            return 0.0
        wl_flops = (
            workload.flops(program.useful_nnz)
            if workload is not None
            else 2.0 * program.useful_nnz
        )
        return float(wl_flops / total / 1e9)


class EvaluationRuntime:
    """Ordered batch evaluation with an optional shared worker pool.

    ``jobs == 1`` (the default) is a plain serial loop; ``jobs > 1`` lazily
    creates one ``ThreadPoolExecutor`` that is reused across every batch —
    and, via :meth:`SearchEngine.search_many`, across every matrix of a
    collection.  Both paths return results in submission order, and
    evaluation tasks draw no random numbers, so search results are
    identical for every ``jobs`` setting — except under a wall-clock
    ``stop`` condition (``SearchBudget.time_limit_s``): both paths poll
    ``stop`` between dispatches and may cut a batch short, but work already
    dispatched to the pool always completes.  Time-limited runs are
    wall-clock-dependent and not reproducible even serially, so only
    count-budgeted searches carry the identity guarantee.
    """

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = int(jobs)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[_T], _R],
        items: Sequence[_T],
        stop: Optional[Callable[[], bool]] = None,
    ) -> List[_R]:
        """Apply ``fn`` to every item, in order.

        ``stop`` is polled between dispatches on both paths (time-budget
        checks) — serial between item evaluations, pooled between submits;
        items already submitted to the pool always complete.
        """
        items = list(items)
        if self.jobs == 1 or len(items) <= 1:
            out: List[_R] = []
            for item in items:
                if stop is not None and stop():
                    break
                out.append(fn(item))
            return out
        pool = self._ensure_pool()
        futures = []
        for item in items:
            if stop is not None and stop():
                break
            futures.append(pool.submit(fn, item))
        return [future.result() for future in futures]

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.jobs, thread_name_prefix="repro-eval"
                )
            return self._pool

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "EvaluationRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
