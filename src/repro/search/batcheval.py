"""Vectorized batch evaluation: candidates sharing a design as one pass.

The hot loop of the three-level search measures a structure's parameter
assignments one candidate at a time: every candidate re-applies its graph
parameters, re-walks the design cache, re-assembles a plan and replays the
executor — even though most candidates of a batch differ only in runtime
scalars and share every cached quantity.  This module converts that
per-candidate interpreter loop into array-at-a-time execution:

:func:`group_candidates`
    Splits one ask batch into *design groups* — candidates whose merged
    (lock-overlaid) parameters agree on every non-runtime key, i.e. exactly
    the candidates :func:`~repro.core.kernel.builder.design_signature`
    would collapse onto one design-cache entry — without building a single
    graph copy.  Groups remember each member's position in the submission
    batch, so results scatter back into submission order and histories stay
    byte-identical.

:class:`BatchEvaluator`
    Evaluates one group as a single pass: the design phase, the
    leaf-analysis lookup and the representative graph are produced once per
    group; per-candidate runtime assignments are grafted onto the
    representative graph's runtime nodes (no graph copies); kernel units
    and cost projections for the whole runtime grid are fetched through the
    batched :class:`~repro.gpu.analysis.LeafAnalysis` entry points (one
    lock trip per group instead of one per candidate); the functional
    result is read once per leaf and numeric verification runs once per
    design, as before.  Scoring replicates
    :meth:`~repro.core.kernel.program.GeneratedProgram.run` float-for-float
    (same accumulation order, same error strings), so the batched and
    per-candidate paths produce byte-identical search histories — the
    engine's ``enable_batch_eval`` ablation and the golden-digest tests
    pin that equivalence.

Stage accounting: group assembly lands in ``batch_assembly``, cost +
scoring in ``batch_cost``, and numeric verification stays under ``verify``
(the design-phase share stays under ``design``), so ``--profile`` keeps a
faithful breakdown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.designer import DesignError
from repro.core.graph import GraphValidationError
from repro.core.kernel.builder import (
    BuildError,
    RUNTIME_PARAM_OPS,
    design_signature,
    runtime_nodes_for_leaf,
)
from repro.core.kernel.program import GeneratedProgram, KernelUnit
from repro.gpu.arch import GPUSpec
from repro.gpu.executor import (
    PlanValidationError,
    compute_cost_entry,
    cost_entry_key,
    functional_y_entry,
)
from repro.search.space import SampledStructure, graph_with_params
from repro.sparse.matrix import SparseMatrix
from repro.workloads import Workload

__all__ = [
    "CandidateGroup",
    "BatchEvaluator",
    "design_group_key",
    "group_candidates",
]

#: the exceptions one candidate's failure is allowed to surface as (the
#: same set the per-candidate evaluator folds into a zero-score record).
EVAL_ERRORS = (DesignError, BuildError, PlanValidationError, GraphValidationError)


@dataclass
class CandidateGroup:
    """Candidates of one ask batch sharing a design signature."""

    #: positions in the submission batch (results scatter back by these)
    indices: List[int] = field(default_factory=list)
    assignments: List[Dict] = field(default_factory=list)


def design_group_key(
    merged: Dict, op_names: Sequence[str], keep_tpb: bool = False
) -> Tuple:
    """Merged parameters with runtime keys masked — the cheap stand-in for
    :func:`design_signature` over one proposal's assignments.

    ``keep_tpb`` retains ``threads_per_block`` entries (the one runtime
    scalar the static verifier reads), giving the static-pruning memo key.
    """
    items = []
    for key, value in merged.items():
        idx = key[0]
        if (
            0 <= idx < len(op_names)
            and op_names[idx] in RUNTIME_PARAM_OPS
            and not (keep_tpb and key[1] == "threads_per_block")
        ):
            continue
        items.append((key, value))
    items.sort(key=lambda item: item[0])
    return tuple(items)


def group_candidates(
    proposal: SampledStructure, assignments: Sequence[Dict]
) -> List[CandidateGroup]:
    """Group a structure's assignments by design identity.

    Two assignments land in one group exactly when their merged
    (lock-overlaid) parameters agree on every non-runtime key — the same
    masking rule as :func:`~repro.core.kernel.builder.design_signature`,
    computed without building graph copies.  Groups preserve
    first-occurrence order.
    """
    op_names = [node.op_name for node in proposal.graph.walk()]
    locks = proposal.locks
    groups: Dict[Tuple, CandidateGroup] = {}
    for position, assignment in enumerate(assignments):
        merged = dict(locks)
        merged.update(assignment)
        key = design_group_key(merged, op_names)
        group = groups.get(key)
        if group is None:
            groups[key] = group = CandidateGroup()
        group.indices.append(position)
        group.assignments.append(assignment)
    return list(groups.values())


def _sum_y(ys: Sequence[np.ndarray], shape) -> np.ndarray:
    """Per-kernel results accumulated exactly like ``GeneratedProgram.run``
    (zeros then ``+=`` in kernel order — bit-identical float behaviour)."""
    y = np.zeros(shape, dtype=np.float64)
    for arr in ys:
        y += arr
    return y


class BatchEvaluator:
    """Evaluates one design group of candidates as a single pass.

    Built by the engine from its staged evaluator; requires the design and
    leaf-analysis caches (the engine falls back to the per-candidate path
    when either is ablated).  One ``evaluate_group`` call is one work unit
    of the evaluation runtime, so ``--jobs`` shards groups, not candidates;
    the group's representative graph is private to the call, keeping
    pooled execution race-free.
    """

    def __init__(self, evaluator, gpu: GPUSpec, workload: Workload) -> None:
        self.evaluator = evaluator
        self.builder = evaluator.builder
        self.gpu = gpu
        self.workload = workload

    # ------------------------------------------------------------------
    def evaluate_group(
        self,
        matrix: SparseMatrix,
        proposal: SampledStructure,
        assignments: Sequence[Dict],
        token: Tuple,
        x: np.ndarray,
        reference: np.ndarray,
        verify_key: str,
    ) -> List[Tuple[float, Optional[GeneratedProgram], str]]:
        """``(gflops, program, error)`` per candidate, in submission order.

        Mirrors ``SearchEngine._evaluate`` byte-for-byte: the same error
        strings (cached failures replay their exact class and message), the
        same GFLOPS accumulation order, the same once-per-design numeric
        verdict.
        """
        evaluator = self.evaluator
        timings = evaluator.timings
        workload = self.workload
        gpu = self.gpu
        locks = proposal.locks
        assignments = list(assignments)
        n = len(assignments)

        # ---- design phase: once per group --------------------------------
        try:
            rep = graph_with_params(proposal.graph, assignments[0], locks)
            signature = design_signature(rep)
            key = (token, signature)
            leaves = evaluator.design_leaves(matrix, rep, token, signature)
        except EVAL_ERRORS as exc:
            error = f"{type(exc).__name__}: {exc}"
            return [(0.0, None, error)] * n
        design = evaluator.analysis.for_design(key)

        # ---- batch assembly: units for the whole runtime grid ------------
        t0 = time.perf_counter()
        proposal_walk = list(proposal.graph.walk())
        rep_walk = list(rep.walk())
        runtime_idx = [
            i
            for i, node in enumerate(rep_walk)
            if node.op_name in RUNTIME_PARAM_OPS
        ]
        leaf_nodes = [
            runtime_nodes_for_leaf(rep, leaf.branch_path) for leaf in leaves
        ]
        leaf_las = [design.leaf(i) for i in range(len(leaves))]

        mergeds = []
        for assignment in assignments:
            merged = dict(locks)
            merged.update(assignment)
            mergeds.append(merged)

        # Unit-cache keys per candidate per leaf: graft each candidate's
        # runtime parameters onto the (group-private) representative graph
        # instead of copying the whole graph per candidate.
        unit_keys: List[List[Tuple]] = []
        for merged in mergeds:
            for i in runtime_idx:
                params = dict(proposal_walk[i].params)
                for (idx, name), value in merged.items():
                    if idx == i:
                        params[name] = value
                rep_walk[i].params = params
            unit_keys.append(
                [self.builder.runtime_unit_key(nodes) for nodes in leaf_nodes]
            )

        unit_entries: List[List[Tuple]] = []
        for leaf, nodes, la in zip(leaves, leaf_nodes, leaf_las):

            def compute(key, leaf=leaf, nodes=nodes, la=la):
                # The key *is* the runtime parameterisation — restore it on
                # the branch-path nodes before assembling.
                for node, (_op, items) in zip(nodes, key):
                    node.params = dict(items)
                return self.builder.compute_unit_entry(leaf, nodes, la)

            keys = [unit_keys[c][len(unit_entries)] for c in range(n)]
            unit_entries.append(la.unit_batch(keys, compute))

        errors: List[Optional[str]] = [None] * n
        kernels_of: List[Optional[List[KernelUnit]]] = [None] * n
        for c in range(n):
            kernels: List[KernelUnit] = []
            error = None
            for li in range(len(leaves)):
                entry = unit_entries[li][c]
                if entry[0] == "error":
                    error = f"{entry[1].__name__}: {entry[2]}"
                    break
                kernels.append(entry[1])
            if error is None:
                conflict = design.cross_check(
                    lambda k=kernels: self.builder._cross_kernel_conflict(k)
                )
                if conflict is not None:
                    error = f"BuildError: {conflict}"
            errors[c] = error
            if error is None:
                kernels_of[c] = kernels
        timings.add("batch_assembly", time.perf_counter() - t0)

        # ---- batch cost + scoring ----------------------------------------
        t0 = time.perf_counter()
        verify_s = 0.0
        x64 = np.asarray(x, dtype=np.float64)

        # Cost projections for each leaf's whole distribution-digest batch
        # at once (plans are shared per distribution, so the distinct set
        # is tiny even for large groups).
        cost_maps: List[Dict[Tuple, Tuple]] = []
        for li, la in enumerate(leaf_las):
            plans: Dict[Tuple, object] = {}
            for c in range(n):
                if errors[c] is not None:
                    continue
                plan = kernels_of[c][li].plan
                plans.setdefault(cost_entry_key(plan, gpu, workload), plan)
            keys = list(plans)
            entries = la.cost_batch(
                keys,
                lambda key, plans=plans: compute_cost_entry(
                    plans[key], gpu, workload
                ),
            )
            cost_maps.append(dict(zip(keys, entries)))

        wl_flops = workload.flops(matrix.nnz)
        result_shape = workload.result_shape(matrix.n_rows, matrix.n_cols)
        y_entries: List[Optional[Tuple]] = [None] * len(leaves)
        results: List[Tuple[float, Optional[GeneratedProgram], str]] = []
        for c in range(n):
            if errors[c] is not None:
                results.append((0.0, None, errors[c]))
                continue
            kernels = kernels_of[c]
            total = 0.0
            ys: List[np.ndarray] = []
            error = None
            for li, unit in enumerate(kernels):
                entry = cost_maps[li][cost_entry_key(unit.plan, gpu, workload)]
                if entry[0] == "error":
                    error = f"PlanValidationError: {entry[1]}"
                    break
                total += entry[2].total_s
                y_entry = y_entries[li]
                if y_entry is None:
                    y_entry = functional_y_entry(unit.plan, x64, workload)
                    y_entries[li] = y_entry
                if y_entry[0] == "error":
                    error = f"PlanValidationError: {y_entry[1]}"
                    break
                ys.append(y_entry[1])
            if error is not None:
                results.append((0.0, None, error))
                continue
            gflops = wl_flops / total / 1e9 if total > 0 else 0.0
            program = GeneratedProgram(
                matrix_name=matrix.name,
                n_rows=matrix.n_rows,
                n_cols=matrix.n_cols,
                useful_nnz=matrix.nnz,
                kernels=kernels,
                analysis=design,
            )
            tv = time.perf_counter()
            ok = design.verdict(
                verify_key,
                lambda ys=ys: workload.allclose(
                    _sum_y(ys, result_shape), reference
                ),
            )
            verify_s += time.perf_counter() - tv
            if not ok:
                results.append((0.0, None, "numeric mismatch"))
                continue
            results.append((float(gflops), program, ""))
        timings.add("batch_cost", time.perf_counter() - t0 - verify_s)
        timings.add("verify", verify_s)
        return results
