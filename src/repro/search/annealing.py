"""Simulated-annealing acceptance and termination (paper §VI-A).

The first two search levels "could be terminated early by simulated
annealing": worse candidates are accepted with a temperature-decayed
probability (keeping structure exploration alive early on), and the search
stops once the temperature has cooled *and* no improvement has been seen for
a patience window — or when the hard iteration/time budget runs out.

:class:`AnnealerSampler` packages this behaviour behind the pluggable
:class:`~repro.search.samplers.Sampler` interface as the default sampler:
it reproduces the legacy engine loop draw for draw (structure-sampler
seeding, archetype-seed ordering, stratified coarse grids, Metropolis
acceptance), so default-sampler search histories are byte-identical to the
pre-interface engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.search.samplers import (
    AskBatch,
    Sampler,
    SearchSpace,
    propose_structure,
    register_sampler,
)
from repro.search.space import enumerate_param_grid

__all__ = ["AnnealingSchedule", "AnnealerSampler"]


@dataclass
class AnnealingSchedule:
    """Acceptance temperature + patience-based termination.

    ``temperature`` is relative: a candidate that is ``d`` percent worse
    than the incumbent is accepted with probability ``exp(-d / T)``.
    """

    initial_temperature: float = 0.30
    cooling: float = 0.90
    min_temperature: float = 0.01
    patience: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        if self.initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        self._temperature = self.initial_temperature
        self._since_improvement = 0

    # ------------------------------------------------------------------
    @property
    def temperature(self) -> float:
        return self._temperature

    def accept(
        self, candidate: float, incumbent: float, rng: np.random.Generator
    ) -> bool:
        """Metropolis acceptance on (higher-is-better) GFLOPS scores."""
        if candidate >= incumbent:
            return True
        if incumbent <= 0:
            return True
        relative_loss = (incumbent - candidate) / incumbent
        prob = float(np.exp(-relative_loss / max(self._temperature, 1e-9)))
        return bool(rng.random() < prob)

    def step(self, improved: bool) -> None:
        """Advance the schedule after each structure evaluation."""
        self._temperature = max(
            self.min_temperature, self._temperature * self.cooling
        )
        self._since_improvement = 0 if improved else self._since_improvement + 1

    def should_terminate(self) -> bool:
        """Stop once the schedule has cooled substantially and no candidate
        improved for ``patience`` consecutive structures.  Searches on
        regular matrices plateau early (the archetype seeds already sit near
        the optimum) and stop sooner — the behaviour behind the paper's
        Fig 13 iteration counts."""
        cooled = self._temperature <= max(
            self.min_temperature, 0.5 * self.initial_temperature
        )
        return cooled and self._since_improvement >= self.patience

    def reset(self) -> None:
        self._temperature = self.initial_temperature
        self._since_improvement = 0

    def clone(self) -> "AnnealingSchedule":
        """Fresh schedule with the same hyper-parameters.

        The search engine clones its schedule template per search so the
        engine itself carries no per-search mutable state and concurrent
        searches cannot corrupt each other's cooling trajectories.
        """
        return AnnealingSchedule(
            initial_temperature=self.initial_temperature,
            cooling=self.cooling,
            min_temperature=self.min_temperature,
            patience=self.patience,
        )


@register_sampler
class AnnealerSampler(Sampler):
    """The historical three-level search behind the ask/tell interface.

    Byte-identity contract: every random draw happens on the *engine's*
    per-search generator in exactly the legacy order — (1) the structure
    sampler's seed in :meth:`begin`, (2) per structure the stratified
    coarse-grid draw in :meth:`ask` followed by the Metropolis acceptance
    draw in :meth:`tell`.  The ``seed`` argument of ``begin`` is therefore
    unused here (``--sampler-seed`` only affects the adaptive samplers).
    """

    name = "annealer"
    uses_ml_level = True
    prunes = False

    def begin(
        self, space: SearchSpace, rng: np.random.Generator, seed: int
    ) -> None:
        self._space = space
        self._rng = rng
        self._structures = space.structure_sampler(
            seed=int(rng.integers(2**31))
        )
        template = space.annealing_template
        self._schedule: AnnealingSchedule = (
            template.clone()
            if isinstance(template, AnnealingSchedule)
            else AnnealingSchedule()
        )
        # Level 1 visits the source-format archetypes first (the search
        # space contains every format of Table II by construction), then
        # explores random machine designs.
        self._seeds = space.seed_proposals()
        self._seen: Set[Tuple] = set()
        self._tried = 0
        self._incumbent = 0.0

    # ------------------------------------------------------------------
    def ask(self, history: Sequence) -> Optional[List[AskBatch]]:
        if self._tried >= self._space.budget.max_structures:
            return None
        # Paper footnote 10: the "no pruning" baseline removes simulated
        # annealing too, so early termination is part of the pruned
        # configuration.
        if self._space.annealing_termination and self._schedule.should_terminate():
            return None
        proposal = None
        while self._seeds:
            candidate = self._seeds.pop(0)
            if candidate.signature not in self._seen:
                proposal = candidate
                break
        if proposal is None:
            proposal = propose_structure(self._structures, self._seen)
        if proposal is None:
            return None  # structure space (as pruned) exhausted
        self._seen.add(proposal.signature)
        self._tried += 1
        assignments = enumerate_param_grid(
            proposal.graph,
            proposal.locks,
            level="coarse",
            cap=self._space.budget.coarse_evals_per_structure,
            rng=self._rng,
        )
        return [AskBatch(proposal, assignments, level="coarse")]

    def tell(self, batches: List[AskBatch], records: List[List]) -> None:
        recs = records[0] if records else []
        structure_best = max((r.gflops for r in recs), default=0.0)
        improved = structure_best > self._incumbent
        if self._schedule.accept(structure_best, self._incumbent, self._rng):
            self._incumbent = max(self._incumbent, structure_best)
        self._schedule.step(improved)
