"""Simulated-annealing acceptance and termination (paper §VI-A).

The first two search levels "could be terminated early by simulated
annealing": worse candidates are accepted with a temperature-decayed
probability (keeping structure exploration alive early on), and the search
stops once the temperature has cooled *and* no improvement has been seen for
a patience window — or when the hard iteration/time budget runs out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AnnealingSchedule"]


@dataclass
class AnnealingSchedule:
    """Acceptance temperature + patience-based termination.

    ``temperature`` is relative: a candidate that is ``d`` percent worse
    than the incumbent is accepted with probability ``exp(-d / T)``.
    """

    initial_temperature: float = 0.30
    cooling: float = 0.90
    min_temperature: float = 0.01
    patience: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        if self.initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        self._temperature = self.initial_temperature
        self._since_improvement = 0

    # ------------------------------------------------------------------
    @property
    def temperature(self) -> float:
        return self._temperature

    def accept(
        self, candidate: float, incumbent: float, rng: np.random.Generator
    ) -> bool:
        """Metropolis acceptance on (higher-is-better) GFLOPS scores."""
        if candidate >= incumbent:
            return True
        if incumbent <= 0:
            return True
        relative_loss = (incumbent - candidate) / incumbent
        prob = float(np.exp(-relative_loss / max(self._temperature, 1e-9)))
        return bool(rng.random() < prob)

    def step(self, improved: bool) -> None:
        """Advance the schedule after each structure evaluation."""
        self._temperature = max(
            self.min_temperature, self._temperature * self.cooling
        )
        self._since_improvement = 0 if improved else self._since_improvement + 1

    def should_terminate(self) -> bool:
        """Stop once the schedule has cooled substantially and no candidate
        improved for ``patience`` consecutive structures.  Searches on
        regular matrices plateau early (the archetype seeds already sit near
        the optimum) and stop sooner — the behaviour behind the paper's
        Fig 13 iteration counts."""
        cooled = self._temperature <= max(
            self.min_temperature, 0.5 * self.initial_temperature
        )
        return cooled and self._since_improvement >= self.patience

    def reset(self) -> None:
        self._temperature = self.initial_temperature
        self._since_improvement = 0

    def clone(self) -> "AnnealingSchedule":
        """Fresh schedule with the same hyper-parameters.

        The search engine clones its schedule template per search so the
        engine itself carries no per-search mutable state and concurrent
        searches cannot corrupt each other's cooling trajectories.
        """
        return AnnealingSchedule(
            initial_temperature=self.initial_temperature,
            cooling=self.cooling,
            min_temperature=self.min_temperature,
            patience=self.patience,
        )
