"""Pluggable candidate samplers: the ask/tell layer of the search engine.

The three-level engine historically hard-wired *how* candidates are chosen:
annealing over structures, a stratified coarse grid per structure, GBT
interpolation on top.  This module makes that choice a first-class plugin
(the same move the workload layer made for *what* is tuned): a
:class:`Sampler` proposes evaluation batches (``ask``) and folds measured
results back in (``tell``), while the engine keeps everything samplers must
not own — budgets, static pruning, the staged evaluator, history recording.

Four samplers ship:

``annealer`` (:class:`~repro.search.annealing.AnnealerSampler`)
    The historical behaviour behind the interface — structure proposals
    with archetype seeding, simulated-annealing acceptance/termination and
    the stratified coarse grid.  It is the default and draws from the
    *engine's* RNG in exactly the legacy order, so default-sampler search
    histories stay byte-identical to the pre-interface code (golden-digest
    asserted in ``tests/test_search_samplers.py``).

``qmc`` (:class:`QMCSampler`)
    Quasi-Monte-Carlo startup sampler: scrambled Sobol'-style digital
    points over every structure's runtime-parameter grid.  Space-filling
    coverage with no model — the recommended startup phase and a strong
    cheap baseline for the sample-efficiency benchmark.

``tpe`` (:class:`TPESampler`)
    Tree-structured-Parzen-Estimator-style sampler: told observations are
    split into good/bad sets by a gamma quantile, per-parameter discrete
    densities are fit to each, and candidates are asked by expected-
    improvement ratio ``l_good / l_bad`` (the optuna TPE recipe adapted to
    the discrete operator-parameter grids).

``dts`` (:class:`DTSSampler`)
    Double-Thompson-Sampling dueling bandit over design combos (PAPERS.md):
    structures are *arms*, each ask selects a (champion, challenger) pair
    by D-TS over the pairwise win matrix and spends the next evaluation
    batch on their candidates; the measured-GFLOPS comparison updates the
    duel record.  Fits this engine exactly: candidates are naturally
    compared, not scored absolutely.

Adaptive samplers (everything but the annealer) draw only from their own
seeded RNG inside ``ask``/``tell`` — never during evaluation — so ask
sequences are byte-identical across any ``jobs`` setting, and they opt in
to successive-halving eval pruning (``prunes = True``): the engine
projects candidate costs cheaply and fully measures only rung survivors
(see :class:`~repro.search.pruning.SuccessiveHalvingPruner`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Type, Union

import numpy as np

from repro.search.space import (
    SampledStructure,
    StructureSampler,
    param_slots,
    seed_structures,
)

__all__ = [
    "AskBatch",
    "SearchSpace",
    "Sampler",
    "QMCSampler",
    "TPESampler",
    "DTSSampler",
    "ScrambledSobol",
    "SAMPLERS",
    "DEFAULT_SAMPLER_NAME",
    "register_sampler",
    "get_sampler",
    "sampler_names",
]

#: Name of the sampler whose behaviour (and bench/store config keys) must
#: stay bit-identical to the pre-interface engine.
DEFAULT_SAMPLER_NAME = "annealer"


# ---------------------------------------------------------------------------
# The ask/tell contract
# ---------------------------------------------------------------------------

@dataclass
class AskBatch:
    """One structure's worth of candidates to evaluate next.

    ``ask`` returns a *list* of batches measured back-to-back before the
    single matching ``tell`` — the dueling-bandit sampler needs both duel
    arms measured before it can record the comparison.
    """

    proposal: SampledStructure
    assignments: List[Dict]
    level: str = "coarse"


@dataclass(frozen=True)
class SearchSpace:
    """Per-search view of the search space a sampler draws from.

    Everything here is decided by the engine (pruning rules, workload
    shaping, budgets); samplers treat it as read-only.
    """

    banned: frozenset
    extensions: bool
    seeding: bool
    budget: "SearchBudget"  # noqa: F821 - engine import cycle, runtime only
    #: workload handed to :class:`StructureSampler` for reduction-chain
    #: shaping — ``None`` when static pruning is off (legacy draw order).
    shaping_workload: Optional[object] = None
    #: whether annealing-based early termination applies (the engine's
    #: ``enable_pruning``; paper footnote 10 couples the two).
    annealing_termination: bool = True
    #: the engine's :class:`~repro.search.annealing.AnnealingSchedule`
    #: template (cloned per search by the annealer; other samplers ignore
    #: it).  Typed loosely to keep this module import-cycle-free.
    annealing_template: Optional[object] = None

    def seed_proposals(self) -> List[SampledStructure]:
        """Archetype proposals compatible with the ban list."""
        if not self.seeding:
            return []
        return seed_structures(set(self.banned), extensions=self.extensions)

    def structure_sampler(self, seed: int) -> StructureSampler:
        """A random-structure source honouring bans/extensions/shaping."""
        return StructureSampler(
            banned=set(self.banned),
            seed=seed,
            extensions=self.extensions,
            workload=self.shaping_workload,
        )


def propose_structure(
    sampler: StructureSampler, seen: Set[Tuple], max_attempts: int = 40
) -> Optional[SampledStructure]:
    """Draw an unseen structure, or None when the (pruned) space looks
    exhausted — the engine's historical dedup loop, shared by samplers."""
    for _ in range(max_attempts):
        proposal = sampler.sample()
        if proposal.signature not in seen:
            return proposal
    return None


class Sampler(ABC):
    """Ask/tell candidate source driving one search.

    One instance serves one search: the engine constructs a fresh sampler
    per :meth:`SearchEngine.search` call and drives it as::

        sampler.begin(space, rng=search_rng, seed=sampler_seed)
        while budget remains:
            batches = sampler.ask(history)      # None = sampler done
            records = engine.measure(batches)   # full or SH-pruned
            sampler.tell(batches, records)

    ``rng`` is the engine's live per-search generator — only the default
    annealer may draw from it (that is what byte-identity requires);
    adaptive samplers must derive all randomness from ``seed`` so ask
    sequences are reproducible across worker counts.
    """

    #: registry key (and CLI spelling).
    name: str = ""
    #: run the engine's GBT fine-grid interpolation level after the ask
    #: loop (the legacy three-level shape; adaptive samplers do their own
    #: exploitation instead).
    uses_ml_level: bool = True
    #: opt in to successive-halving eval pruning: the engine projects
    #: batch candidates through the cheap cost rung and fully measures
    #: rung survivors only.
    prunes: bool = False

    @abstractmethod
    def begin(
        self, space: SearchSpace, rng: np.random.Generator, seed: int
    ) -> None:
        """Bind the per-search context before the first ask."""

    @abstractmethod
    def ask(self, history: Sequence) -> Optional[List[AskBatch]]:
        """Next evaluation batches, or None when the sampler is done.

        ``history`` is the live list of measured
        :class:`~repro.search.engine.EvalRecord` (pruned candidates never
        appear in it).
        """

    @abstractmethod
    def tell(
        self, batches: List[AskBatch], records: List[List]
    ) -> None:
        """Fold measurements back in; ``records[i]`` parallels
        ``batches[i]`` (shorter when the budget truncated the batch)."""


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: name -> sampler class (the CLI's ``--sampler`` choices).
SAMPLERS: Dict[str, Type[Sampler]] = {}


def register_sampler(cls: Type[Sampler]) -> Type[Sampler]:
    """Add a sampler class to the registry (duplicate names error)."""
    if not cls.name:
        raise ValueError("sampler must define a name")
    if cls.name in SAMPLERS:
        raise ValueError(f"duplicate sampler {cls.name!r}")
    SAMPLERS[cls.name] = cls
    return cls


def _ensure_builtins() -> None:
    # The annealer lives in repro.search.annealing (which imports this
    # module for the base class); importing it lazily here avoids the
    # cycle while keeping every entry point's registry complete.
    import repro.search.annealing  # noqa: F401


def sampler_names() -> List[str]:
    _ensure_builtins()
    return sorted(SAMPLERS)


def get_sampler(
    name: Union[str, Type[Sampler], None]
) -> Type[Sampler]:
    """Resolve a sampler class by name (idempotent on classes).

    Unknown names raise a :class:`ValueError` listing the registered
    samplers, so a CLI typo reads as guidance rather than a KeyError.
    """
    _ensure_builtins()
    if name is None:
        return SAMPLERS[DEFAULT_SAMPLER_NAME]
    if isinstance(name, type) and issubclass(name, Sampler):
        return name
    try:
        return SAMPLERS[name]
    except KeyError:
        raise ValueError(
            f"unknown sampler {name!r}; registered samplers: "
            + ", ".join(sorted(SAMPLERS))
        ) from None


# ---------------------------------------------------------------------------
# Scrambled Sobol'-style digital sequence
# ---------------------------------------------------------------------------

#: Joe-Kuo direction-number initialisation (primitive polynomial
#: coefficient ``a`` and initial odd ``m_i``) for dimensions 2..13; the
#: first dimension is the van der Corput sequence.  Dimensions beyond the
#: table reuse entries under independent digital shifts — still uniform,
#: no longer a strict Sobol' sequence (operator graphs rarely exceed ~10
#: searchable parameters, so the table covers practice).
_SOBOL_TABLE: List[Tuple[int, Tuple[int, ...]]] = [
    (0, (1,)),
    (1, (1, 3)),
    (1, (1, 3, 1)),
    (2, (1, 1, 1)),
    (1, (1, 1, 3, 3)),
    (4, (1, 3, 5, 13)),
    (2, (1, 1, 5, 5, 17)),
    (4, (1, 1, 5, 5, 5)),
    (7, (1, 1, 7, 11, 19)),
    (11, (1, 1, 5, 1, 1)),
    (13, (1, 1, 1, 3, 11)),
    (14, (1, 3, 5, 5, 31)),
]


class ScrambledSobol:
    """Gray-code Sobol' generator with per-dimension digital-shift
    scrambling (XOR with a random word, the cheap member of the Owen
    family).  30 output bits; points lie in [0, 1)."""

    BITS = 30

    def __init__(self, dim: int, rng: np.random.Generator, scramble: bool = True):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = dim
        self._v = [self._directions(d) for d in range(dim)]
        self._shift = [
            int(rng.integers(1 << self.BITS)) if scramble else 0
            for _ in range(dim)
        ]
        self._x = [0] * dim
        self._count = 0

    def _directions(self, d: int) -> List[int]:
        bits = self.BITS
        if d == 0:
            return [1 << (bits - 1 - i) for i in range(bits)]
        a, m = _SOBOL_TABLE[(d - 1) % len(_SOBOL_TABLE)]
        s = len(m)
        v = [0] * bits
        for i in range(min(s, bits)):
            v[i] = m[i] << (bits - 1 - i)
        for i in range(s, bits):
            v[i] = v[i - s] ^ (v[i - s] >> s)
            for k in range(1, s):
                if (a >> (s - 1 - k)) & 1:
                    v[i] ^= v[i - k]
        return v

    def next(self) -> List[float]:
        """The next point (Gray-code update: one XOR per dimension)."""
        # ctz(count + 1) == number of trailing ones of count.
        n, c = self._count, 0
        while n & 1:
            n >>= 1
            c += 1
        denom = float(1 << self.BITS)
        point = []
        for d in range(self.dim):
            self._x[d] ^= self._v[d][c]
            point.append(((self._x[d] ^ self._shift[d]) & ((1 << self.BITS) - 1)) / denom)
        self._count += 1
        return point

    def take(self, n: int) -> List[List[float]]:
        return [self.next() for _ in range(n)]


# ---------------------------------------------------------------------------
# Shared grid helpers
# ---------------------------------------------------------------------------

def _assignment_key(assignment: Dict) -> Tuple:
    """Order-independent hashable identity of one assignment (the same
    normalisation :meth:`EvalRecord.identity` applies)."""
    return tuple(sorted(map(str, assignment.items())))


def _default_assignment(slots) -> Dict:
    """The canonical all-first-coarse-value assignment — the same point
    ``enumerate_param_grid`` always emits first."""
    return {key: coarse[0] for key, coarse, _fine in slots}


def _point_assignment(slots, point: Sequence[float]) -> Dict:
    """Map one unit-cube point onto the fine grids (full resolution)."""
    out = {}
    for (key, _coarse, fine), u in zip(slots, point):
        idx = min(int(u * len(fine)), len(fine) - 1)
        out[key] = fine[idx]
    return out


class _StructurePoints:
    """Per-structure candidate stream: the canonical default first, then
    deduplicated scrambled-Sobol points over the fine grids."""

    #: give up after this many consecutive duplicate draws — the grid is
    #: effectively exhausted for sampling purposes.
    MAX_STALE = 64

    def __init__(self, proposal: SampledStructure, rng: np.random.Generator):
        self.proposal = proposal
        self.slots = param_slots(proposal.graph, proposal.locks)
        self._sobol = (
            ScrambledSobol(len(self.slots), rng) if self.slots else None
        )
        self._seen: Set[Tuple] = set()
        self._emitted_default = False

    def seen(self, assignment: Dict) -> None:
        self._seen.add(_assignment_key(assignment))

    def next(self) -> Optional[Dict]:
        if not self._emitted_default:
            self._emitted_default = True
            default = _default_assignment(self.slots)
            key = _assignment_key(default)
            if key not in self._seen:
                self._seen.add(key)
                return default
        if self._sobol is None:
            return None  # parameterless structure: only the default exists
        for _ in range(self.MAX_STALE):
            assignment = _point_assignment(self.slots, self._sobol.next())
            key = _assignment_key(assignment)
            if key not in self._seen:
                self._seen.add(key)
                return assignment
        return None

    def batch(self, n: int) -> List[Dict]:
        out = []
        for _ in range(n):
            assignment = self.next()
            if assignment is None:
                break
            out.append(assignment)
        return out


class _AdaptiveBase(Sampler):
    """Common machinery of the adaptive samplers: a structure pool built
    from archetype seeds plus random proposals, and per-structure
    QMC candidate streams."""

    uses_ml_level = False
    prunes = True

    #: candidates asked per batch (before successive-halving).
    batch_size = 6

    def begin(
        self, space: SearchSpace, rng: np.random.Generator, seed: int
    ) -> None:
        self.space = space
        self.rng = np.random.default_rng(seed)
        self._structures = space.structure_sampler(
            seed=int(self.rng.integers(2**31))
        )
        self._pool: Dict[Tuple, _StructurePoints] = {}
        self._order: List[Tuple] = []
        for proposal in space.seed_proposals():
            self._add(proposal)

    # -- pool -----------------------------------------------------------
    def _add(self, proposal: SampledStructure) -> Optional[Tuple]:
        sig = proposal.signature
        if sig in self._pool:
            return None
        self._pool[sig] = _StructurePoints(proposal, self.rng)
        self._order.append(sig)
        return sig

    def _add_random(self) -> Optional[Tuple]:
        if len(self._order) >= self.space.budget.max_structures:
            return None
        proposal = propose_structure(self._structures, set(self._pool))
        if proposal is None:
            return None
        return self._add(proposal)

    def _batch(self, sig: Tuple, n: int, level: str) -> Optional[AskBatch]:
        points = self._pool[sig]
        assignments = points.batch(n)
        if not assignments:
            return None
        return AskBatch(points.proposal, assignments, level=level)

    def tell(self, batches: List[AskBatch], records: List[List]) -> None:
        pass  # history-driven samplers read back via ask(history)


# ---------------------------------------------------------------------------
# QMC startup sampler
# ---------------------------------------------------------------------------

@register_sampler
class QMCSampler(_AdaptiveBase):
    """Scrambled-Sobol' space-filling sweep over the parameter grids.

    Visits the archetype seeds first (their canonical default assignment
    is always point 0 — the classic format each archetype encodes), fills
    the structure pool with random proposals up to the structure budget,
    and asks one low-discrepancy batch per structure per round until the
    evaluation budget runs out.  No model, no history dependence: the ask
    sequence is a pure function of the sampler seed.
    """

    name = "qmc"

    def begin(self, space, rng, seed) -> None:
        super().begin(space, rng, seed)
        while self._add_random() is not None:
            pass
        self._cursor = 0

    def ask(self, history) -> Optional[List[AskBatch]]:
        points = self.space.budget.coarse_evals_per_structure
        for _ in range(len(self._order)):
            sig = self._order[self._cursor % len(self._order)]
            self._cursor += 1
            batch = self._batch(sig, points, level="coarse")
            if batch is not None:
                return [batch]
        return None  # every structure's stream is exhausted


# ---------------------------------------------------------------------------
# TPE sampler
# ---------------------------------------------------------------------------

@register_sampler
class TPESampler(_AdaptiveBase):
    """Discrete TPE: good/bad Parzen densities over the parameter grids.

    Startup measures QMC batches on the leading archetype seeds.  After
    that each ask (1) picks a structure by probability-matching on its
    share of the *good* observations (with an epsilon chance of proposing
    a brand-new structure), (2) fits per-parameter categorical densities
    to the structure's good and bad observations (add-``alpha``
    smoothing), and (3) draws ``n_ei_candidates`` proposals from the good
    density, ranking them by the expected-improvement surrogate
    ``log l_good - log l_bad`` and asking the top ``batch_size``.
    """

    name = "tpe"

    #: structures receiving a QMC startup batch before the model kicks in.
    #: Covers every archetype seed: the seeds are the classic formats, and
    #: successive halving keeps a startup batch at ~2 full measurements,
    #: so sweeping all of them stays cheap and avoids missing the seed the
    #: incumbent annealer would have found early.
    n_startup_structures = 12
    #: points per startup batch.
    startup_points = 5
    #: top quantile of valid observations forming the "good" density.
    gamma = 0.25
    #: proposals drawn from the good density per ask.
    n_ei_candidates = 24
    #: add-this smoothing mass per grid value in both densities.
    alpha = 1.0
    #: chance per ask of exploring a brand-new random structure.
    epsilon_new = 0.1
    #: observations a structure needs before TPE models it.
    min_obs = 4

    def begin(self, space, rng, seed) -> None:
        super().begin(space, rng, seed)
        self._startup = list(self._order[: self.n_startup_structures])
        if not self._startup and self._add_random() is not None:
            self._startup = list(self._order)

    # -- ask ------------------------------------------------------------
    def ask(self, history) -> Optional[List[AskBatch]]:
        if self._startup:
            sig = self._startup.pop(0)
            batch = self._batch(sig, self.startup_points, level="coarse")
            if batch is not None:
                return [batch]
            return self.ask(history)
        if self.rng.random() < self.epsilon_new:
            sig = self._add_random()
            if sig is not None:
                batch = self._batch(sig, self.startup_points, level="coarse")
                if batch is not None:
                    return [batch]
        by_sig = self._records_by_structure(history)
        sig = self._pick_structure(by_sig)
        if sig is None:
            return None
        if len(by_sig.get(sig, ())) < self.min_obs:
            batch = self._batch(sig, self.startup_points, level="coarse")
        else:
            batch = self._tpe_batch(sig, by_sig[sig])
        if batch is None:
            # Stream exhausted: retire the structure and move on.
            self._order.remove(sig)
            return self.ask(history) if self._order else None
        return [batch]

    # -- internals ------------------------------------------------------
    def _records_by_structure(self, history) -> Dict[Tuple, List]:
        out: Dict[Tuple, List] = {}
        for rec in history:
            out.setdefault(rec.structure_sig, []).append(rec)
        return out

    def _good_threshold(self, history) -> float:
        scores = sorted(
            (r.gflops for r in history if r.valid and r.gflops > 0),
            reverse=True,
        )
        if not scores:
            return 0.0
        n_good = max(2, int(np.ceil(self.gamma * len(scores))))
        return scores[min(n_good, len(scores)) - 1]

    def _pick_structure(self, by_sig: Dict[Tuple, List]) -> Optional[Tuple]:
        """Probability matching on each structure's good-observation count
        (Laplace-smoothed, so unmeasured pool members stay reachable)."""
        if not self._order:
            return None
        threshold = self._good_threshold(
            [r for recs in by_sig.values() for r in recs]
        )
        weights = []
        for sig in self._order:
            recs = by_sig.get(sig, [])
            good = sum(
                1 for r in recs if r.valid and r.gflops >= threshold
            )
            weights.append(good + 0.5)
        probs = np.asarray(weights) / sum(weights)
        idx = int(self.rng.choice(len(self._order), p=probs))
        return self._order[idx]

    def _tpe_batch(self, sig: Tuple, recs: List) -> Optional[AskBatch]:
        points = self._pool[sig]
        slots = points.slots
        if not slots:
            return self._batch(sig, 1, level="fine")
        ranked = sorted(recs, key=lambda r: -r.gflops)
        n_good = max(2, int(np.ceil(self.gamma * len(ranked))))
        good = [r for r in ranked[:n_good] if r.valid and r.gflops > 0]
        bad = ranked[n_good:] + [r for r in ranked[:n_good] if not r.valid]
        if not good:
            return self._batch(sig, self.startup_points, level="coarse")
        good_density = self._densities(slots, good)
        bad_density = self._densities(slots, bad)
        proposals: Dict[Tuple, Tuple[float, Dict]] = {}
        for _ in range(self.n_ei_candidates):
            assignment = {}
            score = 0.0
            for j, (key, _coarse, fine) in enumerate(slots):
                pg, pb = good_density[j], bad_density[j]
                idx = int(self.rng.choice(len(fine), p=pg))
                assignment[key] = fine[idx]
                score += float(np.log(pg[idx]) - np.log(pb[idx]))
            akey = _assignment_key(assignment)
            if akey not in points._seen:
                best = proposals.get(akey)
                if best is None or score > best[0]:
                    proposals[akey] = (score, assignment)
        if not proposals:
            return self._batch(sig, self.batch_size, level="fine")
        top = sorted(proposals.values(), key=lambda sa: -sa[0])
        assignments = [a for _s, a in top[: self.batch_size]]
        for assignment in assignments:
            points.seen(assignment)
        return AskBatch(points.proposal, assignments, level="fine")

    def _densities(self, slots, recs) -> List[np.ndarray]:
        """Per-slot categorical densities over the fine grids."""
        out = []
        for key, _coarse, fine in slots:
            counts = np.full(len(fine), self.alpha, dtype=np.float64)
            for rec in recs:
                value = rec.assignment.get(key, fine[0])
                if value in fine:
                    counts[fine.index(value)] += 1.0
            out.append(counts / counts.sum())
        return out


# ---------------------------------------------------------------------------
# Double Thompson Sampling dueling bandit
# ---------------------------------------------------------------------------

@register_sampler
class DTSSampler(_AdaptiveBase):
    """D-TS dueling bandit over design combos (arms = structures).

    Candidates here are naturally *compared* on measured GFLOPS rather
    than scored on an absolute scale, which is precisely the dueling-
    bandit setting.  Each adaptive ask runs the two D-TS selections —
    champion by sampled Copeland score among the upper-confidence winners,
    challenger by sampled beat-probability among plausible beaters — and
    spends the next evaluation batch on *both* arms' fresh candidates; the
    better measured batch wins the duel and updates the Beta-posterior
    win matrix.
    """

    name = "dts"

    #: points per arm in the startup round-robin.
    startup_points = 3
    #: fresh points per duel arm.
    duel_points = 3
    #: UCB/LCB exploration constant (alpha of the D-TS paper).
    ts_alpha = 0.6
    #: random arms added beyond the archetype seeds.
    extra_arms = 4

    def begin(self, space, rng, seed) -> None:
        super().begin(space, rng, seed)
        for _ in range(self.extra_arms):
            if self._add_random() is None:
                break
        n = len(self._order)
        self._wins = np.zeros((n, n), dtype=np.float64)
        self._alive = [True] * n
        self._initialised = [False] * n
        self._duels = 0
        self._pending: Optional[Tuple[int, int]] = None

    # -- ask ------------------------------------------------------------
    def ask(self, history) -> Optional[List[AskBatch]]:
        # Startup: one batch per arm so every duel has a measurement.
        for i, done in enumerate(self._initialised):
            if done or not self._alive[i]:
                continue
            batch = self._batch(self._order[i], self.startup_points, "coarse")
            self._initialised[i] = True
            if batch is None:
                self._alive[i] = False
                continue
            self._pending = None
            return [batch]
        alive = [i for i, a in enumerate(self._alive) if a]
        if not alive:
            return None
        if len(alive) == 1:
            batch = self._arm_batch(alive[0])
            self._pending = None
            return [batch] if batch else None
        first, second = self._select(alive)
        batches, arms = [], []
        for arm in (first, second):
            batch = self._arm_batch(arm)
            if batch is not None:
                batches.append(batch)
                arms.append(arm)
        if not batches:
            return None
        self._pending = tuple(arms) if len(arms) == 2 else None
        return batches

    def _arm_batch(self, arm: int) -> Optional[AskBatch]:
        batch = self._batch(self._order[arm], self.duel_points, level="fine")
        if batch is None:
            self._alive[arm] = False
        return batch

    # -- D-TS selection --------------------------------------------------
    def _select(self, alive: List[int]) -> Tuple[int, int]:
        B = self._wins
        t = self._duels + 1
        N = B + B.T
        safe_n = np.maximum(N, 1.0)
        mean = np.where(N > 0, B / safe_n, 0.5)
        bonus = np.sqrt(self.ts_alpha * np.log(max(t, 2)) / safe_n)
        ucb = np.where(N > 0, mean + bonus, 1.0)
        lcb = np.where(N > 0, mean - bonus, 0.0)
        np.fill_diagonal(ucb, 0.5)
        np.fill_diagonal(lcb, 0.5)

        # Selection 1: champion among upper-confidence Copeland winners,
        # ranked by sampled Copeland score.
        cop_ub = [
            sum(1 for j in alive if j != i and ucb[i, j] >= 0.5)
            for i in alive
        ]
        contenders = [
            arm for arm, score in zip(alive, cop_ub) if score == max(cop_ub)
        ]
        theta = np.full_like(B, 0.5)
        for ai, i in enumerate(alive):
            for j in alive[ai + 1:]:
                theta[i, j] = self.rng.beta(B[i, j] + 1.0, B[j, i] + 1.0)
                theta[j, i] = 1.0 - theta[i, j]
        sampled_cop = {
            i: sum(1 for j in alive if j != i and theta[i, j] > 0.5)
            for i in contenders
        }
        best = max(sampled_cop.values())
        first = int(
            self.rng.choice([i for i, s in sampled_cop.items() if s == best])
        )

        # Selection 2: challenger = sampled most-likely beater of the
        # champion among arms not confidently beaten already.
        theta2 = {
            j: float(self.rng.beta(B[j, first] + 1.0, B[first, j] + 1.0))
            for j in alive
            if j != first
        }
        plausible = {
            j: v for j, v in theta2.items() if lcb[j, first] <= 0.5
        } or theta2
        best2 = max(plausible.values())
        second = int(
            self.rng.choice([j for j, v in plausible.items() if v == best2])
        )
        return first, second

    # -- tell ------------------------------------------------------------
    def tell(self, batches: List[AskBatch], records: List[List]) -> None:
        if self._pending is None or len(records) != 2:
            return
        a1, a2 = self._pending
        self._pending = None
        best1 = max((r.gflops for r in records[0]), default=0.0)
        best2 = max((r.gflops for r in records[1]), default=0.0)
        self._duels += 1
        if best1 > best2:
            self._wins[a1, a2] += 1.0
        elif best2 > best1:
            self._wins[a2, a1] += 1.0
        else:
            self._wins[a1, a2] += 0.5
            self._wins[a2, a1] += 0.5
