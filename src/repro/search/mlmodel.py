"""Gradient-boosted regression trees, from scratch.

The paper interpolates coarse-grid measurements onto a fine parameter grid
with XGBoost (§VI-A: "XGBoost performs very well in interpolation ... a mean
absolute deviation of 5%"), arguing memory-bound cost surfaces have the
linear decision boundaries tree ensembles capture.  No network access here,
so this module implements the same model family: squared-error CART trees
boosted stagewise with shrinkage.

Sized for AlphaSparse's workload — tens to hundreds of samples, a handful of
numeric features — where exact greedy splitting is plenty fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["RegressionTree", "GradientBoostedTrees", "mean_absolute_deviation"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """CART regression tree with squared-error splitting."""

    def __init__(self, max_depth: int = 3, min_samples_leaf: int = 2) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: Optional[_Node] = None
        self._flat: Optional[Tuple[np.ndarray, ...]] = None
        #: per-training-sample leaf value, filled during fit — the boosting
        #: loop reads this instead of re-running predict on the train set.
        self.train_predictions: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        order: Optional[np.ndarray] = None,
        root_ctx: Optional[Tuple] = None,
    ) -> "RegressionTree":
        """Fit the tree.  ``order`` optionally supplies the per-column
        stable argsort of ``X`` — boosting refits the same ``X`` for every
        estimator, so the caller can sort once for the whole ensemble
        (``root_ctx``, from :func:`_root_split_prep`, extends the same
        sharing to the small-sample list build)."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) and y (n,)")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        self.train_predictions = np.empty(X.shape[0], dtype=np.float64)
        if X.shape[0] <= self._SMALL_N:
            self._root = self._build_small(X, y, order, root_ctx)
        else:
            self._root = self._build(
                X,
                y,
                depth=0,
                idx=np.arange(X.shape[0]),
                out=self.train_predictions,
                order=order,
            )
        self._flat = self._flatten(self._root)
        return self

    @staticmethod
    def _flatten(root: _Node) -> Tuple[List, ...]:
        """Flat form of the tree (feature/threshold/children/value per
        node; ``feature == -1`` marks leaves).  Kept as plain lists —
        boosting flattens hundreds of tiny trees and the ensemble stacks
        them into arrays once, so per-tree array construction is avoided."""
        features: List[int] = []
        thresholds: List[float] = []
        lefts: List[int] = []
        rights: List[int] = []
        values: List[float] = []

        def add(node: _Node) -> int:
            idx = len(features)
            features.append(node.feature if not node.is_leaf else -1)
            thresholds.append(node.threshold)
            values.append(node.value)
            lefts.append(-1)
            rights.append(-1)
            if not node.is_leaf:
                lefts[idx] = add(node.left)
                rights[idx] = add(node.right)
            return idx

        add(root)
        return (features, thresholds, lefts, rights, values)

    def _build(
        self,
        X: np.ndarray,
        y: np.ndarray,
        depth: int,
        idx: np.ndarray,
        out: np.ndarray,
        order: Optional[np.ndarray] = None,
    ) -> _Node:
        node = _Node(value=float(y.sum()) / y.size)
        if depth >= self.max_depth or y.size < 2 * self.min_samples_leaf:
            out[idx] = node.value
            return node
        best = self._best_split(X, y, order)
        if best is None:
            out[idx] = node.value
            return node
        feature, threshold = best
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1, idx[mask], out)
        node.right = self._build(X[~mask], y[~mask], depth + 1, idx[~mask], out)
        return node

    #: below this sample count the pure-Python split scan wins — NumPy call
    #: overhead dominates at boosting's typical 6-10 coarse samples, and
    #: both paths are bit-identical there (sequential accumulation).
    _SMALL_N = 64

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, order: Optional[np.ndarray] = None
    ) -> Optional[Tuple[int, float]]:
        n, d = X.shape
        if n <= self._SMALL_N:
            return self._best_split_small(X, y, order)
        # Candidate split positions (the left part gets i samples); the
        # range construction guarantees min_samples_leaf per side and i < n.
        i = np.arange(self.min_samples_leaf, n - self.min_samples_leaf + 1)
        if i.size == 0:
            return None
        base_sse = float(((y - y.mean()) ** 2).sum())
        # Score every (split, feature) pair in one vectorised pass: sort
        # each column, then prefix sums give O(n*d) split scoring.
        if order is None:
            order = np.argsort(X, axis=0, kind="stable")
        cols = np.arange(d)
        xs = X[order, cols]
        ys = y[order]
        csum = np.cumsum(ys, axis=0)
        csum2 = np.cumsum(ys * ys, axis=0)
        left_csum = csum[i - 1, :]
        left_csum2 = csum2[i - 1, :]
        i_col = i[:, None]
        left_sse = left_csum2 - left_csum**2 / i_col
        right_sum = csum[-1, :] - left_csum
        right_sse = (csum2[-1, :] - left_csum2) - right_sum**2 / (n - i_col)
        gain = base_sse - (left_sse + right_sse)
        gain[xs[i - 1, :] == xs[i, :]] = -np.inf  # cannot split between equals
        # Feature-major first-maximum reproduces the original scan's
        # tie-breaking (earliest feature, then earliest split position).
        flat = gain.T.ravel()
        pick = int(np.argmax(flat))
        if not flat[pick] > 1e-12:
            return None
        feature, pos = divmod(pick, i.size)
        split = int(i[pos])
        threshold = (xs[split - 1, feature] + xs[split, feature]) / 2.0
        return (int(feature), float(threshold))

    def _best_split_small(
        self, X: np.ndarray, y: np.ndarray, order: Optional[np.ndarray]
    ) -> Optional[Tuple[int, float]]:
        """Pure-Python split scan for small sample counts (array wrapper
        around :meth:`_best_split_lists`)."""
        cols = X.T.tolist()
        orders = order.T.tolist() if order is not None else None
        return self._best_split_lists(cols, y.tolist(), orders)

    def _best_split_lists(
        self,
        cols: List[List[float]],
        ylist: List[float],
        orders: Optional[List[List[int]]],
        prep: Optional[List[Tuple[List[int], List[float], List[int]]]] = None,
    ) -> Optional[Tuple[int, float]]:
        """Split scan over column/target lists.

        Identical arithmetic and tie-breaking to the vectorised path: the
        same sequential prefix sums, the same strict-improvement scan over
        features then split positions.  ``prep`` optionally supplies, per
        feature, ``(sort order, sorted values, valid split positions)`` —
        all constant across boosting rounds on the same ``X``, so the
        ensemble fit computes them once (see :func:`_root_split_prep`).
        """
        n = len(ylist)
        lo = self.min_samples_leaf
        hi = n - lo + 1
        if hi <= lo:
            return None
        total_y = sum(ylist)
        mean = total_y / n
        base_sse = 0.0
        for v in ylist:
            base_sse += (v - mean) ** 2
        best_gain = 1e-12
        best: Optional[Tuple[int, float]] = None
        for j, col in enumerate(cols):
            if prep is not None:
                oj, xs, positions = prep[j]
                if not positions:
                    continue  # every adjacent sorted pair is equal
            else:
                oj = (
                    orders[j]
                    if orders is not None
                    else sorted(range(n), key=col.__getitem__)
                )
                xs = [col[k] for k in oj]
                positions = None
            ys = [ylist[k] for k in oj]
            csum = [0.0] * n
            csum2 = [0.0] * n
            acc = acc2 = 0.0
            for k, v in enumerate(ys):
                acc += v
                acc2 += v * v
                csum[k] = acc
                csum2[k] = acc2
            for i in positions if positions is not None else range(lo, hi):
                if positions is None and xs[i - 1] == xs[i]:
                    continue  # cannot split between equal values
                left_sse = csum2[i - 1] - csum[i - 1] ** 2 / i
                right_sum = acc - csum[i - 1]
                right_sse = (acc2 - csum2[i - 1]) - right_sum**2 / (n - i)
                gain = base_sse - (left_sse + right_sse)
                if gain > best_gain:
                    best_gain = gain
                    best = (j, (xs[i - 1] + xs[i]) / 2.0)
        return best

    @staticmethod
    def _np_pairwise_sum(values: List[float]) -> float:
        """``float(np.sum(values))``, replicated on a Python list.

        NumPy reduces contiguous float64 with a pairwise scheme whose base
        case (n <= 128) runs 8 interleaved accumulators combined as
        ``((r0+r1)+(r2+r3)) + ((r4+r5)+(r6+r7))`` plus a sequential tail —
        this mirrors that order exactly, so the list-based tree build below
        produces node values bit-identical to the array build's
        ``float(y.sum())``.  Callers stay below ``_SMALL_N`` (< 128), where
        the base case always applies.
        """
        n = len(values)
        if n < 8:
            res = 0.0
            for v in values:
                res += v
            return res
        r0, r1, r2, r3, r4, r5, r6, r7 = values[:8]
        limit = n - (n % 8)
        for i in range(8, limit, 8):
            r0 += values[i]
            r1 += values[i + 1]
            r2 += values[i + 2]
            r3 += values[i + 3]
            r4 += values[i + 4]
            r5 += values[i + 5]
            r6 += values[i + 6]
            r7 += values[i + 7]
        res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        for i in range(limit, n):
            res += values[i]
        return res

    def _build_small(
        self,
        X: np.ndarray,
        y: np.ndarray,
        order: Optional[np.ndarray],
        root_ctx: Optional[Tuple] = None,
    ) -> _Node:
        """List-based tree build for small sample counts.

        Boosting fits hundreds of trees on a handful of coarse-grid samples;
        per-node array slicing is then pure NumPy call overhead.  This path
        converts ``X``/``y`` to lists once and recurses on them — node
        values replicate ``float(y.sum()) / n`` via :meth:`_np_pairwise_sum`
        and splits/partitions use the exact comparisons of :meth:`_build`,
        so the resulting tree (and ``train_predictions``) is bit-identical.

        ``root_ctx`` optionally carries ``(cols, prep)`` from
        :func:`_root_split_prep` — the column lists and per-feature root
        scan machinery, shared across every tree of one boosted ensemble.
        """
        if root_ctx is not None:
            cols, root_prep = root_ctx
            root_orders = None
        else:
            cols = X.T.tolist()
            root_prep = None
            root_orders = order.T.tolist() if order is not None else None
        ylist = y.tolist()
        #: plain-list leaf-value sink, copied into ``train_predictions`` in
        #: one vectorised assignment at the end (same float64 values).
        out: List[float] = [0.0] * len(ylist)

        def build(
            sub_cols: List[List[float]],
            sub_y: List[float],
            depth: int,
            idx: List[int],
            orders: Optional[List[List[int]]],
            prep: Optional[List[Tuple[List[int], List[float], List[int]]]],
        ) -> _Node:
            m = len(sub_y)
            node = _Node(value=self._np_pairwise_sum(sub_y) / m)
            if depth >= self.max_depth or m < 2 * self.min_samples_leaf:
                for k in idx:
                    out[k] = node.value
                return node
            best = self._best_split_lists(sub_cols, sub_y, orders, prep)
            if best is None:
                for k in idx:
                    out[k] = node.value
                return node
            feature, threshold = best
            fcol = sub_cols[feature]
            left = [k for k in range(m) if fcol[k] <= threshold]
            right = [k for k in range(m) if not (fcol[k] <= threshold)]
            node.feature = feature
            node.threshold = threshold
            node.left = build(
                [[col[k] for k in left] for col in sub_cols],
                [sub_y[k] for k in left],
                depth + 1,
                [idx[k] for k in left],
                None,
                None,
            )
            node.right = build(
                [[col[k] for k in right] for col in sub_cols],
                [sub_y[k] for k in right],
                depth + 1,
                [idx[k] for k in right],
                None,
                None,
            )
            return node

        root = build(
            cols, ylist, 0, list(range(len(ylist))), root_orders, root_prep
        )
        self.train_predictions[:] = out
        return root

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None or self._flat is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        features, thresholds, lefts, rights, values = (
            np.asarray(part, dtype=dt)
            for part, dt in zip(
                self._flat,
                (np.int64, np.float64, np.int64, np.int64, np.float64),
            )
        )
        idx = np.zeros(X.shape[0], dtype=np.int64)
        # Level-synchronous descent: one vectorised step per tree level
        # instead of a Python loop per sample.
        active = np.flatnonzero(features[idx] >= 0)
        while active.size:
            node = idx[active]
            go_left = X[active, features[node]] <= thresholds[node]
            idx[active] = np.where(go_left, lefts[node], rights[node])
            active = active[features[idx[active]] >= 0]
        return values[idx]


def _root_split_prep(
    X: np.ndarray, order: np.ndarray, min_samples_leaf: int
) -> Tuple[List[List[float]], List[Tuple[List[int], List[float], List[int]]]]:
    """Root-scan machinery shared across one boosted ensemble.

    Returns ``(cols, prep)``: the column lists of ``X`` plus, per feature,
    ``(sort order, sorted values, valid split positions)``.  Only the
    residual changes between boosting rounds, so every tree's root split
    scan reuses these instead of re-deriving them.
    """
    cols = X.T.tolist()
    orders = order.T.tolist()
    n = X.shape[0]
    lo = min_samples_leaf
    hi = n - lo + 1
    prep = []
    for col, oj in zip(cols, orders):
        xs = [col[k] for k in oj]
        positions = [i for i in range(lo, hi) if xs[i - 1] != xs[i]]
        prep.append((oj, xs, positions))
    return (cols, prep)


class GradientBoostedTrees:
    """Stagewise least-squares boosting with shrinkage.

    Matches the XGBoost configuration class the paper relies on (shallow
    trees, moderate estimator count); regularisation beyond shrinkage is
    unnecessary at AlphaSparse's sample sizes.
    """

    def __init__(
        self,
        n_estimators: int = 60,
        learning_rate: float = 0.15,
        max_depth: int = 3,
        min_samples_leaf: int = 2,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._base: float = 0.0
        self._trees: List[RegressionTree] = []
        self._forest: Optional[Tuple[np.ndarray, ...]] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValueError("X and y must be non-empty with matching rows")
        self._base = float(y.mean())
        self._trees = []
        residual = y - self._base
        # The train matrix never changes across estimators: sort its
        # columns once for every root-level split search (and, on the
        # small-sample path, share the whole root-scan machinery).
        root_order = np.argsort(X, axis=0, kind="stable")
        root_ctx = (
            _root_split_prep(X, root_order, self.min_samples_leaf)
            if X.shape[0] <= RegressionTree._SMALL_N
            else None
        )
        for _ in range(self.n_estimators):
            tree = RegressionTree(self.max_depth, self.min_samples_leaf)
            tree.fit(X, residual, order=root_order, root_ctx=root_ctx)
            # Each training sample's prediction is its leaf value, recorded
            # during the build — no predict pass over the train set needed.
            update = tree.train_predictions
            if float(np.abs(update).max()) <= 1e-8:  # == allclose(update, 0)
                break
            residual = residual - self.learning_rate * update
            self._trees.append(tree)
        self._forest = self._stack_forest()
        return self

    def _stack_forest(self) -> Optional[Tuple[np.ndarray, ...]]:
        """Concatenate every tree's flat node arrays (child indices
        rebased) so prediction descends all trees of the ensemble in one
        vectorised pass."""
        if not self._trees:
            return None
        features, thresholds, lefts, rights, values, roots = [], [], [], [], [], []
        offset = 0
        for tree in self._trees:
            f, t, l, r, v = tree._flat
            roots.append(offset)
            features.extend(f)
            thresholds.extend(t)
            lefts.extend(x + offset if x >= 0 else -1 for x in l)
            rights.extend(x + offset if x >= 0 else -1 for x in r)
            values.extend(v)
            offset += len(f)
        return (
            np.asarray(features, dtype=np.int64),
            np.asarray(thresholds, dtype=np.float64),
            np.asarray(lefts, dtype=np.int64),
            np.asarray(rights, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
            np.asarray(roots, dtype=np.int64),
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if self._forest is None:
            return np.full(X.shape[0], self._base, dtype=np.float64)
        features, thresholds, lefts, rights, values, roots = self._forest
        n, t = X.shape[0], roots.size
        # One flat (sample, tree) descent over the whole ensemble.
        idx = np.tile(roots, n)
        sample = np.repeat(np.arange(n), t)
        active = np.flatnonzero(features[idx] >= 0)
        while active.size:
            node = idx[active]
            go_left = X[sample[active], features[node]] <= thresholds[node]
            idx[active] = np.where(go_left, lefts[node], rights[node])
            active = active[features[idx[active]] >= 0]
        return self._base + self.learning_rate * values[idx].reshape(n, t).sum(
            axis=1
        )

    @property
    def n_trees(self) -> int:
        return len(self._trees)


def mean_absolute_deviation(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Relative MAD — the 5 % figure the paper quotes for its cost model."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    denom = np.maximum(np.abs(y_true), 1e-12)
    return float(np.mean(np.abs(y_true - y_pred) / denom))
