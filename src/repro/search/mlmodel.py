"""Gradient-boosted regression trees, from scratch.

The paper interpolates coarse-grid measurements onto a fine parameter grid
with XGBoost (§VI-A: "XGBoost performs very well in interpolation ... a mean
absolute deviation of 5%"), arguing memory-bound cost surfaces have the
linear decision boundaries tree ensembles capture.  No network access here,
so this module implements the same model family: squared-error CART trees
boosted stagewise with shrinkage.

Sized for AlphaSparse's workload — tens to hundreds of samples, a handful of
numeric features — where exact greedy splitting is plenty fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["RegressionTree", "GradientBoostedTrees", "mean_absolute_deviation"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """CART regression tree with squared-error splitting."""

    def __init__(self, max_depth: int = 3, min_samples_leaf: int = 2) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: Optional[_Node] = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) and y (n,)")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        self._root = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or y.size < 2 * self.min_samples_leaf:
            return node
        best = self._best_split(X, y)
        if best is None:
            return node
        feature, threshold = best
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> Optional[Tuple[int, float]]:
        n, d = X.shape
        base_sse = float(((y - y.mean()) ** 2).sum())
        best_gain = 1e-12
        best: Optional[Tuple[int, float]] = None
        for j in range(d):
            order = np.argsort(X[:, j], kind="stable")
            xs, ys = X[order, j], y[order]
            # Prefix sums give O(n) split scoring after the sort.
            csum = np.cumsum(ys)
            csum2 = np.cumsum(ys * ys)
            total, total2 = csum[-1], csum2[-1]
            for i in range(self.min_samples_leaf, n - self.min_samples_leaf + 1):
                if i < n and xs[i - 1] == xs[i]:
                    continue  # cannot split between equal values
                left_sse = csum2[i - 1] - csum[i - 1] ** 2 / i
                right_n = n - i
                right_sum = total - csum[i - 1]
                right_sse = (total2 - csum2[i - 1]) - right_sum**2 / right_n
                gain = base_sse - (left_sse + right_sse)
                if gain > best_gain:
                    best_gain = gain
                    threshold = (
                        (xs[i - 1] + xs[i]) / 2.0 if i < n else xs[i - 1]
                    )
                    best = (j, float(threshold))
        return best

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(X.shape[0], dtype=np.float64)
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
                assert node is not None
            out[i] = node.value
        return out


class GradientBoostedTrees:
    """Stagewise least-squares boosting with shrinkage.

    Matches the XGBoost configuration class the paper relies on (shallow
    trees, moderate estimator count); regularisation beyond shrinkage is
    unnecessary at AlphaSparse's sample sizes.
    """

    def __init__(
        self,
        n_estimators: int = 60,
        learning_rate: float = 0.15,
        max_depth: int = 3,
        min_samples_leaf: int = 2,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._base: float = 0.0
        self._trees: List[RegressionTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValueError("X and y must be non-empty with matching rows")
        self._base = float(y.mean())
        self._trees = []
        residual = y - self._base
        for _ in range(self.n_estimators):
            tree = RegressionTree(self.max_depth, self.min_samples_leaf)
            tree.fit(X, residual)
            update = tree.predict(X)
            if np.allclose(update, 0.0):
                break
            residual = residual - self.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        out = np.full(X.shape[0], self._base, dtype=np.float64)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(X)
        return out

    @property
    def n_trees(self) -> int:
        return len(self._trees)


def mean_absolute_deviation(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Relative MAD — the 5 % figure the paper quotes for its cost model."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    denom = np.maximum(np.abs(y_true), 1e-12)
    return float(np.mean(np.abs(y_true - y_pred) / denom))
