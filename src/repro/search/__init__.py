"""Search Engine (paper §VI): three-level search over Operator Graphs.

Level 1 enumerates graph *structures*; level 2 measures operator
*parameters* on a coarse grid by running the generated programs; level 3
interpolates to the fine parameter grid with a gradient-boosted-tree cost
model (the paper uses XGBoost; :mod:`repro.search.mlmodel` is a from-scratch
equivalent).  Simulated annealing terminates the first two levels early and
pruning rules ban operators that cannot pay off for the input's sparsity
pattern.
"""

from repro.search.engine import SearchBudget, SearchEngine, SearchResult, EvalRecord
from repro.search.evaluation import (
    CacheStats,
    DesignCache,
    EvaluationRuntime,
    StagedEvaluator,
    StageTimings,
)
from repro.search.mlmodel import GradientBoostedTrees, RegressionTree
from repro.search.annealing import AnnealingSchedule
from repro.search.pruning import PruningRules, default_rules
from repro.search.space import StructureSampler, enumerate_param_grid

__all__ = [
    "SearchBudget",
    "SearchEngine",
    "SearchResult",
    "EvalRecord",
    "CacheStats",
    "DesignCache",
    "EvaluationRuntime",
    "StagedEvaluator",
    "StageTimings",
    "GradientBoostedTrees",
    "RegressionTree",
    "AnnealingSchedule",
    "PruningRules",
    "default_rules",
    "StructureSampler",
    "enumerate_param_grid",
]
