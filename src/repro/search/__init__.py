"""Search Engine (paper §VI): three-level search over Operator Graphs.

Level 1 enumerates graph *structures*; level 2 measures operator
*parameters* on a coarse grid by running the generated programs; level 3
interpolates to the fine parameter grid with a gradient-boosted-tree cost
model (the paper uses XGBoost; :mod:`repro.search.mlmodel` is a from-scratch
equivalent).  Simulated annealing terminates the first two levels early and
pruning rules ban operators that cannot pay off for the input's sparsity
pattern.

Candidate selection is pluggable (:mod:`repro.search.samplers`): the
annealer above is the default :class:`Sampler`, with quasi-Monte-Carlo,
TPE and dueling-bandit alternatives selected via ``SearchEngine(sampler=
...)`` / ``--sampler``; adaptive samplers add successive-halving eval
pruning (:class:`SuccessiveHalvingPruner`).
"""

from repro.search.engine import SearchBudget, SearchEngine, SearchResult, EvalRecord
from repro.search.evaluation import (
    CacheStats,
    DesignCache,
    EvaluationRuntime,
    StagedEvaluator,
    StageTimings,
)
from repro.search.mlmodel import GradientBoostedTrees, RegressionTree
from repro.search.annealing import AnnealerSampler, AnnealingSchedule
from repro.search.pruning import (
    PruningRules,
    SuccessiveHalvingPruner,
    default_rules,
)
from repro.search.samplers import (
    AskBatch,
    DTSSampler,
    QMCSampler,
    Sampler,
    ScrambledSobol,
    SearchSpace,
    TPESampler,
    get_sampler,
    register_sampler,
    sampler_names,
)
from repro.search.space import StructureSampler, enumerate_param_grid

__all__ = [
    "SearchBudget",
    "SearchEngine",
    "SearchResult",
    "EvalRecord",
    "CacheStats",
    "DesignCache",
    "EvaluationRuntime",
    "StagedEvaluator",
    "StageTimings",
    "GradientBoostedTrees",
    "RegressionTree",
    "AnnealingSchedule",
    "AnnealerSampler",
    "PruningRules",
    "SuccessiveHalvingPruner",
    "default_rules",
    "StructureSampler",
    "enumerate_param_grid",
    "Sampler",
    "AskBatch",
    "SearchSpace",
    "ScrambledSobol",
    "QMCSampler",
    "TPESampler",
    "DTSSampler",
    "get_sampler",
    "register_sampler",
    "sampler_names",
]
