"""Deterministic fault injection behind the store and pool seams.

Chaos testing is only useful when it replays: a fault schedule that
depends on wall clock or shared RNG state produces unreproducible CI
failures.  Here every injection decision is a pure function of
``(plan.seed, site, context)`` — the same plan applied to the same
request sequence fires the same faults, every run, in every process.

Sites (each gated by its rate field on :class:`FaultPlan`):

``io_error``
    Store entry read/write raises :class:`OSError` (the store treats it
    exactly like real disk trouble: corrupt-entry accounting, miss).
``lock_timeout``
    A journal lock acquisition attempt fails as if contended; the
    bounded-retry policy then decides whether the operation survives.
``worker_kill``
    A resolver pool worker ``os._exit``\\ s mid-request — a real process
    death, not an exception (checked in :mod:`repro.serve.pool`).
``worker_hang``
    A worker sleeps past its deadline instead of dying, exercising the
    supervisor's heartbeat/deadline kill path.
``torn_write``
    A journal append writes only a prefix of the record and then raises
    :class:`InjectedCrash` — simulating a process dying mid-append, the
    exact scenario truncated-tail recovery exists for.
``corrupt_record``
    A journal append writes a frame whose payload bytes are flipped (CRC
    recomputed over the damage), exercising replay-time digest rejection.
``slow_store``
    Store operations sleep ``slow_store_s`` seconds, exercising deadline
    handling without any actual failure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict

from repro.reliability.retry import _unit_hash

__all__ = ["FaultPlan", "FaultInjector", "InjectedCrash"]


class InjectedCrash(RuntimeError):
    """A simulated process death mid-operation (torn journal write).

    Raised *after* the partial bytes hit the file, so the caller's
    in-memory state and the on-disk tail disagree exactly the way they
    would after a real crash.  Production code never catches this — only
    the chaos tests do.
    """


@dataclass(frozen=True)
class FaultPlan:
    """Rates (per-site probabilities in [0, 1]) plus the plan seed.

    A plan is a frozen, picklable value: the resolver pool ships it to
    worker processes so every process derives the same fault schedule.
    """

    seed: int = 0
    io_error_rate: float = 0.0
    lock_timeout_rate: float = 0.0
    worker_kill_rate: float = 0.0
    worker_hang_rate: float = 0.0
    worker_hang_s: float = 30.0
    torn_write_rate: float = 0.0
    corrupt_record_rate: float = 0.0
    slow_store_rate: float = 0.0
    slow_store_s: float = 0.05

    _RATES = {
        "io_error": "io_error_rate",
        "lock_timeout": "lock_timeout_rate",
        "worker_kill": "worker_kill_rate",
        "worker_hang": "worker_hang_rate",
        "torn_write": "torn_write_rate",
        "corrupt_record": "corrupt_record_rate",
        "slow_store": "slow_store_rate",
    }

    def rate(self, site: str) -> float:
        try:
            return getattr(self, self._RATES[site])
        except KeyError:
            raise ValueError(
                f"unknown fault site {site!r}; one of {sorted(self._RATES)}"
            ) from None

    @property
    def any_faults(self) -> bool:
        return any(getattr(self, name) > 0.0 for name in self._RATES.values())

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)


@dataclass
class FaultInjector:
    """Stateless decisions + per-site fired counters for one plan.

    ``decide(site, *context)`` hashes the site name and the caller-supplied
    context (request id, attempt number, record serial, ...) against the
    plan seed; the context is what lets a retried operation get a *fresh*
    decision — include the attempt index wherever an operation may repeat.
    """

    plan: FaultPlan
    fired: Dict[str, int] = field(default_factory=dict)

    def decide(self, site: str, *context: object) -> bool:
        rate = self.plan.rate(site)
        if rate <= 0.0:
            return False
        hit = _unit_hash(self.plan.seed, "fault", site, *context) < rate
        if hit:
            self.fired[site] = self.fired.get(site, 0) + 1
        return hit

    # -- convenience wrappers used by the store seams -------------------
    def maybe_io_error(self, *context: object) -> None:
        if self.decide("io_error", *context):
            raise OSError(f"injected I/O error at {context!r}")

    def maybe_slow(self, *context: object) -> None:
        if self.decide("slow_store", *context):
            time.sleep(self.plan.slow_store_s)
