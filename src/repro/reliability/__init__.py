"""Reliability primitives: retry policy, fault injection, failure taxonomy.

The serving stack's robustness story lives in three places — the journal
storage backend (:mod:`repro.store.journal`), the supervised resolver
pool (:mod:`repro.serve.pool`) and the tier-by-tier degradation path in
:class:`repro.serve.Frontend` — but the *policies* they share live here:

:class:`RetryPolicy` / :func:`call_with_retry`
    Bounded attempts with deterministic exponential backoff and seeded
    jitter, plus an exception allowlist.  Store lock acquisition and the
    serve-tier fallback both consume this one policy type, so retry
    behaviour is configured in one place instead of inline constants.

:class:`FaultPlan` / :class:`FaultInjector`
    Deterministic, seedable chaos: I/O errors, lock timeouts, worker
    kills, torn journal writes, corrupt records and slow store operations
    are all *decided* by hashing ``(seed, site, context)`` — the same plan
    replays the same faults every run, which is what makes the chaos test
    suite and the CI chaos job reproducible instead of flaky.
"""

from repro.reliability.faults import FaultInjector, FaultPlan, InjectedCrash
from repro.reliability.retry import RetryError, RetryPolicy, call_with_retry

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "InjectedCrash",
    "RetryError",
    "RetryPolicy",
    "call_with_retry",
]
