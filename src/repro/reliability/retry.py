"""Shared retry policy: bounded attempts, deterministic backoff, allowlist.

Every retry loop in the stack — journal lock acquisition under writer
contention, the serving frontend's tier fallback after a failed request —
uses one :class:`RetryPolicy` value instead of inline ``for``-loop
constants.  The backoff sequence is *deterministic*: exponential growth
with jitter derived from a seeded hash of the attempt index, so two runs
of the same configuration sleep the same amounts and chaos tests replay
byte-for-byte.
"""

from __future__ import annotations

import hashlib
import struct
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Type, TypeVar

__all__ = ["RetryPolicy", "RetryError", "call_with_retry"]

_T = TypeVar("_T")


def _unit_hash(seed: int, *parts: object) -> float:
    """Deterministic uniform-[0,1) value from a seed plus context parts."""
    h = hashlib.blake2b(digest_size=8)
    h.update(str(seed).encode("utf-8"))
    for part in parts:
        h.update(b"\x00")
        h.update(repr(part).encode("utf-8"))
    (value,) = struct.unpack(">Q", h.digest())
    return value / 2**64


class RetryError(Exception):
    """All attempts of a retried call failed.

    Carries the attempt count and the last underlying exception (also
    chained as ``__cause__``), so callers and logs see both the policy
    that gave up and the error that defeated it.
    """

    def __init__(self, message: str, attempts: int, last: BaseException) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic exponential backoff + seeded jitter.

    ``attempts`` is the *total* number of tries (so ``attempts=1`` means no
    retry at all).  Delay before retry ``i`` (0-based) is::

        min(max_delay_s, base_delay_s * multiplier**i) * (1 + jitter * u_i)

    where ``u_i`` is a deterministic uniform value in [-1, 1) hashed from
    ``(seed, i)`` — full-run reproducibility, no shared RNG state.
    ``retry_on`` is the exception allowlist: anything not listed propagates
    immediately (a programming error must never be retried into silence).
    """

    attempts: int = 5
    base_delay_s: float = 0.005
    multiplier: float = 2.0
    max_delay_s: float = 0.25
    jitter: float = 0.1
    seed: int = 0
    retry_on: Tuple[Type[BaseException], ...] = (OSError,)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int) -> float:
        """Deterministic sleep before retry ``attempt`` (0-based)."""
        base = min(self.max_delay_s, self.base_delay_s * self.multiplier**attempt)
        spread = 2.0 * _unit_hash(self.seed, "retry-delay", attempt) - 1.0
        return base * (1.0 + self.jitter * spread)

    def delays(self) -> List[float]:
        """The full backoff schedule (``attempts - 1`` sleeps)."""
        return [self.delay(i) for i in range(self.attempts - 1)]

    def should_retry(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retry_on)


def call_with_retry(
    fn: Callable[[], _T],
    policy: RetryPolicy,
    describe: str = "",
    sleep: Optional[Callable[[float], None]] = None,
) -> _T:
    """Call ``fn`` under ``policy``; raise :class:`RetryError` when beaten.

    ``sleep`` is injectable so tests assert the deterministic schedule
    without actually waiting.
    """
    sleep = time.sleep if sleep is None else sleep
    last: Optional[BaseException] = None
    for attempt in range(policy.attempts):
        try:
            return fn()
        except BaseException as exc:
            if not policy.should_retry(exc):
                raise
            last = exc
            if attempt + 1 < policy.attempts:
                sleep(policy.delay(attempt))
    assert last is not None
    raise RetryError(
        f"{describe or 'retried call'} failed after {policy.attempts} "
        f"attempt(s): {last}",
        attempts=policy.attempts,
        last=last,
    ) from last
