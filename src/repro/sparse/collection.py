"""The evaluation corpus: a deterministic SuiteSparse stand-in.

The paper's test set is 843 SuiteSparse matrices satisfying (§VII-A):
rows > 9K, 50K ≤ nnz ≤ 60M, no empty rows, ~35 % irregular (row variance
> 100).  We regenerate that *population* at laptop scale: a mixture over the
pattern families in :mod:`repro.sparse.generators`, spanning two decades of
matrix size, with the same regular/irregular split.  Every entry is fully
determined by its index, so benchmark runs are reproducible.

The paper's case-study matrices are provided as *named stand-ins* that match
the qualitative pattern each one is cited for (e.g. ``scfxm1-2r`` is an LP
matrix with mixed short/long rows; ``GL7d19`` has balanced rows plus a few
far longer ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List

import numpy as np

from repro.sparse.matrix import SparseMatrix
from repro.sparse import generators as gen

__all__ = ["CorpusEntry", "corpus", "named_matrix", "NAMED_MATRICES", "corpus_size"]


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus matrix plus the provenance the reports print."""

    index: int
    family: str
    matrix: SparseMatrix

    @property
    def name(self) -> str:
        return self.matrix.name


# ---------------------------------------------------------------------------
# Named stand-ins for the paper's case-study matrices
# ---------------------------------------------------------------------------

def _tsopf_like(seed: int) -> SparseMatrix:
    """TSOPF power-flow matrices: block structure + long coupling rows.

    The paper's maximum-speedup cases (TSOPF_RS_b300_c2 at 22.2x on A100,
    TSOPF_RS_b2052_c1 at 8.3x on RTX 2080) are blocky optimal-power-flow
    matrices."""
    return gen.block_diagonal_matrix(96, block_size=40, fill=0.45, seed=seed)


_NAMED_BUILDERS: Dict[str, Callable[[], SparseMatrix]] = {
    # Motivation case (Fig 2): 2-D device simulation, mildly irregular.
    "2D_27628_bjtcai": lambda: gen.fem_like_matrix(6144, avg_degree=7, jitter=0.8, seed=101),
    # Max-speedup cases (Fig 9a).
    "TSOPF_RS_b300_c2": lambda: _tsopf_like(102),
    "TSOPF_RS_b2052_c1": lambda: _tsopf_like(103),
    # Fig 14 case study: LP matrix with short/long row mix.
    "scfxm1-2r": lambda: gen.lp_like_matrix(4800, short_len=5, long_len=48, long_fraction=0.15, seed=104),
    # §VII-H limitation case: HYB-friendly outlier rows.
    "GL7d19": lambda: gen.rows_with_outliers_matrix(5600, base_len=12, n_outliers=5, seed=105),
    # Table III matrices (13 popular SuiteSparse matrices).
    "pdb1HYS": lambda: gen.fem_like_matrix(4400, avg_degree=30, jitter=0.35, seed=110),
    "windtunnel_evap3d": lambda: gen.fem_like_matrix(5200, avg_degree=22, jitter=0.2, seed=111),
    "consph": lambda: gen.banded_matrix(5600, bandwidth=18, seed=112),
    "Ga41As41H72": lambda: gen.power_law_matrix(5200, avg_degree=24, exponent=2.4, seed=113),
    "Si41Ge41H72": lambda: gen.power_law_matrix(5000, avg_degree=22, exponent=2.4, seed=114),
    "ASIC_680k": lambda: gen.block_diagonal_matrix(112, block_size=40, fill=0.2, seed=115),
    "mip1": lambda: gen.lp_like_matrix(4400, short_len=8, long_len=120, long_fraction=0.05, seed=116),
    "Rucci1": lambda: gen.lp_like_matrix(6000, n_cols=2800, short_len=3, long_len=3, long_fraction=0.0, seed=117),
    "boyd2": lambda: gen.diagonal_band_matrix(6000, n_diagonals=7, spread=120, seed=118),
    "rajat31": lambda: gen.block_diagonal_matrix(120, block_size=44, fill=0.15, seed=119),
    "transient": lambda: gen.block_diagonal_matrix(104, block_size=42, fill=0.18, seed=120),
    "ins2": lambda: gen.rows_with_outliers_matrix(5000, base_len=15, n_outliers=8, seed=121),
    "bone010": lambda: gen.fem_like_matrix(4800, avg_degree=28, jitter=0.3, seed=122),
    # Extreme-pattern matrices the paper cites as artificial-format targets.
    "Webbase-like": lambda: gen.power_law_matrix(6400, avg_degree=6, exponent=1.9, seed=123),
    "FullChip-like": lambda: gen.block_diagonal_matrix(128, block_size=40, fill=0.12, seed=124),
}

#: Names accepted by :func:`named_matrix`.
NAMED_MATRICES: List[str] = sorted(_NAMED_BUILDERS)

#: Table III's 13 matrices, in the paper's row order.
TABLE3_MATRICES: List[str] = [
    "pdb1HYS",
    "windtunnel_evap3d",
    "consph",
    "Ga41As41H72",
    "Si41Ge41H72",
    "ASIC_680k",
    "mip1",
    "Rucci1",
    "boyd2",
    "rajat31",
    "transient",
    "ins2",
    "bone010",
]

_named_cache: Dict[str, SparseMatrix] = {}


def named_matrix(name: str) -> SparseMatrix:
    """Return the stand-in for one of the paper's named matrices (cached)."""
    if name not in _NAMED_BUILDERS:
        raise KeyError(
            f"unknown matrix {name!r}; available: {', '.join(NAMED_MATRICES)}"
        )
    if name not in _named_cache:
        mat = _NAMED_BUILDERS[name]()
        _named_cache[name] = SparseMatrix(
            mat.n_rows, mat.n_cols, mat.rows, mat.cols, mat.vals, name=name
        )
    return _named_cache[name]


# ---------------------------------------------------------------------------
# The corpus
# ---------------------------------------------------------------------------

#: (family, generator, size grid) — weights chosen so ≈35 % of the corpus is
#: irregular, matching the paper's test-set composition.
_FAMILIES = [
    ("banded", lambda n, s: gen.banded_matrix(n, bandwidth=4 + s % 6, seed=s)),
    ("fem", lambda n, s: gen.fem_like_matrix(n, avg_degree=10 + 2 * (s % 8), jitter=0.25, seed=s)),
    ("uniform", lambda n, s: gen.random_uniform_matrix(n, avg_degree=6 + s % 10, seed=s)),
    ("diagband", lambda n, s: gen.diagonal_band_matrix(n, n_diagonals=5 + s % 6, seed=s)),
    ("powerlaw", lambda n, s: gen.power_law_matrix(n, avg_degree=6 + s % 6, exponent=1.9 + 0.1 * (s % 4), seed=s)),
    ("lp", lambda n, s: gen.lp_like_matrix(n, short_len=3 + s % 4, long_len=40 + 8 * (s % 5), seed=s)),
    ("blockdiag", lambda n, s: gen.block_diagonal_matrix(max(6, n // 44), block_size=44, fill=0.2 + 0.04 * (s % 4), seed=s)),
    ("outliers", lambda n, s: gen.rows_with_outliers_matrix(n, base_len=8 + s % 6, n_outliers=3 + s % 4, seed=s)),
]

_SIZES = [1536, 2560, 4096, 6144, 9216, 14336]

DEFAULT_CORPUS_SIZE = 48


def corpus_size() -> int:
    return DEFAULT_CORPUS_SIZE


def corpus(
    count: int = DEFAULT_CORPUS_SIZE,
    seed: int = 2022,
    min_nnz: int = 500,
    start: int = 0,
) -> Iterator[CorpusEntry]:
    """Yield ``count`` deterministic corpus matrices, starting at ``start``.

    Matrices cycle through the family × size grid so any prefix of the
    corpus is balanced; filters mirror the paper's test-set conditions
    (no empty rows by construction, nnz floor standing in for the 50K one).
    ``start`` selects a shard: ``corpus(n, start=k)`` yields exactly the
    entries ``corpus(k + n)`` would yield after the first ``k`` (indices
    included), so a corpus run can be split across processes or resumed by
    range without replaying earlier matrices.
    """
    if start < 0:
        raise ValueError("start must be non-negative")
    rng = np.random.default_rng(seed)
    produced = 0
    attempt = 0
    while produced < start + count:
        fam_name, builder = _FAMILIES[attempt % len(_FAMILIES)]
        size = _SIZES[(attempt // len(_FAMILIES)) % len(_SIZES)]
        mat = builder(size, int(rng.integers(0, 2**31 - 1)))
        attempt += 1
        if mat.nnz < min_nnz or mat.stats.empty_rows:
            continue
        if produced >= start:
            named = SparseMatrix(
                mat.n_rows,
                mat.n_cols,
                mat.rows,
                mat.cols,
                mat.vals,
                name=f"{fam_name}_{produced:03d}_n{mat.n_rows}",
            )
            yield CorpusEntry(index=produced, family=fam_name, matrix=named)
        produced += 1
