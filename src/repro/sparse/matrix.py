"""Core sparse-matrix container used throughout the reproduction.

AlphaSparse consumes a sparse matrix as a set of (row, col, value) triplets
— the natural reading of a Matrix Market file — and every operator of the
Operator Graph transforms metadata derived from those triplets.  This module
provides that canonical container plus the sparsity statistics the paper's
search engine, pruning rules and evaluation stratify on (row-length variance,
average row length, irregularity per §I Problem 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

__all__ = ["SparseMatrix", "MatrixStats", "spmv_allclose", "SPMV_RTOL", "SPMV_ATOL"]

#: Row-length variance threshold above which the paper calls a matrix
#: *irregular* (§I, Problem 2: "variances of its row lengths are more than 100").
IRREGULARITY_THRESHOLD = 100.0


@dataclass(frozen=True)
class MatrixStats:
    """Summary statistics of a sparse matrix's sparsity pattern.

    These are the features the paper uses to characterise matrices:
    ``avg_row_length`` (nnz/n) and ``row_variance`` drive Figures 9b and 11–13,
    and the pruning rules of §VI-B consult them to ban operators.
    """

    n_rows: int
    n_cols: int
    nnz: int
    avg_row_length: float
    row_variance: float
    max_row_length: int
    min_row_length: int
    empty_rows: int
    density: float

    @property
    def is_irregular(self) -> bool:
        """Paper definition: row-length variance above 100."""
        return self.row_variance > IRREGULARITY_THRESHOLD


class SparseMatrix:
    """A sparse matrix held as sorted COO triplets.

    Triplets are stored row-major sorted (row, then column) with no
    duplicates.  The container is immutable by convention: operators never
    mutate it, they derive metadata from it.

    Parameters
    ----------
    n_rows, n_cols:
        Matrix dimensions.
    rows, cols:
        Integer coordinate arrays of equal length.
    vals:
        Values; defaults to ones when omitted (pattern matrices).
    name:
        Optional identifier (e.g. the SuiteSparse name it stands in for).
    """

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        rows: Iterable[int],
        cols: Iterable[int],
        vals: Optional[Iterable[float]] = None,
        name: str = "",
    ) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.ndim != 1 or cols.ndim != 1 or rows.shape != cols.shape:
            raise ValueError("rows and cols must be 1-D arrays of equal length")
        if vals is None:
            vals = np.ones(rows.shape[0], dtype=np.float64)
        else:
            vals = np.asarray(vals, dtype=np.float64)
            if vals.shape != rows.shape:
                raise ValueError("vals must match rows/cols length")
        if n_rows <= 0 or n_cols <= 0:
            raise ValueError("matrix dimensions must be positive")
        if rows.size:
            if rows.min() < 0 or rows.max() >= n_rows:
                raise ValueError("row index out of range")
            if cols.min() < 0 or cols.max() >= n_cols:
                raise ValueError("column index out of range")

        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if rows.size:
            dup = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
            if dup.any():
                # Sum duplicates, Matrix Market "assemble" semantics.
                keys = rows * n_cols + cols
                uniq, inverse = np.unique(keys, return_inverse=True)
                summed = np.bincount(inverse, weights=vals, minlength=uniq.size)
                rows = (uniq // n_cols).astype(np.int64)
                cols = (uniq % n_cols).astype(np.int64)
                vals = summed

        self._n_rows = int(n_rows)
        self._n_cols = int(n_cols)
        self._rows = rows
        self._cols = cols
        self._vals = vals
        self.name = name
        self._stats: Optional[MatrixStats] = None
        self._row_lengths: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_cols(self) -> int:
        return self._n_cols

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._n_rows, self._n_cols)

    @property
    def nnz(self) -> int:
        return int(self._rows.size)

    @property
    def rows(self) -> np.ndarray:
        """Row indices, row-major sorted.  Do not mutate."""
        return self._rows

    @property
    def cols(self) -> np.ndarray:
        """Column indices, row-major sorted.  Do not mutate."""
        return self._cols

    @property
    def vals(self) -> np.ndarray:
        """Values aligned with :attr:`rows`/:attr:`cols`.  Do not mutate."""
        return self._vals

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def row_lengths(self) -> np.ndarray:
        """Number of stored non-zeros in each row (length ``n_rows``)."""
        if self._row_lengths is None:
            self._row_lengths = np.bincount(
                self._rows, minlength=self._n_rows
            ).astype(np.int64)
        return self._row_lengths

    def row_offsets(self) -> np.ndarray:
        """CSR-style row pointer array of length ``n_rows + 1``."""
        offsets = np.zeros(self._n_rows + 1, dtype=np.int64)
        np.cumsum(self.row_lengths(), out=offsets[1:])
        return offsets

    @property
    def stats(self) -> MatrixStats:
        """Sparsity statistics (cached)."""
        if self._stats is None:
            lengths = self.row_lengths()
            avg = float(lengths.mean()) if lengths.size else 0.0
            var = float(((lengths - avg) ** 2).mean()) if lengths.size else 0.0
            self._stats = MatrixStats(
                n_rows=self._n_rows,
                n_cols=self._n_cols,
                nnz=self.nnz,
                avg_row_length=avg,
                row_variance=var,
                max_row_length=int(lengths.max()) if lengths.size else 0,
                min_row_length=int(lengths.min()) if lengths.size else 0,
                empty_rows=int((lengths == 0).sum()),
                density=self.nnz / (self._n_rows * self._n_cols),
            )
        return self._stats

    @property
    def is_irregular(self) -> bool:
        return self.stats.is_irregular

    # ------------------------------------------------------------------
    # Linear algebra & conversions
    # ------------------------------------------------------------------
    def spmv_reference(self, x: np.ndarray) -> np.ndarray:
        """Reference y = A @ x used as ground truth by every kernel test."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self._n_cols,):
            raise ValueError(f"x must have shape ({self._n_cols},)")
        products = self._vals * x[self._cols]
        return np.bincount(
            self._rows, weights=products, minlength=self._n_rows
        ).astype(np.float64)

    def spmm_reference(self, x: np.ndarray) -> np.ndarray:
        """Reference Y = A @ X for a dense multi-column right-hand side.

        ``x`` has shape ``(n_cols, k)``; the result has shape
        ``(n_rows, k)``.  Each column is the same weighted-bincount
        reduction as :meth:`spmv_reference`, so the accumulation order
        (and therefore the achievable kernel agreement) matches the
        single-vector reference exactly.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] != self._n_cols:
            raise ValueError(f"X must have shape ({self._n_cols}, k)")
        k = x.shape[1]
        products = self._vals[:, None] * x[self._cols, :]
        out = np.zeros((self._n_rows, k), dtype=np.float64)
        for j in range(k):
            out[:, j] = np.bincount(
                self._rows, weights=products[:, j], minlength=self._n_rows
            )
        return out

    def spmv_t_reference(self, x: np.ndarray) -> np.ndarray:
        """Reference y = A.T @ x (transpose SpMV).

        ``x`` has shape ``(n_rows,)``; the result has shape ``(n_cols,)``
        — the operation gathers along rows and scatters along columns.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self._n_rows,):
            raise ValueError(f"x must have shape ({self._n_rows},)")
        products = self._vals * x[self._rows]
        return np.bincount(
            self._cols, weights=products, minlength=self._n_cols
        ).astype(np.float64)

    def to_dense(self) -> np.ndarray:
        """Dense ndarray; only sensible for small test matrices."""
        dense = np.zeros(self.shape, dtype=np.float64)
        dense[self._rows, self._cols] = self._vals
        return dense

    def to_scipy_csr(self):
        """Convert to ``scipy.sparse.csr_matrix`` (validation helper)."""
        from scipy.sparse import csr_matrix

        return csr_matrix(
            (self._vals, (self._rows, self._cols)), shape=self.shape
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray, name: str = "") -> "SparseMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("dense input must be 2-D")
        rows, cols = np.nonzero(dense)
        return cls(dense.shape[0], dense.shape[1], rows, cols, dense[rows, cols], name=name)

    @classmethod
    def from_scipy(cls, mat, name: str = "") -> "SparseMatrix":
        coo = mat.tocoo()
        return cls(coo.shape[0], coo.shape[1], coo.row, coo.col, coo.data, name=name)

    # ------------------------------------------------------------------
    # Transformations used by the corpus builder
    # ------------------------------------------------------------------
    def drop_empty_rows(self) -> "SparseMatrix":
        """Compact away empty rows (the paper's test set excludes them)."""
        lengths = self.row_lengths()
        keep = np.nonzero(lengths > 0)[0]
        remap = -np.ones(self._n_rows, dtype=np.int64)
        remap[keep] = np.arange(keep.size)
        return SparseMatrix(
            int(keep.size),
            self._n_cols,
            remap[self._rows],
            self._cols,
            self._vals,
            name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<SparseMatrix{label} {self._n_rows}x{self._n_cols} "
            f"nnz={self.nnz} row_var={self.stats.row_variance:.1f}>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self._rows, other._rows)
            and np.array_equal(self._cols, other._cols)
            and np.array_equal(self._vals, other._vals)
        )

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("SparseMatrix is unhashable; use .name as a key")


#: Correctness tolerance for comparing a kernel's ``y`` against
#: :meth:`SparseMatrix.spmv_reference`.  Kernels are free to accumulate a
#: row's partials in any order — atomic reductions (``GMEM_ATOM_RED``) and
#: reordered layouts (``SORT``, interleaved storage) sum in scheduling
#: order, not reference order — so the achievable agreement is bounded by
#: float64 summation error (~eps * sqrt(k) * sum|a_ij x_j| for k-long rows),
#: not by exact bit equality.  ``rtol=1e-9`` misflags legitimately reordered
#: sums on dense-ish rows as "incorrect" (0 GFLOPS).
SPMV_RTOL = 1e-6
SPMV_ATOL = 1e-9


def spmv_allclose(y: np.ndarray, reference: np.ndarray) -> bool:
    """Order-tolerant correctness gate for kernel outputs.

    The absolute term scales with the reference magnitude so near-zero rows
    produced by cancellation do not dominate the comparison.  The gate is
    shape-agnostic: a vector result (SpMV / transpose SpMV) and a matrix
    result (SpMM) compare under the same tolerance model, so every
    workload's :meth:`~repro.workloads.Workload.allclose` routes here.
    """
    y = np.asarray(y, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    scale = float(np.abs(reference).max(initial=1.0))
    return bool(np.allclose(y, reference, rtol=SPMV_RTOL, atol=SPMV_ATOL * scale))
