"""Matrix Market I/O.

AlphaSparse's user contract (§III) is "input a Matrix Market file, get back a
machine-designed format and kernel".  This module implements the subset of
the MatrixMarket exchange format the paper's corpus uses: ``matrix
coordinate`` with ``real``/``integer``/``pattern`` fields and
``general``/``symmetric`` symmetry.
"""

from __future__ import annotations

import io
import os
from typing import TextIO, Union

import numpy as np

from repro.sparse.matrix import SparseMatrix

__all__ = ["read_matrix_market", "write_matrix_market", "MatrixMarketError"]


class MatrixMarketError(ValueError):
    """Raised for malformed Matrix Market content."""


_SUPPORTED_FIELDS = {"real", "integer", "pattern", "double"}
_SUPPORTED_SYMMETRY = {"general", "symmetric", "skew-symmetric"}


def _open_maybe(path_or_file: Union[str, os.PathLike, TextIO], mode: str):
    if hasattr(path_or_file, "read") or hasattr(path_or_file, "write"):
        return path_or_file, False
    return open(path_or_file, mode), True


def read_matrix_market(source: Union[str, os.PathLike, TextIO]) -> SparseMatrix:
    """Parse a Matrix Market coordinate file into a :class:`SparseMatrix`.

    Symmetric and skew-symmetric storage is expanded to general form, which
    matches how the paper's SpMV treats every matrix.
    """
    handle, should_close = _open_maybe(source, "r")
    try:
        header = handle.readline()
        if not header.startswith("%%MatrixMarket"):
            raise MatrixMarketError("missing %%MatrixMarket header")
        parts = header.strip().split()
        if len(parts) < 5:
            raise MatrixMarketError(f"malformed header: {header!r}")
        _, obj, fmt, field, symmetry = parts[:5]
        obj, fmt = obj.lower(), fmt.lower()
        field, symmetry = field.lower(), symmetry.lower()
        if obj != "matrix" or fmt != "coordinate":
            raise MatrixMarketError(
                f"only 'matrix coordinate' supported, got {obj!r} {fmt!r}"
            )
        if field not in _SUPPORTED_FIELDS:
            raise MatrixMarketError(f"unsupported field {field!r}")
        if symmetry not in _SUPPORTED_SYMMETRY:
            raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")

        line = handle.readline()
        while line.startswith("%") or not line.strip():
            line = handle.readline()
            if not line:
                raise MatrixMarketError("missing size line")
        size_parts = line.split()
        if len(size_parts) != 3:
            raise MatrixMarketError(f"malformed size line: {line!r}")
        n_rows, n_cols, nnz = (int(p) for p in size_parts)
        if n_rows <= 0 or n_cols <= 0 or nnz < 0:
            raise MatrixMarketError(
                f"invalid size line {n_rows} {n_cols} {nnz}: dimensions "
                "must be positive and nnz non-negative"
            )

        pattern = field == "pattern"
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.ones(nnz, dtype=np.float64)
        count = 0
        for line in handle:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            entry = line.split()
            if count >= nnz:
                raise MatrixMarketError("more entries than declared nnz")
            rows[count] = int(entry[0]) - 1
            cols[count] = int(entry[1]) - 1
            if not pattern:
                if len(entry) < 3:
                    raise MatrixMarketError(f"missing value on line: {line!r}")
                vals[count] = float(entry[2])
            count += 1
        if count != nnz:
            raise MatrixMarketError(
                f"declared {nnz} entries but found {count}"
            )

        # Indices are 1-based in the file; a 0 or a value beyond the size
        # line would silently become a negative / out-of-range 0-based index
        # and only fail (or corrupt statistics) far downstream.
        for label, idx, bound in (("row", rows, n_rows), ("column", cols, n_cols)):
            if idx.size and (idx.min() < 0 or idx.max() >= bound):
                bad = idx[(idx < 0) | (idx >= bound)][0]
                raise MatrixMarketError(
                    f"{label} index {int(bad) + 1} outside declared range "
                    f"1..{bound}"
                )

        if symmetry in ("symmetric", "skew-symmetric"):
            off_diag = rows != cols
            extra_rows = cols[off_diag]
            extra_cols = rows[off_diag]
            extra_vals = vals[off_diag]
            if symmetry == "skew-symmetric":
                extra_vals = -extra_vals
            rows = np.concatenate([rows, extra_rows])
            cols = np.concatenate([cols, extra_cols])
            vals = np.concatenate([vals, extra_vals])

        name = ""
        if isinstance(source, (str, os.PathLike)):
            name = os.path.splitext(os.path.basename(os.fspath(source)))[0]
        return SparseMatrix(n_rows, n_cols, rows, cols, vals, name=name)
    finally:
        if should_close:
            handle.close()


def write_matrix_market(
    matrix: SparseMatrix, target: Union[str, os.PathLike, TextIO]
) -> None:
    """Write a matrix in general real coordinate Matrix Market form."""
    handle, should_close = _open_maybe(target, "w")
    try:
        handle.write("%%MatrixMarket matrix coordinate real general\n")
        handle.write(f"% written by repro (AlphaSparse reproduction)\n")
        handle.write(f"{matrix.n_rows} {matrix.n_cols} {matrix.nnz}\n")
        for r, c, v in zip(matrix.rows, matrix.cols, matrix.vals):
            handle.write(f"{r + 1} {c + 1} {v:.17g}\n")
    finally:
        if should_close:
            handle.close()


def loads(text: str) -> SparseMatrix:
    """Parse Matrix Market content from a string."""
    return read_matrix_market(io.StringIO(text))


def dumps(matrix: SparseMatrix) -> str:
    """Serialise a matrix to a Matrix Market string."""
    buf = io.StringIO()
    write_matrix_market(matrix, buf)
    return buf.getvalue()
