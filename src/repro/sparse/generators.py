"""Synthetic sparsity-pattern generators.

The paper evaluates on 843 SuiteSparse matrices drawn from 91 application
domains.  Offline we cannot ship SuiteSparse, so this module regenerates the
*pattern families* those domains contribute — the features that drive every
figure in the paper are matrix size, average row length and row-length
variance, all of which these generators control directly:

====================  =============================================  =====================
Generator             SuiteSparse family it stands in for            Regularity
====================  =============================================  =====================
banded_matrix         stencils / structural FEM (e.g. consph)        regular
fem_like_matrix       unstructured FEM (pdb1HYS, bone010)            mildly irregular
power_law_matrix      web / social graphs (Webbase-like)             highly irregular
lp_like_matrix        linear programming (scfxm1-2r, Rucci1)         wide short+long mix
block_diagonal_matrix circuit simulation (ASIC_680k, rajat31)        blocky, spiky rows
diagonal_band_matrix  quasi-diagonal (boyd2-like)                    regular diagonals
rows_with_outliers    few very long rows (GL7d19-like, HYB-friendly) bimodal
random_uniform        Erdős–Rényi control case                       regular
====================  =============================================  =====================

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.matrix import SparseMatrix

__all__ = [
    "banded_matrix",
    "block_diagonal_matrix",
    "diagonal_band_matrix",
    "fem_like_matrix",
    "lp_like_matrix",
    "power_law_matrix",
    "random_uniform_matrix",
    "rows_with_outliers_matrix",
]


def _values(rng: np.random.Generator, count: int) -> np.ndarray:
    """Non-zero values in [0.5, 1.5): avoids cancellation in test oracles."""
    return 0.5 + rng.random(count)


def _from_row_lengths(
    rng: np.random.Generator,
    n_rows: int,
    n_cols: int,
    row_lengths: np.ndarray,
    name: str,
    clustered: bool = False,
) -> SparseMatrix:
    """Build a matrix with the given per-row non-zero counts.

    ``clustered`` places the non-zeros of a row in a contiguous column window
    (FEM-like locality); otherwise columns are sampled uniformly.
    """
    row_lengths = np.minimum(row_lengths.astype(np.int64), n_cols)
    row_lengths = np.maximum(row_lengths, 1)  # paper's corpus: no empty rows
    total = int(row_lengths.sum())
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), row_lengths)
    if clustered:
        starts = rng.integers(0, n_cols, size=n_rows)
        cols = np.concatenate(
            [
                (starts[i] + np.arange(row_lengths[i])) % n_cols
                for i in range(n_rows)
            ]
        )
    else:
        # Sample without replacement per row, vectorised via random keys.
        cols = np.empty(total, dtype=np.int64)
        pos = 0
        for i in range(n_rows):
            k = int(row_lengths[i])
            if k * 3 >= n_cols:
                chosen = rng.permutation(n_cols)[:k]
            else:
                chosen = np.unique(rng.integers(0, n_cols, size=k * 2))[:k]
                while chosen.size < k:
                    extra = rng.integers(0, n_cols, size=k)
                    chosen = np.unique(np.concatenate([chosen, extra]))[:k]
            cols[pos : pos + k] = chosen
            pos += k
    return SparseMatrix(n_rows, n_cols, rows, cols, _values(rng, total), name=name)


def banded_matrix(
    n: int, bandwidth: int = 5, seed: int = 0, name: str = ""
) -> SparseMatrix:
    """Banded matrix with ``2*bandwidth + 1`` diagonals — the classic
    stencil/structured-FEM pattern.  Perfectly regular row lengths."""
    rng = np.random.default_rng(seed)
    offsets = np.arange(-bandwidth, bandwidth + 1)
    rows_list, cols_list = [], []
    base = np.arange(n, dtype=np.int64)
    for off in offsets:
        cols = base + off
        mask = (cols >= 0) & (cols < n)
        rows_list.append(base[mask])
        cols_list.append(cols[mask])
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return SparseMatrix(n, n, rows, cols, _values(rng, rows.size), name=name or f"banded_{n}")


def diagonal_band_matrix(
    n: int, n_diagonals: int = 9, spread: int = 200, seed: int = 0, name: str = ""
) -> SparseMatrix:
    """A few scattered full diagonals — quasi-diagonal pattern (DIA-friendly)."""
    rng = np.random.default_rng(seed)
    offsets = np.unique(
        np.concatenate([[0], rng.integers(-spread, spread + 1, size=n_diagonals - 1)])
    )
    rows_list, cols_list = [], []
    base = np.arange(n, dtype=np.int64)
    for off in offsets:
        cols = base + off
        mask = (cols >= 0) & (cols < n)
        rows_list.append(base[mask])
        cols_list.append(cols[mask])
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return SparseMatrix(
        n, n, rows, cols, _values(rng, rows.size), name=name or f"diagband_{n}"
    )


def fem_like_matrix(
    n: int, avg_degree: int = 18, jitter: float = 0.3, seed: int = 0, name: str = ""
) -> SparseMatrix:
    """Unstructured-FEM stand-in: clustered columns, mildly varying rows.

    Row lengths are normally distributed around ``avg_degree`` with relative
    standard deviation ``jitter``; variance stays below the paper's
    irregularity threshold for default parameters.
    """
    rng = np.random.default_rng(seed)
    lengths = rng.normal(avg_degree, jitter * avg_degree, size=n)
    lengths = np.clip(np.round(lengths), 1, None).astype(np.int64)
    return _from_row_lengths(
        rng, n, n, lengths, name or f"fem_{n}", clustered=True
    )


def power_law_matrix(
    n: int,
    avg_degree: int = 8,
    exponent: float = 2.1,
    max_degree: int | None = None,
    seed: int = 0,
    name: str = "",
) -> SparseMatrix:
    """Scale-free graph adjacency stand-in (web/social-network family).

    Row lengths follow a truncated Pareto distribution — a handful of hub
    rows dominate, producing the high row-variance patterns that motivate
    ACSR/CSR5/Merge and where AlphaSparse wins most (Fig 11b).
    """
    rng = np.random.default_rng(seed)
    if max_degree is None:
        max_degree = max(32, n // 10)
    raw = (rng.pareto(exponent - 1.0, size=n) + 1.0)
    lengths = np.clip(raw * avg_degree / raw.mean(), 1, max_degree)
    return _from_row_lengths(
        rng, n, n, lengths.astype(np.int64), name or f"powerlaw_{n}"
    )


def lp_like_matrix(
    n_rows: int,
    n_cols: int | None = None,
    short_len: int = 4,
    long_len: int = 60,
    long_fraction: float = 0.12,
    seed: int = 0,
    name: str = "",
) -> SparseMatrix:
    """Linear-programming constraint-matrix stand-in (scfxm1-2r family).

    A mixture of many short rows and a band of long rows, moderately
    irregular — the "moderate sparsity patterns" regime where the paper
    reports peak speedups over PFS (§VII-D).
    """
    rng = np.random.default_rng(seed)
    if n_cols is None:
        n_cols = n_rows
    lengths = np.full(n_rows, short_len, dtype=np.int64)
    n_long = max(1, int(long_fraction * n_rows))
    long_rows = rng.choice(n_rows, size=n_long, replace=False)
    lengths[long_rows] = rng.integers(long_len // 2, long_len + 1, size=n_long)
    return _from_row_lengths(rng, n_rows, n_cols, lengths, name or f"lp_{n_rows}")


def block_diagonal_matrix(
    n_blocks: int, block_size: int = 48, fill: float = 0.35, seed: int = 0, name: str = ""
) -> SparseMatrix:
    """Circuit-simulation stand-in: dense-ish diagonal blocks plus a sparse
    global coupling row/column per block (spiky row lengths)."""
    rng = np.random.default_rng(seed)
    n = n_blocks * block_size
    rows_list, cols_list = [], []
    for b in range(n_blocks):
        base = b * block_size
        count = max(1, int(fill * block_size * block_size))
        rr = rng.integers(0, block_size, size=count) + base
        cc = rng.integers(0, block_size, size=count) + base
        rows_list.append(rr)
        cols_list.append(cc)
        # one long coupling row per block
        hub = base + int(rng.integers(0, block_size))
        coupled = rng.integers(0, n, size=block_size)
        rows_list.append(np.full(block_size, hub, dtype=np.int64))
        cols_list.append(coupled)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    mat = SparseMatrix(
        n, n, rows, cols, _values(rng, rows.size), name=name or f"blockdiag_{n}"
    )
    return _ensure_no_empty_rows(mat, rng)


def rows_with_outliers_matrix(
    n: int,
    base_len: int = 10,
    n_outliers: int = 4,
    outlier_len: int | None = None,
    seed: int = 0,
    name: str = "",
) -> SparseMatrix:
    """GL7d19-like pattern: balanced rows except a few rows several times
    longer.  The paper's §VII-H limitation case — HYB's decomposition wins
    here, and so should our HYB baseline."""
    rng = np.random.default_rng(seed)
    if outlier_len is None:
        outlier_len = min(n, base_len * 40)
    lengths = np.full(n, base_len, dtype=np.int64)
    picks = rng.choice(n, size=n_outliers, replace=False)
    lengths[picks] = outlier_len
    return _from_row_lengths(rng, n, n, lengths, name or f"outliers_{n}")


def random_uniform_matrix(
    n: int, avg_degree: int = 12, seed: int = 0, name: str = ""
) -> SparseMatrix:
    """Erdős–Rényi control: Poisson row lengths, low variance."""
    rng = np.random.default_rng(seed)
    lengths = rng.poisson(avg_degree, size=n).astype(np.int64)
    return _from_row_lengths(rng, n, n, lengths, name or f"uniform_{n}")


def _ensure_no_empty_rows(
    mat: SparseMatrix, rng: np.random.Generator
) -> SparseMatrix:
    """Add a single diagonal entry to any empty row (paper test-set rule)."""
    lengths = mat.row_lengths()
    empty = np.nonzero(lengths == 0)[0]
    if empty.size == 0:
        return mat
    rows = np.concatenate([mat.rows, empty])
    cols = np.concatenate([mat.cols, empty % mat.n_cols])
    vals = np.concatenate([mat.vals, _values(rng, empty.size)])
    return SparseMatrix(mat.n_rows, mat.n_cols, rows, cols, vals, name=mat.name)
