"""Sparse-matrix substrate: the data the rest of AlphaSparse consumes.

This package provides the matrix container (:class:`~repro.sparse.matrix.SparseMatrix`),
Matrix Market I/O, synthetic pattern generators replicating the SuiteSparse
families the paper evaluates on, and the named corpus used by the benchmark
harness.
"""

from repro.sparse.matrix import SparseMatrix, MatrixStats, spmv_allclose
from repro.sparse.io import read_matrix_market, write_matrix_market
from repro.sparse.generators import (
    banded_matrix,
    block_diagonal_matrix,
    diagonal_band_matrix,
    fem_like_matrix,
    lp_like_matrix,
    power_law_matrix,
    random_uniform_matrix,
    rows_with_outliers_matrix,
)
from repro.sparse.collection import (
    CorpusEntry,
    corpus,
    named_matrix,
    NAMED_MATRICES,
)

__all__ = [
    "SparseMatrix",
    "MatrixStats",
    "spmv_allclose",
    "read_matrix_market",
    "write_matrix_market",
    "banded_matrix",
    "block_diagonal_matrix",
    "diagonal_band_matrix",
    "fem_like_matrix",
    "lp_like_matrix",
    "power_law_matrix",
    "random_uniform_matrix",
    "rows_with_outliers_matrix",
    "CorpusEntry",
    "corpus",
    "named_matrix",
    "NAMED_MATRICES",
]
