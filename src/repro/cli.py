"""Command-line interface — the paper's user contract as a tool.

"Users only need to input a Matrix Market file of a sparse matrix, and
AlphaSparse will output a matrix stored in a specific format and a kernel
implementation" (§III).

Commands::

    python -m repro search <matrix.mtx | @named> [more matrices ...]
                           [--gpu A100] [--evals N] [--jobs N] [--profile]
                           [--workload spmv|spmm4|spmm16|spmvt]
                           [--out DIR] [--store DIR] [--warm-start]
                           [--no-pruning] [--extensions] [--seed S]
    python -m repro baselines <matrix.mtx | @named> [--gpu A100]
                              [--workload NAME]
    python -m repro bench <matrix.mtx | @named | @corpus:N> [more ...]
                          [--gpu A100] [--evals N] [--jobs N] [--seed S]
                          [--workload NAME] [--resume PATH] [--store DIR]
                          [--warm-start]
    python -m repro serve <matrix.mtx | @named> [more ...] --store DIR
                          [--gpu A100] [--evals N] [--jobs N]
                          [--workers N] [--backend auto|dir|journal]
                          [--deadline S] [--workload NAME] [--out DIR]
    python -m repro store {ls | gc | verify | compact} DIR [--repair]
    python -m repro check [--store DIR] [--matrix SPEC] [--workload NAME]
                          [--samples N] [--seed S]
    python -m repro stats <matrix.mtx | @named>
    python -m repro operators
    python -m repro matrices

``@name`` selects one of the built-in named matrices (e.g. ``@scfxm1-2r``).
``search`` accepts several matrices; they share one engine, one design
cache and one worker pool (``--jobs``) and print a collection summary.
``bench`` runs the corpus pipeline — every baseline *and* the design
search per matrix — and prints the paper's corpus tables; ``--resume
PATH`` persists per-matrix results incrementally so an interrupted run
picks up where it stopped.  ``@corpus:N`` expands to the first N matrices
of the built-in deterministic corpus (``@corpus:K-N`` for a shard).

``--store DIR`` (search/bench) persists designs and results to an
on-disk :class:`~repro.store.design.DesignStore`: a later search of the
same matrix — even in a new process — warm-starts with zero Designer
runs.  ``--warm-start`` additionally seeds each search's candidate
stream with the store's nearest-neighbour *winning* design (cross-matrix
transfer — a corpus run's earlier matrices warm-start its later ones).
``serve`` answers requests store-first (exact hit → feature
nearest-neighbour transfer → bounded fresh search); with ``--workers N``
it serves through a supervised multi-process resolver pool (crashed
workers restart, deadline-blown requests degrade tier-by-tier, every
request gets an answer).  ``store ls/gc/verify/compact`` inspect, prune,
integrity-check (``verify --repair`` quarantines damage) and compact a
store directory; ``--backend journal`` selects the crash-safe
append-only store backend built for multi-process serving.

``check`` runs the static verifier against the search space: it samples
candidate designs, compares the chain analysis's verdicts against the
dynamic validator (any disagreement is a ``CHECK-UNSOUND`` error) and
lints every kernel the valid designs generate.  With ``--store DIR`` it
instead audits a persisted design store (entry integrity, decoded
graphs, embedded kernel sources).  Exit status 1 on any error-severity
finding, so CI can gate on it.

``--workload`` (search/bench/serve/baselines/check) selects the operation
being tuned/measured — ``spmv`` (default), ``spmm4``/``spmm16`` (dense
multi-vector SpMM) or ``spmvt`` (transpose SpMV).  Store and cache keys
are workload-scoped, so artifacts of different workloads sharing one
store directory never cross-serve.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis import render_search_summary, render_table
from repro.baselines import PFS_MEMBERS, PerfectFormatSelector, get_baseline
from repro.bench import CorpusRunner, ResultStore, render_corpus_report
from repro.core.operators import OPERATOR_REGISTRY, Stage
from repro.export import export_program, write_artifact
from repro.gpu import gpu_by_name
from repro.search import SearchBudget, SearchEngine
from repro.search.evaluation import matrix_token
from repro.serve import Frontend, default_serve_budget
from repro.sparse import NAMED_MATRICES, corpus, named_matrix, read_matrix_market
from repro.sparse.matrix import SparseMatrix
from repro.staticcheck import Severity, Verdict, analyze_design, audit_store
from repro.store import DesignStore, StoreError, search_result_record
from repro.workloads import WORKLOADS, Workload, get_workload

__all__ = ["main"]


def _load_matrix(spec: str) -> SparseMatrix:
    if spec.startswith("@"):
        return named_matrix(spec[1:])
    return read_matrix_market(spec)


def _workload_arg(value: str) -> Workload:
    """argparse type for ``--workload``: a bad name errors with the list
    of registered workloads instead of surfacing a KeyError traceback."""
    try:
        return get_workload(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _jobs_arg(value: str) -> int:
    """argparse type for ``--jobs``: rejects non-integers and values < 1
    with a clean usage error instead of a runtime traceback."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer worker count, got {value!r}"
        ) from None
    if jobs < 1:
        raise argparse.ArgumentTypeError(
            f"worker count must be >= 1, got {jobs}"
        )
    return jobs


def _sampler_arg(value: str):
    """argparse type for ``--sampler``: a bad name errors with the list of
    registered samplers instead of surfacing a KeyError traceback."""
    from repro.search.samplers import get_sampler

    try:
        return get_sampler(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _sampler_seed_arg(value: str) -> int:
    """argparse type for ``--sampler-seed``: rejects non-integers with a
    clean usage error (mirrors ``--jobs``)."""
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer sampler seed, got {value!r}"
        ) from None


def _cmd_search(args: argparse.Namespace) -> int:
    specs: List[str] = args.matrix
    matrices = [_load_matrix(spec) for spec in specs]
    gpu = gpu_by_name(args.gpu)
    store = DesignStore(args.store) if args.store else None
    if args.warm_start and store is None:
        raise SystemExit("--warm-start requires --store DIR")
    engine = SearchEngine(
        gpu,
        budget=SearchBudget(max_total_evals=args.evals, jobs=args.jobs),
        seed=args.seed,
        enable_pruning=not args.no_pruning,
        enable_extensions=args.extensions,
        store=store,
        workload=args.workload,
        sampler=args.sampler,
        sampler_seed=args.sampler_seed,
        warm_start_store=store if args.warm_start else None,
    )
    try:
        if len(matrices) == 1:
            return _search_single(engine, matrices[0], specs[0], gpu, args)
        return _search_collection(engine, matrices, specs, gpu, args)
    finally:
        engine.close()


def _record_search_result(engine, matrix, result, args) -> None:
    """Persist one finished CLI search to the design store (result entry
    with the exported artifact inline, so ``serve`` answers it exactly),
    under the engine workload's scoped key."""
    if engine.store is None or result.best_graph is None:
        return
    engine.store.put_result(
        engine.workload.scope_token(matrix_token(matrix)),
        engine.gpu.name,
        search_result_record(matrix, engine.gpu.name, result, seed=args.seed),
    )


def _search_single(engine, matrix, spec, gpu, args) -> int:
    stats = matrix.stats
    print(f"matrix {matrix.name or spec}: {matrix.n_rows}x{matrix.n_cols}, "
          f"nnz={matrix.nnz}, row variance={stats.row_variance:.1f} "
          f"({'irregular' if stats.is_irregular else 'regular'})")
    result = engine.search(matrix)
    print(f"\nsearch: {result.total_evaluations} evaluations over "
          f"{result.structures_tried} structures in {result.wall_time_s:.1f}s"
          + (f", banned: {sorted(result.banned_operators)}"
             if result.banned_operators else ""))
    print(f"design cache: {result.designer_runs} designer runs for "
          f"{result.total_evaluations} evaluations "
          f"({result.design_cache_hits} hits / "
          f"{result.design_cache_misses} misses)")
    if result.sampler != "annealer":
        print(f"sampler: {result.sampler}, {result.sampler_pruned} "
              "candidates pruned by successive halving")
    if engine.store is not None:
        print(f"design store: {result.store_hits} designs loaded / "
              f"{result.store_misses} designed ({args.store})")
    if engine.warm_start_store is not None:
        print(f"warm start: {result.warm_start_hits} stored design(s) "
              "seeded the candidate stream")
    if args.profile:
        print()
        print(_render_profile(result))
    if result.best_graph is None:
        print("no valid candidate found within the evaluation budget; "
              "raise --evals")
        return 1
    _record_search_result(engine, matrix, result, args)
    print(f"best machine-designed {engine.workload.display}: "
          f"{result.best_gflops:.1f} GFLOPS ({gpu.name} model)")
    print("\nwinning Operator Graph:")
    print(result.best_graph.describe())
    if args.compare_pfs:
        pfs = PerfectFormatSelector().select(matrix, gpu)
        print(f"\nPFS picks {pfs.selected_format}: {pfs.gflops:.1f} GFLOPS "
              f"-> speedup {result.best_gflops / pfs.gflops:.2f}x")
    if args.out:
        manifest = export_program(result.best_program, args.out, result.best_graph)
        print(f"\nartifact exported: {manifest}")
    else:
        print("\ngenerated kernel:")
        print(result.best_program.source())
    return 0


def _render_profile(result) -> str:
    """Stage-timing breakdown of one search (``--profile``)."""
    stages = ["design", "assembly", "project", "analysis",
              "batch_assembly", "batch_cost", "verify", "ml"]
    times = dict(result.stage_times)
    accounted = sum(times.get(s, 0.0) for s in stages)
    rows = [[s, f"{times.get(s, 0.0) * 1e3:.1f}"] for s in stages]
    note = ""
    if result.jobs > 1:
        # Pooled stage times accumulate across workers like CPU time, so
        # they don't reconcile against wall clock — skip the residual row.
        note = (f"\nstage times are CPU-style sums over {result.jobs} "
                "workers and may exceed wall clock")
    else:
        rows.append(["other (search overhead)",
                     f"{max(0.0, result.wall_time_s - accounted) * 1e3:.1f}"])
    rows.append(["total wall", f"{result.wall_time_s * 1e3:.1f}"])
    table = render_table(
        f"Stage timing for {result.matrix_name} (ms)",
        ["stage", "time"],
        rows,
    )
    return (
        table
        + note
        + f"\nleaf-analysis cache: {result.analysis_cache_hits} hits / "
          f"{result.analysis_cache_misses} misses (design-level lookups)"
    )


def _search_collection(engine, matrices, specs, gpu, args) -> int:
    """Multi-matrix mode: one engine, one cache, one pool, one summary."""
    results = engine.search_many(matrices)
    print(render_search_summary(
        results,
        title=f"Search summary on {gpu.name} model "
              f"(jobs={engine.runtime.jobs}, shared design cache)",
    ))
    if args.profile:
        for result in results:
            print()
            print(_render_profile(result))
    used_dirs: set = set()
    for i, (spec, matrix, result) in enumerate(zip(specs, matrices, results)):
        if result.best_program is None:
            print(f"{matrix.name or spec}: no valid candidate found within "
                  "the evaluation budget; raise --evals")
            continue
        _record_search_result(engine, matrix, result, args)
        if args.compare_pfs:
            pfs = PerfectFormatSelector().select(matrix, gpu)
            print(f"{matrix.name or spec}: PFS picks {pfs.selected_format} "
                  f"({pfs.gflops:.1f} GFLOPS) -> speedup "
                  f"{result.best_gflops / pfs.gflops:.2f}x")
        if args.out:
            # Distinct matrices may share a name (same basename from
            # different directories); suffix collisions instead of
            # silently overwriting the earlier artifact.
            sub = matrix.name or f"matrix{i}"
            if sub in used_dirs:
                sub = f"{sub}-{i}"
            used_dirs.add(sub)
            out_dir = os.path.join(args.out, sub)
            manifest = export_program(result.best_program, out_dir, result.best_graph)
            print(f"{matrix.name or spec}: artifact exported: {manifest}")
    return 0


def _expand_bench_specs(specs: List[str]) -> List[object]:
    """Bench accepts everything ``search`` does plus ``@corpus:N`` /
    ``@corpus:K-N`` corpus slices (shard of the deterministic corpus)."""
    matrices: List[object] = []
    for spec in specs:
        if spec.startswith("@corpus:"):
            rng = spec[len("@corpus:"):]
            try:
                if "-" in rng:
                    lo, hi = (int(p) for p in rng.split("-", 1))
                else:
                    lo, hi = 0, int(rng)
            except ValueError:
                raise SystemExit(
                    f"bad corpus slice {spec!r}; use @corpus:N or @corpus:K-N"
                )
            if hi <= lo:
                raise SystemExit(f"empty corpus slice {spec!r}")
            matrices.extend(corpus(hi - lo, start=lo))
        else:
            matrices.append(_load_matrix(spec))
    return matrices


def _cmd_bench(args: argparse.Namespace) -> int:
    matrices = _expand_bench_specs(args.matrix)
    gpu = gpu_by_name(args.gpu)
    store = ResultStore(args.resume)
    design_store = DesignStore(args.store) if args.store else None
    if args.warm_start and design_store is None:
        raise SystemExit("--warm-start requires --store DIR")
    runner = CorpusRunner(
        gpu,
        budget=SearchBudget(max_total_evals=args.evals, jobs=args.jobs),
        seed=args.seed,
        store=store,
        progress=print,
        design_store=design_store,
        workload=args.workload,
        warm_start=args.warm_start,
    )
    with runner:
        result = runner.run(matrices)
    stats = result.stats
    print(f"\ncorpus run: {stats.measured} measured, {stats.resumed} resumed "
          f"in {stats.wall_s:.1f}s"
          + (f"; results persisted to {args.resume}" if args.resume else ""))
    if design_store is not None:
        ds = design_store.stats()
        print(f"design store: {ds.design_writes} designs + "
              f"{ds.result_writes} results written, "
              f"{ds.design_hits} designs warm-started ({args.store})")
    print()
    print(render_corpus_report(
        result.records,
        title=f"Corpus evaluation on {gpu.name} model",
    ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Store-first request resolution (exact → neighbour → bounded search).

    ``--workers N`` (N >= 1) serves through the supervised multi-process
    :class:`~repro.serve.pool.ResolverPool` instead of the in-process
    frontend: crashed workers restart, hung requests are killed at the
    deadline, and every request gets an answer — degraded if need be.
    """
    import dataclasses

    from repro.serve import ResolverPool
    from repro.store import open_store

    matrices = [_load_matrix(spec) for spec in args.matrix]
    gpu = gpu_by_name(args.gpu)
    budget = dataclasses.replace(
        default_serve_budget(jobs=args.jobs), max_total_evals=args.evals
    )
    summary = ""
    if args.workers > 0:
        with ResolverPool(gpu, args.store, workers=args.workers,
                          backend=args.backend, budget=budget,
                          seed=args.seed, workload=args.workload.name,
                          deadline_s=args.deadline) as pool:
            responses = pool.resolve_batch(matrices)
            pstats = pool.stats()
        summary = (f"pool: {args.workers} workers, "
                   f"{pstats.redispatched} re-dispatched / "
                   f"{pstats.restarts} restarts / "
                   f"{pstats.degraded} degraded")
    else:
        store = open_store(args.store, backend=args.backend)
        with Frontend(gpu, store, budget=budget, seed=args.seed,
                      jobs=args.jobs, workload=args.workload) as frontend:
            responses = frontend.resolve_batch(matrices)
            stats = frontend.stats()
        summary = (f"frontend: {stats.exact_hits} exact / "
                   f"{stats.neighbour_hits} neighbour / "
                   f"{stats.searches} searched / {stats.misses} missed "
                   f"(hit rate {stats.hit_rate:.0%})")
    rows = []
    for response in responses:
        detail = ""
        if response.source == "neighbour":
            detail = f"transferred from {response.neighbour_of}"
        elif response.source == "search":
            detail = f"{response.evaluations} evaluations"
        elif response.source == "degraded":
            detail = response.note
        elif response.source == "miss":
            detail = "no valid design in budget; raise --evals"
        rows.append([
            response.matrix_name or "<unnamed>",
            response.source,
            f"{response.gflops:.1f}" if response.ok else "-",
            detail,
        ])
    print(render_table(
        f"Serving {len(responses)} request(s) on {gpu.name} model "
        f"(store: {args.store})",
        ["matrix", "source", "GFLOPS", "detail"],
        rows,
    ))
    print(summary)
    if args.out:
        used_dirs: set = set()
        for i, response in enumerate(responses):
            if response.artifact is None:
                continue
            sub = response.matrix_name or f"matrix{i}"
            if sub in used_dirs:
                sub = f"{sub}-{i}"
            used_dirs.add(sub)
            manifest = write_artifact(
                response.artifact, os.path.join(args.out, sub)
            )
            print(f"{response.matrix_name}: artifact exported: {manifest}")
    return 0 if any(r.ok for r in responses) else 1


def _cmd_store(args: argparse.Namespace) -> int:
    """Maintenance subcommands over one store directory
    (ls/gc/verify/compact), backend-dispatched via ``open_store``."""
    from repro.store import open_store

    try:
        store = open_store(args.path, create=False)
    except StoreError as exc:
        print(f"error: {exc}")
        return 2
    if args.action == "compact":
        if not hasattr(store, "compact"):
            print("error: only journal-backend stores compact; this store "
                  "uses the directory backend")
            return 2
        info = store.compact()
        print(f"compacted to epoch {info['epoch']}: {info['designs']} designs"
              f" + {info['results']} results + {info['claims']} claims in "
              f"the snapshot, {info['reclaimed_bytes']} journal bytes "
              f"reclaimed")
        return 0
    if args.action == "ls":
        entries = store.entries()
        print(render_table(
            f"Design store {args.path} ({len(entries)} entries)",
            ["kind", "matrix", "arch", "status", "detail", "bytes"],
            [
                [e.kind, e.matrix, e.arch, "ok" if e.ok else "CORRUPT",
                 e.detail, e.bytes]
                for e in entries
            ],
        ))
        return 0
    if args.action == "verify":
        statuses = store.verify(repair=args.repair)
        bad = [s for s in statuses if not s.ok]
        for status in bad:
            print(f"CORRUPT {status.kind}/{status.filename}: {status.detail}")
        print(f"verified {len(statuses)} entries: "
              f"{len(statuses) - len(bad)} ok, {len(bad)} corrupt")
        if args.repair and getattr(store, "quarantine_log", None):
            for name, reason in store.quarantine_log:
                print(f"quarantined {name}: {reason}")
        return 1 if bad else 0
    # gc
    removed_corrupt, removed_unreferenced = store.gc()
    for name in removed_corrupt:
        print(f"removed corrupt entry {name}")
    for name in removed_unreferenced:
        print(f"removed unreferenced design {name}")
    print(f"gc: {len(removed_corrupt)} corrupt + "
          f"{len(removed_unreferenced)} unreferenced entries removed, "
          f"{len(store)} kept")
    return 0


def _check_probes(seed: int) -> List[SparseMatrix]:
    """Small adversarial probe matrices for the differential self-check:
    random shapes/densities plus the degenerate single-row / single-column
    cases that stress the chain analysis's coverage reasoning."""
    import numpy as np

    rng = np.random.default_rng(seed)
    probes: List[SparseMatrix] = []
    for i in range(4):
        n_rows = int(rng.integers(1, 12))
        n_cols = int(rng.integers(1, 12))
        nnz = int(rng.integers(0, n_rows * n_cols + 1))
        rows = rng.integers(0, n_rows, nnz)
        cols = rng.integers(0, n_cols, nnz)
        vals = np.where(rng.random(nnz) < 0.15, 0.0, rng.standard_normal(nnz))
        probes.append(
            SparseMatrix(n_rows, n_cols, rows, cols, vals, name=f"probe{i}")
        )
    probes.append(
        SparseMatrix(1, 5, [0] * 4, [0, 1, 2, 3], [1, 2, 3, 4], name="onerow")
    )
    probes.append(
        SparseMatrix(5, 1, [0, 1, 2, 3], [0] * 4, [1, 2, 3, 4], name="onecol")
    )
    return probes


def _check_space(args: argparse.Namespace) -> List:
    """Differential self-check: the chain analysis's verdict on every
    sampled candidate must agree with the dynamic validator (INVALID ⇒
    the build/validation refuses it; VALID ⇒ validation passes), and the
    kernels of dynamically valid designs must lint error-free."""
    import numpy as np

    from repro.core.kernel.builder import KernelBuilder
    from repro.core.optimizer import ModelDrivenCompressor
    from repro.errors import CHECK_UNSOUND
    from repro.gpu.executor import PlanValidationError, validate_plan
    from repro.search.space import (
        StructureSampler,
        enumerate_param_grid,
        graph_with_params,
        seed_structures,
    )
    from repro.staticcheck import Diagnostic, lint_kernel, matrix_facts

    workload = args.workload
    matrices = (
        [_load_matrix(args.matrix)] if args.matrix else _check_probes(args.seed)
    )
    builder = KernelBuilder(compressor=ModelDrivenCompressor(), workload=workload)
    sampler = StructureSampler(seed=args.seed, workload=workload)
    proposals = seed_structures() + [
        sampler.sample() for _ in range(args.samples)
    ]

    diagnostics: List = []
    counts = {"checked": 0, "valid": 0, "invalid": 0, "unknown": 0, "linted": 0}
    for matrix in matrices:
        facts = matrix_facts(matrix)
        for proposal in proposals:
            grid = enumerate_param_grid(
                proposal.graph, proposal.locks, level="coarse", cap=4,
                rng=np.random.default_rng(args.seed),
            )
            for assignment in grid:
                graph = graph_with_params(proposal.graph, assignment,
                                          proposal.locks)
                report = analyze_design(graph, workload, facts)
                counts["checked"] += 1
                counts[report.verdict.value] += 1
                program = None
                try:
                    leaves = builder.design_phase(matrix, graph)
                    program = builder.assembly_phase(matrix, graph, leaves)
                    dyn_ok = True
                    detail = ""
                    try:
                        for unit in program.kernels:
                            validate_plan(unit.plan, workload)
                    except PlanValidationError as exc:
                        dyn_ok = False
                        detail = str(exc)
                except Exception as exc:
                    # Build failure: an INVALID verdict is confirmed, a
                    # VALID one is vacuous (nothing ran to contradict it).
                    dyn_ok = None
                    detail = f"{type(exc).__name__}: {exc}"
                node = f"{matrix.name}:{'/'.join(graph.operator_names())}"
                if report.verdict is Verdict.INVALID and dyn_ok is True:
                    diagnostics.append(Diagnostic(
                        CHECK_UNSOUND, Severity.ERROR,
                        "chain analysis said INVALID but the design "
                        "validates dynamically",
                        node=node,
                    ))
                if report.verdict is Verdict.VALID and dyn_ok is False:
                    diagnostics.append(Diagnostic(
                        CHECK_UNSOUND, Severity.ERROR,
                        f"chain analysis said VALID but the dynamic "
                        f"validator refused the design: {detail}",
                        node=node,
                    ))
                if dyn_ok is True and program is not None:
                    for unit in program.kernels:
                        counts["linted"] += 1
                        for diag in lint_kernel(
                            unit.source, unit.plan.value_bytes, report=report
                        ):
                            if diag.severity is not Severity.ERROR:
                                continue
                            diagnostics.append(Diagnostic(
                                diag.code, diag.severity, diag.message,
                                node=f"{node}/kernel:{unit.label}"
                                + (f"/{diag.node}" if diag.node else ""),
                            ))
    print(f"checked {counts['checked']} candidate designs on "
          f"{len(matrices)} matrices ({workload.display}): "
          f"{counts['valid']} statically valid, {counts['invalid']} "
          f"refuted, {counts['unknown']} unknown; "
          f"{counts['linted']} kernels linted")
    return diagnostics


def _cmd_check(args: argparse.Namespace) -> int:
    """Static verifier entry point: store audit or space self-check."""
    if args.store:
        try:
            store = DesignStore(args.store, create=False)
        except StoreError as exc:
            print(f"error: {exc}")
            return 2
        diagnostics = audit_store(store)
        print(f"audited design store {args.store}: {len(store)} entries")
    else:
        diagnostics = _check_space(args)
    errors = 0
    for diag in diagnostics:
        if diag.severity is Severity.ERROR:
            errors += 1
        where = f" [{diag.node}]" if diag.node else ""
        print(f"{diag.severity.value.upper()} {diag.code}{where}: "
              f"{diag.message}")
    if errors:
        print(f"check failed: {errors} error(s), "
              f"{len(diagnostics) - errors} warning(s)")
        return 1
    print(f"check passed: 0 errors, {len(diagnostics)} warning(s)")
    return 0


def _cmd_baselines(args: argparse.Namespace) -> int:
    matrix = _load_matrix(args.matrix)
    gpu = gpu_by_name(args.gpu)
    workload = args.workload
    x = workload.make_operand(matrix, seed=0)
    reference = workload.reference(matrix, x)
    rows = []
    for name in PFS_MEMBERS + ["DIA", "TACO", "CSR-Scalar", "CSR-Vector"]:
        meas = get_baseline(name).measure(
            matrix, gpu, x, reference=reference, workload=workload
        )
        rows.append([
            name,
            meas.gflops if meas.applicable else "n/a",
            "yes" if meas.correct else ("-" if not meas.applicable else "NO"),
        ])
    rows.sort(key=lambda r: r[1] if isinstance(r[1], float) else -1.0,
              reverse=True)
    print(render_table(
        f"Baselines on {matrix.name or args.matrix} "
        f"({gpu.name} model, {workload.display})",
        ["format", "GFLOPS", "correct"],
        rows,
    ))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    matrix = _load_matrix(args.matrix)
    s = matrix.stats
    print(render_table(
        f"{matrix.name or args.matrix}",
        ["property", "value"],
        [
            ["rows", s.n_rows],
            ["cols", s.n_cols],
            ["nnz", s.nnz],
            ["avg row length", s.avg_row_length],
            ["row variance", s.row_variance],
            ["max row length", s.max_row_length],
            ["min row length", s.min_row_length],
            ["empty rows", s.empty_rows],
            ["density", s.density],
            ["irregular (paper def.)", str(s.is_irregular)],
        ],
    ))
    return 0


def _cmd_operators(_args: argparse.Namespace) -> int:
    rows = []
    for stage in Stage:
        for op in sorted(OPERATOR_REGISTRY.values(), key=lambda o: o.name):
            if op.stage is not stage:
                continue
            params = ", ".join(p.name for p in op.params) or "-"
            rows.append([op.name, stage.name.lower(), params, op.source])
    print(render_table(
        "Registered operators (paper Table II + extensions)",
        ["operator", "stage", "parameters", "source"],
        rows,
    ))
    return 0


def _cmd_matrices(_args: argparse.Namespace) -> int:
    rows = []
    for name in NAMED_MATRICES:
        m = named_matrix(name)
        rows.append([name, m.n_rows, m.nnz, m.stats.row_variance])
    print(render_table(
        "Built-in named matrices (stand-ins for the paper's case studies)",
        ["name", "rows", "nnz", "row variance"],
        rows,
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AlphaSparse reproduction: machine-designed SpMV from a matrix",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("search", help="search a machine-designed format+kernel")
    p.add_argument("matrix", nargs="+",
                   help="Matrix Market path(s) or @named-matrix(es); several "
                        "matrices share one engine, cache and worker pool")
    p.add_argument("--gpu", default="A100")
    p.add_argument("--evals", type=int, default=200,
                   help="max program evaluations")
    p.add_argument("--jobs", type=_jobs_arg, default=1,
                   help="evaluation workers (1 = serial loop; N > 1 gives "
                        "identical results for eval-count budgets like "
                        "--evals, less wall clock)")
    p.add_argument("--workload", type=_workload_arg,
                   default=get_workload("spmv"), metavar="NAME",
                   help="operation to tune for: "
                        + ", ".join(sorted(WORKLOADS))
                        + " (default: spmv)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sampler", type=_sampler_arg, default=None,
                   metavar="NAME",
                   help="candidate sampler: annealer (default, the paper's "
                        "three-level loop), qmc, tpe, or dts; adaptive "
                        "samplers add successive-halving eval pruning")
    p.add_argument("--sampler-seed", type=_sampler_seed_arg, default=None,
                   metavar="S",
                   help="seed of the adaptive samplers' private RNG "
                        "(default: derived from --seed; the annealer "
                        "ignores it)")
    p.add_argument("--out", default=None, help="export artifact directory")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="persistent design store: designs/results are "
                        "written through, and a repeat search of the same "
                        "matrix warm-starts with zero Designer runs")
    p.add_argument("--warm-start", action="store_true",
                   help="seed the candidate stream with the store's "
                        "nearest-neighbour winning design (requires "
                        "--store; cross-matrix transfer, so histories "
                        "differ from cold searches)")
    p.add_argument("--no-pruning", action="store_true")
    p.add_argument("--extensions", action="store_true",
                   help="enable future-work operators (HYB_DECOMP)")
    p.add_argument("--compare-pfs", action="store_true",
                   help="also run the Perfect Format Selector")
    p.add_argument("--profile", action="store_true",
                   help="print the per-stage timing breakdown (design / "
                        "assembly / analysis / verify / ml, plus "
                        "batch_assembly / batch_cost for the vectorized "
                        "group evaluator; 'analysis' = plan analysis + "
                        "cost projection + functional execution) and "
                        "leaf-analysis cache counters")
    p.set_defaults(func=_cmd_search)

    p = sub.add_parser(
        "bench",
        help="corpus-scale evaluation: all baselines + design search per "
             "matrix, aggregated into the paper's tables",
    )
    p.add_argument("matrix", nargs="+",
                   help="Matrix Market path(s), @named-matrix(es), or "
                        "@corpus:N / @corpus:K-N corpus slices")
    p.add_argument("--gpu", default="A100")
    p.add_argument("--evals", type=int, default=160,
                   help="max search evaluations per matrix")
    p.add_argument("--jobs", type=_jobs_arg, default=1,
                   help="evaluation workers shared by baseline measurement "
                        "and the search (identical results for any value)")
    p.add_argument("--workload", type=_workload_arg,
                   default=get_workload("spmv"), metavar="NAME",
                   help="operation every baseline and search measures: "
                        + ", ".join(sorted(WORKLOADS))
                        + " (default: spmv)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--resume", default=None, metavar="PATH",
                   help="persist per-matrix results to PATH (JSON) as they "
                        "finish and skip matrices already recorded there")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="also populate a persistent design store (designs "
                        "+ winning artifacts) for warm starts and serving")
    p.add_argument("--warm-start", action="store_true",
                   help="seed each matrix's search with the store's "
                        "nearest-neighbour winning design (requires "
                        "--store; earlier corpus matrices then warm-start "
                        "later ones)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "serve",
        help="resolve kernel requests store-first: exact design-store hit, "
             "then feature nearest-neighbour transfer, then a bounded "
             "fresh search",
    )
    p.add_argument("matrix", nargs="+",
                   help="Matrix Market path(s) or @named-matrix(es)")
    p.add_argument("--store", required=True, metavar="DIR",
                   help="design-store directory backing the frontend")
    p.add_argument("--gpu", default="A100")
    p.add_argument("--evals", type=int, default=96,
                   help="evaluation budget of the bounded fallback search")
    p.add_argument("--jobs", type=_jobs_arg, default=1,
                   help="worker pool shared by batched request resolution "
                        "and fallback searches")
    p.add_argument("--workload", type=_workload_arg,
                   default=get_workload("spmv"), metavar="NAME",
                   help="operation requests are resolved for (store keys "
                        "and neighbour transfers never cross workloads): "
                        + ", ".join(sorted(WORKLOADS))
                        + " (default: spmv)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="N >= 1: serve through a supervised pool of N "
                        "resolver processes (crash restart, deadlines, "
                        "graceful degradation); 0: in-process frontend "
                        "(default)")
    p.add_argument("--backend", choices=("auto", "dir", "journal"),
                   default="auto",
                   help="store backend: auto reads the existing header "
                        "(new stores default to dir); journal is the "
                        "crash-safe multi-writer log")
    p.add_argument("--deadline", type=float, default=30.0, metavar="S",
                   help="per-request wall-clock deadline under --workers; "
                        "a worker past it is killed and the request "
                        "re-dispatched one degradation tier down")
    p.add_argument("--out", default=None,
                   help="materialise each served artifact under DIR/<name>")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "store",
        help="inspect or maintain a design store "
             "(ls / gc / verify / compact)",
    )
    p.add_argument("action", choices=("ls", "gc", "verify", "compact"),
                   help="ls: list entries; gc: prune corrupt + "
                        "unreferenced entries; verify: integrity-check "
                        "every entry (exit 1 on corruption); compact: "
                        "fold a journal-backend store into a snapshot "
                        "and reset its log")
    p.add_argument("path", help="design-store directory")
    p.add_argument("--repair", action="store_true",
                   help="with verify: quarantine every failing entry "
                        "(directory backend moves files to corrupt/; "
                        "journal backend drops the records and compacts "
                        "away framing damage)")
    p.set_defaults(func=_cmd_store)

    p = sub.add_parser(
        "check",
        help="static verifier: differential soundness self-check + kernel "
             "lint over sampled designs, or (--store) a design-store audit; "
             "exit 1 on any error-severity finding",
    )
    p.add_argument("--store", default=None, metavar="DIR",
                   help="audit this design store instead of the search "
                        "space (entry integrity, decoded graphs, embedded "
                        "kernel sources)")
    p.add_argument("--matrix", default=None, metavar="SPEC",
                   help="probe matrix (path or @named) for the differential "
                        "check; default: built-in synthetic probes")
    p.add_argument("--workload", type=_workload_arg,
                   default=get_workload("spmv"), metavar="NAME",
                   help="workload the differential check runs under: "
                        + ", ".join(sorted(WORKLOADS))
                        + " (default: spmv)")
    p.add_argument("--samples", type=int, default=12,
                   help="sampled structures beyond the seeds (default 12)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("baselines", help="measure every baseline format")
    p.add_argument("matrix")
    p.add_argument("--gpu", default="A100")
    p.add_argument("--workload", type=_workload_arg,
                   default=get_workload("spmv"), metavar="NAME",
                   help="operation to measure: "
                        + ", ".join(sorted(WORKLOADS))
                        + " (default: spmv)")
    p.set_defaults(func=_cmd_baselines)

    p = sub.add_parser("stats", help="print a matrix's sparsity statistics")
    p.add_argument("matrix")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("operators", help="list registered operators")
    p.set_defaults(func=_cmd_operators)

    p = sub.add_parser("matrices", help="list built-in named matrices")
    p.set_defaults(func=_cmd_matrices)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
