"""Command-line interface — the paper's user contract as a tool.

"Users only need to input a Matrix Market file of a sparse matrix, and
AlphaSparse will output a matrix stored in a specific format and a kernel
implementation" (§III).

Commands::

    python -m repro search <matrix.mtx | @named> [more matrices ...]
                           [--gpu A100] [--evals N] [--jobs N] [--profile]
                           [--out DIR] [--no-pruning] [--extensions] [--seed S]
    python -m repro baselines <matrix.mtx | @named> [--gpu A100]
    python -m repro bench <matrix.mtx | @named | @corpus:N> [more ...]
                          [--gpu A100] [--evals N] [--jobs N] [--seed S]
                          [--resume PATH]
    python -m repro stats <matrix.mtx | @named>
    python -m repro operators
    python -m repro matrices

``@name`` selects one of the built-in named matrices (e.g. ``@scfxm1-2r``).
``search`` accepts several matrices; they share one engine, one design
cache and one worker pool (``--jobs``) and print a collection summary.
``bench`` runs the corpus pipeline — every baseline *and* the design
search per matrix — and prints the paper's corpus tables; ``--resume
PATH`` persists per-matrix results incrementally so an interrupted run
picks up where it stopped.  ``@corpus:N`` expands to the first N matrices
of the built-in deterministic corpus (``@corpus:K-N`` for a shard).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

from repro.analysis import render_search_summary, render_table
from repro.baselines import PFS_MEMBERS, PerfectFormatSelector, get_baseline
from repro.bench import CorpusRunner, ResultStore, render_corpus_report
from repro.core.operators import OPERATOR_REGISTRY, Stage
from repro.export import export_program
from repro.gpu import gpu_by_name
from repro.search import SearchBudget, SearchEngine
from repro.sparse import NAMED_MATRICES, corpus, named_matrix, read_matrix_market
from repro.sparse.matrix import SparseMatrix

__all__ = ["main"]


def _load_matrix(spec: str) -> SparseMatrix:
    if spec.startswith("@"):
        return named_matrix(spec[1:])
    return read_matrix_market(spec)


def _cmd_search(args: argparse.Namespace) -> int:
    specs: List[str] = args.matrix
    matrices = [_load_matrix(spec) for spec in specs]
    gpu = gpu_by_name(args.gpu)
    engine = SearchEngine(
        gpu,
        budget=SearchBudget(max_total_evals=args.evals, jobs=args.jobs),
        seed=args.seed,
        enable_pruning=not args.no_pruning,
        enable_extensions=args.extensions,
    )
    try:
        if len(matrices) == 1:
            return _search_single(engine, matrices[0], specs[0], gpu, args)
        return _search_collection(engine, matrices, specs, gpu, args)
    finally:
        engine.close()


def _search_single(engine, matrix, spec, gpu, args) -> int:
    stats = matrix.stats
    print(f"matrix {matrix.name or spec}: {matrix.n_rows}x{matrix.n_cols}, "
          f"nnz={matrix.nnz}, row variance={stats.row_variance:.1f} "
          f"({'irregular' if stats.is_irregular else 'regular'})")
    result = engine.search(matrix)
    print(f"\nsearch: {result.total_evaluations} evaluations over "
          f"{result.structures_tried} structures in {result.wall_time_s:.1f}s"
          + (f", banned: {sorted(result.banned_operators)}"
             if result.banned_operators else ""))
    print(f"design cache: {result.designer_runs} designer runs for "
          f"{result.total_evaluations} evaluations "
          f"({result.design_cache_hits} hits / "
          f"{result.design_cache_misses} misses)")
    if args.profile:
        print()
        print(_render_profile(result))
    if result.best_graph is None:
        print("no valid candidate found within the evaluation budget; "
              "raise --evals")
        return 1
    print(f"best machine-designed SpMV: {result.best_gflops:.1f} GFLOPS "
          f"({gpu.name} model)")
    print("\nwinning Operator Graph:")
    print(result.best_graph.describe())
    if args.compare_pfs:
        pfs = PerfectFormatSelector().select(matrix, gpu)
        print(f"\nPFS picks {pfs.selected_format}: {pfs.gflops:.1f} GFLOPS "
              f"-> speedup {result.best_gflops / pfs.gflops:.2f}x")
    if args.out:
        manifest = export_program(result.best_program, args.out, result.best_graph)
        print(f"\nartifact exported: {manifest}")
    else:
        print("\ngenerated kernel:")
        print(result.best_program.source())
    return 0


def _render_profile(result) -> str:
    """Stage-timing breakdown of one search (``--profile``)."""
    stages = ["design", "assembly", "analysis", "verify", "ml"]
    times = dict(result.stage_times)
    accounted = sum(times.get(s, 0.0) for s in stages)
    rows = [[s, f"{times.get(s, 0.0) * 1e3:.1f}"] for s in stages]
    note = ""
    if result.jobs > 1:
        # Pooled stage times accumulate across workers like CPU time, so
        # they don't reconcile against wall clock — skip the residual row.
        note = (f"\nstage times are CPU-style sums over {result.jobs} "
                "workers and may exceed wall clock")
    else:
        rows.append(["other (search overhead)",
                     f"{max(0.0, result.wall_time_s - accounted) * 1e3:.1f}"])
    rows.append(["total wall", f"{result.wall_time_s * 1e3:.1f}"])
    table = render_table(
        f"Stage timing for {result.matrix_name} (ms)",
        ["stage", "time"],
        rows,
    )
    return (
        table
        + note
        + f"\nleaf-analysis cache: {result.analysis_cache_hits} hits / "
          f"{result.analysis_cache_misses} misses (design-level lookups)"
    )


def _search_collection(engine, matrices, specs, gpu, args) -> int:
    """Multi-matrix mode: one engine, one cache, one pool, one summary."""
    results = engine.search_many(matrices)
    print(render_search_summary(
        results,
        title=f"Search summary on {gpu.name} model "
              f"(jobs={engine.runtime.jobs}, shared design cache)",
    ))
    if args.profile:
        for result in results:
            print()
            print(_render_profile(result))
    used_dirs: set = set()
    for i, (spec, matrix, result) in enumerate(zip(specs, matrices, results)):
        if result.best_program is None:
            print(f"{matrix.name or spec}: no valid candidate found within "
                  "the evaluation budget; raise --evals")
            continue
        if args.compare_pfs:
            pfs = PerfectFormatSelector().select(matrix, gpu)
            print(f"{matrix.name or spec}: PFS picks {pfs.selected_format} "
                  f"({pfs.gflops:.1f} GFLOPS) -> speedup "
                  f"{result.best_gflops / pfs.gflops:.2f}x")
        if args.out:
            # Distinct matrices may share a name (same basename from
            # different directories); suffix collisions instead of
            # silently overwriting the earlier artifact.
            sub = matrix.name or f"matrix{i}"
            if sub in used_dirs:
                sub = f"{sub}-{i}"
            used_dirs.add(sub)
            out_dir = os.path.join(args.out, sub)
            manifest = export_program(result.best_program, out_dir, result.best_graph)
            print(f"{matrix.name or spec}: artifact exported: {manifest}")
    return 0


def _expand_bench_specs(specs: List[str]) -> List[object]:
    """Bench accepts everything ``search`` does plus ``@corpus:N`` /
    ``@corpus:K-N`` corpus slices (shard of the deterministic corpus)."""
    matrices: List[object] = []
    for spec in specs:
        if spec.startswith("@corpus:"):
            rng = spec[len("@corpus:"):]
            try:
                if "-" in rng:
                    lo, hi = (int(p) for p in rng.split("-", 1))
                else:
                    lo, hi = 0, int(rng)
            except ValueError:
                raise SystemExit(
                    f"bad corpus slice {spec!r}; use @corpus:N or @corpus:K-N"
                )
            if hi <= lo:
                raise SystemExit(f"empty corpus slice {spec!r}")
            matrices.extend(corpus(hi - lo, start=lo))
        else:
            matrices.append(_load_matrix(spec))
    return matrices


def _cmd_bench(args: argparse.Namespace) -> int:
    matrices = _expand_bench_specs(args.matrix)
    gpu = gpu_by_name(args.gpu)
    store = ResultStore(args.resume)
    runner = CorpusRunner(
        gpu,
        budget=SearchBudget(max_total_evals=args.evals, jobs=args.jobs),
        seed=args.seed,
        store=store,
        progress=print,
    )
    with runner:
        result = runner.run(matrices)
    stats = result.stats
    print(f"\ncorpus run: {stats.measured} measured, {stats.resumed} resumed "
          f"in {stats.wall_s:.1f}s"
          + (f"; results persisted to {args.resume}" if args.resume else ""))
    print()
    print(render_corpus_report(
        result.records,
        title=f"Corpus evaluation on {gpu.name} model",
    ))
    return 0


def _cmd_baselines(args: argparse.Namespace) -> int:
    matrix = _load_matrix(args.matrix)
    gpu = gpu_by_name(args.gpu)
    x = np.random.default_rng(0).random(matrix.n_cols)
    rows = []
    for name in PFS_MEMBERS + ["DIA", "TACO", "CSR-Scalar", "CSR-Vector"]:
        meas = get_baseline(name).measure(matrix, gpu, x)
        rows.append([
            name,
            meas.gflops if meas.applicable else "n/a",
            "yes" if meas.correct else ("-" if not meas.applicable else "NO"),
        ])
    rows.sort(key=lambda r: r[1] if isinstance(r[1], float) else -1.0,
              reverse=True)
    print(render_table(
        f"Baselines on {matrix.name or args.matrix} ({gpu.name} model)",
        ["format", "GFLOPS", "correct"],
        rows,
    ))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    matrix = _load_matrix(args.matrix)
    s = matrix.stats
    print(render_table(
        f"{matrix.name or args.matrix}",
        ["property", "value"],
        [
            ["rows", s.n_rows],
            ["cols", s.n_cols],
            ["nnz", s.nnz],
            ["avg row length", s.avg_row_length],
            ["row variance", s.row_variance],
            ["max row length", s.max_row_length],
            ["min row length", s.min_row_length],
            ["empty rows", s.empty_rows],
            ["density", s.density],
            ["irregular (paper def.)", str(s.is_irregular)],
        ],
    ))
    return 0


def _cmd_operators(_args: argparse.Namespace) -> int:
    rows = []
    for stage in Stage:
        for op in sorted(OPERATOR_REGISTRY.values(), key=lambda o: o.name):
            if op.stage is not stage:
                continue
            params = ", ".join(p.name for p in op.params) or "-"
            rows.append([op.name, stage.name.lower(), params, op.source])
    print(render_table(
        "Registered operators (paper Table II + extensions)",
        ["operator", "stage", "parameters", "source"],
        rows,
    ))
    return 0


def _cmd_matrices(_args: argparse.Namespace) -> int:
    rows = []
    for name in NAMED_MATRICES:
        m = named_matrix(name)
        rows.append([name, m.n_rows, m.nnz, m.stats.row_variance])
    print(render_table(
        "Built-in named matrices (stand-ins for the paper's case studies)",
        ["name", "rows", "nnz", "row variance"],
        rows,
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AlphaSparse reproduction: machine-designed SpMV from a matrix",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("search", help="search a machine-designed format+kernel")
    p.add_argument("matrix", nargs="+",
                   help="Matrix Market path(s) or @named-matrix(es); several "
                        "matrices share one engine, cache and worker pool")
    p.add_argument("--gpu", default="A100")
    p.add_argument("--evals", type=int, default=200,
                   help="max program evaluations")
    p.add_argument("--jobs", type=int, default=1,
                   help="evaluation workers (1 = serial loop; N > 1 gives "
                        "identical results for eval-count budgets like "
                        "--evals, less wall clock)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, help="export artifact directory")
    p.add_argument("--no-pruning", action="store_true")
    p.add_argument("--extensions", action="store_true",
                   help="enable future-work operators (HYB_DECOMP)")
    p.add_argument("--compare-pfs", action="store_true",
                   help="also run the Perfect Format Selector")
    p.add_argument("--profile", action="store_true",
                   help="print the per-stage timing breakdown (design / "
                        "assembly / analysis / verify / ml; 'analysis' = "
                        "plan analysis + cost projection + functional "
                        "execution) and leaf-analysis cache counters")
    p.set_defaults(func=_cmd_search)

    p = sub.add_parser(
        "bench",
        help="corpus-scale evaluation: all baselines + design search per "
             "matrix, aggregated into the paper's tables",
    )
    p.add_argument("matrix", nargs="+",
                   help="Matrix Market path(s), @named-matrix(es), or "
                        "@corpus:N / @corpus:K-N corpus slices")
    p.add_argument("--gpu", default="A100")
    p.add_argument("--evals", type=int, default=160,
                   help="max search evaluations per matrix")
    p.add_argument("--jobs", type=int, default=1,
                   help="evaluation workers shared by baseline measurement "
                        "and the search (identical results for any value)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--resume", default=None, metavar="PATH",
                   help="persist per-matrix results to PATH (JSON) as they "
                        "finish and skip matrices already recorded there")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("baselines", help="measure every baseline format")
    p.add_argument("matrix")
    p.add_argument("--gpu", default="A100")
    p.set_defaults(func=_cmd_baselines)

    p = sub.add_parser("stats", help="print a matrix's sparsity statistics")
    p.add_argument("matrix")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("operators", help="list registered operators")
    p.set_defaults(func=_cmd_operators)

    p = sub.add_parser("matrices", help="list built-in named matrices")
    p.set_defaults(func=_cmd_matrices)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
