"""Code generation tests: skeleton, fragments, adapters, compression inlining."""

import pytest

from repro.core.graph import OperatorGraph
from repro.core.kernel.builder import build_program
from repro.core.kernel.fragments import (
    REDUCTION_OUTPUT_SPACE,
    adapter_between,
    get_meta_fragment,
    reduction_fragment,
)
from repro.core.kernel.skeleton import KernelSkeleton, LoopLevel


class TestSkeleton:
    def test_nested_loops_render(self):
        sk = KernelSkeleton(
            kernel_name="k",
            args=["float* y"],
            loops=[
                LoopLevel("BMTB", "for (int b = 0; b < nb; ++b)",
                          get_meta=["int o = off[b];"]),
                LoopLevel("BMT", "for (int t = 0; t < nt; ++t)",
                          body=["acc += v[t];"],
                          reduction=["y[t] = acc;"]),
            ],
        )
        text = sk.render()
        assert "__global__ void k(float* y)" in text
        # nesting: BMT loop indented deeper than BMTB loop
        lines = text.splitlines()
        bmtb_line = next(l for l in lines if "loop over BMTBs" in l)
        bmt_line = next(l for l in lines if "loop over BMTs" in l)
        assert len(bmt_line) - len(bmt_line.lstrip()) > len(bmtb_line) - len(bmtb_line.lstrip())
        assert text.count("{") == text.count("}")


class TestFragments:
    def test_every_strategy_has_fragment(self):
        for strategy in [
            "THREAD_TOTAL_RED", "THREAD_BITMAP_RED", "WARP_TOTAL_RED",
            "WARP_BITMAP_RED", "WARP_SEG_RED", "SHMEM_OFFSET_RED",
            "SHMEM_TOTAL_RED", "GMEM_ATOM_RED", "GMEM_DIRECT_STORE",
        ]:
            frag = reduction_fragment(strategy)
            assert frag and strategy in frag[0]

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            reduction_fragment("NOPE")

    def test_adapter_register_to_shared(self):
        frag = adapter_between("THREAD_TOTAL_RED", "SHMEM_OFFSET_RED")
        assert any("Adapter" in line for line in frag)
        assert any("shmem" in line for line in frag)

    def test_no_adapter_for_matching_spaces(self):
        assert adapter_between("THREAD_TOTAL_RED", "WARP_TOTAL_RED") == []
        assert adapter_between("SHMEM_OFFSET_RED", "GMEM_ATOM_RED") == []

    def test_output_spaces_known(self):
        assert REDUCTION_OUTPUT_SPACE["THREAD_TOTAL_RED"] == "register"
        assert REDUCTION_OUTPUT_SPACE["SHMEM_TOTAL_RED"] == "shared"

    def test_get_meta_fragment(self):
        frag = get_meta_fragment("bmtb", ["bmtb_nz_offsets"])
        assert "get meta of BMTB" in frag[0]
        assert "bmtb_nz_offsets[bmtb_id]" in frag[1]


class TestGeneratedSource:
    def test_loops_match_mapping(self, small_regular):
        g = OperatorGraph.from_names(
            ["COMPRESS", ("BMTB_ROW_BLOCK", {"rows_per_block": 32}),
             "BMT_ROW_BLOCK", "THREAD_TOTAL_RED", "GMEM_ATOM_RED"]
        )
        src = build_program(small_regular, g).source()
        assert "loop over BMTBs" in src
        assert "loop over BMTs" in src
        assert "loop over BMWs" not in src

    def test_reduction_fragments_present(self, small_regular):
        g = OperatorGraph.from_names(
            ["COMPRESS", ("BMW_ROW_BLOCK", {"rows_per_block": 1}),
             "WARP_TOTAL_RED", "GMEM_DIRECT_STORE"]
        )
        src = build_program(small_regular, g).source()
        assert "__shfl_down_sync" in src
        assert "WARP_TOTAL_RED" in src

    def test_adapter_emitted_between_register_and_shared(self, small_regular):
        g = OperatorGraph.from_names(
            ["COMPRESS", ("BMTB_ROW_BLOCK", {"rows_per_block": 32}),
             "BMT_ROW_BLOCK", "THREAD_TOTAL_RED", "SHMEM_OFFSET_RED",
             "GMEM_DIRECT_STORE"]
        )
        src = build_program(small_regular, g).source()
        assert "Adapter" in src

    def test_compressed_arrays_inlined(self, small_regular):
        g = OperatorGraph.from_names(
            ["COMPRESS", ("BMTB_ROW_BLOCK", {"rows_per_block": 32}),
             "SHMEM_OFFSET_RED", "GMEM_DIRECT_STORE"]
        )
        src = build_program(small_regular, g, compress=True).source()
        assert "Model-Driven Compression eliminated" in src
        # compressed arrays must not appear as kernel arguments
        header = src.splitlines()[0]
        assert "bmtb_row_offsets" not in header

    def test_uncompressed_arrays_are_arguments(self, small_regular):
        g = OperatorGraph.from_names(
            ["COMPRESS", ("BMTB_ROW_BLOCK", {"rows_per_block": 32}),
             "SHMEM_OFFSET_RED", "GMEM_DIRECT_STORE"]
        )
        src = build_program(small_regular, g, compress=False).source()
        header = src.splitlines()[0]
        assert "bmtb_nz_offsets" in header

    def test_coo_grid_stride_source(self, small_regular):
        g = OperatorGraph.from_names(["COMPRESS", "SET_RESOURCES", "GMEM_ATOM_RED"])
        src = build_program(small_regular, g).source()
        assert "nz += total_threads()" in src
        assert "atomicAdd" in src

    def test_operator_provenance_comment(self, small_regular):
        g = OperatorGraph.from_names(
            ["SORT", "COMPRESS", "BMT_ROW_BLOCK", "THREAD_TOTAL_RED",
             "GMEM_DIRECT_STORE"]
        )
        src = build_program(small_regular, g).source()
        assert "SORT -> COMPRESS -> BMT_ROW_BLOCK" in src
