"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.graph import OperatorGraph
from repro.core.kernel.builder import build_program
from repro.gpu import A100
from repro.sparse import (
    SparseMatrix,
    banded_matrix,
    lp_like_matrix,
    power_law_matrix,
    random_uniform_matrix,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def tiny_matrix():
    """The 4x4 matrix of the paper's Fig 5 example (plus values)."""
    rows = [0, 0, 1, 2, 3]
    cols = [0, 2, 1, 3, 0]
    vals = [1.0, 2.0, 3.0, 4.0, 5.0]
    return SparseMatrix(4, 4, rows, cols, vals, name="fig5")


@pytest.fixture
def small_regular():
    return banded_matrix(256, bandwidth=3, seed=1, name="small_regular")


@pytest.fixture
def small_irregular():
    return power_law_matrix(512, avg_degree=8, seed=2, name="small_irregular")


@pytest.fixture
def small_lp():
    return lp_like_matrix(400, seed=3, name="small_lp")


@pytest.fixture
def small_uniform():
    return random_uniform_matrix(300, avg_degree=6, seed=4, name="small_uniform")


@pytest.fixture(params=["small_regular", "small_irregular", "small_lp"])
def any_small_matrix(request):
    return request.getfixturevalue(request.param)


@pytest.fixture
def x_for():
    """Factory: deterministic dense vector for a matrix."""

    def make(matrix: SparseMatrix) -> np.ndarray:
        return np.random.default_rng(7).random(matrix.n_cols)

    return make


def run_graph(matrix: SparseMatrix, ops, gpu=A100, compress=True):
    """Helper: build a program from op names and run it."""
    graph = OperatorGraph.from_names(ops)
    program = build_program(matrix, graph, compress=compress)
    x = np.random.default_rng(7).random(matrix.n_cols)
    result = program.run(x, gpu)
    return program, result, matrix.spmv_reference(x)


@pytest.fixture
def graph_runner():
    return run_graph
