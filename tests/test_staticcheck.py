"""Static design verifier tests.

Four acceptance bars:

* **soundness** — the reduction-chain analysis never contradicts the
  dynamic validator: a hypothesis differential suite over random matrices
  and all four workloads checks INVALID ⇒ the build/validation refuses
  the design and VALID ⇒ validation passes (build failures confirm
  INVALID and vacuously discharge VALID);
* **byte-compatibility** — with static pruning disabled the engine
  reproduces the pre-verifier transpose-SpMV search history byte for
  byte (golden digest below), and pruning-off bench configs/records pin
  no new keys;
* **effectiveness** — with pruning on, the transpose-SpMV search's
  valid-evaluation fraction rises from 0.25 to >= 0.85 without losing
  the winning design (best GFLOPS >= 17.3);
* **lint + audit** — generated kernels of valid designs lint clean,
  seeded defects are flagged with the right codes, and the store audit
  catches corrupt entries, unknown workloads and stranded signatures.
"""

import hashlib
import shutil

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import SearchEngine, get_workload, named_matrix
from repro.cli import main
from repro.core.kernel.builder import KernelBuilder
from repro.core.optimizer import ModelDrivenCompressor
from repro.errors import (
    KERNEL_ACCUM_DTYPE,
    KERNEL_DEAD_FRAGMENT,
    KERNEL_OOB_INDEX,
    KERNEL_SCATTER_NEEDS_ATOMIC,
    KERNEL_UNDECLARED_IDENT,
    REDUCE_CHAIN_DIRECT_STORE,
    STORE_BAD_WORKLOAD,
    STORE_CORRUPT_ENTRY,
    STORE_UNKNOWN_OPERATOR,
)
from repro.gpu import A100
from repro.gpu.executor import PlanValidationError, validate_plan
from repro.search import SearchBudget
from repro.search.evaluation import matrix_token
from repro.search.space import (
    StructureSampler,
    enumerate_param_grid,
    graph_with_params,
    seed_structures,
)
from repro.sparse import SparseMatrix
from repro.staticcheck import (
    ChainReport,
    Diagnostic,
    Severity,
    Verdict,
    analyze_design,
    audit_store,
    lint_kernel,
    matrix_facts,
)
from repro.store import DesignStore, search_result_record
from repro.workloads import WORKLOADS

# 96-eval seed-0 transpose-SpMV search of @2D_27628_bjtcai, captured at
# the pre-verifier revision: the pruning-off engine must keep producing
# exactly these bytes.
GOLDEN_SPMVT_DIGEST = "13979115ac26a0e0dd164212b4dafce5"
GOLDEN_MATRIX = "2D_27628_bjtcai"


def _history_digest(result) -> str:
    blob = repr([r.identity() for r in result.history]).encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


# ---------------------------------------------------------------------------
# Differential soundness: static verdicts vs the dynamic validator
# ---------------------------------------------------------------------------

@st.composite
def sparse_matrices(draw, max_dim=12, max_nnz=36):
    """Random COO matrices incl. empty rows and 1xn / nx1 edge shapes."""
    shape_kind = draw(st.sampled_from(["general", "row", "col"]))
    if shape_kind == "row":
        n_rows, n_cols = 1, draw(st.integers(1, max_dim))
    elif shape_kind == "col":
        n_rows, n_cols = draw(st.integers(1, max_dim)), 1
    else:
        n_rows = draw(st.integers(1, max_dim))
        n_cols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, min(max_nnz, n_rows * n_cols)))
    rows = draw(st.lists(st.integers(0, n_rows - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz))
    vals = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return SparseMatrix(n_rows, n_cols, rows, cols, vals)


@given(sparse_matrices(), st.sampled_from(sorted(WORKLOADS)), st.integers(0, 3))
@settings(max_examples=16, deadline=None)
def test_differential_soundness(m, name, sampler_seed):
    """The soundness contract, checked against ground truth: on every
    sampled candidate the chain analysis must agree with
    :func:`~repro.gpu.executor.validate_plan`."""
    wl = get_workload(name)
    builder = KernelBuilder(compressor=ModelDrivenCompressor(), workload=wl)
    sampler = StructureSampler(seed=sampler_seed, workload=wl)
    proposals = seed_structures() + [sampler.sample() for _ in range(2)]
    facts = matrix_facts(m)
    for proposal in proposals:
        grid = enumerate_param_grid(
            proposal.graph, proposal.locks, level="coarse", cap=2,
            rng=np.random.default_rng(0),
        )
        for assignment in grid:
            graph = graph_with_params(proposal.graph, assignment,
                                      proposal.locks)
            report = analyze_design(graph, wl, facts)
            assert report.sound
            if report.verdict is Verdict.INVALID:
                # refutations must come with error diagnostics
                assert report.errors, graph.operator_names()
            try:
                leaves = builder.design_phase(m, graph)
                program = builder.assembly_phase(m, graph, leaves)
            except Exception:
                # Build failure: INVALID is confirmed, VALID is vacuous
                # (nothing ran that could contradict it).
                continue
            try:
                for unit in program.kernels:
                    validate_plan(unit.plan, wl)
                dyn_ok = True
            except PlanValidationError:
                dyn_ok = False
            ops = "/".join(graph.operator_names())
            if report.verdict is Verdict.INVALID:
                assert not dyn_ok, (
                    f"{name} {ops}: static INVALID but dynamically valid"
                )
            elif report.verdict is Verdict.VALID:
                assert dyn_ok, (
                    f"{name} {ops}: static VALID but validator refused"
                )
            # dynamically valid designs generate lint-error-free kernels
            if dyn_ok:
                for unit in program.kernels:
                    errors = [
                        d for d in lint_kernel(
                            unit.source, unit.plan.value_bytes, report=report
                        )
                        if d.severity is Severity.ERROR
                    ]
                    assert not errors, (name, ops, errors)


def test_transpose_direct_store_refuted_statically():
    """The motivating case: row-oriented direct-store chains scatter by
    column under transpose SpMV — the analysis must refute some seeded
    structures for spmvt while leaving them valid for spmv."""
    m = named_matrix("scfxm1-2r")
    facts = matrix_facts(m)
    spmvt = get_workload("spmvt")
    spmv = get_workload("spmv")
    refuted = 0
    for proposal in seed_structures():
        for assignment in enumerate_param_grid(
            proposal.graph, proposal.locks, level="coarse", cap=2,
            rng=np.random.default_rng(0),
        ):
            graph = graph_with_params(proposal.graph, assignment,
                                      proposal.locks)
            report = analyze_design(graph, spmvt, facts)
            if report.verdict is Verdict.INVALID:
                refuted += 1
                assert any(
                    d.code.startswith("REDUCE-CHAIN") for d in report.errors
                )
                # the same design must not be refuted for plain SpMV
                assert (
                    analyze_design(graph, spmv, facts).verdict
                    is not Verdict.INVALID
                )
    assert refuted > 0


# ---------------------------------------------------------------------------
# Pre-eval pruning: byte-compatibility off, effectiveness on
# ---------------------------------------------------------------------------

class TestStaticPruning:
    @pytest.fixture(scope="class")
    def matrix(self):
        return named_matrix(GOLDEN_MATRIX)

    def _search(self, matrix, pruning):
        engine = SearchEngine(
            A100,
            budget=SearchBudget(max_total_evals=96),
            seed=0,
            workload=get_workload("spmvt"),
            enable_static_pruning=pruning,
        )
        try:
            return engine.search(matrix)
        finally:
            engine.close()

    def test_pruning_off_reproduces_pre_verifier_bytes(self, matrix):
        result = self._search(matrix, pruning=False)
        assert _history_digest(result) == GOLDEN_SPMVT_DIGEST
        assert result.static_pruned == 0

    def test_pruning_lifts_valid_fraction(self, matrix):
        """The acceptance bar: pruning turns a search that burned 75% of
        its budget on provably-invalid candidates into one whose history
        is >= 85% valid, at no cost to the winning design."""
        result = self._search(matrix, pruning=True)
        assert result.static_pruned > 0
        valid = sum(r.valid for r in result.history)
        assert valid / len(result.history) >= 0.85
        assert result.best_gflops >= 17.3
        # pruned candidates consume no evaluation slot
        assert result.total_evaluations <= 96
        assert result.best_program is not None

    def test_pruning_never_raises_on_spmv(self, matrix):
        """Default engines prune; a plain SpMV search must still complete
        and report its (possibly zero) pruning counter."""
        engine = SearchEngine(
            A100, budget=SearchBudget(max_total_evals=24), seed=0
        )
        try:
            result = engine.search(named_matrix("scfxm1-2r"))
        finally:
            engine.close()
        assert result.best_gflops > 0
        assert result.static_pruned >= 0


class TestBenchPruningKeys:
    def test_record_and_config_carry_counter_only_when_on(self):
        from repro.bench import CorpusRunner
        from repro.sparse import corpus

        runner = CorpusRunner(
            A100,
            budget=SearchBudget(max_total_evals=12),
            seed=0,
            baselines=["COO"],
        )
        with runner:
            result = runner.run(corpus(1))
        (record,) = result.records
        assert runner.config()["engine"]["static_pruning"] is True
        assert record["search"]["static_pruned"] >= 0


# ---------------------------------------------------------------------------
# Kernel lint: seeded defects get the right codes
# ---------------------------------------------------------------------------

_CLEAN_KERNEL = """\
__global__ void spmv_k(const float* __restrict__ values,
                       const int* __restrict__ col_indices,
                       const float* __restrict__ x, float* y) {
    int bmt_id = global_thread();
    float thread_result = 0.0f;
    for (int nz = 0; nz < n_stored; ++nz)
        thread_result += values[nz] * x[col_indices[nz]];
    y[bmt_id] = thread_result;
}
"""


class TestKernelLint:
    def test_clean_kernel_has_no_diagnostics(self):
        assert lint_kernel(_CLEAN_KERNEL) == []

    def test_undeclared_identifier_is_error(self):
        source = _CLEAN_KERNEL.replace("thread_result +=", "warp_total +=")
        codes = [d.code for d in lint_kernel(source)]
        assert KERNEL_UNDECLARED_IDENT in codes
        (diag,) = [d for d in lint_kernel(source)
                   if d.code == KERNEL_UNDECLARED_IDENT]
        assert diag.severity is Severity.ERROR
        assert "warp_total" in diag.message

    def test_dead_declaration_is_warning(self):
        source = _CLEAN_KERNEL.replace(
            "float thread_result = 0.0f;",
            "float thread_result = 0.0f;\n    int leftover = 3;",
        )
        diags = lint_kernel(source)
        assert [d.code for d in diags] == [KERNEL_DEAD_FRAGMENT]
        assert diags[0].severity is Severity.WARNING

    def test_meta_load_convention_not_dead(self):
        source = _CLEAN_KERNEL.replace(
            "float thread_result = 0.0f;",
            "float thread_result = 0.0f;\n    int bmt_meta_v = col_indices[0];",
        )
        assert lint_kernel(source) == []

    def test_plus_one_index_warns_unless_offsets(self):
        bad = _CLEAN_KERNEL.replace("x[col_indices[nz]]", "x[nz + 1]")
        assert KERNEL_OOB_INDEX in [d.code for d in lint_kernel(bad)]
        ok = _CLEAN_KERNEL.replace(
            "values[nz]", "values[bmt_row_offsets[nz + 1]]"
        ).replace(
            "int bmt_id = global_thread();",
            "int bmt_id = global_thread();\n"
            "    const int* bmt_row_offsets = col_indices;",
        )
        assert KERNEL_OOB_INDEX not in [d.code for d in lint_kernel(ok)]

    def test_direct_store_escalates_on_refuted_chain(self):
        report = ChainReport(
            verdict=Verdict.INVALID,
            diagnostics=(
                Diagnostic(
                    REDUCE_CHAIN_DIRECT_STORE, Severity.ERROR,
                    "direct store conflicts",
                ),
            ),
        )
        codes = [d.code for d in lint_kernel(_CLEAN_KERNEL, report=report)]
        assert KERNEL_SCATTER_NEEDS_ATOMIC in codes
        # the atomic form of the same store is acceptable
        atomic = _CLEAN_KERNEL.replace(
            "y[bmt_id] = thread_result;",
            "atomicAdd(&y[bmt_id], thread_result);",
        )
        assert KERNEL_SCATTER_NEEDS_ATOMIC not in [
            d.code for d in lint_kernel(atomic, report=report)
        ]

    def test_float_in_double_plan_warns(self):
        diags = lint_kernel(_CLEAN_KERNEL, value_bytes=8)
        assert KERNEL_ACCUM_DTYPE in [d.code for d in diags]
        double = (
            _CLEAN_KERNEL.replace("float", "double").replace("0.0f", "0.0")
        )
        assert lint_kernel(double, value_bytes=8) == []


# ---------------------------------------------------------------------------
# Store audit
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def populated_store(tmp_path_factory):
    """A store holding real designs plus one finished result record."""
    path = tmp_path_factory.mktemp("audit") / "store"
    matrix = named_matrix("scfxm1-2r")
    store = DesignStore(path)
    engine = SearchEngine(
        A100, budget=SearchBudget(max_total_evals=16), seed=0, store=store
    )
    try:
        result = engine.search(matrix)
    finally:
        engine.close()
    store.put_result(
        matrix_token(matrix),
        A100.name,
        search_result_record(matrix, A100.name, result, seed=0),
    )
    return path


class TestStoreAudit:
    def test_clean_store_audits_clean(self, populated_store):
        assert audit_store(DesignStore(populated_store)) == []

    def _copy(self, src, dst):
        shutil.copytree(src, dst)
        return dst

    def test_corrupt_entry_is_error(self, populated_store, tmp_path):
        path = self._copy(populated_store, tmp_path / "corrupt")
        victim = next((path / "designs").glob("*.json"))
        victim.write_text(victim.read_text()[:20])
        diags = audit_store(DesignStore(path))
        assert any(
            d.code == STORE_CORRUPT_ENTRY and d.severity is Severity.ERROR
            for d in diags
        )

    def test_unknown_workload_is_error(self, populated_store, tmp_path):
        path = self._copy(populated_store, tmp_path / "badwl")
        store = DesignStore(path)
        (record,) = store.results(A100.name)
        record = dict(record)
        record["workload"] = "nope"
        store.put_result(("other", 1, 1, 1, "d"), A100.name, record)
        diags = audit_store(DesignStore(path))
        assert any(
            d.code == STORE_BAD_WORKLOAD and d.severity is Severity.ERROR
            for d in diags
        )

    def test_stranded_signature_is_warning(self, populated_store, tmp_path):
        path = self._copy(populated_store, tmp_path / "stranded")
        store = DesignStore(path)
        store.put_design(
            ("ghost", 1, 1, 1, "d"),
            (("BOGUS_OP", (), ()),),
            A100.name,
            error="synthetic stranded entry",
        )
        diags = audit_store(DesignStore(path))
        stranded = [d for d in diags if d.code == STORE_UNKNOWN_OPERATOR]
        assert stranded and all(
            d.severity is Severity.WARNING for d in stranded
        )


# ---------------------------------------------------------------------------
# CLI: python -m repro check
# ---------------------------------------------------------------------------

class TestCheckCommand:
    def test_space_self_check_passes(self, capsys):
        assert main(["check", "--samples", "0"]) == 0
        out = capsys.readouterr().out
        assert "check passed" in out
        assert "candidate designs" in out

    def test_store_audit_passes_on_clean_store(self, populated_store, capsys):
        assert main(["check", "--store", str(populated_store)]) == 0
        assert "check passed" in capsys.readouterr().out

    def test_store_audit_fails_on_corruption(
        self, populated_store, tmp_path, capsys
    ):
        path = tmp_path / "broken"
        shutil.copytree(populated_store, path)
        victim = next((path / "designs").glob("*.json"))
        victim.write_text("{not json")
        assert main(["check", "--store", str(path)]) == 1
        out = capsys.readouterr().out
        assert STORE_CORRUPT_ENTRY in out
        assert "check failed" in out

    def test_missing_store_is_usage_error(self, tmp_path, capsys):
        assert main(["check", "--store", str(tmp_path / "absent")]) == 2
        assert "error:" in capsys.readouterr().out
