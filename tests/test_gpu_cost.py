"""Cost-model tests: the roofline behaviours the paper's analysis relies on."""


import pytest

from repro.gpu.arch import A100, RTX2080
from repro.gpu.cost import CostModel, KernelCostInputs


def make_inputs(**overrides) -> KernelCostInputs:
    """A healthy mid-size kernel; overrides tweak one factor at a time."""
    base = dict(
        useful_flops=2.0e5,
        stored_elements=100_000,
        format_bytes=800_000.0,
        gather_bytes=200_000.0,
        y_bytes=40_000.0,
        coalescing=1.0,
        n_threads=20_000,
        n_warps=20_000 // 32,
        n_blocks=160,
        threads_per_block=128,
        warp_lockstep_elements=100_000.0,
        max_block_elements=700.0,
        mean_block_elements=625.0,
        atomic_ops=0,
        max_atomics_per_row=0,
        shmem_ops=0,
        shuffle_ops=0,
        serial_red_ops=0,
        sync_barriers=0,
    )
    base.update(overrides)
    return KernelCostInputs(**base)


class TestOccupancy:
    def test_saturated_at_capacity(self):
        model = CostModel(A100)
        inputs = make_inputs(n_threads=A100.saturating_threads * 2, n_blocks=500)
        assert model.occupancy(inputs) == 1.0

    def test_monotone_in_threads(self):
        model = CostModel(A100)
        occs = [
            model.occupancy(make_inputs(n_threads=n, n_warps=n // 32, n_blocks=max(1, n // 128)))
            for n in (100, 1000, 5000, 20_000, 50_000)
        ]
        assert all(a <= b for a, b in zip(occs, occs[1:]))

    def test_few_blocks_penalised(self):
        model = CostModel(A100)
        many = model.occupancy(make_inputs(n_blocks=200))
        few = model.occupancy(make_inputs(n_blocks=2))
        assert few < many


class TestDivergence:
    def test_balanced_is_one(self):
        model = CostModel(A100)
        assert model.divergence_factor(make_inputs()) == 1.0

    def test_skewed_warps_cost(self):
        model = CostModel(A100)
        skewed = make_inputs(warp_lockstep_elements=400_000.0)
        assert model.divergence_factor(skewed) == pytest.approx(4.0)


class TestBlockImbalance:
    def test_even_blocks(self):
        model = CostModel(A100)
        assert model.block_imbalance(make_inputs()) == pytest.approx(1.12, rel=0.1)

    def test_amortised_over_waves(self):
        model = CostModel(A100)
        few_waves = make_inputs(max_block_elements=5000.0, n_blocks=108)
        many_waves = make_inputs(max_block_elements=5000.0, n_blocks=108 * 16)
        assert model.block_imbalance(many_waves) < model.block_imbalance(few_waves)


class TestEvaluate:
    def test_memory_bound_tracks_bytes(self):
        model = CostModel(A100)
        small = model.evaluate(make_inputs())
        big = model.evaluate(
            make_inputs(format_bytes=8_000_000.0, gather_bytes=2_000_000.0)
        )
        assert big.total_s > small.total_s

    def test_padding_hurts(self):
        model = CostModel(A100)
        lean = model.evaluate(make_inputs())
        padded = model.evaluate(
            make_inputs(stored_elements=400_000, format_bytes=3_200_000.0)
        )
        assert padded.gflops < lean.gflops

    def test_poor_coalescing_hurts(self):
        model = CostModel(A100)
        good = model.evaluate(make_inputs(coalescing=1.0))
        bad = model.evaluate(make_inputs(coalescing=0.25))
        assert bad.total_s > good.total_s

    def test_atomics_add_time(self):
        model = CostModel(A100)
        without = model.evaluate(make_inputs())
        with_atomics = model.evaluate(
            make_inputs(atomic_ops=100_000, max_atomics_per_row=1)
        )
        assert with_atomics.atomic_s > 0
        assert with_atomics.total_s > without.total_s

    def test_atomic_contention_penalty(self):
        model = CostModel(A100)
        spread = model.evaluate(make_inputs(atomic_ops=50_000, max_atomics_per_row=2))
        hot = model.evaluate(make_inputs(atomic_ops=50_000, max_atomics_per_row=50_000))
        assert hot.atomic_s > spread.atomic_s

    def test_reduction_ops_counted(self):
        model = CostModel(A100)
        base = model.evaluate(make_inputs())
        heavy = model.evaluate(
            make_inputs(shmem_ops=10_000_000, sync_barriers=2000)
        )
        assert heavy.reduction_s > base.reduction_s

    def test_gflops_definition(self):
        model = CostModel(A100)
        out = model.evaluate(make_inputs())
        assert out.gflops == pytest.approx(
            make_inputs().useful_flops / out.total_s / 1e9
        )

    def test_a100_faster_than_2080_when_saturated(self):
        inputs = make_inputs(n_threads=200_000, n_blocks=2000,
                             format_bytes=80_000_000.0, gather_bytes=0.0)
        a = CostModel(A100).evaluate(inputs)
        t = CostModel(RTX2080).evaluate(inputs)
        assert a.gflops > 2.0 * t.gflops  # bandwidth ratio ~3.5x

    def test_roofline_flat_tail(self):
        """GFLOPS saturates with size — the red dashed trend of Fig 9a."""
        model = CostModel(A100)
        gflops = []
        for scale in (1, 4, 16, 64, 256, 1024):
            n = 2000 * scale
            inputs = make_inputs(
                useful_flops=2.0 * n,
                stored_elements=n,
                format_bytes=8.0 * n,
                gather_bytes=1.0 * n,
                y_bytes=0.4 * n,
                n_threads=max(64, n // 8),
                n_warps=max(2, n // 256),
                n_blocks=max(1, n // 1024),
                warp_lockstep_elements=float(n),
                max_block_elements=float(n) / max(1, n // 1024),
                mean_block_elements=float(n) / max(1, n // 1024),
            )
            gflops.append(model.evaluate(inputs).gflops)
        assert all(a <= b * 1.05 for a, b in zip(gflops, gflops[1:]))  # rising
        assert gflops[-1] < gflops[-2] * 1.3  # and flattening

    def test_breakdown_dict_complete(self):
        out = CostModel(A100).evaluate(make_inputs())
        d = out.as_dict()
        assert d["total_s"] == out.total_s
        assert set(d) >= {"memory_s", "compute_s", "reduction_s", "atomic_s", "gflops"}
