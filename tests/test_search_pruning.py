"""Pruning-rule tests (paper §VI-B)."""

from repro.search.pruning import PruningRules, default_rules
from repro.sparse import banded_matrix, power_law_matrix, rows_with_outliers_matrix


class TestDefaultRules:
    def test_regular_bans_irregularity_machinery(self):
        stats = banded_matrix(1000, bandwidth=5, seed=0).stats
        banned = default_rules().ban_list(stats)
        assert "WARP_SEG_RED" in banned
        assert "BIN" in banned
        assert "BMT_NNZ_BLOCK" in banned

    def test_irregular_keeps_irregularity_machinery(self):
        stats = power_law_matrix(3000, avg_degree=8, seed=0).stats
        banned = default_rules().ban_list(stats)
        assert "WARP_SEG_RED" not in banned
        assert "BIN" not in banned

    def test_short_rows_ban_block_reduction(self):
        stats = banded_matrix(1000, bandwidth=5, seed=0).stats
        assert "SHMEM_TOTAL_RED" in default_rules().ban_list(stats)

    def test_long_rows_allow_block_reduction(self):
        stats = rows_with_outliers_matrix(
            2000, base_len=10, outlier_len=400, seed=0
        ).stats
        assert "SHMEM_TOTAL_RED" not in default_rules().ban_list(stats)

    def test_tiny_matrix_bans_division(self):
        stats = banded_matrix(100, bandwidth=2, seed=0).stats
        banned = default_rules().ban_list(stats)
        assert "ROW_DIV" in banned and "COL_DIV" in banned

    def test_regular_has_larger_ban_list(self):
        """The asymmetry behind Fig 13: regular matrices search less."""
        regular = banded_matrix(2000, bandwidth=5, seed=0).stats
        irregular = power_law_matrix(3000, avg_degree=8, seed=0).stats
        rules = default_rules()
        assert len(rules.ban_list(regular)) > len(rules.ban_list(irregular))

    def test_active_rules_reported(self):
        stats = banded_matrix(1000, bandwidth=5, seed=0).stats
        active = default_rules().active_rules(stats)
        assert any("regular" in r.name for r in active)
        assert all(r.reason for r in active)


class TestCustomRules:
    def test_user_rule(self):
        rules = PruningRules()
        rules.add("ban-everything-wide",
                  lambda s: s.n_cols > 100, {"COL_DIV"}, "example")
        stats = banded_matrix(500, bandwidth=2, seed=0).stats
        assert rules.ban_list(stats) == {"COL_DIV"}

    def test_empty_rules_ban_nothing(self):
        stats = banded_matrix(500, bandwidth=2, seed=0).stats
        assert PruningRules().ban_list(stats) == set()
