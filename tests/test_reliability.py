"""Reliability primitives: deterministic retry backoff and fault plans.

Everything chaos-shaped in this repo rests on two properties checked
here: (a) a :class:`RetryPolicy`'s backoff schedule is a pure function of
its configuration — two runs sleep the same amounts; (b) a
:class:`FaultPlan` decision is a pure function of ``(seed, site,
context)`` — the same plan fires the same faults in every process, every
run.  If either drifts, every chaos test in the suite becomes flaky.
"""

import pickle

import pytest

from repro.reliability.faults import FaultPlan
from repro.reliability.retry import RetryError, RetryPolicy, call_with_retry


class TestRetryPolicy:
    def test_schedule_is_deterministic(self):
        a = RetryPolicy(attempts=6, seed=7)
        b = RetryPolicy(attempts=6, seed=7)
        assert a.delays() == b.delays()
        assert len(a.delays()) == 5  # attempts - 1 sleeps

    def test_seed_changes_jitter_not_envelope(self):
        a = RetryPolicy(attempts=5, seed=1, jitter=0.5)
        b = RetryPolicy(attempts=5, seed=2, jitter=0.5)
        assert a.delays() != b.delays()
        for policy in (a, b):
            for i, delay in enumerate(policy.delays()):
                base = min(
                    policy.max_delay_s,
                    policy.base_delay_s * policy.multiplier**i,
                )
                assert base * (1 - policy.jitter) <= delay <= base * (
                    1 + policy.jitter
                )

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            attempts=10, base_delay_s=0.01, multiplier=2.0,
            max_delay_s=0.05, jitter=0.0,
        )
        delays = policy.delays()
        assert delays[0] == pytest.approx(0.01)
        assert delays[1] == pytest.approx(0.02)
        assert max(delays) == pytest.approx(0.05)  # capped

    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay_s=-1.0)


class TestCallWithRetry:
    def test_sleeps_exactly_the_schedule_then_succeeds(self):
        policy = RetryPolicy(attempts=4, seed=3)
        failures = iter([OSError("a"), OSError("b")])
        slept = []

        def flaky():
            try:
                raise next(failures)
            except StopIteration:
                return "done"

        out = call_with_retry(flaky, policy, sleep=slept.append)
        assert out == "done"
        assert slept == policy.delays()[:2]

    def test_exhaustion_raises_retry_error_with_cause(self):
        policy = RetryPolicy(attempts=3, seed=0)
        slept = []
        with pytest.raises(RetryError, match="3 attempt") as info:
            call_with_retry(
                lambda: (_ for _ in ()).throw(OSError("disk")),
                policy,
                describe="probe",
                sleep=slept.append,
            )
        assert info.value.attempts == 3
        assert isinstance(info.value.last, OSError)
        assert isinstance(info.value.__cause__, OSError)
        assert slept == policy.delays()  # all attempts-1 sleeps happened

    def test_non_allowlisted_exception_propagates_immediately(self):
        policy = RetryPolicy(attempts=5, retry_on=(OSError,))
        slept = []

        def boom():
            raise ValueError("programming error")

        with pytest.raises(ValueError):
            call_with_retry(boom, policy, sleep=slept.append)
        assert slept == []  # never retried

    def test_attempts_one_means_no_retry(self):
        policy = RetryPolicy(attempts=1)
        slept = []
        with pytest.raises(RetryError):
            call_with_retry(
                lambda: (_ for _ in ()).throw(OSError()), policy,
                sleep=slept.append,
            )
        assert slept == []


class TestFaultPlan:
    def test_rate_lookup_and_unknown_site(self):
        plan = FaultPlan(worker_kill_rate=0.25)
        assert plan.rate("worker_kill") == 0.25
        assert plan.rate("io_error") == 0.0
        with pytest.raises(ValueError, match="unknown fault site"):
            plan.rate("meteor_strike")

    def test_any_faults(self):
        assert not FaultPlan().any_faults
        assert FaultPlan(torn_write_rate=0.01).any_faults

    def test_plan_is_picklable(self):
        # the resolver pool ships plans to worker processes
        plan = FaultPlan(seed=9, worker_kill_rate=0.2)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan


class TestFaultInjector:
    def test_decisions_replay_across_injectors(self):
        plan = FaultPlan(seed=11, io_error_rate=0.3)
        first = [plan.injector().decide("io_error", i) for i in range(200)]
        second = [plan.injector().decide("io_error", i) for i in range(200)]
        assert first == second
        assert any(first) and not all(first)

    def test_context_gives_fresh_decisions(self):
        plan = FaultPlan(seed=0, worker_kill_rate=0.5)
        injector = plan.injector()
        decisions = {
            (req, attempt): injector.decide("worker_kill", req, attempt)
            for req in range(20)
            for attempt in range(3)
        }
        # a retried request must not be doomed to repeat its fate forever:
        # some request killed at attempt 0 survives a later attempt
        assert any(
            decisions[(req, 0)] and not decisions[(req, 1)]
            for req in range(20)
        )

    def test_rate_zero_and_one(self):
        never = FaultPlan(seed=1).injector()
        always = FaultPlan(seed=1, lock_timeout_rate=1.0).injector()
        assert not any(never.decide("lock_timeout", i) for i in range(50))
        assert all(always.decide("lock_timeout", i) for i in range(50))

    def test_empirical_rate_tracks_configured_rate(self):
        plan = FaultPlan(seed=5, torn_write_rate=0.2)
        injector = plan.injector()
        hits = sum(injector.decide("torn_write", i) for i in range(4000))
        assert 0.15 < hits / 4000 < 0.25
        assert injector.fired["torn_write"] == hits

    def test_maybe_io_error_raises_oserror(self):
        injector = FaultPlan(io_error_rate=1.0).injector()
        with pytest.raises(OSError, match="injected"):
            injector.maybe_io_error("read", 1)
        assert injector.fired == {"io_error": 1}

    def test_sites_differ_under_one_seed(self):
        plan = FaultPlan(seed=2, io_error_rate=0.5, worker_kill_rate=0.5)
        injector = plan.injector()
        io = [injector.decide("io_error", i) for i in range(64)]
        kill = [injector.decide("worker_kill", i) for i in range(64)]
        assert io != kill  # the site name is part of the hash
