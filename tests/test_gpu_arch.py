"""GPU architecture preset tests."""

import dataclasses

import pytest

from repro.gpu.arch import A100, RTX2080, GPUSpec, gpu_by_name


class TestPresets:
    def test_a100_headline_specs(self):
        """The numbers the paper quotes in §VII-A."""
        assert A100.cuda_cores == 6912
        assert A100.dram_bandwidth_gbps == pytest.approx(1555.0)
        assert A100.peak_gflops_sp == pytest.approx(19490.0)
        assert A100.l2_cache_bytes == 40 * 1024 * 1024

    def test_rtx2080_headline_specs(self):
        assert RTX2080.cuda_cores == 2944
        assert RTX2080.dram_bandwidth_gbps == pytest.approx(448.0)
        assert RTX2080.peak_gflops_sp == pytest.approx(10070.0)

    def test_a100_strictly_stronger(self):
        assert A100.dram_bandwidth_gbps > RTX2080.dram_bandwidth_gbps
        assert A100.num_sms > RTX2080.num_sms
        assert A100.l2_cache_bytes > RTX2080.l2_cache_bytes

    def test_max_warps(self):
        assert A100.max_warps == 6912 // 32

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            A100.warp_size = 64  # type: ignore[misc]


class TestLookup:
    @pytest.mark.parametrize("name", ["A100", "a100", "RTX2080", "rtx 2080", "RTX 2080"])
    def test_lookup_variants(self, name):
        assert gpu_by_name(name) in (A100, RTX2080)

    def test_unknown(self):
        with pytest.raises(KeyError):
            gpu_by_name("H100")


class TestValidation:
    def test_invalid_specs_rejected(self):
        base = dataclasses.asdict(A100)
        base["warp_size"] = 0
        with pytest.raises(ValueError):
            GPUSpec(**base)
        base = dataclasses.asdict(A100)
        base["dram_bandwidth_gbps"] = -1.0
        with pytest.raises(ValueError):
            GPUSpec(**base)
