"""Gradient-boosted-tree cost-model tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.search.mlmodel import (
    GradientBoostedTrees,
    RegressionTree,
    mean_absolute_deviation,
)


def step_data(n=120, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 2)) * 10
    y = np.where(X[:, 0] > 5, 10.0, 2.0) + np.where(X[:, 1] > 3, 1.0, 0.0)
    return X, y


class TestRegressionTree:
    def test_fits_constant(self):
        X = np.zeros((10, 1))
        y = np.full(10, 3.5)
        tree = RegressionTree().fit(X, y)
        np.testing.assert_allclose(tree.predict(X), 3.5)

    def test_fits_step_function(self):
        X, y = step_data()
        tree = RegressionTree(max_depth=3).fit(X, y)
        pred = tree.predict(X)
        assert np.abs(pred - y).mean() < 0.3

    def test_depth_limits_complexity(self):
        X, y = step_data()
        shallow = RegressionTree(max_depth=1).fit(X, y).predict(X)
        deep = RegressionTree(max_depth=4).fit(X, y).predict(X)
        assert np.abs(deep - y).mean() <= np.abs(shallow - y).mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((3, 2)), np.zeros(4))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 1)))

    def test_single_sample(self):
        tree = RegressionTree().fit(np.array([[1.0]]), np.array([7.0]))
        assert tree.predict(np.array([[99.0]]))[0] == 7.0


class TestGBT:
    def test_beats_mean_baseline(self):
        X, y = step_data()
        model = GradientBoostedTrees(n_estimators=40).fit(X, y)
        gbt_err = np.abs(model.predict(X) - y).mean()
        mean_err = np.abs(y.mean() - y).mean()
        assert gbt_err < 0.3 * mean_err

    def test_interpolation_quality(self):
        """The paper quotes ~5 % MAD for the cost model on its grids."""
        rng = np.random.default_rng(3)
        # smooth-ish performance surface over log-scale params
        X = rng.random((150, 3)) * 8
        y = 50 + 20 * np.sin(X[:, 0]) + 5 * X[:, 1] - 3 * (X[:, 2] > 4)
        model = GradientBoostedTrees(n_estimators=80).fit(X, y)
        assert mean_absolute_deviation(y, model.predict(X)) < 0.07

    def test_early_stop_on_perfect_fit(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([5.0, 5.0])
        model = GradientBoostedTrees(n_estimators=50).fit(X, y)
        assert model.n_trees == 0  # residual zero after the base value

    def test_validation(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostedTrees().fit(np.zeros((0, 1)), np.zeros(0))

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_predictions_finite(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.random((30, 2))
        y = rng.random(30) * 100
        model = GradientBoostedTrees(n_estimators=10).fit(X, y)
        pred = model.predict(rng.random((10, 2)))
        assert np.isfinite(pred).all()
        assert pred.min() >= y.min() - 50 and pred.max() <= y.max() + 50


class TestMAD:
    def test_zero_for_exact(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mean_absolute_deviation(y, y) == 0.0

    def test_relative(self):
        y = np.array([100.0])
        assert mean_absolute_deviation(y, np.array([95.0])) == pytest.approx(0.05)
