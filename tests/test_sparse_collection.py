"""Corpus and named-matrix tests."""

import pytest

from repro.sparse.collection import (
    NAMED_MATRICES,
    TABLE3_MATRICES,
    CorpusEntry,
    corpus,
    named_matrix,
)
from repro.sparse.matrix import IRREGULARITY_THRESHOLD


class TestNamedMatrices:
    def test_all_names_build(self):
        for name in NAMED_MATRICES:
            m = named_matrix(name)
            assert m.nnz > 0
            assert m.name == name

    def test_cached(self):
        assert named_matrix("scfxm1-2r") is named_matrix("scfxm1-2r")

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            named_matrix("nonexistent_matrix")

    def test_table3_all_named(self):
        assert len(TABLE3_MATRICES) == 13
        for name in TABLE3_MATRICES:
            assert name in NAMED_MATRICES

    def test_gl7d19_is_outlier_pattern(self):
        """The §VII-H limitation case: balanced rows + a few much longer."""
        m = named_matrix("GL7d19")
        lengths = m.row_lengths()
        assert lengths.max() > 10 * float(lengths.mean())

    def test_scfxm1_2r_moderately_irregular(self):
        m = named_matrix("scfxm1-2r")
        assert m.stats.row_variance > IRREGULARITY_THRESHOLD
        assert m.stats.row_variance < 100 * IRREGULARITY_THRESHOLD

    def test_consph_regular(self):
        assert not named_matrix("consph").is_irregular


class TestCorpus:
    def test_deterministic(self):
        a = [e.matrix for e in corpus(6)]
        b = [e.matrix for e in corpus(6)]
        for ma, mb in zip(a, b):
            assert ma == mb

    def test_entries_well_formed(self):
        for entry in corpus(8):
            assert isinstance(entry, CorpusEntry)
            assert entry.matrix.stats.empty_rows == 0  # paper's test-set rule
            assert entry.matrix.nnz >= 500
            assert entry.family in entry.name

    def test_indices_sequential(self):
        indices = [e.index for e in corpus(8)]
        assert indices == list(range(8))

    def test_mix_of_regular_and_irregular(self):
        entries = list(corpus(24))
        irregular = sum(e.matrix.is_irregular for e in entries)
        # The paper's test set is ~35 % irregular; accept a broad band.
        assert 0.15 <= irregular / len(entries) <= 0.75

    def test_spans_sizes(self):
        sizes = {e.matrix.n_rows for e in corpus(16)}
        assert len(sizes) >= 2

    def test_shard_matches_full_run(self):
        """corpus(n, start=k) yields exactly the entries k..k+n-1 of the
        full sequence, so range shards tile the corpus without overlap."""
        full = list(corpus(8))
        shard = list(corpus(3, start=5))
        assert [e.index for e in shard] == [5, 6, 7]
        for got, want in zip(shard, full[5:]):
            assert got.name == want.name
            assert got.family == want.family
            assert got.matrix == want.matrix

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            list(corpus(2, start=-1))
