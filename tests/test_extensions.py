"""Tests for the paper's future-work extensions implemented here.

§VII-H names HYB's matrix-decomposition strategy as the operator whose
absence costs AlphaSparse the GL7d19-style cases; §IX lists format
conversion routines.  Both are implemented behind the ``enable_extensions``
opt-in so the default configuration still mirrors the paper's prototype.
"""

import numpy as np
import pytest

from repro.core.graph import GraphNode, OperatorGraph
from repro.core.kernel.builder import BuildError, build_program
from repro.core.metadata import MatrixMetadataSet
from repro.core.operators import get_operator
from repro.gpu import A100
from repro.search import SearchBudget, SearchEngine
from repro.search.space import StructureSampler, seed_structures
from repro.sparse import rows_with_outliers_matrix


HYB_GRAPH = OperatorGraph(
    [
        GraphNode("HYB_DECOMP", {"width_scale": 1.0}, children=[
            [GraphNode("COMPRESS"),
             GraphNode("BMT_ROW_BLOCK", {"rows_per_block": 1}),
             GraphNode("BMT_PAD", {"mode": "max"}),
             GraphNode("INTERLEAVED_STORAGE"),
             GraphNode("THREAD_TOTAL_RED"),
             GraphNode("GMEM_ATOM_RED")],
            [GraphNode("COMPRESS"),
             GraphNode("SET_RESOURCES"),
             GraphNode("GMEM_ATOM_RED")],
        ]),
    ]
)


@pytest.fixture
def outlier_matrix():
    return rows_with_outliers_matrix(800, base_len=8, n_outliers=4, seed=3,
                                     name="ext_outliers")


class TestHybDecompOperator:
    def test_partition_by_width(self, outlier_matrix):
        op = get_operator("HYB_DECOMP")
        meta = MatrixMetadataSet.from_matrix(outlier_matrix)
        children = op.partition(meta, op.resolve_params({"width_scale": 1.0}))
        assert len(children) == 2
        head, overflow = children
        assert head.useful_nnz + overflow.useful_nnz == outlier_matrix.nnz
        # head part: every row capped near the average width
        head_lengths = np.bincount(head.elem_row, minlength=head.n_rows)
        avg = outlier_matrix.stats.avg_row_length
        assert head_lengths.max() <= int(np.ceil(avg)) + 1

    def test_uniform_matrix_no_split(self, small_regular):
        op = get_operator("HYB_DECOMP")
        meta = MatrixMetadataSet.from_matrix(small_regular)
        children = op.partition(meta, op.resolve_params({"width_scale": 3.0}))
        assert len(children) == 1  # nothing overflows

    def test_end_to_end_correct(self, outlier_matrix, x_for):
        prog = build_program(outlier_matrix, HYB_GRAPH)
        assert prog.n_kernels == 2
        x = x_for(outlier_matrix)
        res = prog.run(x, A100)
        np.testing.assert_allclose(
            res.y, outlier_matrix.spmv_reference(x), rtol=1e-9, atol=1e-9
        )


class TestCrossKernelWriteCheck:
    def test_conflicting_direct_store_rejected(self, outlier_matrix):
        bad = OperatorGraph(
            [
                GraphNode("HYB_DECOMP", {"width_scale": 1.0}, children=[
                    [GraphNode("COMPRESS"),
                     GraphNode("BMT_ROW_BLOCK", {"rows_per_block": 1}),
                     GraphNode("THREAD_TOTAL_RED"),
                     GraphNode("GMEM_DIRECT_STORE")],  # conflicts with child 2
                    [GraphNode("COMPRESS"),
                     GraphNode("SET_RESOURCES"),
                     GraphNode("GMEM_ATOM_RED")],
                ]),
            ]
        )
        with pytest.raises(BuildError, match="GMEM_DIRECT_STORE"):
            build_program(outlier_matrix, bad)

    def test_disjoint_direct_stores_allowed(self, small_irregular):
        g = OperatorGraph.from_names(
            [("ROW_DIV", {"strategy": "equal", "parts": 2}),
             "COMPRESS", "BMT_ROW_BLOCK", "THREAD_TOTAL_RED",
             "GMEM_DIRECT_STORE"]
        )
        prog = build_program(small_irregular, g)  # must not raise
        assert prog.n_kernels == 2


class TestExtensionsFlag:
    def test_default_sampler_never_uses_hyb_decomp(self):
        sampler = StructureSampler(seed=0, extensions=False)
        for _ in range(120):
            assert "HYB_DECOMP" not in sampler.sample().graph.operator_names()

    def test_extension_seeds_include_hyb(self):
        names = [tuple(p.graph.operator_names())
                 for p in seed_structures(extensions=True)]
        assert any("HYB_DECOMP" in sig for sig in names)
        base = [tuple(p.graph.operator_names()) for p in seed_structures()]
        assert not any("HYB_DECOMP" in sig for sig in base)

    def test_engine_with_extensions_still_correct(self, outlier_matrix, x_for):
        res = SearchEngine(
            A100,
            budget=SearchBudget(max_structures=6, coarse_evals_per_structure=4,
                                max_total_evals=30),
            seed=2,
            enable_extensions=True,
        ).search(outlier_matrix)
        x = x_for(outlier_matrix)
        out = res.best_program.run(x, A100)
        np.testing.assert_allclose(
            out.y, outlier_matrix.spmv_reference(x), rtol=1e-9, atol=1e-9
        )


class TestConversionCost:
    def test_positive_and_scales_with_format(self, small_irregular):
        plain = build_program(
            small_irregular,
            OperatorGraph.from_names(
                ["COMPRESS", "SET_RESOURCES", "GMEM_ATOM_RED"]
            ),
        )
        sorted_padded = build_program(
            small_irregular,
            OperatorGraph.from_names(
                ["SORT", "COMPRESS", ("BMTB_ROW_BLOCK", {"rows_per_block": 32}),
                 "BMT_ROW_BLOCK", ("BMT_PAD", {"mode": "max"}),
                 "INTERLEAVED_STORAGE", "THREAD_TOTAL_RED", "GMEM_ATOM_RED"]
            ),
        )
        c_plain = plain.conversion_cost_s(A100)
        c_rich = sorted_padded.conversion_cost_s(A100)
        assert c_plain > 0
        assert c_rich > c_plain  # sorting + padding cost more to build

    def test_amortization(self, small_irregular):
        prog = build_program(
            small_irregular,
            OperatorGraph.from_names(
                ["COMPRESS", "BMT_ROW_BLOCK", "THREAD_TOTAL_RED",
                 "GMEM_DIRECT_STORE"]
            ),
        )
        iters = prog.iterations_to_amortize(A100, baseline_time_s=1e-5,
                                            own_time_s=5e-6)
        assert 0 < iters < float("inf")
        assert prog.iterations_to_amortize(A100, 1e-6, 5e-6) == float("inf")
