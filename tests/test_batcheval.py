"""Batched group evaluation + cross-matrix warm-start tests.

Acceptance bars (vectorized hot loop PR):

* batched evaluation is a *pure optimisation*: search histories are
  byte-identical across batch on/off x jobs 1/4 x store on/off — every
  combination reproduces the golden digest captured from the seed
  revision's per-candidate loop;
* property-based differential: batch-on and batch-off searches agree
  candidate-for-candidate over random matrices (hypothesis);
* cross-matrix warm starts: a stored winner seeds the candidate stream
  as an iteration-0 candidate, an empty store degrades to an exactly
  cold search, and the corpus runner pins its config/record keys only
  when warm starting (historical stores stay resumable byte-for-byte).
"""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro import SearchEngine, named_matrix
from repro.bench import CorpusRunner
from repro.gpu import A100
from repro.search import SearchBudget
from repro.search.evaluation import matrix_token
from repro.sparse import SparseMatrix, corpus
from repro.store import DesignStore, search_result_record

# Same golden history digest as tests/test_workloads.py: a 96-eval
# seed-0 search of @2D_27628_bjtcai, captured from the pre-batching
# per-candidate loop.
GOLDEN_HISTORY_DIGEST = "698d9cef81eb821dce2abedb5b13ef4e"
GOLDEN_MATRIX = "2D_27628_bjtcai"


def _history_digest(result) -> str:
    blob = repr([r.identity() for r in result.history]).encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def _identities(result):
    return [r.identity() for r in result.history]


# ---------------------------------------------------------------------------
# Byte-identity: batch on/off x jobs 1/4 x store on/off
# ---------------------------------------------------------------------------

class TestBatchedHistoryIdentity:
    @pytest.mark.parametrize("batch", [True, False])
    @pytest.mark.parametrize("jobs", [1, 4])
    @pytest.mark.parametrize("with_store", [True, False])
    def test_golden_history_every_combination(
        self, batch, jobs, with_store, tmp_path
    ):
        store = (
            DesignStore(str(tmp_path / f"store-{batch}-{jobs}"))
            if with_store
            else None
        )
        with SearchEngine(
            A100,
            budget=SearchBudget(max_total_evals=96, jobs=jobs),
            seed=0,
            store=store,
            enable_batch_eval=batch,
        ) as engine:
            result = engine.search(named_matrix(GOLDEN_MATRIX))
        assert _history_digest(result) == GOLDEN_HISTORY_DIGEST, (
            f"search history diverged (batch={batch}, jobs={jobs}, "
            f"store={with_store})"
        )

    def test_batch_stage_timings_recorded(self):
        with SearchEngine(
            A100, budget=SearchBudget(max_total_evals=32), seed=0
        ) as engine:
            result = engine.search(named_matrix(GOLDEN_MATRIX))
        times = dict(result.stage_times)
        assert times.get("batch_assembly", 0.0) > 0.0
        assert times.get("batch_cost", 0.0) > 0.0
        # The per-candidate stages it replaces must not double-count.
        assert times.get("assembly", 0.0) == 0.0
        assert times.get("analysis", 0.0) == 0.0

    def test_cache_off_falls_back_to_per_candidate_path(self):
        """Ablating either cache disables batching (counters keep their
        historical per-candidate meaning) — histories still agree."""
        results = {}
        for name, kwargs in {
            "batched": {},
            "no_design_cache": {"enable_design_cache": False},
            "no_analysis_cache": {"enable_analysis_cache": False},
        }.items():
            with SearchEngine(
                A100,
                budget=SearchBudget(max_total_evals=24),
                seed=0,
                **kwargs,
            ) as engine:
                assert (engine.batch is not None) == (name == "batched")
                results[name] = engine.search(named_matrix(GOLDEN_MATRIX))
        ids = _identities(results["batched"])
        assert _identities(results["no_design_cache"]) == ids
        assert _identities(results["no_analysis_cache"]) == ids


# ---------------------------------------------------------------------------
# Property-based differential: batch on vs off over random matrices
# ---------------------------------------------------------------------------

@st.composite
def small_matrices(draw, max_dim=20, max_nnz=48):
    n_rows = draw(st.integers(1, max_dim))
    n_cols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(1, min(max_nnz, n_rows * n_cols)))
    rows = draw(st.lists(st.integers(0, n_rows - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz))
    # Strictly positive values: a matrix whose entries compress away to
    # zero nnz crashes the builder on both evaluation paths (pre-existing
    # degenerate-input behaviour, out of scope here).
    vals = draw(
        st.lists(st.floats(0.5, 8.0), min_size=nnz, max_size=nnz)
    )
    return SparseMatrix(n_rows, n_cols, rows, cols, vals, name="prop")


@given(small_matrices(), st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_property_batched_equals_per_candidate(matrix, seed):
    results = []
    for batch in (True, False):
        with SearchEngine(
            A100,
            budget=SearchBudget(max_total_evals=16),
            seed=0,
            enable_batch_eval=batch,
        ) as engine:
            results.append(engine.search(matrix, seed=seed))
    batched, serial = results
    assert _identities(batched) == _identities(serial)
    assert batched.best_gflops == serial.best_gflops
    assert batched.total_evaluations == serial.total_evaluations


# ---------------------------------------------------------------------------
# Cross-matrix warm starts
# ---------------------------------------------------------------------------

class TestWarmStart:
    def _populate(self, store, matrix, seed=0, evals=24):
        """Search ``matrix`` cold and record its winner the way the CLI
        and corpus runner do, so the store can donate it."""
        with SearchEngine(
            A100, budget=SearchBudget(max_total_evals=evals), seed=seed,
            store=store,
        ) as engine:
            result = engine.search(matrix)
            assert result.best_graph is not None
            store.put_result(
                engine.workload.scope_token(matrix_token(matrix)),
                A100.name,
                search_result_record(matrix, A100.name, result, seed=seed),
            )
        return result

    def test_empty_store_is_exactly_cold(self, tmp_path):
        store = DesignStore(str(tmp_path / "empty"))
        matrix = named_matrix(GOLDEN_MATRIX)
        results = []
        for warm in (store, None):
            with SearchEngine(
                A100, budget=SearchBudget(max_total_evals=24), seed=0,
                warm_start_store=warm,
            ) as engine:
                results.append(engine.search(matrix))
        assert results[0].warm_start_hits == 0
        assert _identities(results[0]) == _identities(results[1])

    def test_donor_seeds_iteration_zero(self, tmp_path):
        store = DesignStore(str(tmp_path / "donors"))
        donor_result = self._populate(store, named_matrix("scfxm1-2r"))
        with SearchEngine(
            A100, budget=SearchBudget(max_total_evals=24), seed=0,
            warm_start_store=store,
        ) as engine:
            warm = engine.search(named_matrix("consph"))
        assert warm.warm_start_hits == 1
        first = warm.history[0]
        # The donor candidate is the stored winner's graph verbatim.
        assert (
            [op for op, *_rest in first.structure_sig]
            == list(donor_result.best_graph.operator_names())
        )

    def test_own_result_never_donates(self, tmp_path):
        """Self-exclusion: the store's entry for this very matrix must
        not warm-start it (that is the design store's exact-hit job)."""
        store = DesignStore(str(tmp_path / "self"))
        matrix = named_matrix("scfxm1-2r")
        self._populate(store, matrix)
        with SearchEngine(
            A100, budget=SearchBudget(max_total_evals=24), seed=0,
            warm_start_store=store,
        ) as engine:
            result = engine.search(matrix)
        assert result.warm_start_hits == 0

    def test_corpus_runner_requires_design_store(self):
        with pytest.raises(ValueError, match="design_store"):
            CorpusRunner(A100, warm_start=True)

    def test_corpus_runner_pins_keys_only_when_enabled(self, tmp_path):
        budget = SearchBudget(max_total_evals=12)
        matrices = list(corpus(2))
        cold = CorpusRunner(A100, budget=budget)
        with cold:
            assert "warm_start" not in cold.config()["engine"]
            cold_records = cold.run(matrices).records
        assert all("warm_start_hits" not in r["search"] for r in cold_records)

        store = DesignStore(str(tmp_path / "ws"))
        warm = CorpusRunner(
            A100, budget=budget, design_store=store, warm_start=True
        )
        with warm:
            assert warm.config()["engine"]["warm_start"] is True
            warm_records = warm.run(matrices).records
        assert all(
            isinstance(r["search"]["warm_start_hits"], int)
            for r in warm_records
        )
        # The first corpus matrix has no prior winner; later ones do.
        assert warm_records[0]["search"]["warm_start_hits"] == 0
        assert warm_records[1]["search"]["warm_start_hits"] == 1
